package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/bitset"

	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

func TestGeneratorsShapeAndDeterminism(t *testing.T) {
	cfg := Config{Tasks: 3, Steps: 20, Switches: 8, Seed: 42}
	for name, gen := range Generators() {
		a, err := gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NumTasks() != 3 || a.Steps() != 20 || a.TotalLocalSwitches() != 24 {
			t.Fatalf("%s: shape %d×%d×%d", name, a.NumTasks(), a.Steps(), a.TotalLocalSwitches())
		}
		b, err := gen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < a.NumTasks(); j++ {
			for i := 0; i < a.Steps(); i++ {
				if !a.Reqs[j][i].Equal(b.Reqs[j][i]) {
					t.Fatalf("%s: not deterministic at (%d,%d)", name, j, i)
				}
			}
		}
		c, err := gen(Config{Tasks: 3, Steps: 20, Switches: 8, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for j := 0; j < a.NumTasks() && same; j++ {
			for i := 0; i < a.Steps(); i++ {
				if !a.Reqs[j][i].Equal(c.Reqs[j][i]) {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical instances", name)
		}
	}
}

func TestDefaults(t *testing.T) {
	ins, err := Phased(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumTasks() != 4 || ins.Steps() != 64 || ins.Tasks[0].Local != 16 {
		t.Fatalf("defaults wrong: %d×%d×%d", ins.NumTasks(), ins.Steps(), ins.Tasks[0].Local)
	}
	if ins.Tasks[0].V != 16 {
		t.Fatalf("v_j = %d, want l_j = 16", ins.Tasks[0].V)
	}
}

func TestPhasedHasTemporalStructure(t *testing.T) {
	// On phased workloads the GA must beat the hyperreconfigure-never
	// schedule noticeably more than on uniform workloads of the same
	// density — the paper's core premise.
	phased, err := Phased(Config{Tasks: 2, Steps: 48, Switches: 12, Seed: 7, MeanPhase: 12})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Uniform(Config{Tasks: 2, Steps: 48, Switches: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gaCfg := solve.Options{Pop: 40, Generations: 80, Seed: 1}
	resP, err := ga.Optimize(context.Background(), phased, parallel, gaCfg)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := ga.Optimize(context.Background(), uniform, parallel, gaCfg)
	if err != nil {
		t.Fatal(err)
	}
	ratioP := float64(resP.Solution.Cost) / float64(phased.DisabledCost())
	ratioU := float64(resU.Solution.Cost) / float64(uniform.DisabledCost())
	if ratioP >= ratioU {
		t.Logf("phased ratio %.2f, uniform ratio %.2f", ratioP, ratioU)
		t.Skip("structure advantage not visible on this seed (statistical)")
	}
}

func TestMarkovHasIdlePhases(t *testing.T) {
	ins, err := Markov(Config{Tasks: 2, Steps: 60, Switches: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for j := 0; j < ins.NumTasks(); j++ {
		for i := 0; i < ins.Steps(); i++ {
			if ins.Reqs[j][i].IsEmpty() {
				empty++
			}
		}
	}
	if empty == 0 {
		t.Fatal("Markov workload produced no idle steps")
	}
}

func TestGeneratedInstancesSolvable(t *testing.T) {
	for name, gen := range Generators() {
		ins, err := gen(Config{Tasks: 2, Steps: 10, Switches: 6, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		al, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
		if err != nil {
			t.Fatalf("%s aligned: %v", name, err)
		}
		ex, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{MaxStates: 20000})
		if err != nil {
			t.Fatalf("%s exact: %v", name, err)
		}
		if ex.Cost > al.Cost {
			t.Fatalf("%s: exact %d worse than aligned %d", name, ex.Cost, al.Cost)
		}
		lb := mtswitch.LowerBound(ins, parallel)
		if ex.Cost < lb {
			t.Fatalf("%s: exact %d below bound %d", name, ex.Cost, lb)
		}
	}
}

func TestStreamingCoversTraceDeterministically(t *testing.T) {
	cfg := StreamConfig{
		Workload:  Config{Tasks: 3, Steps: 20, Switches: 8, Seed: 42},
		Generator: "dense",
		Initial:   3,
		MeanBatch: 2,
		MeanGap:   4 * time.Millisecond,
	}
	a, err := Streaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Streaming(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The opening batch plus every increment reassembles exactly the
	// instance, row for row.
	check := func(s *Stream) {
		if len(s.Initial) != 3 {
			t.Fatalf("initial batch %d rows, want 3", len(s.Initial))
		}
		step := 0
		rows := append([][]bitset.Set{}, s.Initial...)
		for _, batch := range s.Batches {
			if len(batch.Rows) == 0 {
				t.Fatal("empty batch")
			}
			rows = append(rows, batch.Rows...)
		}
		if len(rows) != s.Instance.Steps() {
			t.Fatalf("stream carries %d rows, instance has %d", len(rows), s.Instance.Steps())
		}
		for i, row := range rows {
			for j := range row {
				if !row[j].Equal(s.Instance.Reqs[j][i]) {
					t.Fatalf("row %d task %d differs from the instance", i, j)
				}
			}
			step++
		}
	}
	check(a)
	check(b)

	// Same config, same stream: instance, batching and timing all match.
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts differ: %d vs %d", len(a.Batches), len(b.Batches))
	}
	var last time.Duration
	for k := range a.Batches {
		if a.Batches[k].At != b.Batches[k].At || len(a.Batches[k].Rows) != len(b.Batches[k].Rows) {
			t.Fatalf("batch %d differs between identical configs", k)
		}
		if a.Batches[k].At < last {
			t.Fatalf("batch %d arrives before its predecessor", k)
		}
		last = a.Batches[k].At
	}
	if last == 0 {
		t.Fatal("MeanGap set but no batch has a positive arrival time")
	}

	// Untimed streams leave every At at zero.
	cfg.MeanGap = 0
	c, err := Streaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range c.Batches {
		if batch.At != 0 {
			t.Fatal("untimed stream has a positive arrival time")
		}
	}

	if _, err := Streaming(StreamConfig{Generator: "nope"}); err == nil {
		t.Fatal("unknown generator accepted")
	}
}
