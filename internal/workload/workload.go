// Package workload generates synthetic multi-task requirement
// sequences with controllable temporal structure.  The paper's
// motivation — computations whose phases need only small parts of the
// reconfiguration potential — is a statement about workload shape, so
// the benchmark harness needs workloads whose shape is a parameter:
//
//   - Phased: tasks move through phases with per-phase working sets;
//     phase boundaries across tasks are independent (the regime where
//     partial hyperreconfiguration wins).
//   - Bursty: alternating heavy/light requirement episodes.
//   - Markov: two-state (active/idle) requirement process per task.
//   - Uniform: iid random requirements (the unstructured worst case —
//     hyperreconfiguration helps least here).
//
// All generators are deterministic functions of their Config.Seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Config shapes a generated instance.  Zero fields take the defaults
// noted per field.
type Config struct {
	// Tasks is m (default 4).
	Tasks int
	// Steps is n (default 64).
	Steps int
	// Switches is l_j for every task (default 16).
	Switches int
	// Density is the probability a switch belongs to a phase's working
	// set (default 0.3).
	Density float64
	// MeanPhase is the mean phase length in steps for Phased/Bursty
	// (default 8).
	MeanPhase int
	// Seed drives the deterministic random source (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tasks <= 0 {
		c.Tasks = 4
	}
	if c.Steps <= 0 {
		c.Steps = 64
	}
	if c.Switches <= 0 {
		c.Switches = 16
	}
	if c.Density <= 0 || c.Density > 1 {
		c.Density = 0.3
	}
	if c.MeanPhase <= 0 {
		c.MeanPhase = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// tasks builds the model tasks with the paper's typical special case
// v_j = l_j.
func (c Config) tasks() []model.Task {
	out := make([]model.Task, c.Tasks)
	for j := range out {
		out[j] = model.Task{
			Name:  fmt.Sprintf("T%d", j+1),
			Local: c.Switches,
			V:     model.Cost(c.Switches),
		}
	}
	return out
}

// randomSubset draws each switch independently with probability p.
func randomSubset(r *rand.Rand, universe int, p float64) bitset.Set {
	s := bitset.New(universe)
	for b := 0; b < universe; b++ {
		if r.Float64() < p {
			s.Add(b)
		}
	}
	return s
}

// phaseLength draws a geometric-ish phase length with the configured
// mean (at least 1).
func phaseLength(r *rand.Rand, mean int) int {
	// Geometric with success probability 1/mean.
	l := 1
	for r.Float64() > 1.0/float64(mean) {
		l++
		if l >= 8*mean { // avoid pathological tails
			break
		}
	}
	return l
}

// Phased generates tasks that move through phases with fixed per-phase
// working sets; within a phase every requirement is a random subset of
// the working set, so the canonical hypercontext of a phase is (close
// to) the working set.  Phase boundaries are drawn independently per
// task — the misalignment that distinguishes partially
// hyperreconfigurable machines from aligned ones.
func Phased(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			working := randomSubset(r, cfg.Switches, cfg.Density)
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				req := working.Clone()
				req.IntersectWith(randomSubset(r, cfg.Switches, 0.8))
				reqs[j] = append(reqs[j], req)
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Dense generates block-structured phases where every step of a phase
// requires exactly the phase's working set — no within-phase
// subsampling.  The result is the regime the pruned search layer is
// built for: long runs of identical steps (run-length compressible),
// few distinct requirements per task (duplicate switch columns), and
// a high density that blows up the unpruned joint frontier.  PR4's
// memory budgets degraded this shape to a beam; with pruning it solves
// exactly inside the same budget (EXPERIMENTS.md E17).
func Dense(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			working := randomSubset(r, cfg.Switches, cfg.Density)
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				reqs[j] = append(reqs[j], working.Clone())
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Bursty generates alternating heavy (density) and light (density/4)
// episodes, synchronized within a task but independent across tasks.
func Bursty(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		heavy := r.Intn(2) == 0
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			p := cfg.Density
			if !heavy {
				p /= 4
			}
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				reqs[j] = append(reqs[j], randomSubset(r, cfg.Switches, p))
			}
			heavy = !heavy
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Markov generates a per-task two-state process: in the active state a
// task demands a random subset at full density, in the idle state its
// requirement is empty.  Transition probability is 1/MeanPhase per
// step.
func Markov(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	flip := 1.0 / float64(cfg.MeanPhase)
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, cfg.Steps)
		active := r.Intn(2) == 0
		for i := 0; i < cfg.Steps; i++ {
			if r.Float64() < flip {
				active = !active
			}
			if active {
				reqs[j][i] = randomSubset(r, cfg.Switches, cfg.Density)
			} else {
				reqs[j][i] = bitset.New(cfg.Switches)
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Uniform generates iid random requirements — no temporal structure at
// all, the regime where hyperreconfiguration pays least.
func Uniform(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, cfg.Steps)
		for i := 0; i < cfg.Steps; i++ {
			reqs[j][i] = randomSubset(r, cfg.Switches, cfg.Density)
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Generators lists the named generators for sweeps.
func Generators() map[string]func(Config) (*model.MTSwitchInstance, error) {
	return map[string]func(Config) (*model.MTSwitchInstance, error){
		"phased":  Phased,
		"dense":   Dense,
		"bursty":  Bursty,
		"markov":  Markov,
		"uniform": Uniform,
	}
}
