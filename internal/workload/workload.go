// Package workload generates synthetic multi-task requirement
// sequences with controllable temporal structure.  The paper's
// motivation — computations whose phases need only small parts of the
// reconfiguration potential — is a statement about workload shape, so
// the benchmark harness needs workloads whose shape is a parameter:
//
//   - Phased: tasks move through phases with per-phase working sets;
//     phase boundaries across tasks are independent (the regime where
//     partial hyperreconfiguration wins).
//   - Bursty: alternating heavy/light requirement episodes.
//   - Markov: two-state (active/idle) requirement process per task.
//   - Uniform: iid random requirements (the unstructured worst case —
//     hyperreconfiguration helps least here).
//   - Blocked: aligned fixed-length blocks with block-disjoint working
//     sets and a controllable number of boundary-spanning columns (the
//     reference workload of the partitioned solver).
//
// All generators are deterministic functions of their Config.Seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Config shapes a generated instance.  Zero fields take the defaults
// noted per field.
type Config struct {
	// Tasks is m (default 4).
	Tasks int
	// Steps is n (default 64).
	Steps int
	// Switches is l_j for every task (default 16).
	Switches int
	// Density is the probability a switch belongs to a phase's working
	// set (default 0.3).
	Density float64
	// MeanPhase is the mean phase length in steps for Phased/Bursty
	// (default 8).
	MeanPhase int
	// CutWidth is the number of extra switch columns the Blocked
	// generator makes active at every step, so their activity intervals
	// span every block boundary (0 = cut-free blocks).  Other
	// generators ignore it.
	CutWidth int
	// Seed drives the deterministic random source (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tasks <= 0 {
		c.Tasks = 4
	}
	if c.Steps <= 0 {
		c.Steps = 64
	}
	if c.Switches <= 0 {
		c.Switches = 16
	}
	if c.Density <= 0 || c.Density > 1 {
		c.Density = 0.3
	}
	if c.MeanPhase <= 0 {
		c.MeanPhase = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// tasks builds the model tasks with the paper's typical special case
// v_j = l_j.
func (c Config) tasks() []model.Task {
	out := make([]model.Task, c.Tasks)
	for j := range out {
		out[j] = model.Task{
			Name:  fmt.Sprintf("T%d", j+1),
			Local: c.Switches,
			V:     model.Cost(c.Switches),
		}
	}
	return out
}

// randomSubset draws each switch independently with probability p.
func randomSubset(r *rand.Rand, universe int, p float64) bitset.Set {
	s := bitset.New(universe)
	for b := 0; b < universe; b++ {
		if r.Float64() < p {
			s.Add(b)
		}
	}
	return s
}

// phaseLength draws a geometric-ish phase length with the configured
// mean (at least 1).
func phaseLength(r *rand.Rand, mean int) int {
	// Geometric with success probability 1/mean.
	l := 1
	for r.Float64() > 1.0/float64(mean) {
		l++
		if l >= 8*mean { // avoid pathological tails
			break
		}
	}
	return l
}

// Phased generates tasks that move through phases with fixed per-phase
// working sets; within a phase every requirement is a random subset of
// the working set, so the canonical hypercontext of a phase is (close
// to) the working set.  Phase boundaries are drawn independently per
// task — the misalignment that distinguishes partially
// hyperreconfigurable machines from aligned ones.
func Phased(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			working := randomSubset(r, cfg.Switches, cfg.Density)
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				req := working.Clone()
				req.IntersectWith(randomSubset(r, cfg.Switches, 0.8))
				reqs[j] = append(reqs[j], req)
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Dense generates block-structured phases where every step of a phase
// requires exactly the phase's working set — no within-phase
// subsampling.  The result is the regime the pruned search layer is
// built for: long runs of identical steps (run-length compressible),
// few distinct requirements per task (duplicate switch columns), and
// a high density that blows up the unpruned joint frontier.  PR4's
// memory budgets degraded this shape to a beam; with pruning it solves
// exactly inside the same budget (EXPERIMENTS.md E17).
func Dense(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			working := randomSubset(r, cfg.Switches, cfg.Density)
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				reqs[j] = append(reqs[j], working.Clone())
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Bursty generates alternating heavy (density) and light (density/4)
// episodes, synchronized within a task but independent across tasks.
func Bursty(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, 0, cfg.Steps)
		heavy := r.Intn(2) == 0
		for len(reqs[j]) < cfg.Steps {
			length := phaseLength(r, cfg.MeanPhase)
			p := cfg.Density
			if !heavy {
				p /= 4
			}
			for k := 0; k < length && len(reqs[j]) < cfg.Steps; k++ {
				reqs[j] = append(reqs[j], randomSubset(r, cfg.Switches, p))
			}
			heavy = !heavy
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Markov generates a per-task two-state process: in the active state a
// task demands a random subset at full density, in the idle state its
// requirement is empty.  Transition probability is 1/MeanPhase per
// step.
func Markov(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	flip := 1.0 / float64(cfg.MeanPhase)
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, cfg.Steps)
		active := r.Intn(2) == 0
		for i := 0; i < cfg.Steps; i++ {
			if r.Float64() < flip {
				active = !active
			}
			if active {
				reqs[j][i] = randomSubset(r, cfg.Switches, cfg.Density)
			} else {
				reqs[j][i] = bitset.New(cfg.Switches)
			}
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Uniform generates iid random requirements — no temporal structure at
// all, the regime where hyperreconfiguration pays least.
func Uniform(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, cfg.Steps)
		for i := 0; i < cfg.Steps; i++ {
			reqs[j][i] = randomSubset(r, cfg.Switches, cfg.Density)
		}
	}
	return model.NewMTSwitchInstance(cfg.tasks(), reqs)
}

// Blocked generates aligned fixed-length blocks (length MeanPhase,
// shared across tasks) whose working sets are drawn from
// block-disjoint column ranges: block b of task j works on its own ws
// columns, the block's first and last steps require the full working
// set (so every column's activity interval spans its whole block and
// only block edges are cut-free), and the steps between require
// random nonempty subsets of it.  Each
// task's v_j is the working-set size ws, which makes a fresh install
// at every block boundary optimal — so the instance decomposes
// exactly along block boundaries and is the reference workload of the
// partitioned solver (cut-free when CutWidth is 0).
//
// CutWidth > 0 additionally reserves CutWidth columns per task that
// every step requires, so their activity intervals span every block
// boundary — a controllable column cut for exercising the certified
// stitch bound.  Density is ignored: within-block subsets are drawn
// at a fixed 0.7 so run-length compression cannot trivialize the
// blocks.
func Blocked(cfg Config) (*model.MTSwitchInstance, error) {
	cfg = cfg.withDefaults()
	if cfg.CutWidth < 0 {
		return nil, fmt.Errorf("workload: negative cut width %d", cfg.CutWidth)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	blockLen := cfg.MeanPhase
	nBlocks := (cfg.Steps + blockLen - 1) / blockLen
	ws := (cfg.Switches - cfg.CutWidth) / nBlocks
	if ws < 1 {
		ws = 1
	}
	// The per-block ranges and the cut columns are carved out of the
	// configured universe; only when Switches is too small for one
	// column per block does the universe grow.
	local := cfg.Switches
	if min := nBlocks*ws + cfg.CutWidth; local < min {
		local = min
	}
	tasks := make([]model.Task, cfg.Tasks)
	for j := range tasks {
		tasks[j] = model.Task{
			Name:  fmt.Sprintf("T%d", j+1),
			Local: local,
			V:     model.Cost(ws),
		}
	}
	reqs := make([][]bitset.Set, cfg.Tasks)
	for j := 0; j < cfg.Tasks; j++ {
		reqs[j] = make([]bitset.Set, cfg.Steps)
		for i := 0; i < cfg.Steps; i++ {
			base := (i / blockLen) * ws
			req := bitset.New(local)
			blockEnd := (i/blockLen+1)*blockLen - 1
			if blockEnd > cfg.Steps-1 {
				blockEnd = cfg.Steps - 1
			}
			if i%blockLen == 0 || i == blockEnd {
				for c := 0; c < ws; c++ {
					req.Add(base + c)
				}
			} else {
				nonempty := false
				for c := 0; c < ws; c++ {
					if r.Float64() < 0.7 {
						req.Add(base + c)
						nonempty = true
					}
				}
				if !nonempty {
					req.Add(base + r.Intn(ws))
				}
			}
			for c := 0; c < cfg.CutWidth; c++ {
				req.Add(local - 1 - c)
			}
			reqs[j][i] = req
		}
	}
	return model.NewMTSwitchInstance(tasks, reqs)
}

// StreamConfig shapes a streaming trace: a generated instance replayed
// as an opening batch plus timed increments, the arrival pattern the
// session API consumes.
type StreamConfig struct {
	// Workload shapes the underlying instance (including the seed that
	// makes the whole stream deterministic).
	Workload Config
	// Generator names the instance generator (default "phased"; see
	// Generators).
	Generator string
	// Initial is how many steps the opening batch carries (default 2,
	// clamped to the trace length).
	Initial int
	// MeanBatch is the mean rows per subsequent batch (default 2).
	MeanBatch int
	// MeanGap is the mean inter-batch arrival gap; 0 leaves the batches
	// untimed (every At is 0) for tests that drive the trace as fast as
	// possible.
	MeanGap time.Duration
}

// Batch is one timed increment of a streaming trace: step-major demand
// rows (Rows[i][j] is task j's requirement) arriving At after the
// stream opened.
type Batch struct {
	At   time.Duration
	Rows [][]bitset.Set
}

// Stream is a full trace with its arrival schedule: the instance the
// final schedule is for, the opening batch, and the timed increments
// that grow the opening batch into the full trace.
type Stream struct {
	Instance *model.MTSwitchInstance
	Initial  [][]bitset.Set
	Batches  []Batch
}

// StepRows extracts the step-major rows [from, to) of an instance —
// the shape streaming batches and the session steps API use.
func StepRows(mt *model.MTSwitchInstance, from, to int) [][]bitset.Set {
	rows := make([][]bitset.Set, 0, to-from)
	for i := from; i < to; i++ {
		row := make([]bitset.Set, mt.NumTasks())
		for j := range row {
			row[j] = mt.Reqs[j][i].Clone()
		}
		rows = append(rows, row)
	}
	return rows
}

// Streaming generates an instance and partitions it into a
// deterministic arrival schedule.  Batch sizes and gaps are drawn from
// a stream-local random source, so the same Config yields the same
// instance whether consumed whole or streamed.
func Streaming(cfg StreamConfig) (*Stream, error) {
	name := cfg.Generator
	if name == "" {
		name = "phased"
	}
	gen, ok := Generators()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q", name)
	}
	mt, err := gen(cfg.Workload)
	if err != nil {
		return nil, err
	}
	initial := cfg.Initial
	if initial <= 0 {
		initial = 2
	}
	if initial > mt.Steps() {
		initial = mt.Steps()
	}
	meanBatch := cfg.MeanBatch
	if meanBatch <= 0 {
		meanBatch = 2
	}

	// A distinct seed offset keeps the arrival schedule independent of
	// the requirement draws while staying a pure function of the config.
	r := rand.New(rand.NewSource(cfg.Workload.withDefaults().Seed ^ 0x53747265616d))
	out := &Stream{Instance: mt, Initial: StepRows(mt, 0, initial)}
	at := time.Duration(0)
	for step := initial; step < mt.Steps(); {
		size := phaseLength(r, meanBatch)
		if step+size > mt.Steps() {
			size = mt.Steps() - step
		}
		if cfg.MeanGap > 0 {
			at += time.Duration(phaseLength(r, int(cfg.MeanGap/time.Millisecond))) * time.Millisecond
		}
		out.Batches = append(out.Batches, Batch{At: at, Rows: StepRows(mt, step, step+size)})
		step += size
	}
	return out, nil
}

// Generators lists the named generators for sweeps.
func Generators() map[string]func(Config) (*model.MTSwitchInstance, error) {
	return map[string]func(Config) (*model.MTSwitchInstance, error){
		"phased":  Phased,
		"dense":   Dense,
		"bursty":  Bursty,
		"markov":  Markov,
		"uniform": Uniform,
		"blocked": Blocked,
	}
}
