// Package rmesh implements a reconfigurable mesh — the architecture
// the paper names as the canonical example of a fully synchronized
// machine ("a reconfigurable mesh where a reconfiguration is done at
// the start of each computational cycle").
//
// The machine is an H×W grid of processing elements (PEs).  Each PE
// owns one 1-bit register and four ports (N, E, S, W); its local switch
// configuration is a partition of the four ports into connected groups.
// Facing ports of adjacent PEs are hard-wired, so the per-PE partitions
// stitch global buses across the mesh.  One synchronized step:
//
//  1. every PE (re)configures its port partition — this is the ordinary
//     reconfiguration, and the partition may depend on the PE's own
//     register bit (the data-dependent switch settings classic
//     reconfigurable-mesh algorithms rely on),
//  2. writing PEs drive their register value onto the bus at a chosen
//     port (multiple writers resolve by OR),
//  3. reading PEs latch the value of the bus at a chosen port.
//
// Each PE's switch budget is PEBits = 4 configuration bits (a selector
// over the 15 partitions of four ports).  For the multi-task analysis
// the mesh rows are the tasks: row r owns the 4·W switches of its PEs,
// giving the same fully synchronized MT-Switch setting as the paper's
// SHyRA experiment on a second, very different architecture.
package rmesh

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Port indexes a PE's four ports.
type Port int

const (
	North Port = iota
	East
	South
	West
	numPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Partition identifies one of the 15 set partitions of the four ports,
// an index into Partitions().  PEBits bits encode it.
type Partition uint8

// PEBits is the switch budget of one PE (4 bits select among 15
// partitions).
const PEBits = 4

// partitionTable holds the canonical partitions: partitionTable[p][port]
// is the group label (0..3) of the port under partition p.  Generated
// in restricted-growth-string order, so partition 0 is "all connected"
// and the last is "all isolated".
var partitionTable = buildPartitions()

func buildPartitions() [][numPorts]uint8 {
	var out [][numPorts]uint8
	var rec func(pos int, labels [numPorts]uint8, maxLabel uint8)
	rec = func(pos int, labels [numPorts]uint8, maxLabel uint8) {
		if pos == int(numPorts) {
			out = append(out, labels)
			return
		}
		for l := uint8(0); l <= maxLabel+1 && l < uint8(numPorts); l++ {
			labels[pos] = l
			next := maxLabel
			if l > maxLabel {
				next = l
			}
			rec(pos+1, labels, next)
		}
	}
	var labels [numPorts]uint8
	labels[0] = 0
	rec(1, labels, 0)
	return out
}

// NumPartitions is the number of port partitions (the Bell number B4).
func NumPartitions() int { return len(partitionTable) }

// Groups returns the group label of each port under the partition.
func (p Partition) Groups() ([numPorts]uint8, error) {
	if int(p) >= len(partitionTable) {
		return [numPorts]uint8{}, fmt.Errorf("rmesh: invalid partition %d (have %d)", p, len(partitionTable))
	}
	return partitionTable[p], nil
}

// PartitionOf finds the canonical partition connecting exactly the
// given port groups; ports not mentioned stay isolated.  Example:
// PartitionOf([]Port{West, East}) is the horizontal through-connection.
func PartitionOf(groups ...[]Port) (Partition, error) {
	label := [numPorts]int{-1, -1, -1, -1}
	for gi, g := range groups {
		for _, port := range g {
			if port < 0 || port >= numPorts {
				return 0, fmt.Errorf("rmesh: invalid port %d", port)
			}
			if label[port] != -1 {
				return 0, fmt.Errorf("rmesh: port %v in two groups", port)
			}
			label[port] = gi
		}
	}
	// Canonicalize to a restricted growth string.
	var canon [numPorts]uint8
	next := uint8(0)
	seen := map[int]uint8{}
	for port := 0; port < int(numPorts); port++ {
		l := label[port]
		if l == -1 {
			canon[port] = next // isolated: fresh label
			next++
			continue
		}
		if c, ok := seen[l]; ok {
			canon[port] = c
		} else {
			seen[l] = next
			canon[port] = next
			next++
		}
	}
	for idx, row := range partitionTable {
		if row == canon {
			return Partition(idx), nil
		}
	}
	return 0, fmt.Errorf("rmesh: partition %v not found (internal error)", canon)
}

// MustPartition is PartitionOf for static program construction.
func MustPartition(groups ...[]Port) Partition {
	p, err := PartitionOf(groups...)
	if err != nil {
		panic(err)
	}
	return p
}

// PEStep is one PE's behaviour in one synchronized step.  A nil PEStep
// in a StepGrid means the PE keeps its previous partition and neither
// writes nor reads (its switches are don't-cares for the step).
type PEStep struct {
	// PartZero/PartOne select the partition depending on the PE's
	// current register bit (equal values = data-independent).
	PartZero, PartOne Partition
	// Write drives the PE's register onto the bus at WritePort.
	Write     bool
	WritePort Port
	// Read latches the bus value at ReadPort into the register.
	Read     bool
	ReadPort Port
}

// Step is the mesh-wide instruction for one synchronized cycle.
type Step struct {
	Name string
	// PE[r][c] is PE (r,c)'s behaviour; nil = inactive.
	PE [][]*PEStep
}

// Program is a straight-line reconfigurable-mesh program.
type Program struct {
	Name string
	H, W int
	// InitRegs[r][c] is the initial register plane.
	InitRegs [][]bool
	Steps    []Step
}

// Validate checks shapes and partition indices.
func (p *Program) Validate() error {
	if p.H <= 0 || p.W <= 0 {
		return fmt.Errorf("rmesh: mesh %dx%d is empty", p.H, p.W)
	}
	if len(p.InitRegs) != p.H {
		return fmt.Errorf("rmesh: init registers have %d rows, want %d", len(p.InitRegs), p.H)
	}
	for r := range p.InitRegs {
		if len(p.InitRegs[r]) != p.W {
			return fmt.Errorf("rmesh: init register row %d has %d columns, want %d", r, len(p.InitRegs[r]), p.W)
		}
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("rmesh: program %q has no steps", p.Name)
	}
	for si, st := range p.Steps {
		if len(st.PE) != p.H {
			return fmt.Errorf("rmesh: step %d (%s) has %d rows, want %d", si, st.Name, len(st.PE), p.H)
		}
		for r := range st.PE {
			if len(st.PE[r]) != p.W {
				return fmt.Errorf("rmesh: step %d (%s) row %d has %d columns, want %d", si, st.Name, r, len(st.PE[r]), p.W)
			}
			for c, pe := range st.PE[r] {
				if pe == nil {
					continue
				}
				if int(pe.PartZero) >= NumPartitions() || int(pe.PartOne) >= NumPartitions() {
					return fmt.Errorf("rmesh: step %d (%s) PE(%d,%d) has invalid partition", si, st.Name, r, c)
				}
				if pe.Write && (pe.WritePort < 0 || pe.WritePort >= numPorts) {
					return fmt.Errorf("rmesh: step %d (%s) PE(%d,%d) writes invalid port", si, st.Name, r, c)
				}
				if pe.Read && (pe.ReadPort < 0 || pe.ReadPort >= numPorts) {
					return fmt.Errorf("rmesh: step %d (%s) PE(%d,%d) reads invalid port", si, st.Name, r, c)
				}
			}
		}
	}
	return nil
}

// TraceStep records one executed mesh cycle.
type TraceStep struct {
	Name string
	// Chosen[r][c] is the partition in effect (data dependence already
	// resolved); Active[r][c] says whether the PE was configured this
	// step.
	Chosen [][]Partition
	Active [][]bool
	// RegsAfter is the register plane after the cycle.
	RegsAfter [][]bool
}

// Trace is the reconfiguration trace of a mesh program run.
type Trace struct {
	Program string
	H, W    int
	Steps   []TraceStep
}

// Len returns the number of traced steps.
func (t *Trace) Len() int { return len(t.Steps) }

// Run executes the program and returns its trace.
func Run(p *Program) (*Trace, error) {
	if p == nil {
		return nil, fmt.Errorf("rmesh: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	regs := make([][]bool, p.H)
	for r := range regs {
		regs[r] = append([]bool(nil), p.InitRegs[r]...)
	}
	// Installed partitions persist across steps for inactive PEs.
	installed := make([][]Partition, p.H)
	for r := range installed {
		installed[r] = make([]Partition, p.W)
	}

	tr := &Trace{Program: p.Name, H: p.H, W: p.W}
	nodes := p.H * p.W * int(numPorts)
	parent := make([]int, nodes)
	node := func(r, c int, port Port) int {
		return (r*p.W+c)*int(numPorts) + int(port)
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for _, st := range p.Steps {
		// Resolve data-dependent partitions and install them.
		chosen := make([][]Partition, p.H)
		active := make([][]bool, p.H)
		for r := 0; r < p.H; r++ {
			chosen[r] = make([]Partition, p.W)
			active[r] = make([]bool, p.W)
			for c := 0; c < p.W; c++ {
				if pe := st.PE[r][c]; pe != nil {
					part := pe.PartZero
					if regs[r][c] {
						part = pe.PartOne
					}
					installed[r][c] = part
					active[r][c] = true
				}
				chosen[r][c] = installed[r][c]
			}
		}

		// Build buses: union ports within each PE's partition, then
		// across the hard-wired links between adjacent PEs.
		for i := range parent {
			parent[i] = i
		}
		for r := 0; r < p.H; r++ {
			for c := 0; c < p.W; c++ {
				groups := partitionTable[chosen[r][c]]
				for a := Port(0); a < numPorts; a++ {
					for b := a + 1; b < numPorts; b++ {
						if groups[a] == groups[b] {
							union(node(r, c, a), node(r, c, b))
						}
					}
				}
				if c+1 < p.W {
					union(node(r, c, East), node(r, c+1, West))
				}
				if r+1 < p.H {
					union(node(r, c, South), node(r+1, c, North))
				}
			}
		}

		// Drive buses (OR over writers).
		bus := make(map[int]bool)
		for r := 0; r < p.H; r++ {
			for c := 0; c < p.W; c++ {
				pe := st.PE[r][c]
				if pe == nil || !pe.Write {
					continue
				}
				root := find(node(r, c, pe.WritePort))
				bus[root] = bus[root] || regs[r][c]
			}
		}
		// Latch readers (all reads see the pre-write register values,
		// which the bus map already captured).
		for r := 0; r < p.H; r++ {
			for c := 0; c < p.W; c++ {
				pe := st.PE[r][c]
				if pe == nil || !pe.Read {
					continue
				}
				regs[r][c] = bus[find(node(r, c, pe.ReadPort))]
			}
		}

		snap := make([][]bool, p.H)
		for r := range snap {
			snap[r] = append([]bool(nil), regs[r]...)
		}
		tr.Steps = append(tr.Steps, TraceStep{Name: st.Name, Chosen: chosen, Active: active, RegsAfter: snap})
	}
	return tr, nil
}

// Regs returns the final register plane of the trace.
func (t *Trace) Regs() [][]bool {
	if t.Len() == 0 {
		return nil
	}
	return t.Steps[t.Len()-1].RegsAfter
}

// MTInstance extracts the fully synchronized multi-task Switch-model
// instance of the trace with one task per mesh row (task r owns the
// 4·W switch bits of its PEs).  Requirements are bit-granular: an
// active PE needs all four of its selector bits; inactive PEs
// contribute nothing (their switches keep the installed state).
func (t *Trace) MTInstance() (*model.MTSwitchInstance, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("rmesh: empty trace")
	}
	local := t.W * PEBits
	tasks := make([]model.Task, t.H)
	reqs := make([][]bitset.Set, t.H)
	for r := 0; r < t.H; r++ {
		tasks[r] = model.Task{Name: fmt.Sprintf("row%d", r), Local: local, V: model.Cost(local)}
		reqs[r] = make([]bitset.Set, t.Len())
		for i, st := range t.Steps {
			s := bitset.New(local)
			for c := 0; c < t.W; c++ {
				if st.Active[r][c] {
					for b := 0; b < PEBits; b++ {
						s.Add(c*PEBits + b)
					}
				}
			}
			reqs[r][i] = s
		}
	}
	return model.NewMTSwitchInstance(tasks, reqs)
}

// MTInstanceDelta extracts requirements at delta granularity: an active
// PE needs only the selector bits whose value differs from the
// previously installed partition (all four on first configuration).
// Data-dependent partitions make these requirements vary run to run —
// exactly the paper's point that actual demand can depend on the data.
func (t *Trace) MTInstanceDelta() (*model.MTSwitchInstance, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("rmesh: empty trace")
	}
	local := t.W * PEBits
	tasks := make([]model.Task, t.H)
	reqs := make([][]bitset.Set, t.H)
	type key struct{ r, c int }
	prev := make(map[key]Partition)
	configuredOnce := make(map[key]bool)
	// Walk steps once, per row building the delta sets.
	for r := 0; r < t.H; r++ {
		tasks[r] = model.Task{Name: fmt.Sprintf("row%d", r), Local: local, V: model.Cost(local)}
		reqs[r] = make([]bitset.Set, t.Len())
		for i := range t.Steps {
			reqs[r][i] = bitset.New(local)
		}
	}
	for i, st := range t.Steps {
		for r := 0; r < t.H; r++ {
			for c := 0; c < t.W; c++ {
				if !st.Active[r][c] {
					continue
				}
				k := key{r, c}
				cur := st.Chosen[r][c]
				if !configuredOnce[k] {
					for b := 0; b < PEBits; b++ {
						reqs[r][i].Add(c*PEBits + b)
					}
				} else {
					diff := uint8(prev[k]) ^ uint8(cur)
					for b := 0; b < PEBits; b++ {
						if diff&(1<<uint(b)) != 0 {
							reqs[r][i].Add(c*PEBits + b)
						}
					}
				}
				prev[k] = cur
				configuredOnce[k] = true
			}
		}
	}
	return model.NewMTSwitchInstance(tasks, reqs)
}
