package rmesh

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

func TestPartitionTable(t *testing.T) {
	// Bell(4) = 15 canonical partitions, all distinct.
	if NumPartitions() != 15 {
		t.Fatalf("NumPartitions = %d, want 15", NumPartitions())
	}
	seen := map[[4]uint8]bool{}
	for p := 0; p < NumPartitions(); p++ {
		g, err := Partition(p).Groups()
		if err != nil {
			t.Fatal(err)
		}
		if seen[g] {
			t.Fatalf("duplicate partition %v", g)
		}
		seen[g] = true
		// Restricted growth string property.
		max := uint8(0)
		for i, l := range g {
			if i == 0 && l != 0 {
				t.Fatalf("partition %d not canonical: %v", p, g)
			}
			if l > max+1 {
				t.Fatalf("partition %d not canonical: %v", p, g)
			}
			if l > max {
				max = l
			}
		}
	}
	if _, err := Partition(15).Groups(); err == nil {
		t.Fatal("accepted out-of-range partition")
	}
}

func TestPartitionOf(t *testing.T) {
	// All connected is partition 0, all isolated is the last.
	all, err := PartitionOf([]Port{North, East, South, West})
	if err != nil {
		t.Fatal(err)
	}
	if all != 0 {
		t.Fatalf("all-connected = %d, want 0", all)
	}
	iso, err := PartitionOf()
	if err != nil {
		t.Fatal(err)
	}
	if int(iso) != NumPartitions()-1 {
		t.Fatalf("all-isolated = %d, want %d", iso, NumPartitions()-1)
	}
	// Mentioning a port twice is an error.
	if _, err := PartitionOf([]Port{East}, []Port{East}); err == nil {
		t.Fatal("accepted duplicate port")
	}
	if _, err := PartitionOf([]Port{Port(9)}); err == nil {
		t.Fatal("accepted invalid port")
	}
	// Group naming is order independent.
	a := MustPartition([]Port{West, East})
	b := MustPartition([]Port{East, West})
	if a != b {
		t.Fatalf("order-dependent canonicalization: %d vs %d", a, b)
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{North: "N", East: "E", South: "S", West: "W"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Port %d = %q, want %q", p, p.String(), want)
		}
	}
	if Port(9).String() == "" {
		t.Error("unknown port should render")
	}
}

func TestShiftRight(t *testing.T) {
	input := []bool{true, false, true, true, false, false}
	p, err := ShiftRight(6, 2, input)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Regs()[0]
	want := []bool{false, false, true, false, true, true}
	for c := range want {
		if got[c] != want[c] {
			t.Fatalf("after 2 shifts: %v, want %v", got, want)
		}
	}
}

func TestPrefixORAllInputs(t *testing.T) {
	const w = 6
	for code := 0; code < 1<<w; code++ {
		input := make([]bool, w)
		for c := 0; c < w; c++ {
			input[c] = code&(1<<c) != 0
		}
		p, err := PrefixOR(input)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Regs()[0]
		acc := false
		for c := 0; c < w; c++ {
			if got[c] != acc {
				t.Fatalf("input %06b: prefix-or[%d] = %v, want %v", code, c, got[c], acc)
			}
			acc = acc || input[c]
		}
	}
}

func TestBroadcastORAllReachOne(t *testing.T) {
	input := [][]bool{
		{false, false, false, false},
		{false, false, true, false},
		{false, false, false, false},
	}
	p, err := BroadcastOR(3, 4, input)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range tr.Regs() {
		for c, v := range row {
			if !v {
				t.Fatalf("PE(%d,%d) missed the broadcast", r, c)
			}
		}
	}
	// All-zero input broadcasts zero.
	zero := [][]bool{{false, false}, {false, false}}
	p, err = BroadcastOR(2, 2, zero)
	if err != nil {
		t.Fatal(err)
	}
	tr, err = Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tr.Regs() {
		for _, v := range row {
			if v {
				t.Fatal("all-zero broadcast produced a one")
			}
		}
	}
}

func TestRotateAndOrAccumulates(t *testing.T) {
	input := []bool{true, false, false, false}
	p, err := RotateAndOr(4, 4, input)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// After 4 rounds the single 1 has visited columns 1,2,3 (and been
	// shifted out); row 1 accumulated it wherever it passed.
	row1 := tr.Regs()[1]
	want := []bool{false, true, true, true}
	for c := range want {
		if row1[c] != want[c] {
			t.Fatalf("accumulator = %v, want %v", row1, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Fatal("accepted nil program")
	}
	if _, err := ShiftRight(1, 1, []bool{true}); err == nil {
		t.Fatal("accepted width 1")
	}
	if _, err := ShiftRight(4, 0, make([]bool, 4)); err == nil {
		t.Fatal("accepted zero shifts")
	}
	if _, err := ShiftRight(4, 1, make([]bool, 3)); err == nil {
		t.Fatal("accepted wrong input width")
	}
	if _, err := PrefixOR([]bool{true}); err == nil {
		t.Fatal("accepted width 1")
	}
	if _, err := BroadcastOR(0, 2, nil); err == nil {
		t.Fatal("accepted empty mesh")
	}
	if _, err := BroadcastOR(1, 2, [][]bool{{true}}); err == nil {
		t.Fatal("accepted ragged input")
	}
	if _, err := RotateAndOr(4, 0, make([]bool, 4)); err == nil {
		t.Fatal("accepted zero rounds")
	}
	// Invalid step shapes.
	bad := &Program{Name: "bad", H: 1, W: 2, InitRegs: [][]bool{{false, false}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted program without steps")
	}
	bad.Steps = []Step{{Name: "s", PE: [][]*PEStep{{nil}}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted ragged step grid")
	}
	bad.Steps = []Step{{Name: "s", PE: [][]*PEStep{{&PEStep{PartZero: 99}, nil}}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted invalid partition")
	}
}

func TestMTInstanceShapes(t *testing.T) {
	input := []bool{true, false, true, false}
	p, err := RotateAndOr(4, 3, input)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance()
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumTasks() != 2 || ins.Steps() != 6 {
		t.Fatalf("instance shape %d×%d", ins.NumTasks(), ins.Steps())
	}
	if ins.Tasks[0].Local != 4*PEBits {
		t.Fatalf("task universe = %d, want %d", ins.Tasks[0].Local, 4*PEBits)
	}
	// Shift steps leave row 1 inactive: empty requirements there.
	if !ins.Reqs[1][0].IsEmpty() {
		t.Fatal("row 1 should be idle during shift steps")
	}
	if ins.Reqs[0][0].Count() != 4*PEBits {
		t.Fatal("row 0 should be fully required during shift steps")
	}

	delta, err := tr.MTInstanceDelta()
	if err != nil {
		t.Fatal(err)
	}
	// Delta requirements are never larger than bit-level ones.
	for j := 0; j < 2; j++ {
		for i := 0; i < 6; i++ {
			if !delta.Reqs[j][i].IsSubsetOf(ins.Reqs[j][i]) {
				t.Fatalf("delta requirement (%d,%d) not a subset", j, i)
			}
		}
	}
}

func TestMeshAnalysisPipeline(t *testing.T) {
	// The mesh trace feeds the same multi-task machinery as SHyRA: the
	// ordering multi ≤ disabled must hold and partial
	// hyperreconfiguration must exploit the idle row during shifts.
	input := []bool{true, false, false, true, false, true}
	p, err := RotateAndOr(6, 5, input)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstanceDelta()
	if err != nil {
		t.Fatal(err)
	}
	al, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ga.Optimize(context.Background(), ins, parallel, solve.Options{Pop: 40, Generations: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost > al.Cost {
		t.Fatalf("GA %d worse than aligned %d", res.Solution.Cost, al.Cost)
	}
	if res.Solution.Cost >= ins.DisabledCost() {
		t.Fatalf("multi-task %d not below disabled %d", res.Solution.Cost, ins.DisabledCost())
	}
	lb := mtswitch.LowerBound(ins, parallel)
	if res.Solution.Cost < lb {
		t.Fatalf("GA %d below bound %d", res.Solution.Cost, lb)
	}
}

// Property: shifting k then inspecting equals the reference shift, for
// random inputs and widths.
func TestQuickShiftMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(8)
		k := 1 + r.Intn(6)
		input := make([]bool, w)
		for c := range input {
			input[c] = r.Intn(2) == 1
		}
		p, err := ShiftRight(w, k, input)
		if err != nil {
			return false
		}
		tr, err := Run(p)
		if err != nil {
			return false
		}
		got := tr.Regs()[0]
		for c := 0; c < w; c++ {
			want := false
			if c-k >= 0 {
				want = input[c-k]
			}
			if got[c] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix-OR matches the reference for random inputs.
func TestQuickPrefixOR(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(12)
		input := make([]bool, w)
		for c := range input {
			input[c] = r.Intn(2) == 1
		}
		p, err := PrefixOR(input)
		if err != nil {
			return false
		}
		tr, err := Run(p)
		if err != nil {
			return false
		}
		got := tr.Regs()[0]
		acc := false
		for c := 0; c < w; c++ {
			if got[c] != acc {
				return false
			}
			acc = acc || input[c]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
