package rmesh

import "fmt"

// Canonical partitions used by the bundled algorithms.
var (
	// partIsolated keeps all four ports separate.
	partIsolated = MustPartition()
	// partEW is the horizontal through-connection.
	partEW = MustPartition([]Port{East, West})
	// partNS is the vertical through-connection.
	partNS = MustPartition([]Port{North, South})
	// partAll fuses all four ports (a broadcast node).
	partAll = MustPartition([]Port{North, East, South, West})
)

// uniformStep builds a step where every PE runs the same behaviour.
func uniformStep(name string, h, w int, pe PEStep) Step {
	st := Step{Name: name, PE: make([][]*PEStep, h)}
	for r := 0; r < h; r++ {
		st.PE[r] = make([]*PEStep, w)
		for c := 0; c < w; c++ {
			cp := pe
			st.PE[r][c] = &cp
		}
	}
	return st
}

// emptyStepGrid builds an all-inactive step.
func emptyStepGrid(name string, h, w int) Step {
	st := Step{Name: name, PE: make([][]*PEStep, h)}
	for r := 0; r < h; r++ {
		st.PE[r] = make([]*PEStep, w)
	}
	return st
}

// ShiftRight shifts a 1×w register row right by k positions, one
// position per synchronized step: every PE isolates its ports, writes
// its bit eastwards and reads from the west (each pair of facing ports
// forms a private two-port bus).  The leftmost PE shifts in zero.
func ShiftRight(w, k int, input []bool) (*Program, error) {
	if w < 2 {
		return nil, fmt.Errorf("rmesh: shift needs width ≥ 2, got %d", w)
	}
	if k <= 0 {
		return nil, fmt.Errorf("rmesh: shift count must be positive, got %d", k)
	}
	if len(input) != w {
		return nil, fmt.Errorf("rmesh: input has %d bits, want %d", len(input), w)
	}
	p := &Program{Name: fmt.Sprintf("shift-right(%d,%d)", w, k), H: 1, W: w}
	p.InitRegs = [][]bool{append([]bool(nil), input...)}
	for i := 0; i < k; i++ {
		p.Steps = append(p.Steps, uniformStep(fmt.Sprintf("shift%d", i), 1, w, PEStep{
			PartZero: partIsolated, PartOne: partIsolated,
			Write: true, WritePort: East,
			Read: true, ReadPort: West,
		}))
	}
	return p, nil
}

// PrefixOR computes, in a single synchronized step, the exclusive
// prefix OR of w bits on a 1×w mesh — the classic constant-time
// reconfigurable-mesh primitive built on data-dependent bus splitting:
//
//   - a PE with bit 0 connects {W,E}, extending the bus;
//   - a PE with bit 1 breaks the bus ({W} | {E}) and drives a 1 onto
//     its east-side segment;
//   - every PE reads its west port.
//
// A PE therefore reads 1 exactly when some PE strictly to its left
// holds a 1 (the nearest 1-PE drives the segment it heads).  After the
// step, register i holds OR(input[0..i-1]).
func PrefixOR(input []bool) (*Program, error) {
	w := len(input)
	if w < 2 {
		return nil, fmt.Errorf("rmesh: prefix-or needs width ≥ 2, got %d", w)
	}
	split := MustPartition([]Port{West}, []Port{East})
	p := &Program{Name: fmt.Sprintf("prefix-or(%d)", w), H: 1, W: w}
	p.InitRegs = [][]bool{append([]bool(nil), input...)}
	p.Steps = []Step{uniformStep("prefix", 1, w, PEStep{
		PartZero: partEW, PartOne: split,
		Write: true, WritePort: East,
		Read: true, ReadPort: West,
	})}
	return p, nil
}

// BroadcastOR computes the OR of all registers of an h×w mesh into
// every PE in three synchronized steps: row buses fold each row's OR
// into column 0, the column-0 bus folds those into the global OR, and
// a final broadcast on fused row buses spreads it back out.  Every PE
// is configured in every step — a dense workload for the cost analysis.
func BroadcastOR(h, w int, input [][]bool) (*Program, error) {
	if h < 1 || w < 2 {
		return nil, fmt.Errorf("rmesh: broadcast needs at least 1×2, got %dx%d", h, w)
	}
	if len(input) != h {
		return nil, fmt.Errorf("rmesh: input has %d rows, want %d", len(input), h)
	}
	p := &Program{Name: fmt.Sprintf("broadcast-or(%dx%d)", h, w), H: h, W: w}
	p.InitRegs = make([][]bool, h)
	for r := range p.InitRegs {
		if len(input[r]) != w {
			return nil, fmt.Errorf("rmesh: input row %d has %d columns, want %d", r, len(input[r]), w)
		}
		p.InitRegs[r] = append([]bool(nil), input[r]...)
	}

	// Step 1: row OR into column 0.
	rowOr := uniformStep("row-or", h, w, PEStep{
		PartZero: partEW, PartOne: partEW,
		Write: true, WritePort: East,
	})
	for r := 0; r < h; r++ {
		rowOr.PE[r][0].Read = true
		rowOr.PE[r][0].ReadPort = East
	}
	p.Steps = append(p.Steps, rowOr)

	// Step 2: column-0 OR via its column bus, latched by every PE of
	// column 0; the other columns hold their configuration (inactive).
	colOr := emptyStepGrid("col-or", h, w)
	for r := 0; r < h; r++ {
		colOr.PE[r][0] = &PEStep{
			PartZero: partNS, PartOne: partNS,
			Write: true, WritePort: North,
			Read: true, ReadPort: North,
		}
	}
	p.Steps = append(p.Steps, colOr)

	// Step 3: every row broadcasts column 0's result on a fused bus.
	spread := uniformStep("spread", h, w, PEStep{
		PartZero: partAll, PartOne: partAll,
		Read: true, ReadPort: West,
	})
	for r := 0; r < h; r++ {
		spread.PE[r][0].Write = true
		spread.PE[r][0].WritePort = East
		spread.PE[r][0].Read = false
	}
	p.Steps = append(p.Steps, spread)
	return p, nil
}

// RotateAndOr alternates k shift steps with k vertical-OR steps on a
// 2×w mesh: row 0 rotates its pattern rightwards while row 1
// accumulates the OR of everything that has passed over its columns.
// The two phases use different partitions and ports, giving the
// multi-task analysis the temporal structure partial
// hyperreconfiguration exploits.
func RotateAndOr(w, k int, input []bool) (*Program, error) {
	if w < 2 {
		return nil, fmt.Errorf("rmesh: rotate needs width ≥ 2, got %d", w)
	}
	if k <= 0 {
		return nil, fmt.Errorf("rmesh: round count must be positive, got %d", k)
	}
	if len(input) != w {
		return nil, fmt.Errorf("rmesh: input has %d bits, want %d", len(input), w)
	}
	p := &Program{Name: fmt.Sprintf("rotate-and-or(%d,%d)", w, k), H: 2, W: w}
	p.InitRegs = [][]bool{append([]bool(nil), input...), make([]bool, w)}
	for i := 0; i < k; i++ {
		// Phase A: row 0 shifts right (row 1 idle).
		shift := emptyStepGrid(fmt.Sprintf("shift%d", i), 2, w)
		for c := 0; c < w; c++ {
			shift.PE[0][c] = &PEStep{
				PartZero: partIsolated, PartOne: partIsolated,
				Write: true, WritePort: East,
				Read: true, ReadPort: West,
			}
		}
		p.Steps = append(p.Steps, shift)
		// Phase B: vertical buses; row 1 keeps its accumulator by
		// driving it back onto the same bus row 0 drives (bus OR).
		or := emptyStepGrid(fmt.Sprintf("or%d", i), 2, w)
		for c := 0; c < w; c++ {
			or.PE[0][c] = &PEStep{
				PartZero: partNS, PartOne: partNS,
				Write: true, WritePort: South,
			}
			or.PE[1][c] = &PEStep{
				PartZero: partNS, PartOne: partNS,
				Write: true, WritePort: North,
				Read: true, ReadPort: North,
			}
		}
		p.Steps = append(p.Steps, or)
	}
	return p, nil
}
