package core

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/shyra"
	"repro/internal/solve"
)

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Solve.MaxStates != 3000 || o.Solve.MaxCandidates != 4 {
		t.Fatalf("beam defaults = %+v", o.Solve)
	}
	// Explicit values survive.
	o = Options{Solve: solve.Options{MaxStates: 7, MaxCandidates: 2}}.withDefaults()
	if o.Solve.MaxStates != 7 || o.Solve.MaxCandidates != 2 {
		t.Fatalf("explicit beam config overridden: %+v", o.Solve)
	}
}

func TestAnalysisPercent(t *testing.T) {
	a := &Analysis{Disabled: 200}
	if got := a.Percent(100); got != 50 {
		t.Fatalf("Percent = %v", got)
	}
	zero := &Analysis{}
	if got := zero.Percent(100); got != 0 {
		t.Fatalf("zero-baseline Percent = %v", got)
	}
}

func TestAnalysisBestPicksCheapest(t *testing.T) {
	a, err := RunPaperExperiment(context.Background(), Options{Solve: solve.Options{Pop: 15, Generations: 5, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	best := a.Best()
	for _, sol := range []*solve.Solution{a.MultiGA, a.MultiAligned, a.MultiBeam} {
		if sol != nil && sol.Cost < best.Cost {
			t.Fatalf("Best missed a cheaper solution (%d < %d)", sol.Cost, best.Cost)
		}
	}
}

func TestAnalysisSkipBeam(t *testing.T) {
	tr, err := CounterTrace(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeTrace(context.Background(), tr, Options{SkipBeam: true, Solve: solve.Options{Pop: 10, Generations: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.MultiBeam != nil {
		t.Fatal("SkipBeam did not skip the beam solver")
	}
	if a.Best() == nil {
		t.Fatal("Best must still work without the beam solver")
	}
}

func TestAnalyzeTraceSequentialUploads(t *testing.T) {
	tr, err := CounterTrace(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	a, err := AnalyzeTrace(context.Background(), tr, Options{Cost: seq, SkipBeam: true, Solve: solve.Options{Pop: 10, Generations: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Under fully sequential uploads the multi-task best equals the
	// single-task optimum when v_j = l_j and W = Σ l_j... not exactly:
	// per-task hyper costs are v_j instead of the single W = 48, so the
	// multi-task cost can only be ≤ the single-task optimum.
	if a.Best().Cost > a.SingleOpt.Cost {
		t.Fatalf("sequential multi-task %d above single-task %d", a.Best().Cost, a.SingleOpt.Cost)
	}
}

func TestCounterTraceInvalidArgs(t *testing.T) {
	if _, err := CounterTrace(99, 0); err == nil {
		t.Fatal("accepted 5-bit initial value")
	}
}

func TestAnalyzeUnitGranularity(t *testing.T) {
	tr, err := CounterTrace(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeTrace(context.Background(), tr, Options{Granularity: shyra.GranularityUnit, SkipBeam: true, Solve: solve.Options{Pop: 10, Generations: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Unit granularity fills whole units, so every requirement size is
	// a multiple of 4 (the DeMUX selections are 4 bits each).
	for j := range a.MT.Tasks {
		for i := 0; i < a.MT.Steps(); i++ {
			if c := a.MT.Reqs[j][i].Count(); c != 0 && c != a.MT.Tasks[j].Local {
				t.Fatalf("unit granularity produced partial requirement (%d of %d)", c, a.MT.Tasks[j].Local)
			}
		}
	}
}
