package core

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/phc"
)

// AsyncAnalysis is the non-synchronized (General Multi Task model) view
// of a workload: every task schedules its own requirement sequence
// independently and optimally, reconfiguration time of one task
// overlaps with computation of the others, and the window time is the
// slowest task's total.
type AsyncAnalysis struct {
	// TaskSolutions holds each task's optimal single-task schedule
	// (switch DP with W = v_j).
	TaskSolutions []*phc.Solution
	// TaskTimes are the per-task total (hyper)reconfiguration times.
	TaskTimes []model.Cost
	// Window is the General-MT window time: GlobalInit + max_j TaskTimes[j].
	Window model.Cost
	// GlobalInit is the cost of the window-opening global
	// hyperreconfiguration (0 when the machine has no global resources).
	GlobalInit model.Cost
	// Bottleneck indexes the task that determines the window time.
	Bottleneck int
}

// AnalyzeAsync prices a fully decoupled execution of the instance's
// tasks under the General Multi Task model (Section 4.1): each task's
// sequence is scheduled by the optimal single-task DP with its own
// hyperreconfiguration cost v_j, and the window lasts as long as its
// slowest task.  Comparing the window against the fully synchronized
// cost of the same instance quantifies what barrier synchronization
// costs (or saves, via task-parallel uploads) on the workload.
func AnalyzeAsync(ctx context.Context, ins *model.MTSwitchInstance) (*AsyncAnalysis, error) {
	if ins == nil {
		return nil, fmt.Errorf("core: nil instance")
	}
	out := &AsyncAnalysis{GlobalInit: ins.W}
	for j, task := range ins.Tasks {
		single, err := model.NewSwitchInstance(task.Local, task.V, ins.Reqs[j])
		if err != nil {
			return nil, fmt.Errorf("core: task %q: %w", task.Name, err)
		}
		sol, err := phc.SolveSwitch(ctx, single)
		if err != nil {
			return nil, fmt.Errorf("core: task %q: %w", task.Name, err)
		}
		out.TaskSolutions = append(out.TaskSolutions, sol)
		out.TaskTimes = append(out.TaskTimes, sol.Cost)
		if sol.Cost > out.TaskTimes[out.Bottleneck] {
			out.Bottleneck = j
		}
	}
	out.Window = out.GlobalInit + out.TaskTimes[out.Bottleneck]
	return out, nil
}
