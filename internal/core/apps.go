package core

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/shyra"
)

// counterProgram is a thin indirection so the facade exposes the
// paper's workload without callers importing internal/apps directly.
func counterProgram(initial, bound uint8) (*shyra.Program, error) {
	return apps.Counter(initial, bound)
}

// AppNames lists the bundled applications in deterministic order.
func AppNames() []string {
	cat := apps.Catalog()
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AppTrace builds and runs one of the bundled applications by name.
func AppTrace(name string) (*shyra.Trace, error) {
	build, ok := apps.Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown application %q (have %v)", name, AppNames())
	}
	p, err := build()
	if err != nil {
		return nil, err
	}
	return shyra.Run(p, 0)
}
