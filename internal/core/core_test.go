package core

import (
	"context"
	"testing"

	"repro/internal/shyra"
	"repro/internal/solve"
)

func TestRunPaperExperimentShape(t *testing.T) {
	a, err := RunPaperExperiment(context.Background(), Options{Solve: solve.Options{Pop: 60, Generations: 150, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace steps: %d", a.Trace.Len())
	t.Logf("disabled:    %d (100%%)", a.Disabled)
	t.Logf("single opt:  %d (%.1f%%), %d hyperreconfigurations", a.SingleOpt.Cost, a.Percent(a.SingleOpt.Cost), len(a.SingleOpt.Seg.Starts))
	t.Logf("multi GA:    %d (%.1f%%), %d partial hyper steps", a.MultiGA.Cost, a.Percent(a.MultiGA.Cost), HyperCount(a.MultiGA.MTSched))
	t.Logf("multi align: %d (%.1f%%)", a.MultiAligned.Cost, a.Percent(a.MultiAligned.Cost))
	if a.MultiBeam != nil {
		t.Logf("multi beam:  %d (%.1f%%)", a.MultiBeam.Cost, a.Percent(a.MultiBeam.Cost))
	}
	t.Logf("lower bound: %d (%.1f%%)", a.Bound, a.Percent(a.Bound))

	// The paper's headline ordering: multi-task < single-task < disabled.
	if a.SingleOpt.Cost >= a.Disabled {
		t.Fatalf("single-task optimum %d not below disabled %d", a.SingleOpt.Cost, a.Disabled)
	}
	best := a.Best()
	if best.Cost >= a.SingleOpt.Cost {
		t.Fatalf("multi-task best %d not below single-task optimum %d", best.Cost, a.SingleOpt.Cost)
	}
	if best.Cost < a.Bound {
		t.Fatalf("multi-task best %d below lower bound %d", best.Cost, a.Bound)
	}
}

func TestVerifyReplayAllGranularitiesAllApps(t *testing.T) {
	// End-to-end: for every bundled application and every requirement
	// granularity, the best multi-task schedule must replay on the
	// hypercontext-gated machine with an unchanged register trajectory.
	for _, name := range AppNames() {
		tr, err := AppTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []shyra.Granularity{shyra.GranularityBit, shyra.GranularityUnit, shyra.GranularityDelta} {
			a, err := AnalyzeTrace(context.Background(), tr, Options{
				Granularity: g,
				Solve:       solve.Options{Pop: 20, Generations: 15, Seed: 1},
				SkipBeam:    true,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, g, err)
			}
			rep, err := a.VerifyReplay()
			if err != nil {
				t.Fatalf("%s/%v: replay failed: %v", name, g, err)
			}
			if rep.Steps != tr.Len() {
				t.Fatalf("%s/%v: replay covered %d steps, want %d", name, g, rep.Steps, tr.Len())
			}
			// The gated machine must upload no more than the disabled
			// machine would (48 bits per step).
			if rep.TotalUploaded > tr.Len()*shyra.ConfigBits {
				t.Fatalf("%s/%v: uploaded %d bits, disabled run uploads %d", name, g, rep.TotalUploaded, tr.Len()*shyra.ConfigBits)
			}
		}
	}
}

func TestAnalyzeTraceValidation(t *testing.T) {
	if _, err := AnalyzeTrace(context.Background(), nil, Options{}); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := AnalyzeTrace(context.Background(), &shyra.Trace{}, Options{}); err == nil {
		t.Fatal("accepted empty trace")
	}
}

func TestAppTrace(t *testing.T) {
	names := AppNames()
	if len(names) < 5 {
		t.Fatalf("expected ≥5 bundled apps, got %v", names)
	}
	for _, name := range names {
		tr, err := AppTrace(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
	if _, err := AppTrace("nope"); err == nil {
		t.Fatal("accepted unknown app")
	}
}

func TestHyperCount(t *testing.T) {
	if HyperCount(nil) != 0 {
		t.Fatal("nil schedule should count 0")
	}
	a, err := RunPaperExperiment(context.Background(), Options{SkipBeam: true, Solve: solve.Options{Pop: 20, Generations: 10}})
	if err != nil {
		t.Fatal(err)
	}
	hc := HyperCount(a.MultiGA.MTSched)
	if hc < 1 || hc > a.Trace.Len() {
		t.Fatalf("hyper count %d out of range", hc)
	}
}
