// Package core is the high-level facade of the library: it wires the
// SHyRA simulator, the trace-to-instance extraction, and the single- and
// multi-task solvers into the experiment pipeline of Lange &
// Middendorf's multi-task hyperreconfiguration paper.
//
// The central entry point is AnalyzeTrace, which reproduces the paper's
// Section 6 analysis for any SHyRA program trace:
//
//  1. extract per-task context requirements (T1=LUT1, T2=LUT2,
//     T3=DeMUX, T4=MUX) under the MT-Switch cost model,
//  2. price the hyperreconfiguration-disabled baseline (n·48),
//  3. solve the single-task case (m=1, all components one task)
//     optimally with the polynomial DP,
//  4. solve the multi-task case (m=4) with the genetic algorithm the
//     paper used, plus the aligned DP and beam-limited exact DP for
//     comparison,
//  5. report absolute costs and percentages of the disabled baseline
//     (the paper reports 71.2% for m=1 and 53.3% for m=4).
//
// All solvers run through the solve registry (importing this package
// registers them), so callers can also resolve optimizers by name via
// solve.Run.
package core

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/shyra"
	"repro/internal/solve"
	_ "repro/internal/solve/solvers" // register the named solvers
)

// Options tune an analysis run.  The zero value reproduces the paper's
// setting: fully synchronized machine, task-parallel uploads, bit-level
// requirement granularity, deterministic GA.
type Options struct {
	// Granularity of requirement extraction (default bit-level).
	Granularity shyra.Granularity
	// CostOptions for the multi-task analysis (default task-parallel /
	// task-parallel, the paper's mode).
	Cost model.CostOptions
	// Solve carries the uniform solver knobs shared by the GA and the
	// beam-limited exact DP (zero value = deterministic defaults with
	// seed 1 and a modest beam that finishes quickly on paper-sized
	// traces).
	Solve solve.Options
	// SkipBeam disables the beam solver (it is the slowest component).
	SkipBeam bool
}

func (o Options) withDefaults() Options {
	if o.Solve.MaxStates == 0 {
		o.Solve.MaxStates = 3000
	}
	if o.Solve.MaxCandidates == 0 {
		o.Solve.MaxCandidates = 4
	}
	return o
}

// Analysis is the complete result of reproducing the paper's experiment
// on one trace.
type Analysis struct {
	// Trace is the analyzed reconfiguration trace.
	Trace *shyra.Trace
	// MT is the m=4 instance, Single the flattened m=1 instance.
	MT     *model.MTSwitchInstance
	Single *model.SwitchInstance

	// Disabled is the hyperreconfiguration-off baseline n·|X|
	// (the paper's 5280 for its 110-step trace).
	Disabled model.Cost
	// SingleOpt is the optimal single-task schedule (paper: 3761,
	// 71.2% of Disabled, using 30 hyperreconfigurations).
	SingleOpt *solve.Solution
	// MultiGA is the genetic-algorithm multi-task schedule (paper:
	// 2813, 53.3%, using 50 partial hyperreconfigurations).
	MultiGA *solve.Solution
	// MultiAligned is the optimal schedule with aligned partial
	// hyperreconfigurations (all tasks together).
	MultiAligned *solve.Solution
	// MultiBeam is the beam-limited exact DP result (nil if skipped).
	MultiBeam *solve.Solution
	// Bound is an admissible lower bound for the multi-task problem.
	Bound model.Cost

	// Cost options the multi-task numbers were computed under.
	Cost model.CostOptions
}

// Best returns the cheapest multi-task solution found.
func (a *Analysis) Best() *solve.Solution {
	best := a.MultiGA
	if a.MultiAligned != nil && a.MultiAligned.Cost < best.Cost {
		best = a.MultiAligned
	}
	if a.MultiBeam != nil && a.MultiBeam.Cost < best.Cost {
		best = a.MultiBeam
	}
	return best
}

// Percent expresses a cost as a percentage of the disabled baseline,
// the unit the paper reports its headline numbers in.
func (a *Analysis) Percent(c model.Cost) float64 {
	if a.Disabled == 0 {
		return 0
	}
	return 100 * float64(c) / float64(a.Disabled)
}

// HyperCount returns the number of (partial) hyperreconfiguration
// operations in a multi-task schedule, counting a step once if any task
// hyperreconfigures there (the unit of the paper's "50 partial
// hyperreconfiguration steps").
func HyperCount(s *model.MTSchedule) int {
	if s == nil || len(s.Hyper) == 0 {
		return 0
	}
	n := len(s.Hyper[0])
	count := 0
	for i := 0; i < n; i++ {
		for j := range s.Hyper {
			if s.Hyper[j][i] {
				count++
				break
			}
		}
	}
	return count
}

// VerifyReplay re-executes the analyzed trace on a hypercontext-gated
// machine under the best multi-task schedule, proving the schedule is
// functionally sound: the computation's register trajectory is
// identical to the hyperreconfiguration-disabled run while only
// hypercontext-sized configurations are uploaded.
func (a *Analysis) VerifyReplay() (*shyra.ReplayReport, error) {
	return shyra.ReplayMT(a.Trace, a.Best().MTSched)
}

// AnalyzeTrace runs the full Section 6 analysis on a trace.  Every
// solver resolves through the solve registry and honors ctx
// cancellation mid-solve.
func AnalyzeTrace(ctx context.Context, tr *shyra.Trace, opts Options) (*Analysis, error) {
	if tr == nil {
		return nil, fmt.Errorf("core: nil trace")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	opts = opts.withDefaults()

	mt, err := tr.MTInstance(opts.Granularity)
	if err != nil {
		return nil, fmt.Errorf("core: building m=4 instance: %w", err)
	}
	single, err := mt.SingleTaskView()
	if err != nil {
		return nil, fmt.Errorf("core: building m=1 instance: %w", err)
	}

	singleOpt, err := solve.Run(ctx, "exact", solve.NewSwitch(single), solve.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: single-task DP: %w", err)
	}
	mtInst := solve.NewMT(mt, opts.Cost)
	gaRes, err := solve.Run(ctx, "ga", mtInst, opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: genetic algorithm: %w", err)
	}
	aligned, err := solve.Run(ctx, "aligned", mtInst, opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: aligned DP: %w", err)
	}
	var beam *solve.Solution
	if !opts.SkipBeam {
		beam, err = solve.Run(ctx, "beam", mtInst, opts.Solve)
		if err != nil {
			return nil, fmt.Errorf("core: beam DP: %w", err)
		}
	}

	return &Analysis{
		Trace:        tr,
		MT:           mt,
		Single:       single,
		Disabled:     mt.DisabledCost(),
		SingleOpt:    singleOpt,
		MultiGA:      gaRes,
		MultiAligned: aligned,
		MultiBeam:    beam,
		Bound:        mtswitch.LowerBound(mt, opts.Cost),
		Cost:         opts.Cost,
	}, nil
}

// RunPaperExperiment executes the paper's exact workload — the 4-bit
// counter from 0 to bound 10 on SHyRA in fully synchronized mode with
// task-parallel partial hyperreconfigurations — and analyzes the trace.
func RunPaperExperiment(ctx context.Context, opts Options) (*Analysis, error) {
	tr, err := CounterTrace(0, 10)
	if err != nil {
		return nil, err
	}
	return AnalyzeTrace(ctx, tr, opts)
}

// CounterTrace runs the 4-bit counter application and returns its
// reconfiguration trace.
func CounterTrace(initial, bound uint8) (*shyra.Trace, error) {
	p, err := counterProgram(initial, bound)
	if err != nil {
		return nil, err
	}
	return shyra.Run(p, 0)
}
