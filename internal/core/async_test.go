package core

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/shyra"
)

func TestAnalyzeAsyncCounter(t *testing.T) {
	tr, err := CounterTrace(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	async, err := AnalyzeAsync(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(async.TaskTimes) != 4 {
		t.Fatalf("task times = %v", async.TaskTimes)
	}
	// The window is the slowest task's time.
	var worst model.Cost
	for _, c := range async.TaskTimes {
		if c > worst {
			worst = c
		}
	}
	if async.Window != worst {
		t.Fatalf("window %d != max task time %d", async.Window, worst)
	}
	// The MUX task (24 switches, always busy) is the bottleneck here.
	if ins.Tasks[async.Bottleneck].Name != "MUX" {
		t.Fatalf("bottleneck = %q, want MUX", ins.Tasks[async.Bottleneck].Name)
	}
	// Asynchronous overlap can only help against a fully synchronized
	// execution with task-sequential reconfiguration uploads (where the
	// per-step cost is the sum): max_j cost_j ≤ Σ_j cost_j.
	var seqTotal model.Cost
	for _, sol := range async.TaskSolutions {
		seqTotal += sol.Cost
	}
	if async.Window > seqTotal {
		t.Fatalf("async window %d above the sum of per-task times %d", async.Window, seqTotal)
	}
}

// TestAsyncAgreesWithRuntime executes the per-task optimal schedules on
// the non-synchronized machine runtime and checks the measured window
// time equals AnalyzeAsync's prediction.
func TestAsyncAgreesWithRuntime(t *testing.T) {
	tr, err := CounterTrace(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	async, err := AnalyzeAsync(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}

	programs := make([]machine.TaskProgram, ins.NumTasks())
	for j, sol := range async.TaskSolutions {
		p := machine.TaskProgram{Name: ins.Tasks[j].Name}
		hs := sol.Hypercontexts
		segIdx := 0
		segs := sol.Seg.Segments(ins.Steps())
		for i := 0; i < ins.Steps(); i++ {
			if segIdx+1 < len(segs) && i >= segs[segIdx+1][0] {
				segIdx++
			}
			op := machine.Op{Req: ins.Reqs[j][i]}
			if i == segs[segIdx][0] {
				h := hs[segIdx]
				op.Hyper = &h
			}
			p.Ops = append(p.Ops, op)
		}
		programs[j] = p
	}

	m, err := machine.New(ins.Tasks, model.NonSynchronized,
		model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}, ins.W, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != async.Window {
		t.Fatalf("runtime window %d != analysis window %d", rep.Total, async.Window)
	}
	if rep.Bottleneck != async.Bottleneck {
		t.Fatalf("runtime bottleneck %d != analysis bottleneck %d", rep.Bottleneck, async.Bottleneck)
	}
}

func TestAnalyzeAsyncNil(t *testing.T) {
	if _, err := AnalyzeAsync(context.Background(), nil); err == nil {
		t.Fatal("accepted nil instance")
	}
}
