package apps

import (
	"testing"

	"repro/internal/shyra"
)

func regsNibble(regs [shyra.NumRegs]bool, base int) uint8 {
	return NibbleOf(regs[base], regs[base+1], regs[base+2], regs[base+3])
}

func TestCounterCountsToBound(t *testing.T) {
	for _, tc := range []struct {
		initial, bound uint8
		iterations     int
	}{
		{0, 10, 10}, // the paper's run
		{0, 1, 1},
		{3, 7, 4},
		{14, 2, 4}, // wrap-around
		{5, 5, 16}, // full wrap
	} {
		p, err := Counter(tc.initial, tc.bound)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := shyra.Run(p, 0)
		if err != nil {
			t.Fatalf("counter(%d,%d): %v", tc.initial, tc.bound, err)
		}
		final := tr.Steps[len(tr.Steps)-1].RegsAfter
		if got := regsNibble(final, 0); got != tc.bound {
			t.Fatalf("counter(%d,%d) final value = %d", tc.initial, tc.bound, got)
		}
		if want := tc.iterations * 8; tr.Len() != want {
			t.Fatalf("counter(%d,%d) trace length = %d, want %d", tc.initial, tc.bound, tr.Len(), want)
		}
	}
}

func TestCounterPaperTraceLength(t *testing.T) {
	// The paper's trace has n = 110 reconfigurations for 0→10 under its
	// (unpublished) time partitioning; ours uses 8 steps per iteration,
	// so n = 80.  Record the relationship here so the number is load
	// bearing in exactly one place.
	p, err := Counter(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 80 {
		t.Fatalf("paper-workload trace length = %d, want 80", tr.Len())
	}
}

func TestCounterValidation(t *testing.T) {
	if _, err := Counter(16, 0); err == nil {
		t.Fatal("accepted 5-bit initial")
	}
	if _, err := Counter(0, 16); err == nil {
		t.Fatal("accepted 5-bit bound")
	}
}

func TestCounterIntermediateValues(t *testing.T) {
	p, err := Counter(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After each inc3 step (indices 3, 11, 19) the counter holds 1,2,3.
	for k, want := range []uint8{1, 2, 3} {
		idx := k*8 + 3
		if got := regsNibble(tr.Steps[idx].RegsAfter, 0); got != want {
			t.Fatalf("after increment %d counter = %d, want %d", k+1, got, want)
		}
	}
}

func TestCounterDDCountsToBound(t *testing.T) {
	for _, tc := range []struct{ initial, bound uint8 }{
		{0, 10}, {0, 1}, {3, 7}, {14, 2}, {9, 8},
	} {
		p, err := CounterDD(tc.initial, tc.bound)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := shyra.Run(p, 0)
		if err != nil {
			t.Fatalf("counterdd(%d,%d): %v", tc.initial, tc.bound, err)
		}
		final := tr.Steps[len(tr.Steps)-1].RegsAfter
		if got := regsNibble(final, 0); got != tc.bound {
			t.Fatalf("counterdd(%d,%d) final value = %d", tc.initial, tc.bound, got)
		}
	}
}

func TestCounterDDShorterThanStraightLine(t *testing.T) {
	// Early-out carry and comparison must not be slower than the
	// straight-line design on the paper's workload.
	dd, err := CounterDD(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Counter(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	trDD, err := shyra.Run(dd, 0)
	if err != nil {
		t.Fatal(err)
	}
	trSL, err := shyra.Run(sl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trDD.Len() >= trSL.Len() {
		t.Fatalf("data-dependent trace (%d) not shorter than straight-line (%d)", trDD.Len(), trSL.Len())
	}
}

func TestCounterDDRequirementDiversity(t *testing.T) {
	// The comparison phase uses only LUT1, so LUT2 must have empty
	// requirements on some steps — the temporal diversity partial
	// hyperreconfiguration exploits.
	p, err := CounterDD(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tr.TaskRequirements(shyra.GranularityBit)
	empty, nonEmpty := 0, 0
	for _, r := range reqs[1] { // LUT2
		if r.IsEmpty() {
			empty++
		} else {
			nonEmpty++
		}
	}
	if empty == 0 || nonEmpty == 0 {
		t.Fatalf("LUT2 requirements lack diversity: %d empty, %d non-empty", empty, nonEmpty)
	}
}

func TestCounterDDValidation(t *testing.T) {
	if _, err := CounterDD(16, 0); err == nil {
		t.Fatal("accepted 5-bit initial")
	}
	if _, err := CounterDD(0, 16); err == nil {
		t.Fatal("accepted 5-bit bound")
	}
	if _, err := CounterDD(5, 5); err == nil {
		t.Fatal("accepted initial == bound")
	}
}

func TestAddUntilOverflow(t *testing.T) {
	p, err := AddUntilOverflow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0,3,6,9,12,15, then 15+3=18 overflows → 6 iterations of 4 steps.
	if tr.Len() != 6*4 {
		t.Fatalf("trace length = %d, want 24", tr.Len())
	}
	final := tr.Steps[len(tr.Steps)-1].RegsAfter
	if got := regsNibble(final, 0); got != 2 { // 18 mod 16
		t.Fatalf("final accumulator = %d, want 2", got)
	}
	if !final[9] {
		t.Fatal("carry-out flag not set")
	}
}

func TestAddUntilOverflowValidation(t *testing.T) {
	if _, err := AddUntilOverflow(16, 1); err == nil {
		t.Fatal("accepted 5-bit accumulator")
	}
	if _, err := AddUntilOverflow(0, 0); err == nil {
		t.Fatal("accepted zero addend")
	}
}

func TestLFSRReachesHaltPattern(t *testing.T) {
	// Sequence from seed 1 with taps (3,2): 1 → 2 → 4 → 9 → ...
	p, err := LFSR(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 shifts × 5 steps per iteration.
	if tr.Len() != 3*5 {
		t.Fatalf("trace length = %d, want 15", tr.Len())
	}
	final := tr.Steps[len(tr.Steps)-1].RegsAfter
	if got := regsNibble(final, 0); got != 9 {
		t.Fatalf("final state = %d, want 9", got)
	}
}

func TestLFSRFullPeriod(t *testing.T) {
	// The LFSR must return to its seed after 15 shifts (maximal period
	// for x⁴+x³+1 over non-zero states).  Halting on the seed pattern
	// exercises exactly one full period.
	p, err := LFSR(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 15*5 {
		t.Fatalf("trace length = %d, want 75 (full period)", tr.Len())
	}
}

func TestLFSRValidation(t *testing.T) {
	if _, err := LFSR(0, 1); err == nil {
		t.Fatal("accepted zero seed")
	}
	if _, err := LFSR(1, 0); err == nil {
		t.Fatal("accepted zero halt pattern")
	}
	if _, err := LFSR(16, 1); err == nil {
		t.Fatal("accepted 5-bit seed")
	}
}

func TestPopcount(t *testing.T) {
	for input := uint8(0); input < 16; input++ {
		p, err := Popcount(input)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := shyra.Run(p, 0)
		if err != nil {
			t.Fatalf("popcount(%d): %v", input, err)
		}
		want := uint8(0)
		for b := uint8(0); b < 4; b++ {
			if input&(1<<b) != 0 {
				want++
			}
		}
		final := tr.Steps[len(tr.Steps)-1].RegsAfter
		if got := regsNibble(final, 0); got != want {
			t.Fatalf("popcount(%04b) = %d, want %d", input, got, want)
		}
	}
}

func TestPopcountEmptyRequirements(t *testing.T) {
	p, err := Popcount(0b0101)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tr.TaskRequirements(shyra.GranularityBit)
	// The first step is a pure test (no LUTs): all tasks' requirements
	// must be empty there.
	for j := range reqs {
		if !reqs[j][0].IsEmpty() {
			t.Fatalf("task %d requirement at test step not empty", j)
		}
	}
}

func TestToggle(t *testing.T) {
	p, err := Toggle(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	if got := tr.Steps[4].RegsAfter[0]; !got {
		t.Fatal("odd toggle count should leave r0 set")
	}
	if _, err := Toggle(0); err == nil {
		t.Fatal("accepted zero count")
	}
}

func TestCatalogAllRunnable(t *testing.T) {
	for name, build := range Catalog() {
		p, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := shyra.Run(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s produced an empty trace", name)
		}
		// Every trace must convert into valid model instances.
		if _, err := tr.MTInstance(shyra.GranularityBit); err != nil {
			t.Fatalf("%s MTInstance: %v", name, err)
		}
		if _, err := tr.SingleInstance(shyra.GranularityUnit); err != nil {
			t.Fatalf("%s SingleInstance: %v", name, err)
		}
	}
}

func TestNibbleRoundTrip(t *testing.T) {
	for v := uint8(0); v < 16; v++ {
		b := nibble(v)
		if NibbleOf(b[0], b[1], b[2], b[3]) != v {
			t.Fatalf("nibble round trip failed for %d", v)
		}
	}
}
