// Package apps contains time-partitioned SHyRA applications.  Because
// SHyRA offers only two 3-input LUTs, every computation must be split
// across many cycles, each preceded by a reconfiguration — the designs
// are "time partitioned" in the paper's words, which is what makes them
// profit from (partial) hyperreconfiguration.
//
// The flagship application is the paper's 4-bit counter with variable
// upper bound; the package adds an add-until-overflow accumulator, a
// 4-bit LFSR, a popcount routine and a toggle microbenchmark so the
// cost-model analysis can be exercised on traces with different unit
// usage patterns.
//
// Register conventions (shared across apps where sensible):
//
//	r0..r3  primary 4-bit value, LSB first
//	r4..r7  secondary 4-bit value (bound / addend / input)
//	r8, r9  temporaries (carry, comparison flags)
package apps

import (
	"fmt"

	"repro/internal/shyra"
)

// Boolean helpers used as LUT functions.
func fnNOT(a, _, _ bool) bool  { return !a }
func fnID(a, _, _ bool) bool   { return a }
func fnXOR(a, b, _ bool) bool  { return a != b }
func fnXNOR(a, b, _ bool) bool { return a == b }
func fnAND(a, b, _ bool) bool  { return a && b }
func fnXOR3(a, b, c bool) bool { return (a != b) != c }
func fnMAJ(a, b, c bool) bool  { return (a && b) || (a && c) || (b && c) }
func fnAND3(a, b, c bool) bool { return a && b && c }

// nibble converts a 4-bit value into register images, LSB first.
func nibble(v uint8) [4]bool {
	return [4]bool{v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0}
}

// NibbleOf reads a 4-bit value back out of four booleans, LSB first.
func NibbleOf(b0, b1, b2, b3 bool) uint8 {
	var v uint8
	if b0 {
		v |= 1
	}
	if b1 {
		v |= 2
	}
	if b2 {
		v |= 4
	}
	if b3 {
		v |= 8
	}
	return v
}

// Counter builds the paper's test application: a 4-bit counter with a
// variable upper bound.  The counter value lives in r0..r3 and is
// incremented until it equals the bound stored in r4..r7; the design is
// time partitioned into eight steps per iteration (four increment steps
// followed by a four-step ripple comparison with a conditional
// loop-back).
//
// initial and bound are 4-bit values (0..15).  The comparison runs
// after each increment, so the program performs ((bound - initial - 1)
// mod 16) + 1 increments; the paper's run uses initial 0 and bound 10
// (ten iterations).
func Counter(initial, bound uint8) (*shyra.Program, error) {
	if initial > 15 || bound > 15 {
		return nil, fmt.Errorf("apps: counter values must be 4-bit (got %d, %d)", initial, bound)
	}
	iv, bv := nibble(initial), nibble(bound)
	p := &shyra.Program{Name: fmt.Sprintf("counter(%d→%d)", initial, bound)}
	p.InitRegs = [shyra.NumRegs]bool{iv[0], iv[1], iv[2], iv[3], bv[0], bv[1], bv[2], bv[3]}

	p.Steps = []shyra.Step{
		// Increment: ripple carry through r8/r9, two signals per cycle.
		{Name: "inc0",
			LUT: [2]*shyra.LUTSpec{
				{Name: "b0' = NOT b0", Fn: fnNOT, In: []int{0}, Dest: 0},
				{Name: "c1 = b0", Fn: fnID, In: []int{0}, Dest: 8},
			}},
		{Name: "inc1",
			LUT: [2]*shyra.LUTSpec{
				{Name: "b1' = b1 XOR c1", Fn: fnXOR, In: []int{1, 8}, Dest: 1},
				{Name: "c2 = b1 AND c1", Fn: fnAND, In: []int{1, 8}, Dest: 9},
			}},
		{Name: "inc2",
			LUT: [2]*shyra.LUTSpec{
				{Name: "b2' = b2 XOR c2", Fn: fnXOR, In: []int{2, 9}, Dest: 2},
				{Name: "c3 = b2 AND c2", Fn: fnAND, In: []int{2, 9}, Dest: 8},
			}},
		{Name: "inc3",
			LUT: [2]*shyra.LUTSpec{
				{Name: "b3' = b3 XOR c3", Fn: fnXOR, In: []int{3, 8}, Dest: 3},
				nil,
			}},
		// Ripple comparison with the bound.
		{Name: "cmp0",
			LUT: [2]*shyra.LUTSpec{
				{Name: "e0 = b0 XNOR a0", Fn: fnXNOR, In: []int{0, 4}, Dest: 8},
				{Name: "e1 = b1 XNOR a1", Fn: fnXNOR, In: []int{1, 5}, Dest: 9},
			}},
		{Name: "cmp1",
			LUT: [2]*shyra.LUTSpec{
				{Name: "e01 = e0 AND e1", Fn: fnAND, In: []int{8, 9}, Dest: 8},
				{Name: "e2 = b2 XNOR a2", Fn: fnXNOR, In: []int{2, 6}, Dest: 9},
			}},
		{Name: "cmp2",
			LUT: [2]*shyra.LUTSpec{
				{Name: "e012 = e01 AND e2", Fn: fnAND, In: []int{8, 9}, Dest: 8},
				{Name: "e3 = b3 XNOR a3", Fn: fnXNOR, In: []int{3, 7}, Dest: 9},
			}},
		{Name: "cmp3",
			LUT: [2]*shyra.LUTSpec{
				{Name: "eq = e012 AND e3", Fn: fnAND, In: []int{8, 9}, Dest: 8},
				nil,
			},
			Branch: &shyra.Branch{Reg: 8, IfSet: false, Target: 0},
			Halt:   true},
	}
	return p, nil
}

// CounterDD is the data-dependent variant of the counter: the carry
// chain stops at the first bit that flips 0→1 (incrementing flips low
// bits until then), and the comparison scans from the most significant
// bit, bailing out at the first mismatch.  Iteration lengths therefore
// vary with the counter value ("the actual demand of a computation
// during runtime might depend on the data", Section 2), the comparison
// phase uses only LUT1 (empty LUT2 requirements), and the trace exhibits
// the temporal requirement diversity that partial hyperreconfiguration
// exploits.
func CounterDD(initial, bound uint8) (*shyra.Program, error) {
	if initial > 15 || bound > 15 {
		return nil, fmt.Errorf("apps: counter values must be 4-bit (got %d, %d)", initial, bound)
	}
	if initial == bound {
		return nil, fmt.Errorf("apps: data-dependent counter needs initial ≠ bound (the early-out comparison would halt immediately after a wrap)")
	}
	iv, bv := nibble(initial), nibble(bound)
	p := &shyra.Program{Name: fmt.Sprintf("counterdd(%d→%d)", initial, bound)}
	p.InitRegs = [shyra.NumRegs]bool{iv[0], iv[1], iv[2], iv[3], bv[0], bv[1], bv[2], bv[3]}

	const cmpStart = 4
	// Increment steps 0..3: flip bit k; stop the ripple when the old
	// bit was 0 (the flip produced the final 0→1 transition).
	for k := 0; k < 4; k++ {
		st := shyra.Step{
			Name: fmt.Sprintf("inc%d", k),
			LUT: [2]*shyra.LUTSpec{
				{Name: fmt.Sprintf("b%d' = NOT b%d", k, k), Fn: fnNOT, In: []int{k}, Dest: k},
				{Name: fmt.Sprintf("old = b%d", k), Fn: fnID, In: []int{k}, Dest: 8},
			},
		}
		if k < 3 {
			st.Branch = &shyra.Branch{Reg: 8, IfSet: false, Target: cmpStart}
		}
		p.Steps = append(p.Steps, st)
	}
	// Comparison steps 4..7, most significant bit first; a mismatch
	// jumps straight back to the increment.
	for k := 0; k < 4; k++ {
		bit := 3 - k
		st := shyra.Step{
			Name: fmt.Sprintf("cmp%d", bit),
			LUT: [2]*shyra.LUTSpec{
				{Name: fmt.Sprintf("e = b%d XNOR a%d", bit, bit), Fn: fnXNOR, In: []int{bit, 4 + bit}, Dest: 8},
				nil,
			},
			Branch: &shyra.Branch{Reg: 8, IfSet: false, Target: 0},
		}
		if k == 3 {
			st.Halt = true
		}
		p.Steps = append(p.Steps, st)
	}
	return p, nil
}

// AddUntilOverflow repeatedly adds the 4-bit addend in r4..r7 to the
// accumulator in r0..r3 until the ripple adder produces a carry out —
// a full-adder workload that keeps both LUTs busy with 3-input
// functions (XOR3 and majority).  addend must be non-zero or the loop
// would never overflow.
func AddUntilOverflow(acc, addend uint8) (*shyra.Program, error) {
	if acc > 15 || addend > 15 {
		return nil, fmt.Errorf("apps: adder values must be 4-bit (got %d, %d)", acc, addend)
	}
	if addend == 0 {
		return nil, fmt.Errorf("apps: addend must be non-zero (the loop would never terminate)")
	}
	av, dv := nibble(acc), nibble(addend)
	p := &shyra.Program{Name: fmt.Sprintf("add-until-overflow(%d+=%d)", acc, addend)}
	p.InitRegs = [shyra.NumRegs]bool{av[0], av[1], av[2], av[3], dv[0], dv[1], dv[2], dv[3]}

	p.Steps = []shyra.Step{
		{Name: "add0",
			LUT: [2]*shyra.LUTSpec{
				{Name: "s0 = a0 XOR b0", Fn: fnXOR, In: []int{0, 4}, Dest: 0},
				{Name: "c1 = a0 AND b0", Fn: fnAND, In: []int{0, 4}, Dest: 8},
			}},
		{Name: "add1",
			LUT: [2]*shyra.LUTSpec{
				{Name: "s1 = a1 XOR b1 XOR c1", Fn: fnXOR3, In: []int{1, 5, 8}, Dest: 1},
				{Name: "c2 = MAJ(a1,b1,c1)", Fn: fnMAJ, In: []int{1, 5, 8}, Dest: 9},
			}},
		{Name: "add2",
			LUT: [2]*shyra.LUTSpec{
				{Name: "s2 = a2 XOR b2 XOR c2", Fn: fnXOR3, In: []int{2, 6, 9}, Dest: 2},
				{Name: "c3 = MAJ(a2,b2,c2)", Fn: fnMAJ, In: []int{2, 6, 9}, Dest: 8},
			}},
		{Name: "add3",
			LUT: [2]*shyra.LUTSpec{
				{Name: "s3 = a3 XOR b3 XOR c3", Fn: fnXOR3, In: []int{3, 7, 8}, Dest: 3},
				{Name: "cout = MAJ(a3,b3,c3)", Fn: fnMAJ, In: []int{3, 7, 8}, Dest: 9},
			},
			Branch: &shyra.Branch{Reg: 9, IfSet: false, Target: 0},
			Halt:   true},
	}
	return p, nil
}

// LFSR builds a 4-bit Fibonacci LFSR with taps at bits 3 and 2
// (polynomial x⁴+x³+1, period 15 over non-zero states).  The state
// lives in r0..r3; each shift takes three move cycles plus a two-cycle
// comparison against the halt pattern.  seed must be non-zero and the
// halt pattern must be reachable (any non-zero 4-bit value is).
func LFSR(seed, haltPattern uint8) (*shyra.Program, error) {
	if seed == 0 || seed > 15 {
		return nil, fmt.Errorf("apps: LFSR seed must be 1..15, got %d", seed)
	}
	if haltPattern == 0 || haltPattern > 15 {
		return nil, fmt.Errorf("apps: LFSR halt pattern must be 1..15, got %d", haltPattern)
	}
	sv := nibble(seed)
	hv := nibble(haltPattern)
	p := &shyra.Program{Name: fmt.Sprintf("lfsr(seed=%d,halt=%d)", seed, haltPattern)}
	p.InitRegs = [shyra.NumRegs]bool{sv[0], sv[1], sv[2], sv[3]}

	// Halt comparison: eq = AND over (r_i XNOR h_i).  The pattern is a
	// compile-time constant, so the XNORs fold into the two match
	// functions below.
	p.Steps = []shyra.Step{
		// Shift with feedback fb = r3 XOR r2.
		{Name: "fb",
			LUT: [2]*shyra.LUTSpec{
				{Name: "fb = r3 XOR r2", Fn: fnXOR, In: []int{3, 2}, Dest: 8},
				{Name: "r3' = r2", Fn: fnID, In: []int{2}, Dest: 3},
			}},
		{Name: "mv1",
			LUT: [2]*shyra.LUTSpec{
				{Name: "r2' = r1", Fn: fnID, In: []int{1}, Dest: 2},
				{Name: "r1' = r0", Fn: fnID, In: []int{0}, Dest: 1},
			}},
		{Name: "mv2",
			LUT: [2]*shyra.LUTSpec{
				{Name: "r0' = fb", Fn: fnID, In: []int{8}, Dest: 0},
				nil,
			}},
		// Compare state with the halt pattern.
		{Name: "eq0",
			LUT: [2]*shyra.LUTSpec{
				{Name: "m01 = match(r0) AND match(r1)", Fn: func(a, b, _ bool) bool {
					return (a == hv[0]) && (b == hv[1])
				}, In: []int{0, 1}, Dest: 8},
				{Name: "m23 = match(r2) AND match(r3)", Fn: func(a, b, _ bool) bool {
					return (a == hv[2]) && (b == hv[3])
				}, In: []int{2, 3}, Dest: 9},
			}},
		{Name: "eq1",
			LUT: [2]*shyra.LUTSpec{
				{Name: "eq = m01 AND m23", Fn: fnAND, In: []int{8, 9}, Dest: 8},
				nil,
			},
			Branch: &shyra.Branch{Reg: 8, IfSet: false, Target: 0},
			Halt:   true},
	}
	return p, nil
}

// Popcount counts the set bits of the 4-bit input in r4..r7 into the
// accumulator r0..r3 using one conditional increment per input bit.
// The test steps use no LUTs at all (pure control flow), producing
// empty context requirements — a stress case for the cost models.
func Popcount(input uint8) (*shyra.Program, error) {
	if input > 15 {
		return nil, fmt.Errorf("apps: popcount input must be 4-bit, got %d", input)
	}
	iv := nibble(input)
	p := &shyra.Program{Name: fmt.Sprintf("popcount(%04b)", input)}
	p.InitRegs = [shyra.NumRegs]bool{4: iv[0], 5: iv[1], 6: iv[2], 7: iv[3]}

	// Per input bit: a test step that skips the 4-step increment when
	// the bit is clear.  Step indices are computed as we build.
	for bit := 0; bit < 4; bit++ {
		testIdx := len(p.Steps)
		skipTo := testIdx + 5 // past test + 4 increment steps
		p.Steps = append(p.Steps, shyra.Step{
			Name:   fmt.Sprintf("test%d", bit),
			Branch: &shyra.Branch{Reg: 4 + bit, IfSet: false, Target: skipTo},
		})
		p.Steps = append(p.Steps,
			shyra.Step{Name: fmt.Sprintf("inc0@%d", bit),
				LUT: [2]*shyra.LUTSpec{
					{Name: "b0' = NOT b0", Fn: fnNOT, In: []int{0}, Dest: 0},
					{Name: "c1 = b0", Fn: fnID, In: []int{0}, Dest: 8},
				}},
			shyra.Step{Name: fmt.Sprintf("inc1@%d", bit),
				LUT: [2]*shyra.LUTSpec{
					{Name: "b1' = b1 XOR c1", Fn: fnXOR, In: []int{1, 8}, Dest: 1},
					{Name: "c2 = b1 AND c1", Fn: fnAND, In: []int{1, 8}, Dest: 9},
				}},
			shyra.Step{Name: fmt.Sprintf("inc2@%d", bit),
				LUT: [2]*shyra.LUTSpec{
					{Name: "b2' = b2 XOR c2", Fn: fnXOR, In: []int{2, 9}, Dest: 2},
					{Name: "c3 = b2 AND c2", Fn: fnAND, In: []int{2, 9}, Dest: 8},
				}},
			shyra.Step{Name: fmt.Sprintf("inc3@%d", bit),
				LUT: [2]*shyra.LUTSpec{
					{Name: "b3' = b3 XOR c3", Fn: fnXOR, In: []int{3, 8}, Dest: 3},
					nil,
				}},
		)
	}
	// Terminal no-op step so the last skip target exists.
	p.Steps = append(p.Steps, shyra.Step{Name: "done", Halt: true})
	return p, nil
}

// Toggle flips r0 a fixed number of times with a fully unrolled
// straight-line program — the smallest deterministic trace generator,
// used by tests and microbenchmarks.
func Toggle(n int) (*shyra.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("apps: toggle count must be positive, got %d", n)
	}
	p := &shyra.Program{Name: fmt.Sprintf("toggle(%d)", n)}
	for i := 0; i < n; i++ {
		p.Steps = append(p.Steps, shyra.Step{
			Name: fmt.Sprintf("t%d", i),
			LUT: [2]*shyra.LUTSpec{
				{Name: "r0' = NOT r0", Fn: fnNOT, In: []int{0}, Dest: 0},
				nil,
			},
		})
	}
	p.Steps[len(p.Steps)-1].Halt = true
	return p, nil
}

// Catalog lists the available applications by name with default
// parameters, for the CLI tools and benchmarks.
func Catalog() map[string]func() (*shyra.Program, error) {
	return map[string]func() (*shyra.Program, error){
		"counter":   func() (*shyra.Program, error) { return Counter(0, 10) },
		"counterdd": func() (*shyra.Program, error) { return CounterDD(0, 10) },
		"adder":     func() (*shyra.Program, error) { return AddUntilOverflow(0, 3) },
		"lfsr":      func() (*shyra.Program, error) { return LFSR(1, 9) },
		"popcount":  func() (*shyra.Program, error) { return Popcount(0b1011) },
		"toggle":    func() (*shyra.Program, error) { return Toggle(16) },
	}
}
