package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
)

func TestTopoSort(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 4; u++ {
		for _, v := range g.Out(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("topological order violated for edge (%d,%d)", u, v)
			}
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("accepted self-loop")
	}
	if err := g.AddEdge(0, 2); err == nil {
		t.Fatal("accepted out-of-range edge")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal("duplicate edge should be ignored, not error")
	}
	if len(g.Out(0)) != 1 {
		t.Fatal("duplicate edge was inserted")
	}
}

func TestReachability(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	reach, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0].Contains(2) || !reach[0].Contains(0) {
		t.Fatal("missing transitive reachability")
	}
	if reach[0].Contains(3) || reach[2].Contains(0) {
		t.Fatal("spurious reachability")
	}
}

// diamond builds the 4-node DAG model instance used across tests:
//
//	       top {0,1,2}
//	      /            \
//	left {0,1}     right {0,2}
//	      \            /
//	       bottom {0}
//
// Edges point from weaker to stronger hypercontexts.
func diamond(t *testing.T, seq []int) *Instance {
	t.Helper()
	hs := []model.Hypercontext{
		{Name: "bottom", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "left", PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "right", PerStep: 2, Sat: bitset.FromMembers(3, 0, 2)},
		{Name: "top", PerStep: 4, Sat: bitset.Full(3)},
	}
	gen, err := model.NewGeneralInstance(3, hs, seq)
	if err != nil {
		t.Fatal(err)
	}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	ins, err := NewInstance(gen, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNewInstanceSetsUniformInit(t *testing.T) {
	ins := diamond(t, []int{0, 1, 2})
	for _, h := range ins.General.Hypercontexts {
		if h.Init != 5 {
			t.Fatalf("hypercontext %q init = %d, want 5", h.Name, h.Init)
		}
	}
}

func TestNewInstanceRejectsViolations(t *testing.T) {
	// Subset violation: edge from {0,1} to {0,2}.
	hs := []model.Hypercontext{
		{Name: "a", PerStep: 1, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "b", PerStep: 2, Sat: bitset.FromMembers(3, 0, 2)},
		{Name: "top", PerStep: 3, Sat: bitset.Full(3)},
	}
	gen, err := model.NewGeneralInstance(3, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, err := NewInstance(gen, g, 1); err == nil {
		t.Fatal("accepted edge violating subset relation")
	}

	// Cost monotonicity violation.
	hs = []model.Hypercontext{
		{Name: "a", PerStep: 5, Sat: bitset.FromMembers(3, 0)},
		{Name: "top", PerStep: 1, Sat: bitset.Full(3)},
	}
	gen, err = model.NewGeneralInstance(3, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	g = New(2)
	g.AddEdge(0, 1)
	if _, err := NewInstance(gen, g, 1); err == nil {
		t.Fatal("accepted edge violating cost monotonicity")
	}

	// Missing top.
	hs = []model.Hypercontext{
		{Name: "a", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
	}
	gen, err = model.NewGeneralInstance(3, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstance(gen, New(1), 1); err == nil {
		t.Fatal("accepted instance without top hypercontext")
	}

	// Non-positive w.
	ins := diamond(t, nil)
	if _, err := NewInstance(ins.General, ins.Graph, 0); err == nil {
		t.Fatal("accepted w=0")
	}
}

func TestMinimalSatisfiers(t *testing.T) {
	ins := diamond(t, []int{0, 1, 2})
	ms, err := ins.MinimalSatisfiers()
	if err != nil {
		t.Fatal(err)
	}
	// Context 0: satisfied by all; only bottom is minimal.
	if len(ms[0]) != 1 || ms[0][0] != 0 {
		t.Fatalf("c(H) for context 0 = %v, want [0]", ms[0])
	}
	// Context 1: satisfied by left and top; left is minimal.
	if len(ms[1]) != 1 || ms[1][0] != 1 {
		t.Fatalf("c(H) for context 1 = %v, want [1]", ms[1])
	}
	// Context 2: satisfied by right and top; right is minimal.
	if len(ms[2]) != 1 || ms[2][0] != 2 {
		t.Fatalf("c(H) for context 2 = %v, want [2]", ms[2])
	}
}

func TestMinimalSatisfiersIncomparable(t *testing.T) {
	// Two incomparable satisfiers must both be minimal.
	hs := []model.Hypercontext{
		{Name: "left", PerStep: 1, Sat: bitset.FromMembers(2, 0)},
		{Name: "right", PerStep: 1, Sat: bitset.FromMembers(2, 0, 1)},
		{Name: "top", PerStep: 2, Sat: bitset.Full(2)},
	}
	// left and right both satisfy context 0 and are not DAG-related.
	gen, err := model.NewGeneralInstance(2, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	// Note: right ⊂ top required; right={0,1} equals top — use strict?
	// right's Sat {0,1} equals Full(2): adjust to make the edge valid.
	hs[1].Sat = bitset.FromMembers(2, 1)
	gen, err = model.NewGeneralInstance(2, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := NewInstance(gen, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ins.MinimalSatisfiers()
	if err != nil {
		t.Fatal(err)
	}
	// Context 0: satisfied by left and top; left minimal (top reachable from left).
	if len(ms[0]) != 1 || ms[0][0] != 0 {
		t.Fatalf("c(H) for context 0 = %v", ms[0])
	}
	// Context 1: satisfied by right and top; right minimal.
	if len(ms[1]) != 1 || ms[1][0] != 1 {
		t.Fatalf("c(H) for context 1 = %v", ms[1])
	}
}

func TestChain(t *testing.T) {
	levels := []model.Hypercontext{
		{Name: "l0", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "l1", PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "l2", PerStep: 3, Sat: bitset.Full(3)},
	}
	ins, err := Chain(3, levels, []int{0, 1, 2, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Graph.Len() != 3 {
		t.Fatalf("chain graph has %d nodes", ins.Graph.Len())
	}
	order, err := ins.Graph.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("chain topological order = %v", order)
		}
	}
}

// Property: reachability is transitive on random DAGs (edges only from
// lower to higher indices, so acyclicity is guaranteed).
func TestQuickReachabilityTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		reach, err := g.Reachability()
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			ok := true
			reach[u].ForEach(func(v int) {
				if !reach[v].IsSubsetOf(reach[u]) {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
