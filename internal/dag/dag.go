// Package dag provides the directed-acyclic-graph substrate of the
// paper's DAG cost model: hypercontexts of a coarse-grained machine are
// partially ordered by computational power, the order given as a DAG
// whose edges (h1, h2) imply h1(C) ⊂ h2(C) and cost(h1) ≤ cost(h2).
//
// The package offers a small general DAG type (adjacency lists,
// topological sort, transitive reachability) plus the model-specific
// machinery: validation of the DAG-model side conditions and computation
// of the minimal-satisfier sets c(H) — for each context requirement c,
// the set of hypercontexts minimal with respect to the precedence
// relation that satisfy c.
package dag

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Graph is a DAG over nodes 0..N-1 with adjacency lists.
type Graph struct {
	n   int
	out [][]int
	in  [][]int
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("dag: negative node count")
	}
	return &Graph{n: n, out: make([][]int, n), in: make([][]int, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the directed edge u→v.  Duplicate edges are ignored.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("dag: self-loop at %d", u)
	}
	for _, w := range g.out[u] {
		if w == v {
			return nil
		}
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	return nil
}

// Out returns u's successors (do not modify).
func (g *Graph) Out(u int) []int { return g.out[u] }

// In returns u's predecessors (do not modify).
func (g *Graph) In(u int) []int { return g.in[u] }

// TopoSort returns a topological order of the nodes, or an error if the
// graph contains a cycle (and is therefore not a DAG).
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, fmt.Errorf("dag: graph contains a cycle")
	}
	return order, nil
}

// Reachability returns, for each node u, the set of nodes reachable from
// u (including u itself).  O(V·E/64) via word-parallel set unions in
// reverse topological order.
func (g *Graph) Reachability() ([]bitset.Set, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	reach := make([]bitset.Set, g.n)
	for i := g.n - 1; i >= 0; i-- {
		u := order[i]
		r := bitset.New(g.n)
		r.Add(u)
		for _, v := range g.out[u] {
			r.UnionWith(reach[v])
		}
		reach[u] = r
	}
	return reach, nil
}

// Instance is a DAG-model problem instance: an explicit hypercontext
// catalog (shared with the General model) whose nodes are ordered by a
// precedence DAG.  The DAG model requires
//
//   - for each edge (h1,h2): h1(C) ⊂ h2(C) (strict) and cost(h1) ≤ cost(h2),
//   - init(h) = w, a constant, for every h,
//   - a top hypercontext with h(C) = C (so every computation is feasible).
type Instance struct {
	General *model.GeneralInstance
	Graph   *Graph
	// W is the uniform hyperreconfiguration cost init(h) = w.
	W model.Cost
}

// NewInstance validates all DAG-model side conditions and builds an
// instance.  The hypercontexts' Init fields are overwritten with W so
// the General-model machinery prices schedules consistently.
func NewInstance(gen *model.GeneralInstance, g *Graph, w model.Cost) (*Instance, error) {
	if gen == nil || g == nil {
		return nil, fmt.Errorf("dag: nil instance components")
	}
	if g.Len() != len(gen.Hypercontexts) {
		return nil, fmt.Errorf("dag: graph has %d nodes but catalog has %d hypercontexts", g.Len(), len(gen.Hypercontexts))
	}
	if w <= 0 {
		return nil, fmt.Errorf("dag: hyperreconfiguration cost w must be positive")
	}
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}
	for u := 0; u < g.Len(); u++ {
		hu := gen.Hypercontexts[u]
		for _, v := range g.out[u] {
			hv := gen.Hypercontexts[v]
			if !hu.Sat.IsSubsetOf(hv.Sat) || hu.Sat.Equal(hv.Sat) {
				return nil, fmt.Errorf("dag: edge (%s,%s) violates h1(C) ⊂ h2(C)", hu.Name, hv.Name)
			}
			if hu.PerStep > hv.PerStep {
				return nil, fmt.Errorf("dag: edge (%s,%s) violates cost monotonicity (%d > %d)", hu.Name, hv.Name, hu.PerStep, hv.PerStep)
			}
		}
	}
	full := bitset.Full(gen.NumContexts)
	hasTop := false
	for _, h := range gen.Hypercontexts {
		if h.Sat.Equal(full) {
			hasTop = true
			break
		}
	}
	if !hasTop {
		return nil, fmt.Errorf("dag: no top hypercontext with h(C) = C")
	}
	for k := range gen.Hypercontexts {
		gen.Hypercontexts[k].Init = w
	}
	return &Instance{General: gen, Graph: g, W: w}, nil
}

// MinimalSatisfiers returns c(H) for every context requirement c: the
// hypercontexts that satisfy c and are minimal with respect to the
// precedence relation (no predecessor, direct or transitive, also
// satisfies c).
func (ins *Instance) MinimalSatisfiers() ([][]int, error) {
	reach, err := ins.Graph.Reachability()
	if err != nil {
		return nil, err
	}
	nCtx := ins.General.NumContexts
	nH := ins.Graph.Len()
	out := make([][]int, nCtx)
	for c := 0; c < nCtx; c++ {
		var sat []int
		for h := 0; h < nH; h++ {
			if ins.General.Hypercontexts[h].Sat.Contains(c) {
				sat = append(sat, h)
			}
		}
		// h is minimal iff no other satisfier h' has h reachable from
		// h' (h' strictly precedes h in the DAG order).
		for _, h := range sat {
			minimal := true
			for _, h2 := range sat {
				if h2 != h && reach[h2].Contains(h) {
					minimal = false
					break
				}
			}
			if minimal {
				out[c] = append(out[c], h)
			}
		}
	}
	return out, nil
}

// Chain builds the common special case of a totally ordered hypercontext
// hierarchy: levels[k] describes level k, with level k's context set a
// strict subset of level k+1's.  Returns the instance over the given
// requirement sequence.
func Chain(numContexts int, levels []model.Hypercontext, seq []int, w model.Cost) (*Instance, error) {
	gen, err := model.NewGeneralInstance(numContexts, levels, seq)
	if err != nil {
		return nil, err
	}
	g := New(len(levels))
	for k := 0; k+1 < len(levels); k++ {
		if err := g.AddEdge(k, k+1); err != nil {
			return nil, err
		}
	}
	return NewInstance(gen, g, w)
}
