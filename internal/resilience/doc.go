// Package resilience holds the fault-tolerance primitives the solve
// pipeline leans on under pathological load: a per-solver circuit
// breaker (consecutive panics or timeouts trip the breaker so a broken
// or hopeless solver fails fast instead of occupying workers) and the
// shared failure-classification helpers the service layer uses to
// decide what counts as a breaker failure.
//
// The package is a leaf — standard library only — so any layer
// (solve, service, commands) can import it without cycles.  The
// companion package resilience/faultinject is the chaos-testing side:
// named injection sites threaded through the pipeline that tests (or
// the HYPERD_FAULTS environment knob) arm with panics, slowness,
// errors or allocation-budget exhaustion.
package resilience
