package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

const (
	// BreakerClosed passes every request (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits a single probe after the cooldown; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen fails every request fast until the cooldown elapses.
	BreakerOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker.  The zero value selects the defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 10s).
	Cooldown time.Duration
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker.  Closed it admits
// everything; Threshold consecutive failures open it; after Cooldown it
// admits exactly one half-open probe whose success closes it again and
// whose failure re-opens it for another cooldown.  Successes reset the
// consecutive-failure count.  All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed.  When it may not,
// retryAfter is how long until the breaker would next admit a probe
// (at least one clock tick, so a Retry-After header is never zero).
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerHalfOpen:
		if b.probing {
			return false, b.cfg.Cooldown
		}
		b.probing = true
		return true, 0
	default: // BreakerOpen
		remaining := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		// Cooldown elapsed: this request is the half-open probe.
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	}
}

// Success records a successful request, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure records a breaker-relevant failure (a panic or a timeout,
// not a user cancel).  A failed half-open probe re-opens immediately;
// in the closed state Threshold consecutive failures open the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch {
	case b.state == BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
		b.probing = false
	case b.state == BreakerClosed && b.consecutive >= b.cfg.Threshold:
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
	}
}

// Abandon records that an admitted request resolved without a health
// signal (a user cancel, say): in the half-open state the probe slot is
// released so the next request becomes the new probe.  In every other
// state it is a no-op — an abandoned request neither heals nor harms.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State reports the current state (open flips to half-open lazily at
// the next Allow, so a cooled-down open breaker still reports open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
