// Package faultinject is the chaos-testing side of the resilience
// subsystem: named injection sites threaded through the solve pipeline
// (solve.Run, the service worker, the packed frontier engine's step
// loop) that tests arm with panics, artificial slowness, injected
// errors, cancellation or allocation-budget exhaustion.
//
// A disarmed harness costs one atomic load per site visit, so the
// hooks stay compiled into production binaries; arming happens either
// programmatically (Set / Clear / Reset, used by the chaos test suite)
// or through the HYPERD_FAULTS environment knob parsed at process
// start:
//
//	HYPERD_FAULTS='service.worker=panic:1;mtswitch.step=sleep:50ms'
//
// The knob is a semicolon-separated list of site=spec pairs, where
// spec is one of
//
//	panic[:times]        panic at the site
//	error[:times]        return an injected error
//	cancel[:times]       return context.Canceled
//	sleep:dur[:times]    sleep dur (a time.ParseDuration string)
//	budget:bytes         clamp solve.Options.MaxFrontierBytes
//	crash[:skip]         SIGKILL the process at the site — no deferred
//	                     functions, no flushes: the real kill -9 shape.
//	                     The optional skip lets the first skip visits
//	                     through, so a crash can land mid-workload.
//
// and the optional trailing times bounds how often the fault fires
// (omitted = every visit).  Sites are plain strings; the canonical
// list lives with the call sites (grep for faultinject.Fire).
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what an armed site does when visited.
type Action struct {
	// Delay is slept before any other effect.
	Delay time.Duration
	// Panic panics with a descriptive value after the delay.
	Panic bool
	// Err is returned (after the delay) when non-nil.
	Err error
	// MaxFrontierBytes, when positive, clamps the solve budget at
	// sites that consult FrontierBudget (solve.Run).
	MaxFrontierBytes int64
	// Crash SIGKILLs the process at the site (after the delay and any
	// Skip visits): deferred functions do not run, buffers do not
	// flush — the crash-recovery test suite's kill -9.
	Crash bool
	// Skip lets the first Skip visits pass untouched before the fault
	// starts firing (only meaningful with Crash, where "times" cannot
	// bound anything — the first firing is the last).
	Skip int64
	// Times bounds how many visits fire the fault; 0 fires on every
	// visit.
	Times int64
}

// ErrInjected is the error injected by the "error" action.
var ErrInjected = errors.New("faultinject: injected error")

type site struct {
	action  Action
	fired   atomic.Int64 // visits that applied the fault
	skipped atomic.Int64 // visits let through by Action.Skip
}

var (
	armed atomic.Bool // fast-path gate: any site armed at all
	mu    sync.RWMutex
	sites = map[string]*site{}
)

// Enabled reports whether any site is armed.
func Enabled() bool { return armed.Load() }

// Set arms a site with an action, replacing any previous arming (and
// resetting its fire count).
func Set(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = &site{action: a}
	armed.Store(true)
}

// Clear disarms one site.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, name)
	armed.Store(len(sites) > 0)
}

// Reset disarms every site (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]*site{}
	armed.Store(false)
}

// Fired reports how many visits to the site applied its fault.
func Fired(name string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	if s, ok := sites[name]; ok {
		return s.fired.Load()
	}
	return 0
}

// lookup claims one firing of the site if it is armed and has firings
// left, returning the action to apply.
func lookup(name string) (Action, bool) {
	mu.RLock()
	s, ok := sites[name]
	mu.RUnlock()
	if !ok {
		return Action{}, false
	}
	if s.action.Skip > 0 && s.skipped.Add(1) <= s.action.Skip {
		return Action{}, false
	}
	if s.action.Times > 0 {
		if n := s.fired.Add(1); n > s.action.Times {
			s.fired.Add(-1)
			return Action{}, false
		}
	} else {
		s.fired.Add(1)
	}
	return s.action, true
}

// Fire visits a site: disarmed (the common case) it returns nil after
// one atomic load; armed it sleeps the action's delay, panics if the
// action says so, and returns the action's error.
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	a, ok := lookup(name)
	if !ok {
		return nil
	}
	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.Crash {
		crashSelf()
	}
	if a.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at site %q", name))
	}
	return a.Err
}

// crashSelf SIGKILLs the process: unlike panic or os.Exit, nothing
// downstream — deferred closes, WAL compaction, atexit flushes — gets
// to run, which is exactly what crash-recovery tests must survive.
func crashSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	// Kill delivery is asynchronous on some platforms; never return
	// from an injected crash.
	select {}
}

// FrontierBudget reports the byte budget armed at a site, if any.
// Unlike Fire it does not sleep or panic; budget arming composes with
// the site's other effects only through separate Set calls.
func FrontierBudget(name string) (int64, bool) {
	if !armed.Load() {
		return 0, false
	}
	a, ok := lookup(name)
	if !ok || a.MaxFrontierBytes <= 0 {
		return 0, false
	}
	return a.MaxFrontierBytes, true
}

// Load parses and arms a HYPERD_FAULTS-format spec.
func Load(spec string) error {
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, rest, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultinject: malformed fault %q (want site=spec)", pair)
		}
		a, err := parseAction(rest)
		if err != nil {
			return fmt.Errorf("faultinject: site %q: %w", name, err)
		}
		Set(name, a)
	}
	return nil
}

func parseAction(spec string) (Action, error) {
	parts := strings.Split(spec, ":")
	times := func(idx int) (int64, error) {
		if len(parts) <= idx {
			return 0, nil
		}
		return strconv.ParseInt(parts[idx], 10, 64)
	}
	var a Action
	var err error
	switch parts[0] {
	case "panic":
		a.Panic = true
		a.Times, err = times(1)
	case "error":
		a.Err = ErrInjected
		a.Times, err = times(1)
	case "cancel":
		a.Err = context.Canceled
		a.Times, err = times(1)
	case "sleep":
		if len(parts) < 2 {
			return a, fmt.Errorf("sleep needs a duration (sleep:50ms)")
		}
		a.Delay, err = time.ParseDuration(parts[1])
		if err == nil {
			a.Times, err = times(2)
		}
	case "budget":
		if len(parts) < 2 {
			return a, fmt.Errorf("budget needs a byte count (budget:4096)")
		}
		a.MaxFrontierBytes, err = strconv.ParseInt(parts[1], 10, 64)
	case "crash":
		a.Crash = true
		if len(parts) > 1 {
			a.Skip, err = strconv.ParseInt(parts[1], 10, 64)
			if err == nil && a.Skip < 0 {
				return a, fmt.Errorf("negative crash skip %d", a.Skip)
			}
		}
	default:
		return a, fmt.Errorf("unknown action %q (want panic, error, cancel, sleep, budget or crash)", parts[0])
	}
	if err != nil {
		return a, err
	}
	if a.Times < 0 {
		return a, fmt.Errorf("negative fire count %d", a.Times)
	}
	return a, nil
}

// EnvKnob is the environment variable the harness arms itself from at
// process start.
const EnvKnob = "HYPERD_FAULTS"

func init() {
	if spec := os.Getenv(EnvKnob); spec != "" {
		if err := Load(spec); err != nil {
			panic(err)
		}
	}
}
