// Package crashharness kills hyperd-shaped server processes with real
// SIGKILLs and restarts them on the same data directory, so the
// crash-recovery invariants are proven against actual process death —
// no deferred functions, no flushes — rather than an in-process
// simulation.
//
// The harness uses the helper-process pattern: the test binary re-execs
// itself with CRASHHARNESS_CHILD set, and the child's TestMain calls
// ChildMain, which serves a durable service.Server over HTTP until it
// is killed (or crashes itself through a HYPERD_FAULTS crash action it
// inherited from the parent).
package crashharness

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"repro/internal/service"
)

// decodeJSON decodes a 200 response body.
func decodeJSON(resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// childEnv marks a re-exec as the server child.
const childEnv = "CRASHHARNESS_CHILD"

// IsChild reports whether this process is a harness re-exec; TestMain
// must call ChildMain instead of running tests when it is.
func IsChild() bool { return os.Getenv(childEnv) == "1" }

// ChildMain serves a durable node until the process dies.  It never
// returns.
func ChildMain() {
	srv, err := service.Open(service.Config{
		Workers: 2,
		DataDir: os.Getenv("CRASHHARNESS_DATA_DIR"),
		NodeID:  "crash-child",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashharness child: %v\n", err)
		os.Exit(1)
	}
	if err := http.ListenAndServe(os.Getenv("CRASHHARNESS_ADDR"), srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "crashharness child: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Harness manages one server child process.
type Harness struct {
	// Binary is the executable to re-exec (os.Args[0] in tests).
	Binary string
	// DataDir is the child's durable data directory.
	DataDir string
	// Addr is the child's listen address; FreeAddr picks one.
	Addr string
	// Faults, when set, becomes the child's HYPERD_FAULTS (e.g.
	// "service.journal=crash:10" to die at the tenth journal append).
	Faults string

	cmd *exec.Cmd
}

// FreeAddr reserves and releases a loopback port for a child.
func FreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// URL is the child's base URL.
func (h *Harness) URL() string { return "http://" + h.Addr }

// Start launches the child and waits for it to report ready (recovery
// replay included: /v1/healthz state must leave "recovering").
func (h *Harness) Start(timeout time.Duration) error {
	cmd := exec.Command(h.Binary)
	cmd.Env = append(os.Environ(),
		childEnv+"=1",
		"CRASHHARNESS_DATA_DIR="+h.DataDir,
		"CRASHHARNESS_ADDR="+h.Addr,
		"HYPERD_FAULTS="+h.Faults,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	h.cmd = cmd
	return h.WaitReady(timeout)
}

// WaitReady polls the child's health document until state "ready".
func (h *Harness) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		st, err := h.health()
		if err == nil && st.State == "ready" {
			return nil
		}
		if err == nil {
			last = fmt.Errorf("state %q", st.State)
		} else {
			last = err
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("crashharness: child %s not ready in %s: %w", h.Addr, timeout, last)
}

func (h *Harness) health() (*service.HealthStatus, error) {
	resp, err := http.Get(h.URL() + "/v1/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.HealthStatus
	if err := decodeJSON(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Kill9 SIGKILLs the child and reaps it.
func (h *Harness) Kill9() error {
	if h.cmd == nil || h.cmd.Process == nil {
		return fmt.Errorf("crashharness: no child to kill")
	}
	if err := h.cmd.Process.Kill(); err != nil {
		return err
	}
	h.cmd.Wait() // the kill is the expected exit
	h.cmd = nil
	return nil
}

// WaitExit reaps a child expected to die on its own (a crash action).
func (h *Harness) WaitExit(timeout time.Duration) error {
	if h.cmd == nil {
		return fmt.Errorf("crashharness: no child running")
	}
	done := make(chan error, 1)
	go func() { done <- h.cmd.Wait() }()
	select {
	case <-done:
		h.cmd = nil
		return nil
	case <-time.After(timeout):
		h.cmd.Process.Kill()
		<-done
		h.cmd = nil
		return fmt.Errorf("crashharness: child outlived its crash action by %s", timeout)
	}
}

// Stop kills a still-running child (test cleanup; ignores a child that
// already exited).
func (h *Harness) Stop() {
	if h.cmd != nil && h.cmd.Process != nil {
		h.cmd.Process.Kill()
		h.cmd.Wait()
		h.cmd = nil
	}
}
