package crashharness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestMain routes harness re-execs into the server child instead of
// the test suite.
func TestMain(m *testing.M) {
	if IsChild() {
		ChildMain()
	}
	os.Exit(m.Run())
}

// oracleRequest is the reference instance every kill -9 round solves.
func oracleRequest() *service.SolveRequest {
	return &service.SolveRequest{
		Solver: "exact",
		Instance: &service.WireInstance{
			Tasks: []service.WireTask{{Name: "alpha", Local: 3, V: 2}, {Name: "beta", Local: 2, V: 1}},
			Reqs: [][]string{
				{"100", "10"},
				{"010", "11"},
				{"011", "01"},
				{"001", "00"},
			},
		},
	}
}

// loadRequest is the i-th distinct background instance (one extra
// demand row keyed off i, so each submission is a fresh solve).
func loadRequest(i int) *service.SolveRequest {
	req := oracleRequest()
	req.Instance.Reqs = append(req.Instance.Reqs,
		[]string{fmt.Sprintf("%03b", 1+i%6), fmt.Sprintf("%02b", 1+i%3)})
	return req
}

func postJSON(t *testing.T, url string, body, out any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad body %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad body %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// solveWait submits a request and waits out its job.
func solveWait(t *testing.T, base string, req *service.SolveRequest) *service.JobStatus {
	t.Helper()
	var st service.JobStatus
	code, raw := postJSON(t, base+"/v1/jobs", req, &st)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	if getJSON(t, base+"/v1/jobs/"+st.ID+"/wait", &st) != http.StatusOK {
		t.Fatalf("wait on %s failed", st.ID)
	}
	if st.State != "done" {
		t.Fatalf("job %s finished %s (%s)", st.ID, st.State, st.Error)
	}
	return &st
}

func startHarness(t *testing.T, dir, faults string) *Harness {
	t.Helper()
	addr, err := FreeAddr()
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{Binary: os.Args[0], DataDir: dir, Addr: addr, Faults: faults}
	if err := h.Start(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return h
}

// TestKill9Recovery is the tentpole invariant against a real SIGKILL:
// a node is killed -9 under load, restarted on the same data dir, and
// must (a) serve journaled completions from the warm cache with
// byte-identical schedules, (b) revive the streaming session with its
// full trace, and (c) report recovery through /metrics.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	h := startHarness(t, dir, "")

	// Oracle pass on the uninterrupted node: the pre-crash answer is
	// the reference the recovered node must match byte for byte.
	oracle := solveWait(t, h.URL(), oracleRequest())
	if oracle.Result == nil || len(oracle.Result.Schedule) == 0 {
		t.Fatal("oracle solve returned no schedule")
	}

	// A streaming session with a couple of journaled batches.
	var sess service.SessionStatus
	code, raw := postJSON(t, h.URL()+"/v1/sessions", &service.SessionRequest{
		Solver: "exact",
		Instance: &service.WireInstance{
			Tasks: []service.WireTask{{Name: "alpha", Local: 3, V: 2}, {Name: "beta", Local: 2, V: 1}},
			Reqs:  [][]string{{"100", "10"}, {"010", "11"}},
		},
	}, &sess)
	if code != http.StatusOK && code != http.StatusCreated {
		t.Fatalf("session create: status %d: %s", code, raw)
	}
	if code, raw = postJSON(t, h.URL()+"/v1/sessions/"+sess.ID+"/steps", &service.SessionSteps{
		Reqs: [][]string{{"011", "01"}, {"001", "00"}},
	}, &sess); code != http.StatusOK {
		t.Fatalf("session steps: status %d: %s", code, raw)
	}
	if sess.Result == nil {
		t.Fatal("session has no result before the crash")
	}
	wantSteps, wantCost := sess.Steps, sess.Result.Cost

	// Load: distinct background submissions in flight when the kill
	// lands (some solved, some queued — recovery must sort both out).
	for i := 0; i < 6; i++ {
		var st service.JobStatus
		postJSON(t, h.URL()+"/v1/jobs", loadRequest(i), &st)
	}
	if err := h.Kill9(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir.
	h2 := startHarness(t, dir, "")

	// (a) The journaled completion answers warm and byte-identical.
	recovered := solveWait(t, h2.URL(), oracleRequest())
	if !recovered.CacheHit {
		t.Fatal("journaled completion re-solved after kill -9 (no warm cache hit)")
	}
	if !bytes.Equal(recovered.Result.Schedule, oracle.Result.Schedule) {
		t.Fatalf("recovered schedule differs from pre-crash oracle:\n%s\nvs\n%s",
			recovered.Result.Schedule, oracle.Result.Schedule)
	}

	// (b) The session survived with trace and cost intact.
	var revived service.SessionStatus
	if code := getJSON(t, h2.URL()+"/v1/sessions/"+sess.ID, &revived); code != http.StatusOK {
		t.Fatalf("revived session GET: status %d", code)
	}
	if revived.Steps != wantSteps {
		t.Fatalf("revived session has %d steps, want %d", revived.Steps, wantSteps)
	}
	if revived.Result == nil || revived.Result.Cost != wantCost {
		t.Fatalf("revived session result %+v, want cost %d", revived.Result, wantCost)
	}

	// (c) Recovery is visible on /metrics.
	resp, err := http.Get(h2.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hyperd_wal_replayed_records_total",
		"hyperd_recovery_sessions_revived 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics after recovery missing %q:\n%s", want, metrics)
		}
	}
}

// TestCrashActionKillsMidJournal arms the crash fault action inside the
// child (SIGKILL at the Nth journal append — mid-flight by
// construction) and checks the next boot still recovers: the crash
// action is how chaos runs place kills deterministically.
func TestCrashActionKillsMidJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	// Let three journal appends through (job 1's submit+done, job 2's
	// submit), then die on the fourth — job 2's completion record.
	h := startHarness(t, dir, "service.journal=crash:3")

	first := solveWait(t, h.URL(), loadRequest(0))
	if first.Result == nil {
		t.Fatal("first solve returned no result")
	}
	// The second job's completion append crashes the child; drive until
	// the connection dies.
	for i := 1; i < 20; i++ {
		var st service.JobStatus
		data, _ := json.Marshal(loadRequest(i))
		resp, err := http.Post(h.URL()+"/v1/jobs", "application/json", bytes.NewReader(data))
		if err != nil {
			break // child died mid-request: the crash landed
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		json.Unmarshal(raw, &st)
		if st.ID != "" {
			// The wait may die with the child mid-poll — that's the
			// crash landing, not a test failure.
			if resp, err := http.Get(h.URL() + "/v1/jobs/" + st.ID + "/wait"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			} else {
				break
			}
		}
	}
	if err := h.WaitExit(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	h2 := startHarness(t, dir, "")
	// Job 1 completed and journaled before the crash window: warm hit.
	redo := solveWait(t, h2.URL(), loadRequest(0))
	if !redo.CacheHit {
		t.Fatal("pre-crash completion re-solved after the injected crash")
	}
	if redo.Result.Cost != first.Result.Cost {
		t.Fatalf("recovered cost %d, pre-crash %d", redo.Result.Cost, first.Result.Cost)
	}
}
