package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsFree(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("harness armed after Reset")
	}
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("a", Action{Err: ErrInjected})
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire = %v, want ErrInjected", err)
	}
	if err := Fire("b"); err != nil {
		t.Fatalf("unarmed sibling site fired: %v", err)
	}
	if got := Fired("a"); got != 1 {
		t.Fatalf("Fired(a) = %d, want 1", got)
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Action{Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("armed panic site did not panic")
		}
	}()
	Fire("p")
}

func TestTimesBoundsFirings(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("once", Action{Err: ErrInjected, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("once"); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: got %v, want ErrInjected", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := Fire("once"); err != nil {
			t.Fatalf("exhausted site still fired: %v", err)
		}
	}
	if got := Fired("once"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestTimesIsConcurrencySafe(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("race", Action{Err: ErrInjected, Times: 10})
	var hits int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("race") != nil {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 10 {
		t.Fatalf("fault fired %d times, want exactly 10", hits)
	}
}

func TestFrontierBudget(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("solve.options", Action{MaxFrontierBytes: 4096})
	b, ok := FrontierBudget("solve.options")
	if !ok || b != 4096 {
		t.Fatalf("FrontierBudget = %d, %v; want 4096, true", b, ok)
	}
	if _, ok := FrontierBudget("other"); ok {
		t.Fatal("unarmed site reported a budget")
	}
}

func TestLoadEnvFormat(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	err := Load("service.worker=panic:1; mtswitch.step=sleep:5ms ;x=cancel;y=budget:1024;z=error:3")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := Fire("x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel site returned %v", err)
	}
	if b, ok := FrontierBudget("y"); !ok || b != 1024 {
		t.Fatalf("budget site = %d, %v", b, ok)
	}
	start := time.Now()
	if err := Fire("mtswitch.step"); err != nil {
		t.Fatalf("sleep site returned %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("sleep site did not sleep")
	}
}

func TestLoadRejectsMalformedSpecs(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, bad := range []string{
		"nosite", "a=warp", "a=sleep", "a=budget", "a=panic:-1", "a=sleep:xyz", "=panic",
	} {
		if err := Load(bad); err == nil {
			t.Errorf("Load(%q) accepted a malformed spec", bad)
		}
	}
}
