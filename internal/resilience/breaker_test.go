package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Failure()
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 failures, want open", b.State())
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if retry <= 0 || retry > time.Minute {
		t.Fatalf("retryAfter = %v, want (0, 1m]", retry)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (success reset the run of failures)", b.State())
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(time.Minute + time.Second)
	ok, _ := b.Allow()
	if !ok {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A second request while the probe is in flight is refused.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	clk.advance(2 * time.Minute)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}
	clk.advance(2 * time.Minute)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker refused the second probe after the new cooldown")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _ := newTestBreaker(4, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				if ok, _ := b.Allow(); ok {
					if k%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion beyond absence of races and a consistent final state.
	_ = b.State()
}

func TestBreakerAbandonReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure() // open
	clk.advance(2 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	// While the probe is in flight everything else is refused.
	if ok, _ := b.Allow(); ok {
		t.Fatal("second request admitted while probe in flight")
	}
	// The probe resolves without a health signal (canceled): the slot
	// frees and the very next request becomes the new probe.
	b.Abandon()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after abandon = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("abandoned probe slot not released")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}
