package solve

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/resilience/faultinject"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]Solver{}
)

// Register makes a solver resolvable by name.  It panics on an empty
// name or a duplicate registration (both are programmer errors), like
// database/sql.Register.
func Register(s Solver) {
	if s == nil || s.Name() == "" {
		panic("solve: Register with nil solver or empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("solve: duplicate solver registration %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Get resolves a registered solver by name.
func Get(name string) (Solver, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, &UnknownSolverError{Name: name, Registered: namesLocked()}
	}
	return s, nil
}

// Names lists the registered solvers in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// funcSolver adapts a plain function into a Solver.
type funcSolver struct {
	name string
	caps Capabilities
	fn   func(ctx context.Context, inst *Instance, opts Options) (*Solution, error)
}

func (s *funcSolver) Name() string               { return s.name }
func (s *funcSolver) Capabilities() Capabilities { return s.caps }
func (s *funcSolver) Solve(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
	return s.fn(ctx, inst, opts)
}

// NewSolver builds a Solver from a function; the common case for
// registry adapters.
func NewSolver(name string, caps Capabilities, fn func(ctx context.Context, inst *Instance, opts Options) (*Solution, error)) Solver {
	return &funcSolver{name: name, caps: caps, fn: fn}
}

// Run resolves a solver by name and executes it with uniform
// housekeeping: options validation, capability checking, the
// Options.Timeout deadline, Stats.WallTime measurement, and panic
// isolation — a panicking solver fails only its own run, surfaced as a
// *PanicError, never the calling goroutine.
func Run(ctx context.Context, name string, inst *Instance, opts Options) (*Solution, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	if inst == nil {
		return nil, fmt.Errorf("solve: nil instance")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !s.Capabilities().Supports(inst.Kind()) {
		return nil, fmt.Errorf("solve: solver %q does not support %v instances (supports %v)",
			name, inst.Kind(), s.Capabilities().Kinds)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	// Chaos-harness sites: "solve.run" injects slowness/errors/panics
	// into every registry-routed solve; "solve.options" clamps the
	// frontier byte budget so budget exhaustion is injectable without
	// client cooperation.
	if faultinject.Enabled() {
		if err := faultinject.Fire("solve.run"); err != nil {
			return nil, err
		}
		if b, ok := faultinject.FrontierBudget("solve.options"); ok {
			if opts.MaxFrontierBytes == 0 || opts.MaxFrontierBytes > b {
				opts.MaxFrontierBytes = b
			}
		}
	}
	start := time.Now()
	sol, err := protectedSolve(ctx, s, inst, opts)
	if err != nil {
		return nil, err
	}
	if sol == nil {
		return nil, fmt.Errorf("solve: solver %q returned no solution", name)
	}
	sol.Kind = inst.Kind()
	sol.Stats.WallTime = time.Since(start)
	return sol, nil
}

// protectedSolve invokes the solver under recover, converting a panic
// anywhere in its call tree into a *PanicError.
func protectedSolve(ctx context.Context, s Solver, inst *Instance, opts Options) (sol *Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return s.Solve(ctx, inst, opts)
}
