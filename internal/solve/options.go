package solve

import (
	"fmt"
	"time"
)

// Options are the uniform solver knobs, replacing the former
// mtswitch.Config, ga.Config and ga.AnnealConfig.  The zero value
// selects validated per-solver defaults; Validate rejects values that
// the old configs silently misbehaved on (negative beam caps,
// negative populations, out-of-range rates).  Fields a given solver
// has no use for are ignored.
type Options struct {
	// Timeout, when positive, bounds the solve's wall time; solve.Run
	// derives a context deadline from it.  0 means no deadline.
	Timeout time.Duration

	// MaxStates caps the per-step state frontier of the exact
	// multi-task DP.  While the frontier stays within the cap the
	// search is exhaustive; beyond it the solver degrades to a beam
	// search and Stats.Truncated reports the degradation.  0 selects
	// the solver's default.
	MaxStates int
	// MaxCandidates caps, per task and step, how many canonical
	// hypercontext candidates an install may choose from.  0 means
	// unlimited (required for exactness).
	MaxCandidates int
	// MaxFrontierBytes, when positive, budgets the memory of the exact
	// multi-task DP's packed frontier arena.  The frontier engine
	// derives a beam cap from the budget and additionally hard-caps its
	// per-step successor tables, so an adversarial instance degrades to
	// a beam search (Stats.Degraded, and therefore Stats.Truncated,
	// report it) instead of exhausting memory.  SolvePrivateGlobal
	// passes the budget into every window solve, and the GA clamps its
	// population memory to it.  0 means unbudgeted.
	MaxFrontierBytes int64
	// DisablePruning turns off the exact multi-task DP's pruned-search
	// layer (instance preprocessing, dominance elimination and
	// incumbent lower-bound cutoffs) and restores the plain exhaustive
	// frontier expansion.  Pruning never changes the cost of an
	// untruncated run — only which of several equal-cost schedules is
	// returned and how many states are expanded — so the knob exists
	// for baselining and for tests that pin the unpruned engine's
	// exact state counts.
	DisablePruning bool
	// Workers bounds the goroutines of parallel solver stages (GA
	// fitness evaluation, private-global window sweep).  0 means
	// GOMAXPROCS.
	Workers int
	// Seed drives deterministic random sources (default 1).
	Seed int64

	// Pop is the GA population size (default 80).
	Pop int
	// Generations to evolve (default 300).
	Generations int
	// MutRate is the per-bit mutation probability (0 → adaptive
	// 2/(m·n+1)).
	MutRate float64
	// CrossRate is the probability a child is produced by crossover
	// rather than cloning (default 0.9).
	CrossRate float64
	// TournamentK is the tournament size (default 3).
	TournamentK int
	// Elites survive unchanged each generation (default 2, capped at
	// Pop).
	Elites int
	// NoHeuristicSeeds disables injecting the aligned-DP, initial-only
	// and every-step masks into the initial GA population.
	NoHeuristicSeeds bool
	// Crossover selects the GA recombination operator.
	Crossover CrossoverKind

	// Iterations of the annealing loop (default 20000).
	Iterations int
	// InitialTemp is the annealing start temperature in cost units
	// (0 → adaptive: 1/10 of the seed schedule's cost).
	InitialTemp float64
	// Cooling is the geometric cooling factor per iteration (0 →
	// decay to 1e-3 of the initial temperature over the run).
	Cooling float64

	// IntervalK is the period of the fixed-interval baseline solver.
	IntervalK int

	// Partitions is the window count of the partitioned MT-Switch solver
	// ("exact-partitioned"): 0 selects an automatic k from the instance
	// size, 1 forces a monolithic solve, and k ≥ 2 splits the step axis
	// into k windows.  Other solvers ignore it.
	Partitions int
	// MaxCutColumns caps the weighted column cut the partition planner
	// may accept: boundaries are dropped (merging adjacent windows)
	// until the cut fits.  0 means uncapped.
	MaxCutColumns int
}

// Validate rejects option values no solver can meaningfully honor.
// Zero values are always valid (they select defaults).
func (o Options) Validate() error {
	if o.Timeout < 0 {
		return fmt.Errorf("solve: negative timeout %v", o.Timeout)
	}
	if o.MaxStates < 0 {
		return fmt.Errorf("solve: negative beam cap MaxStates=%d", o.MaxStates)
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("solve: negative candidate cap MaxCandidates=%d", o.MaxCandidates)
	}
	if o.MaxFrontierBytes < 0 {
		return fmt.Errorf("solve: negative frontier byte budget %d", o.MaxFrontierBytes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("solve: negative worker count %d", o.Workers)
	}
	if o.Pop < 0 {
		return fmt.Errorf("solve: negative population %d", o.Pop)
	}
	if o.Generations < 0 {
		return fmt.Errorf("solve: negative generation count %d", o.Generations)
	}
	if o.MutRate < 0 || o.MutRate > 1 {
		return fmt.Errorf("solve: mutation rate %v outside [0,1]", o.MutRate)
	}
	if o.CrossRate < 0 || o.CrossRate > 1 {
		return fmt.Errorf("solve: crossover rate %v outside [0,1]", o.CrossRate)
	}
	if o.TournamentK < 0 {
		return fmt.Errorf("solve: negative tournament size %d", o.TournamentK)
	}
	if o.Elites < 0 {
		return fmt.Errorf("solve: negative elite count %d", o.Elites)
	}
	if o.Crossover < CrossUniform || o.Crossover > CrossTaskRow {
		return fmt.Errorf("solve: unknown crossover kind %d", int(o.Crossover))
	}
	if o.Iterations < 0 {
		return fmt.Errorf("solve: negative iteration count %d", o.Iterations)
	}
	if o.InitialTemp < 0 {
		return fmt.Errorf("solve: negative initial temperature %v", o.InitialTemp)
	}
	if o.Cooling < 0 || o.Cooling >= 1 {
		if o.Cooling != 0 {
			return fmt.Errorf("solve: cooling factor %v outside (0,1)", o.Cooling)
		}
	}
	if o.IntervalK < 0 {
		return fmt.Errorf("solve: negative interval %d", o.IntervalK)
	}
	if o.Partitions < 0 {
		return fmt.Errorf("solve: negative partition count %d", o.Partitions)
	}
	if o.MaxCutColumns < 0 {
		return fmt.Errorf("solve: negative cut-column cap %d", o.MaxCutColumns)
	}
	return nil
}

// CrossoverKind selects the GA's recombination operator.
type CrossoverKind int

const (
	// CrossUniform draws every (task, step) gene independently from one
	// of the two parents — the classic disruptive operator.
	CrossUniform CrossoverKind = iota
	// CrossTwoPoint exchanges one contiguous gene range, preserving
	// runs of hyperreconfiguration decisions.
	CrossTwoPoint
	// CrossTaskRow inherits each task's entire row from one parent —
	// schedules recombine along the problem's natural task structure.
	CrossTaskRow
)

// String implements fmt.Stringer.
func (c CrossoverKind) String() string {
	switch c {
	case CrossUniform:
		return "uniform"
	case CrossTwoPoint:
		return "two-point"
	case CrossTaskRow:
		return "task-row"
	default:
		return fmt.Sprintf("CrossoverKind(%d)", int(c))
	}
}
