package solve

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var hit [100]int32
		p.Do(len(hit), func(task int) {
			atomic.AddInt32(&hit[task], 1)
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	p.Close()
}

func TestPoolReusableAcrossDispatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total int64
	for round := 0; round < 10; round++ {
		p.Do(17, func(int) { atomic.AddInt64(&total, 1) })
	}
	if total != 170 {
		t.Fatalf("ran %d tasks, want 170", total)
	}
}

func TestPoolZeroTasksIsNoop(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Do(0, func(int) { t.Fatal("task ran") })
	p.Do(-1, func(int) { t.Fatal("task ran") })
}

func TestPoolDoAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Do(4, func(int) {})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Do on closed pool did not panic")
		}
	}()
	p.Do(1, func(int) {})
}

func TestPoolCloseWithoutStart(t *testing.T) {
	p := NewPool(8)
	p.Close() // workers never started; must not hang or panic
}

// TestPoolPanicIsolation is the regression test for the worker-leak /
// deadlock bug: a panicking task must not kill its worker goroutine or
// strand the waiters on the dispatch barrier.  Do must return a typed
// *PanicError, the remaining tasks must still run, and the pool must
// stay fully usable for subsequent dispatches — at Workers==1 (inline
// path) and Workers==8 (parallel path) alike.
func TestPoolPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p := NewPool(workers)
		var ran int32
		err := p.Do(32, func(task int) {
			atomic.AddInt32(&ran, 1)
			if task == 7 {
				panic("boom in task 7")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Do returned %v, want *PanicError", workers, err)
		}
		if got := pe.Value; got != "boom in task 7" {
			t.Errorf("workers=%d: PanicError.Value = %v, want boom in task 7", workers, got)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError.Stack is empty", workers)
		}
		if !strings.Contains(pe.Error(), "solver panicked") {
			t.Errorf("workers=%d: Error() = %q", workers, pe.Error())
		}
		if ran != 32 {
			t.Errorf("workers=%d: %d tasks ran, want all 32", workers, ran)
		}
		// The pool must remain reusable: every worker survived the panic.
		for round := 0; round < 3; round++ {
			var ok int32
			if err := p.Do(16, func(int) { atomic.AddInt32(&ok, 1) }); err != nil {
				t.Fatalf("workers=%d: Do after panic returned %v", workers, err)
			}
			if ok != 16 {
				t.Fatalf("workers=%d: post-panic dispatch ran %d/16 tasks", workers, ok)
			}
		}
		p.Close() // must not hang: no worker leaked
	}
}

// TestPoolPanicFirstWins pins that concurrent panics surface exactly
// one *PanicError rather than corrupting the dispatch state.
func TestPoolPanicFirstWins(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	err := p.Do(64, func(task int) { panic(task) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do returned %v, want *PanicError", err)
	}
	if _, ok := pe.Value.(int); !ok {
		t.Fatalf("PanicError.Value = %#v, want an int task id", pe.Value)
	}
}
