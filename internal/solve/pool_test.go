package solve

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var hit [100]int32
		p.Do(len(hit), func(task int) {
			atomic.AddInt32(&hit[task], 1)
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	p.Close()
}

func TestPoolReusableAcrossDispatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total int64
	for round := 0; round < 10; round++ {
		p.Do(17, func(int) { atomic.AddInt64(&total, 1) })
	}
	if total != 170 {
		t.Fatalf("ran %d tasks, want 170", total)
	}
}

func TestPoolZeroTasksIsNoop(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Do(0, func(int) { t.Fatal("task ran") })
	p.Do(-1, func(int) { t.Fatal("task ran") })
}

func TestPoolDoAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Do(4, func(int) {})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Do on closed pool did not panic")
		}
	}()
	p.Do(1, func(int) {})
}

func TestPoolCloseWithoutStart(t *testing.T) {
	p := NewPool(8)
	p.Close() // workers never started; must not hang or panic
}
