package solve

import (
	"fmt"
	"strings"
)

// UnknownSolverError reports a registry lookup for a name nobody
// registered.  It carries the registered names so callers (CLIs, the
// solve service) can show the user what would have worked; match it
// with errors.As.
type UnknownSolverError struct {
	// Name is the solver name that failed to resolve.
	Name string
	// Registered lists the registered solver names in sorted order.
	Registered []string
}

// Error implements error.
func (e *UnknownSolverError) Error() string {
	return fmt.Sprintf("solve: unknown solver %q (registered: %s)",
		e.Name, strings.Join(e.Registered, ", "))
}
