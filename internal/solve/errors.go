package solve

import (
	"fmt"
	"strings"
)

// UnknownSolverError reports a registry lookup for a name nobody
// registered.  It carries the registered names so callers (CLIs, the
// solve service) can show the user what would have worked; match it
// with errors.As.
type UnknownSolverError struct {
	// Name is the solver name that failed to resolve.
	Name string
	// Registered lists the registered solver names in sorted order.
	Registered []string
}

// Error implements error.
func (e *UnknownSolverError) Error() string {
	return fmt.Sprintf("solve: unknown solver %q (registered: %s)",
		e.Name, strings.Join(e.Registered, ", "))
}

// PanicError is a panic recovered inside the solve pipeline (a Pool
// task or a registered solver's Solve call) converted into an error:
// the panic fails only the job that raised it, never the worker
// goroutine that happened to run it.  Match it with errors.As; the
// service layer counts these per solver and feeds its circuit breaker
// with them.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack),
	// captured at recovery.
	Stack []byte
}

// Error implements error.  The stack is not included — it is for logs
// and debugging, not for wire-format error strings.
func (e *PanicError) Error() string {
	return fmt.Sprintf("solve: solver panicked: %v", e.Value)
}
