package solve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/model"
)

func TestIncumbentMonotone(t *testing.T) {
	b := NewIncumbent()
	if _, ok := b.Best(); ok {
		t.Fatal("empty board reported a bound")
	}
	if !b.Publish(10) {
		t.Fatal("first publish did not tighten")
	}
	if b.Publish(10) || b.Publish(12) {
		t.Fatal("equal/looser publish reported a tightening")
	}
	if !b.Publish(7) {
		t.Fatal("tighter publish did not tighten")
	}
	if c, ok := b.Best(); !ok || c != 7 {
		t.Fatalf("board holds %d, want 7", c)
	}
	if b.Publish(-1) {
		t.Fatal("negative cost accepted")
	}
	// A nil board swallows everything (solvers run detached).
	var nb *Incumbent
	if nb.Publish(1) {
		t.Fatal("nil board accepted a publish")
	}
	if _, ok := nb.Best(); ok {
		t.Fatal("nil board reported a bound")
	}
}

// TestIncumbentConcurrent hammers the CAS loop: the board must
// converge to the global minimum no matter the interleaving.
func TestIncumbentConcurrent(t *testing.T) {
	b := NewIncumbent()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Publish(model.Cost(100 + (i*7+g*13)%900))
			}
		}()
	}
	wg.Wait()
	if c, ok := b.Best(); !ok || c != 100 {
		t.Fatalf("board converged to %d, want 100", c)
	}
}

func TestIncumbentContext(t *testing.T) {
	if IncumbentFrom(context.Background()) != nil {
		t.Fatal("bare context carries a board")
	}
	b := NewIncumbent()
	ctx := WithIncumbent(context.Background(), b)
	if IncumbentFrom(ctx) != b {
		t.Fatal("attached board not returned")
	}
	// Detaching shadows the board for sub-solves whose costs are not
	// valid bounds for the enclosing instance (partition windows).
	if got := IncumbentFrom(DetachIncumbent(ctx)); got != nil {
		t.Fatalf("detached context still carries %v", got)
	}
	// Detach on a board-free context is a no-op.
	if DetachIncumbent(context.Background()) != context.Background() {
		t.Fatal("detach allocated on a board-free context")
	}
}
