package solve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring of the error, "" for valid
	}{
		{"zero", Options{}, ""},
		{"typical", Options{Timeout: time.Second, MaxStates: 3000, MaxCandidates: 4,
			Workers: 2, Seed: 7, Pop: 80, Generations: 300, MutRate: 0.01, CrossRate: 0.9,
			TournamentK: 3, Elites: 2, Crossover: CrossTaskRow, Iterations: 20000,
			InitialTemp: 10, Cooling: 0.999, IntervalK: 4}, ""},
		{"negative timeout", Options{Timeout: -time.Second}, "negative timeout"},
		{"negative beam cap", Options{MaxStates: -1}, "MaxStates"},
		{"negative candidate cap", Options{MaxCandidates: -3}, "MaxCandidates"},
		{"negative workers", Options{Workers: -2}, "worker"},
		{"negative population", Options{Pop: -80}, "population"},
		{"negative generations", Options{Generations: -1}, "generation"},
		{"mutation rate below 0", Options{MutRate: -0.1}, "mutation rate"},
		{"mutation rate above 1", Options{MutRate: 1.5}, "mutation rate"},
		{"crossover rate above 1", Options{CrossRate: 2}, "crossover rate"},
		{"negative tournament", Options{TournamentK: -1}, "tournament"},
		{"negative elites", Options{Elites: -1}, "elite"},
		{"unknown crossover", Options{Crossover: CrossoverKind(99)}, "crossover kind"},
		{"negative crossover kind", Options{Crossover: CrossoverKind(-1)}, "crossover kind"},
		{"negative iterations", Options{Iterations: -1}, "iteration"},
		{"negative temperature", Options{InitialTemp: -4}, "temperature"},
		{"cooling at 1", Options{Cooling: 1}, "cooling"},
		{"cooling above 1", Options{Cooling: 1.5}, "cooling"},
		{"negative cooling", Options{Cooling: -0.5}, "cooling"},
		{"negative interval", Options{IntervalK: -2}, "interval"},
	}
	for _, tc := range cases {
		err := tc.o.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckpoint(t *testing.T) {
	if err := Checkpoint(nil); err != nil {
		t.Fatalf("nil context cancelled: %v", err)
	}
	if err := Checkpoint(context.Background()); err != nil {
		t.Fatalf("background context cancelled: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Checkpoint(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context reported %v, want context.Canceled", err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindSwitch: "switch", KindGeneral: "general", KindDAG: "dag",
		KindMTSwitch: "mtswitch", KindMTDAG: "mtdag", Kind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestCrossoverKindString(t *testing.T) {
	want := map[CrossoverKind]string{
		CrossUniform: "uniform", CrossTwoPoint: "two-point", CrossTaskRow: "task-row",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("CrossoverKind(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if CrossoverKind(42).String() == "" {
		t.Error("unknown crossover kind should still render")
	}
}

func TestCapabilitiesSupports(t *testing.T) {
	c := Capabilities{Kinds: []Kind{KindSwitch, KindMTSwitch}}
	if !c.Supports(KindSwitch) || !c.Supports(KindMTSwitch) {
		t.Fatal("declared kinds not supported")
	}
	if c.Supports(KindDAG) || c.Supports(KindMTDAG) {
		t.Fatal("undeclared kind reported as supported")
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{StatesExpanded: 1, DedupHits: 2, CandidatesPruned: 3, Evaluations: 4}
	s.Add(Stats{StatesExpanded: 10, DedupHits: 20, CandidatesPruned: 30, Evaluations: 40, Truncated: true})
	if s.StatesExpanded != 11 || s.DedupHits != 22 || s.CandidatesPruned != 33 || s.Evaluations != 44 {
		t.Fatalf("counters not accumulated: %+v", s)
	}
	if !s.Truncated {
		t.Fatal("truncation flag not sticky")
	}
}

// testInstance builds a minimal Switch instance for registry tests.
func testInstance(t *testing.T) *Instance {
	t.Helper()
	rs := []bitset.Set{bitset.FromMembers(2, 0), bitset.FromMembers(2, 1)}
	ins, err := model.NewSwitchInstance(2, 1, rs)
	if err != nil {
		t.Fatal(err)
	}
	return NewSwitch(ins)
}

func TestRegisterAndGet(t *testing.T) {
	s := NewSolver("solve-test-dummy", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			return &Solution{Cost: 7, Exact: true}, nil
		})
	Register(s)
	got, err := Get("solve-test-dummy")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "solve-test-dummy" {
		t.Fatalf("Get returned %q", got.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "solve-test-dummy" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered solver missing from Names()")
	}
	if _, err := Get("solve-test-no-such-solver"); err == nil {
		t.Fatal("Get accepted an unknown name")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil solver", func() { Register(nil) })
	mustPanic("empty name", func() {
		Register(NewSolver("", Capabilities{}, nil))
	})
	Register(NewSolver("solve-test-dup", Capabilities{}, nil))
	mustPanic("duplicate", func() {
		Register(NewSolver("solve-test-dup", Capabilities{}, nil))
	})
}

func TestRunHousekeeping(t *testing.T) {
	Register(NewSolver("solve-test-run", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			return &Solution{Cost: 3, Exact: true, Stats: Stats{StatesExpanded: 5}}, nil
		}))
	inst := testInstance(t)

	sol, err := Run(context.Background(), "solve-test-run", inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Kind != KindSwitch {
		t.Fatalf("Run did not stamp Kind: %v", sol.Kind)
	}
	if sol.Stats.WallTime <= 0 {
		t.Fatal("Run did not measure WallTime")
	}
	if sol.Stats.StatesExpanded != 5 {
		t.Fatal("Run clobbered solver stats")
	}

	if _, err := Run(context.Background(), "solve-test-no-such-solver", inst, Options{}); err == nil {
		t.Fatal("Run accepted an unknown solver")
	} else {
		var unknown *UnknownSolverError
		if !errors.As(err, &unknown) {
			t.Fatalf("unknown-solver error has type %T, want *UnknownSolverError", err)
		}
		if unknown.Name != "solve-test-no-such-solver" {
			t.Fatalf("UnknownSolverError.Name = %q", unknown.Name)
		}
		found := false
		for _, n := range unknown.Registered {
			found = found || n == "solve-test-run"
		}
		if !found {
			t.Fatalf("UnknownSolverError.Registered %v misses a registered solver", unknown.Registered)
		}
		if !strings.Contains(err.Error(), "solve-test-run") {
			t.Fatalf("error message does not list registered solvers: %v", err)
		}
	}
	if _, err := Run(context.Background(), "solve-test-run", nil, Options{}); err == nil {
		t.Fatal("Run accepted a nil instance")
	}
	if _, err := Run(context.Background(), "solve-test-run", inst, Options{Pop: -1}); err == nil {
		t.Fatal("Run accepted invalid options")
	}

	// Kind gating: the solver declares KindSwitch only.
	gi, err := model.NewGeneralInstance(1,
		[]model.Hypercontext{{Name: "h", Init: 1, PerStep: 1, Sat: bitset.Full(1)}}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), "solve-test-run", NewGeneral(gi), Options{}); err == nil {
		t.Fatal("Run dispatched an unsupported instance kind")
	}

	// A solver returning (nil, nil) is a protocol violation Run rejects.
	Register(NewSolver("solve-test-nil", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			return nil, nil
		}))
	if _, err := Run(context.Background(), "solve-test-nil", inst, Options{}); err == nil {
		t.Fatal("Run accepted a nil solution")
	}
}

func TestRunPanicIsolation(t *testing.T) {
	// A solver panicking anywhere in its call tree must fail only its
	// own run: Run returns a typed *PanicError carrying the panic value
	// and a stack capture, and the calling goroutine survives.
	Register(NewSolver("solve-test-panicky", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			panic("solver exploded")
		}))
	sol, err := Run(context.Background(), "solve-test-panicky", testInstance(t), Options{})
	if sol != nil {
		t.Fatalf("panicking solver returned a solution: %+v", sol)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "solver exploded" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "solve_test") {
		t.Fatalf("PanicError.Stack does not capture the panic site:\n%s", pe.Stack)
	}
	if strings.Contains(pe.Error(), string(pe.Stack)) && len(pe.Stack) > 0 {
		t.Fatal("Error() leaks the full stack into the message")
	}
	// The registry stays healthy: a later run on the same goroutine works.
	Register(NewSolver("solve-test-after-panic", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			return &Solution{Cost: 1, Exact: true}, nil
		}))
	if _, err := Run(context.Background(), "solve-test-after-panic", testInstance(t), Options{}); err != nil {
		t.Fatalf("run after a panicked run failed: %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	// A solver that blocks until its context dies: Run's Options.Timeout
	// must cut it off.
	Register(NewSolver("solve-test-sleepy", Capabilities{Kinds: []Kind{KindSwitch}},
		func(ctx context.Context, inst *Instance, opts Options) (*Solution, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}))
	_, err := Run(context.Background(), "solve-test-sleepy", testInstance(t), Options{Timeout: 10 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout produced %v, want context.DeadlineExceeded", err)
	}
}
