package solve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// StepEngine is an incremental solve session: one instance whose
// demand trace grows (Extend), gets corrected (Amend) or is re-opened
// (Rewind) over time, with the solver re-solving only the suffix each
// mutation invalidates instead of starting over.  It is the solve-layer
// view of the mtswitch stepped engine; the service layer's sessions and
// mtopt's preempt/resume flags are both built on it.
//
// Engines are NOT safe for concurrent use — callers serialize access.
// Close releases pooled resources; every engine must be closed.
type StepEngine interface {
	// Steps reports the current trace length.
	Steps() int

	// Extend appends demand rows, step-major: steps[i][j] is task j's
	// requirement at appended step i.
	Extend(ctx context.Context, steps [][]bitset.Set) error

	// Amend overwrites the already-submitted rows at trace positions
	// at..at+len(steps)-1 (step-major, like Extend).
	Amend(ctx context.Context, at int, steps [][]bitset.Set) error

	// Rewind discards the solved suffix from step onward so the next
	// Advance/Solution re-runs it.
	Rewind(step int) error

	// Advance runs at most maxSteps DP steps (<= 0 means to completion)
	// and reports whether the solve has reached the end of the trace.
	Advance(ctx context.Context, maxSteps int) (bool, error)

	// Solution runs the solve to completion and extracts the schedule
	// for the current trace.
	Solution(ctx context.Context) (*Solution, error)

	// Checkpoint serializes the engine so ResumeStepEngine can continue
	// it later, in another process, with any worker count.
	Checkpoint(ctx context.Context) ([]byte, error)

	// LastResolveStart reports the step the most recent Extend/Amend/
	// Rewind resumed solving from (0 after a full rebuild); the
	// re-solved suffix is Steps() - LastResolveStart.
	LastResolveStart() int

	// ResolveExpanded reports the DP states expanded since the most
	// recent trace mutation — the incremental cost of the latest
	// resolve, comparable to a from-scratch Stats.StatesExpanded.
	ResolveExpanded() int64

	// SizeBytes estimates retained memory, for eviction budgeting.
	SizeBytes() int64

	Close()
}

// StepperProvider is the optional capability a registered Solver
// implements to hand out StepEngines.  It is feature-detected by type
// assertion, so solvers without it are completely unaffected.
type StepperProvider interface {
	Solver

	NewStepEngine(ctx context.Context, inst *Instance, opts Options) (StepEngine, error)
	ResumeStepEngine(ctx context.Context, data []byte, opts Options) (StepEngine, error)
}

// ErrNotSteppable reports that a solver (or a solver/instance-kind
// combination) has no incremental engine.  Callers feature-detect with
// errors.Is.
var ErrNotSteppable = errors.New("solve: solver does not support incremental stepping")

// NewStepEngine resolves a registered solver by name and opens an
// incremental solve session on it, with the same validation Run
// applies to one-shot solves.  Solvers that do not implement
// StepperProvider (or do not step this instance kind) return
// ErrNotSteppable.
func NewStepEngine(ctx context.Context, name string, inst *Instance, opts Options) (StepEngine, error) {
	sp, err := stepper(name)
	if err != nil {
		return nil, err
	}
	if inst == nil {
		return nil, fmt.Errorf("solve: nil instance")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !sp.Capabilities().Supports(inst.Kind()) {
		return nil, fmt.Errorf("solve: solver %q does not support %v instances (supports %v)",
			name, inst.Kind(), sp.Capabilities().Kinds)
	}
	return sp.NewStepEngine(ctx, inst, opts)
}

// ResumeStepEngine resolves a solver by name and rebuilds one of its
// step engines from a Checkpoint blob.  Only Options.Workers is taken
// from opts — everything else a solve depends on travels inside the
// checkpoint.
func ResumeStepEngine(ctx context.Context, name string, data []byte, opts Options) (StepEngine, error) {
	sp, err := stepper(name)
	if err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return sp.ResumeStepEngine(ctx, data, opts)
}

func stepper(name string) (StepperProvider, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	sp, ok := s.(StepperProvider)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotSteppable, name)
	}
	return sp, nil
}
