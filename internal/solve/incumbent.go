package solve

import (
	"context"
	"math"
	"sync/atomic"

	"repro/internal/model"
)

// Incumbent is a lock-free shared upper bound on the optimal cost of
// one instance, raced over by a portfolio of solvers.  Heuristic
// contenders (GA, beam, warm starts) publish every valid full-schedule
// cost they find; the exact DP reads the board between steps and
// adopts any bound tighter than its own, so its `> incumbent` cutoffs
// and dominance passes prune harder mid-flight.
//
// Memory ordering: the board holds a single int64 written with
// CompareAndSwap and read with Load (both sequentially consistent in
// Go's sync/atomic).  Publishers only ever lower the value, so a
// reader observing a stale board sees a looser-but-valid bound — the
// race is benign.  Correctness does not depend on timely delivery:
// every published cost is the cost of a complete feasible schedule,
// hence >= the optimum, and the DP cutoffs are strict (`>`), so no
// optimal path is ever cut regardless of when a bound lands.
//
// Tightening is deliberately not part of the deterministic replay
// surface: adopting an external bound mid-solve can change *which*
// cost-optimal schedule the DP returns (never the cost), so runs that
// must be bit-identical across worker counts detach the board via
// DetachIncumbent.
type Incumbent struct {
	// best is the lowest published cost; noIncumbent when empty.
	best atomic.Int64
}

// noIncumbent marks an empty board.
const noIncumbent = int64(math.MaxInt64)

// NewIncumbent returns an empty board.
func NewIncumbent() *Incumbent {
	b := &Incumbent{}
	b.best.Store(noIncumbent)
	return b
}

// Publish offers a valid full-schedule cost to the board.  It lowers
// the board monotonically and reports whether this call tightened it.
// Negative costs are ignored (no valid schedule costs less than 0).
func (b *Incumbent) Publish(c model.Cost) bool {
	if b == nil || c < 0 {
		return false
	}
	v := int64(c)
	for {
		cur := b.best.Load()
		if v >= cur {
			return false
		}
		if b.best.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// Best returns the tightest published cost, or ok=false if nothing has
// been published yet.
func (b *Incumbent) Best() (model.Cost, bool) {
	if b == nil {
		return 0, false
	}
	v := b.best.Load()
	if v == noIncumbent {
		return 0, false
	}
	return model.Cost(v), true
}

// incumbentKey is the context key the board travels under.
type incumbentKey struct{}

// WithIncumbent attaches a shared incumbent board to the context.  All
// solver runs under the returned context publish to and consume from
// the same board.
func WithIncumbent(ctx context.Context, b *Incumbent) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, incumbentKey{}, b)
}

// IncumbentFrom returns the board attached to the context, or nil.
func IncumbentFrom(ctx context.Context) *Incumbent {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(incumbentKey{}).(*Incumbent)
	return b
}

// DetachIncumbent shadows any attached board with nil.  Sub-solves
// whose costs are not valid bounds for the enclosing instance (for
// example partition windows, whose window-local costs would poison the
// full-trace board) run under a detached context.
func DetachIncumbent(ctx context.Context) context.Context {
	if ctx == nil || IncumbentFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, incumbentKey{}, (*Incumbent)(nil))
}
