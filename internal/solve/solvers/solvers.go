// Package solvers wires every optimizer in the repo into the solve
// registry.  Importing it (usually blank from package main, or
// transitively through internal/core) makes the solver names
//
//	exact, exact-partitioned, fast, greedy, interval, changeover,
//	bruteforce, minsat, aligned, beam, ga, anneal, pertask, portfolio
//
// resolvable via solve.Get / solve.Run.  The adapters translate the
// normalized solve.Instance into each package's native types and wrap
// native results into solve.Solution, so all the solver entry points
// are reachable through one interface with uniform options,
// cancellation and run statistics.  The portfolio meta-solver
// registers itself from internal/portfolio (imported blank below); it
// races the registered contenders through the same registry.
package solvers

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ga"
	"repro/internal/mtdag"
	"repro/internal/mtswitch"
	"repro/internal/partition"
	"repro/internal/phc"
	"repro/internal/solve"

	_ "repro/internal/portfolio"
)

func fromSwitch(s *phc.Solution, exact bool) *solve.Solution {
	return &solve.Solution{
		Cost:          s.Cost,
		Exact:         exact,
		Stats:         s.Stats,
		Seg:           s.Seg,
		Hypercontexts: s.Hypercontexts,
	}
}

func fromGeneral(s *phc.GeneralSolution, exact bool) *solve.Solution {
	return &solve.Solution{
		Cost:    s.Cost,
		Exact:   exact,
		Stats:   s.Stats,
		General: s.Schedule,
	}
}

func fromMT(s *mtswitch.Solution, exact bool) *solve.Solution {
	return &solve.Solution{
		Cost:    s.Cost,
		Exact:   exact,
		Stats:   s.Stats,
		MTSched: s.Schedule,
	}
}

func fromMTDAG(s *mtdag.Solution, exact bool) *solve.Solution {
	var idx [][]int
	if s.Schedule != nil {
		idx = s.Schedule.HctxIdx
	}
	return &solve.Solution{
		Cost:    s.Cost,
		Exact:   exact,
		Stats:   s.Stats,
		HctxIdx: idx,
	}
}

// beamDefaults applies the beam solver's deliberately tight default
// caps (MaxStates 3000, MaxCandidates 4) — the fast approximate
// configuration used by the paper-experiment pipeline.
func beamDefaults(opts solve.Options) solve.Options {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 3000
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 4
	}
	return opts
}

// stepperSolver decorates a registered solver with the solve.Stepper
// capability: incremental MT-Switch sessions backed by the mtswitch
// stepped engine.  defaults mirrors the solver's one-shot option
// defaulting (beam's tight caps) so a stepped solve and a Run-routed
// solve of the same trace agree exactly.
type stepperSolver struct {
	solve.Solver
	defaults func(opts solve.Options) solve.Options
	exact    bool
}

func (s *stepperSolver) NewStepEngine(ctx context.Context, inst *solve.Instance, opts solve.Options) (solve.StepEngine, error) {
	if inst.Kind() != solve.KindMTSwitch {
		return nil, fmt.Errorf("%w: solver %q steps only mtswitch instances, not %v",
			solve.ErrNotSteppable, s.Name(), inst.Kind())
	}
	if s.defaults != nil {
		opts = s.defaults(opts)
	}
	eng, err := mtswitch.NewEngine(ctx, inst.MT, inst.Cost, opts, true)
	if err != nil {
		return nil, err
	}
	return &mtStepEngine{eng: eng, exact: s.exact}, nil
}

func (s *stepperSolver) ResumeStepEngine(ctx context.Context, data []byte, opts solve.Options) (solve.StepEngine, error) {
	// The checkpoint carries the solve-shaping options itself; only the
	// resuming process's parallelism is taken from opts.
	eng, err := mtswitch.ResumeEngine(ctx, data, opts.Workers, true)
	if err != nil {
		return nil, err
	}
	return &mtStepEngine{eng: eng, exact: s.exact}, nil
}

// mtStepEngine adapts *mtswitch.Engine to solve.StepEngine.
type mtStepEngine struct {
	eng   *mtswitch.Engine
	exact bool
}

func (m *mtStepEngine) Steps() int { return m.eng.Steps() }
func (m *mtStepEngine) Extend(ctx context.Context, steps [][]bitset.Set) error {
	return m.eng.Extend(ctx, steps)
}
func (m *mtStepEngine) Amend(ctx context.Context, at int, steps [][]bitset.Set) error {
	return m.eng.Amend(ctx, at, steps)
}
func (m *mtStepEngine) Rewind(step int) error { return m.eng.Rewind(step) }
func (m *mtStepEngine) Advance(ctx context.Context, maxSteps int) (bool, error) {
	return m.eng.Advance(ctx, maxSteps)
}
func (m *mtStepEngine) Solution(ctx context.Context) (*solve.Solution, error) {
	s, err := m.eng.Solution(ctx)
	if err != nil {
		return nil, err
	}
	sol := fromMT(s, m.exact && !s.Stats.Truncated)
	sol.Kind = solve.KindMTSwitch
	return sol, nil
}
func (m *mtStepEngine) Checkpoint(ctx context.Context) ([]byte, error) {
	return m.eng.Checkpoint(ctx)
}
func (m *mtStepEngine) LastResolveStart() int  { return m.eng.LastResolveStart() }
func (m *mtStepEngine) ResolveExpanded() int64 { return m.eng.ResolveExpanded() }
func (m *mtStepEngine) SizeBytes() int64       { return m.eng.SizeBytes() }
func (m *mtStepEngine) Close()                 { m.eng.Close() }

// mtdagInstance rebuilds the native mtdag.Instance from the normalized
// task list (solve cannot import mtdag without an import cycle, so the
// Instance carries a mirror struct).
func mtdagInstance(inst *solve.Instance) (*mtdag.Instance, error) {
	tasks := make([]mtdag.Task, len(inst.MTDAG))
	for i, t := range inst.MTDAG {
		tasks[i] = mtdag.Task{Name: t.Name, V: t.V, Inst: t.Inst}
	}
	return mtdag.New(tasks)
}

func init() {
	// exact: the optimal algorithm for each kind — single-task DPs,
	// the joint-hypercontext DP for MT-Switch (exact while within
	// MaxStates; Solution.Exact reports whether truncation happened),
	// and the joint-vector DP for MT-DAG.
	solve.Register(&stepperSolver{exact: true, Solver: solve.NewSolver("exact",
		solve.Capabilities{
			Kinds: []solve.Kind{solve.KindSwitch, solve.KindGeneral, solve.KindDAG, solve.KindMTSwitch, solve.KindMTDAG},
			Exact: true,
		},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			switch inst.Kind() {
			case solve.KindSwitch:
				s, err := phc.SolveSwitch(ctx, inst.Switch)
				if err != nil {
					return nil, err
				}
				return fromSwitch(s, true), nil
			case solve.KindGeneral:
				s, err := phc.SolveGeneral(ctx, inst.General)
				if err != nil {
					return nil, err
				}
				return fromGeneral(s, true), nil
			case solve.KindDAG:
				s, err := phc.SolveDAG(ctx, inst.DAG)
				if err != nil {
					return nil, err
				}
				return fromGeneral(s, true), nil
			case solve.KindMTSwitch:
				s, err := mtswitch.SolveExact(ctx, inst.MT, inst.Cost, opts)
				if err != nil {
					return nil, err
				}
				return fromMT(s, !s.Stats.Truncated), nil
			case solve.KindMTDAG:
				mt, err := mtdagInstance(inst)
				if err != nil {
					return nil, err
				}
				s, err := mtdag.Solve(ctx, mt, inst.Cost)
				if err != nil {
					return nil, err
				}
				return fromMTDAG(s, true), nil
			default:
				return nil, fmt.Errorf("solvers: exact: unsupported kind %v", inst.Kind())
			}
		})})

	// exact-partitioned: the step-axis hypergraph decomposition of the
	// exact MT-Switch DP — windows solved concurrently, stitched with
	// a coupling correction and a certified additive bound
	// (Stats.{Partitions, CutColumns, StitchBound, StitchTime}).  Not
	// marked Exact: a genuinely partitioned run returns an upper bound
	// whose gap is certified by StitchBound; Solution.Exact is still
	// true when the run delegated to the monolithic engine or the
	// certificate collapsed to a point (StitchBound 0).
	solve.Register(solve.NewSolver("exact-partitioned",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := partition.Solve(ctx, inst.MT, inst.Cost, opts)
			if err != nil {
				return nil, err
			}
			return fromMT(s, partition.IsExact(s)), nil
		}))

	// fast: the O(n·(L+K)) single-task Switch DP (same optimum as
	// exact, different algorithm).
	solve.Register(solve.NewSolver("fast",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindSwitch}, Exact: true},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := phc.SolveSwitchFast(ctx, inst.Switch)
			if err != nil {
				return nil, err
			}
			return fromSwitch(s, true), nil
		}))

	// greedy: the forward scanning baseline.
	solve.Register(solve.NewSolver("greedy",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := phc.Greedy(ctx, inst.Switch)
			if err != nil {
				return nil, err
			}
			return fromSwitch(s, false), nil
		}))

	// interval: hyperreconfigure every Options.IntervalK steps.
	solve.Register(solve.NewSolver("interval",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := phc.FixedInterval(ctx, inst.Switch, opts.IntervalK)
			if err != nil {
				return nil, err
			}
			return fromSwitch(s, false), nil
		}))

	// changeover: the Δ-cost variant's candidate-class DP.  Not marked
	// exact: it optimizes a different objective (changeover cost) and
	// only within the canonical candidate class.
	solve.Register(solve.NewSolver("changeover",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := phc.SolveChangeover(ctx, inst.Switch)
			if err != nil {
				return nil, err
			}
			return fromSwitch(s, false), nil
		}))

	// bruteforce: exhaustive reference optima for tests and
	// cross-checks (small instances only).
	solve.Register(solve.NewSolver("bruteforce",
		solve.Capabilities{
			Kinds: []solve.Kind{solve.KindSwitch, solve.KindGeneral, solve.KindMTSwitch},
			Exact: true,
		},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			switch inst.Kind() {
			case solve.KindSwitch:
				s, err := phc.BruteForceSwitch(ctx, inst.Switch)
				if err != nil {
					return nil, err
				}
				return fromSwitch(s, true), nil
			case solve.KindGeneral:
				s, err := phc.BruteForceGeneral(ctx, inst.General)
				if err != nil {
					return nil, err
				}
				return fromGeneral(s, true), nil
			case solve.KindMTSwitch:
				s, err := mtswitch.BruteForce(ctx, inst.MT, inst.Cost)
				if err != nil {
					return nil, err
				}
				return fromMT(s, true), nil
			default:
				return nil, fmt.Errorf("solvers: bruteforce: unsupported kind %v", inst.Kind())
			}
		}))

	// minsat: the DAG model's minimal-satisfier greedy heuristic.
	solve.Register(solve.NewSolver("minsat",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindDAG}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := phc.MinimalSatisfierHeuristic(ctx, inst.DAG)
			if err != nil {
				return nil, err
			}
			return fromGeneral(s, false), nil
		}))

	// aligned: the O(n²·m) DP over globally aligned
	// hyperreconfiguration steps — optimal within the aligned class,
	// an upper bound in general.
	solve.Register(solve.NewSolver("aligned",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := mtswitch.SolveAligned(ctx, inst.MT, inst.Cost)
			if err != nil {
				return nil, err
			}
			return fromMT(s, false), nil
		}))

	// beam: the joint-hypercontext DP with deliberately tight default
	// caps (MaxStates 3000, MaxCandidates 4) — the fast approximate
	// configuration used by the paper-experiment pipeline.
	solve.Register(&stepperSolver{defaults: beamDefaults, Solver: solve.NewSolver("beam",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			s, err := mtswitch.SolveExact(ctx, inst.MT, inst.Cost, beamDefaults(opts))
			if err != nil {
				return nil, err
			}
			return fromMT(s, false), nil
		})})

	// ga: the paper's genetic algorithm over joint
	// hyperreconfiguration masks.
	solve.Register(solve.NewSolver("ga",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			r, err := ga.Optimize(ctx, inst.MT, inst.Cost, opts)
			if err != nil {
				return nil, err
			}
			sol := fromMT(r.Solution, false)
			sol.History = r.History
			return sol, nil
		}))

	// anneal: simulated annealing on the same mask space (GA ablation).
	solve.Register(solve.NewSolver("anneal",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			r, err := ga.Anneal(ctx, inst.MT, inst.Cost, opts)
			if err != nil {
				return nil, err
			}
			sol := fromMT(r.Solution, false)
			sol.History = r.History
			return sol, nil
		}))

	// pertask: independent single-task General DPs per MT-DAG task —
	// optimal when the cost separates (task-sequential uploads), an
	// upper bound for task-parallel ones (Stats.Truncated reports
	// which).
	solve.Register(solve.NewSolver("pertask",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTDAG}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			mt, err := mtdagInstance(inst)
			if err != nil {
				return nil, err
			}
			s, err := mtdag.SolvePerTask(ctx, mt, inst.Cost)
			if err != nil {
				return nil, err
			}
			return fromMTDAG(s, !s.Stats.Truncated), nil
		}))
}
