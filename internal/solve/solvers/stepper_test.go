package solvers

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// prefixOf clones the first n steps of an MT instance, the
// from-scratch baseline for the stepped comparisons.
func prefixOf(t *testing.T, inst *solve.Instance, n int) *model.MTSwitchInstance {
	t.Helper()
	rows := make([][]bitset.Set, inst.MT.NumTasks())
	for j := range rows {
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			rows[j][i] = inst.MT.Reqs[j][i].Clone()
		}
	}
	out, err := model.NewMTSwitchInstance(inst.MT.Tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	out.PublicGlobal = inst.MT.PublicGlobal
	out.W = inst.MT.W
	return out
}

// stepRow extracts one step of the trace in the step-major shape
// Extend takes.
func stepRow(inst *solve.Instance, i int) []bitset.Set {
	row := make([]bitset.Set, inst.MT.NumTasks())
	for j := range row {
		row[j] = inst.MT.Reqs[j][i].Clone()
	}
	return row
}

// TestStepEngineMatchesRun grows a trace step by step through the
// solve-layer Stepper capability and checks every intermediate
// solution against the registry-routed one-shot solve of the same
// prefix, for both steppable solvers.
func TestStepEngineMatchesRun(t *testing.T) {
	ctx := context.Background()
	full := solve.NewMT(mustMT(t), parallel)
	n := full.MT.Steps()
	for _, name := range []string{"exact", "beam"} {
		prefix := solve.NewMT(prefixOf(t, full, 1), parallel)
		eng, err := solve.NewStepEngine(ctx, name, prefix, solve.Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for length := 1; length <= n; length++ {
			if length > 1 {
				if err := eng.Extend(ctx, [][]bitset.Set{stepRow(full, length-1)}); err != nil {
					t.Fatalf("%s extend to %d: %v", name, length, err)
				}
			}
			got, err := eng.Solution(ctx)
			if err != nil {
				t.Fatalf("%s length %d: %v", name, length, err)
			}
			want, err := solve.Run(ctx, name, solve.NewMT(prefixOf(t, full, length), parallel), solve.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Fatalf("%s length %d: stepped cost %d, one-shot %d", name, length, got.Cost, want.Cost)
			}
			if got.Kind != solve.KindMTSwitch || got.MTSched == nil {
				t.Fatalf("%s: stepped solution missing kind/schedule", name)
			}
			if got.Exact != want.Exact {
				t.Fatalf("%s length %d: stepped Exact=%v, one-shot %v", name, length, got.Exact, want.Exact)
			}
		}
		eng.Close()
	}
}

// TestStepEngineCheckpointHandoff round-trips a session through the
// solve-layer Checkpoint/Resume pair, as the service and mtopt do.
func TestStepEngineCheckpointHandoff(t *testing.T) {
	ctx := context.Background()
	inst := solve.NewMT(mustMT(t), parallel)
	eng, err := solve.NewStepEngine(ctx, "exact", inst, solve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advance(ctx, 2); err != nil {
		t.Fatal(err)
	}
	data, err := eng.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	res, err := solve.ResumeStepEngine(ctx, "exact", data, solve.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	got, err := res.Solution(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solve.Run(ctx, "exact", inst, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("resumed cost %d, one-shot %d", got.Cost, want.Cost)
	}
}

// TestStepEngineFeatureDetection: non-incremental solvers and
// non-MT-Switch instances must report ErrNotSteppable, never panic or
// misbehave.
func TestStepEngineFeatureDetection(t *testing.T) {
	ctx := context.Background()
	inst := solve.NewMT(mustMT(t), parallel)
	if _, err := solve.NewStepEngine(ctx, "ga", inst, solve.Options{}); !errors.Is(err, solve.ErrNotSteppable) {
		t.Fatalf("ga: got %v, want ErrNotSteppable", err)
	}
	if _, err := solve.NewStepEngine(ctx, "nosuch", inst, solve.Options{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	sw := solve.NewSwitch(mustSwitch(t, 3, 2, []int{0}, []int{1}))
	if _, err := solve.NewStepEngine(ctx, "exact", sw, solve.Options{}); !errors.Is(err, solve.ErrNotSteppable) {
		t.Fatalf("switch instance: got %v, want ErrNotSteppable", err)
	}
}
