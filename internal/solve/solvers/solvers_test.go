package solvers

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
var sequential = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}

func mustSwitch(t *testing.T, universe int, w model.Cost, members ...[]int) *model.SwitchInstance {
	t.Helper()
	rs := make([]bitset.Set, len(members))
	for i, m := range members {
		rs[i] = bitset.FromMembers(universe, m...)
	}
	ins, err := model.NewSwitchInstance(universe, w, rs)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func catalog3() []model.Hypercontext {
	return []model.Hypercontext{
		{Name: "small", Init: 2, PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "medium", Init: 4, PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "full", Init: 8, PerStep: 5, Sat: bitset.Full(3)},
	}
}

func mustGeneral(t *testing.T, seq []int) *model.GeneralInstance {
	t.Helper()
	ins, err := model.NewGeneralInstance(3, catalog3(), seq)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func mustChain(t *testing.T, seq []int) *dag.Instance {
	t.Helper()
	ins, err := dag.Chain(3, catalog3(), seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func mustMT(t *testing.T) *model.MTSwitchInstance {
	t.Helper()
	tasks := []model.Task{
		{Name: "A", Local: 3, V: 3},
		{Name: "B", Local: 3, V: 3},
	}
	rows := [][]bitset.Set{
		{bitset.FromMembers(3, 0), bitset.FromMembers(3, 0), bitset.FromMembers(3, 1, 2), bitset.FromMembers(3, 1)},
		{bitset.FromMembers(3, 2), bitset.FromMembers(3, 0, 1), bitset.FromMembers(3, 0), bitset.FromMembers(3, 2)},
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func mtdagTasks(t *testing.T) []solve.MTDAGTask {
	t.Helper()
	return []solve.MTDAGTask{
		{Name: "A", V: 2, Inst: mustChain(t, []int{0, 2, 0, 1})},
		{Name: "B", V: 2, Inst: mustChain(t, []int{0, 0, 1, 0})},
	}
}

// kindInstances returns one small valid instance per problem kind.
func kindInstances(t *testing.T) map[solve.Kind]*solve.Instance {
	t.Helper()
	return map[solve.Kind]*solve.Instance{
		solve.KindSwitch:   solve.NewSwitch(mustSwitch(t, 3, 2, []int{0}, []int{0, 1}, []int{2}, []int{1})),
		solve.KindGeneral:  solve.NewGeneral(mustGeneral(t, []int{0, 1, 0, 2})),
		solve.KindDAG:      solve.NewDAG(mustChain(t, []int{0, 2, 0, 1})),
		solve.KindMTSwitch: solve.NewMT(mustMT(t), parallel),
		solve.KindMTDAG:    solve.NewMTDAG(mtdagTasks(t), parallel),
	}
}

// TestRegisteredNames pins the registry contents: every optimizer entry
// point in the repo must be reachable by name.
func TestRegisteredNames(t *testing.T) {
	want := []string{
		"aligned", "anneal", "beam", "bruteforce", "changeover", "exact",
		"exact-partitioned", "fast", "ga", "greedy", "interval", "minsat",
		"pertask", "portfolio",
	}
	got := solve.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestAllSolversHonorCancelledContext runs every registered solver on
// every kind it supports with an already-cancelled context: each must
// return ctx.Err() promptly instead of solving.
func TestAllSolversHonorCancelledContext(t *testing.T) {
	instances := kindInstances(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range solve.Names() {
		s, err := solve.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range s.Capabilities().Kinds {
			inst, ok := instances[kind]
			if !ok {
				t.Fatalf("no test instance for kind %v (solver %q)", kind, name)
			}
			sol, err := solve.Run(ctx, name, inst, solve.Options{IntervalK: 2})
			if err == nil {
				t.Errorf("%s/%v: solved (cost %d) despite cancelled context", name, kind, sol.Cost)
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s/%v: error %v, want context.Canceled", name, kind, err)
			}
		}
	}
}

// TestMidSolveCancellation cuts off the unbounded iterative solvers via
// Options.Timeout: the deadline must interrupt the solve mid-loop.
func TestMidSolveCancellation(t *testing.T) {
	inst := solve.NewMT(mustMT(t), parallel)
	for _, tc := range []struct {
		name string
		opts solve.Options
	}{
		{"ga", solve.Options{Pop: 40, Generations: 1 << 30, Seed: 1, Timeout: 30e6}},
		{"anneal", solve.Options{Iterations: 1 << 30, Seed: 1, Timeout: 30e6}},
	} {
		_, err := solve.Run(context.Background(), tc.name, inst, tc.opts)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: error %v, want context.DeadlineExceeded", tc.name, err)
		}
	}
}

func randomSwitch(t *testing.T, r *rand.Rand) *model.SwitchInstance {
	t.Helper()
	universe := 1 + r.Intn(4)
	n := 1 + r.Intn(6)
	rs := make([]bitset.Set, n)
	for i := range rs {
		s := bitset.New(universe)
		for b := 0; b < universe; b++ {
			if r.Intn(3) == 0 {
				s.Add(b)
			}
		}
		rs[i] = s
	}
	ins, err := model.NewSwitchInstance(universe, model.Cost(1+r.Intn(5)), rs)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func randomGeneral(t *testing.T, r *rand.Rand) *model.GeneralInstance {
	t.Helper()
	n := 1 + r.Intn(6)
	seq := make([]int, n)
	for i := range seq {
		seq[i] = r.Intn(3)
	}
	return mustGeneral(t, seq)
}

func randomMT(t *testing.T, r *rand.Rand) *model.MTSwitchInstance {
	t.Helper()
	m := 1 + r.Intn(2)
	n := 1 + r.Intn(4)
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(3)
		tasks[j] = model.Task{Name: string(rune('A' + j)), Local: l, V: model.Cost(1 + r.Intn(4))}
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rows[j][i] = s
		}
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestExactSolversAgreeWithBruteForce is the cross-solver agreement
// check: on shared small random instances, every registered solver that
// claims exactness for a kind must match the brute-force reference
// optimum for that kind.
func TestExactSolversAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ctx := context.Background()
	// Generous caps so the MT-Switch DP stays exhaustive on these sizes.
	exactOpts := solve.Options{MaxStates: 1 << 20}
	for trial := 0; trial < 20; trial++ {
		instances := map[solve.Kind]*solve.Instance{
			solve.KindSwitch:   solve.NewSwitch(randomSwitch(t, r)),
			solve.KindGeneral:  solve.NewGeneral(randomGeneral(t, r)),
			solve.KindMTSwitch: solve.NewMT(randomMT(t, r), parallel),
		}
		for kind, inst := range instances {
			ref, err := solve.Run(ctx, "bruteforce", inst, solve.Options{})
			if err != nil {
				t.Fatalf("trial %d: bruteforce/%v: %v", trial, kind, err)
			}
			for _, name := range solve.Names() {
				s, err := solve.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if name == "bruteforce" || !s.Capabilities().Exact || !s.Capabilities().Supports(kind) {
					continue
				}
				got, err := solve.Run(ctx, name, inst, exactOpts)
				if err != nil {
					t.Fatalf("trial %d: %s/%v: %v", trial, name, kind, err)
				}
				if !got.Exact {
					t.Errorf("trial %d: %s/%v did not report an exact result", trial, name, kind)
				}
				if got.Cost != ref.Cost {
					t.Errorf("trial %d: %s/%v cost %d, brute force %d", trial, name, kind, got.Cost, ref.Cost)
				}
			}
		}
	}
}

// TestWorkerCountAgreement is the registry-wide determinism check for
// the parallel frontier engine: for every solver whose result could
// legally depend on scheduling (the packed DP behind "exact" and
// "beam", and the pooled fitness evaluation behind "ga"), Workers ∈
// {1, 2, 8} must return identical costs and identical schedules.  The
// exact runs are additionally pinned to the retained sequential
// reference implementation, schedule for schedule.
func TestWorkerCountAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ctx := context.Background()
	workerCounts := []int{1, 2, 8}
	for trial := 0; trial < 10; trial++ {
		ins := randomMT(t, r)
		inst := solve.NewMT(ins, parallel)

		ref, err := mtswitch.SolveExactReference(ctx, ins, parallel, solve.Options{})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		for _, name := range []string{"exact", "beam", "ga"} {
			var base *solve.Solution
			for _, workers := range workerCounts {
				opts := solve.Options{Workers: workers}
				if name == "ga" {
					opts.Pop = 16
					opts.Generations = 10
					opts.Seed = 1
				}
				got, err := solve.Run(ctx, name, inst, opts)
				if err != nil {
					t.Fatalf("trial %d: %s workers %d: %v", trial, name, workers, err)
				}
				if base == nil {
					base = got
					continue
				}
				if got.Cost != base.Cost {
					t.Fatalf("trial %d: %s workers %d cost %d, workers 1 cost %d",
						trial, name, workers, got.Cost, base.Cost)
				}
				if !sameMTSchedule(got.MTSched, base.MTSched) {
					t.Fatalf("trial %d: %s workers %d schedule differs from workers 1", trial, name, workers)
				}
			}
			if name == "exact" {
				if base.Cost != ref.Cost {
					t.Fatalf("trial %d: exact cost %d, sequential reference %d", trial, base.Cost, ref.Cost)
				}
				if !sameMTSchedule(base.MTSched, ref.Schedule) {
					t.Fatalf("trial %d: exact schedule differs from sequential reference", trial)
				}
			}
		}
	}
}

func sameMTSchedule(a, b *model.MTSchedule) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Hyper) != len(b.Hyper) {
		return false
	}
	for j := range a.Hyper {
		if len(a.Hyper[j]) != len(b.Hyper[j]) {
			return false
		}
		for i := range a.Hyper[j] {
			if a.Hyper[j][i] != b.Hyper[j][i] || !a.Hctx[j][i].Equal(b.Hctx[j][i]) {
				return false
			}
		}
	}
	return true
}

// TestMTDAGExactAgreesWithPerTask: under task-sequential uploads the
// joint cost separates per task, so the joint-vector DP and the
// independent per-task DPs must find the same optimum.
func TestMTDAGExactAgreesWithPerTask(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(4)
		tasks := make([]solve.MTDAGTask, 2)
		for j := range tasks {
			seq := make([]int, n)
			for i := range seq {
				seq[i] = r.Intn(3)
			}
			tasks[j] = solve.MTDAGTask{Name: string(rune('A' + j)), V: model.Cost(1 + r.Intn(3)), Inst: mustChain(t, seq)}
		}
		inst := solve.NewMTDAG(tasks, sequential)
		joint, err := solve.Run(ctx, "exact", inst, solve.Options{})
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		per, err := solve.Run(ctx, "pertask", inst, solve.Options{})
		if err != nil {
			t.Fatalf("trial %d: pertask: %v", trial, err)
		}
		if !per.Exact {
			t.Errorf("trial %d: pertask not exact under sequential uploads", trial)
		}
		if joint.Cost != per.Cost {
			t.Errorf("trial %d: joint %d vs per-task %d", trial, joint.Cost, per.Cost)
		}
	}
}

// TestStatsPopulated asserts every adapter fills the normalized run
// statistics: WallTime via solve.Run, work counters via the solver.
func TestStatsPopulated(t *testing.T) {
	ctx := context.Background()
	instances := kindInstances(t)

	for kind, inst := range instances {
		sol, err := solve.Run(ctx, "exact", inst, solve.Options{})
		if err != nil {
			t.Fatalf("exact/%v: %v", kind, err)
		}
		if sol.Stats.WallTime <= 0 {
			t.Errorf("exact/%v: WallTime not measured", kind)
		}
		if sol.Stats.StatesExpanded <= 0 {
			t.Errorf("exact/%v: StatesExpanded = %d, want > 0", kind, sol.Stats.StatesExpanded)
		}
		if sol.Kind != kind {
			t.Errorf("exact/%v: solution kind stamped %v", kind, sol.Kind)
		}
	}

	gaSol, err := solve.Run(ctx, "ga", instances[solve.KindMTSwitch],
		solve.Options{Pop: 10, Generations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gaSol.Stats.Evaluations <= 0 {
		t.Errorf("ga: Evaluations = %d, want > 0", gaSol.Stats.Evaluations)
	}
	if len(gaSol.History) == 0 {
		t.Error("ga: best-so-far history not recorded")
	}

	bf, err := solve.Run(ctx, "bruteforce", instances[solve.KindSwitch], solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Stats.Evaluations <= 0 {
		t.Errorf("bruteforce: Evaluations = %d, want > 0", bf.Stats.Evaluations)
	}
}

// TestRunRejections: registry-level housekeeping visible through the
// real solver set.
func TestRunRejections(t *testing.T) {
	ctx := context.Background()
	mt := solve.NewMT(mustMT(t), parallel)
	sw := solve.NewSwitch(mustSwitch(t, 2, 1, []int{0}, []int{1}))

	if _, err := solve.Run(ctx, "no-such-solver", mt, solve.Options{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if _, err := solve.Run(ctx, "ga", sw, solve.Options{}); err == nil {
		t.Fatal("ga accepted a single-task Switch instance")
	}
	if _, err := solve.Run(ctx, "exact", mt, solve.Options{MutRate: 2}); err == nil {
		t.Fatal("invalid options accepted")
	}
}
