package solve

import (
	"runtime"
	"sync"
)

// Pool is the shared worker pool behind every parallel solver stage:
// the packed frontier engine's sharded expansion and merge, the
// private-global window sweep, and the GA's fitness evaluation all
// dispatch onto one of these instead of spawning ad-hoc goroutines per
// call.  Workers are persistent goroutines started lazily on the first
// parallel dispatch, so a solver that creates a Pool but stays on its
// single-worker fast path never pays for goroutine startup.
//
// A Pool is safe for use by a single dispatching goroutine at a time
// (Do is a barrier; solvers call it from their main loop).  Close
// releases the workers; using a closed pool panics.
type Pool struct {
	workers int

	once   sync.Once
	jobs   chan poolJob
	closed bool
}

type poolJob struct {
	task int
	fn   func(task int)
	wg   *sync.WaitGroup
}

// NewPool sizes a pool; workers <= 0 selects GOMAXPROCS, matching the
// Options.Workers convention.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// start spawns the persistent workers on first use.
func (p *Pool) start() {
	jobs := make(chan poolJob)
	p.jobs = jobs
	for w := 0; w < p.workers; w++ {
		go func() {
			for j := range jobs {
				j.fn(j.task)
				j.wg.Done()
			}
		}()
	}
}

// Do runs fn(0) … fn(n-1) across the pool's workers and returns when
// all calls have finished (a barrier).  Tasks are indivisible: callers
// partition their work into at most Workers() chunks for full
// utilization.  With one worker or one task the call runs inline on
// the caller's goroutine, so single-threaded configurations stay free
// of synchronization.
func (p *Pool) Do(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	if p.closed {
		panic("solve: Do on a closed Pool")
	}
	if p.workers == 1 || n == 1 {
		for t := 0; t < n; t++ {
			fn(t)
		}
		return
	}
	p.once.Do(p.start)
	var wg sync.WaitGroup
	wg.Add(n)
	for t := 0; t < n; t++ {
		p.jobs <- poolJob{task: t, fn: fn, wg: &wg}
	}
	wg.Wait()
}

// Close releases the pool's worker goroutines.  Safe to call on a pool
// whose workers never started, and required before dropping a pool
// that did.
func (p *Pool) Close() {
	p.closed = true
	p.once.Do(func() {}) // mark started so a late Do cannot respawn
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
}
