package solve

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool is the shared worker pool behind every parallel solver stage:
// the packed frontier engine's sharded expansion and merge, the
// private-global window sweep, and the GA's fitness evaluation all
// dispatch onto one of these instead of spawning ad-hoc goroutines per
// call.  Workers are persistent goroutines started lazily on the first
// parallel dispatch, so a solver that creates a Pool but stays on its
// single-worker fast path never pays for goroutine startup.
//
// Panics inside a task are isolated: every task runs under recover, a
// panicking task can neither kill its worker goroutine nor deadlock
// the dispatching barrier, and Do reports the first panic of the batch
// as a *PanicError.  The remaining tasks of the batch still run (the
// parallel path cannot un-send them; the inline path matches that
// semantics), so side effects on shared solver state stay consistent
// across worker counts.
//
// A Pool is safe for use by a single dispatching goroutine at a time
// (Do is a barrier; solvers call it from their main loop).  Close
// releases the workers; using a closed pool panics.
type Pool struct {
	workers int

	once   sync.Once
	jobs   chan poolJob
	closed bool
}

// dispatch is one Do call's barrier state: the completion group plus
// the first panic any of its tasks raised.
type dispatch struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// run executes one task under recover, always releasing the barrier.
func (d *dispatch) run(task int, fn func(task int)) {
	defer d.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Value: r, Stack: debug.Stack()}
			d.mu.Lock()
			if d.err == nil {
				d.err = pe
			}
			d.mu.Unlock()
		}
	}()
	fn(task)
}

type poolJob struct {
	task int
	fn   func(task int)
	d    *dispatch
}

// NewPool sizes a pool; workers <= 0 selects GOMAXPROCS, matching the
// Options.Workers convention.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// start spawns the persistent workers on first use.
func (p *Pool) start() {
	jobs := make(chan poolJob)
	p.jobs = jobs
	for w := 0; w < p.workers; w++ {
		go func() {
			for j := range jobs {
				j.d.run(j.task, j.fn)
			}
		}()
	}
}

// Do runs fn(0) … fn(n-1) across the pool's workers and returns when
// all calls have finished (a barrier).  Tasks are indivisible: callers
// partition their work into at most Workers() chunks for full
// utilization.  With one worker or one task the call runs inline on
// the caller's goroutine, so single-threaded configurations stay free
// of synchronization.  If any task panicked, Do returns the first
// panic as a *PanicError after the whole batch has finished.
func (p *Pool) Do(n int, fn func(task int)) error {
	if n <= 0 {
		return nil
	}
	if p.closed {
		panic("solve: Do on a closed Pool")
	}
	var d dispatch
	d.wg.Add(n)
	if p.workers == 1 || n == 1 {
		for t := 0; t < n; t++ {
			d.run(t, fn)
		}
		return d.err
	}
	p.once.Do(p.start)
	for t := 0; t < n; t++ {
		p.jobs <- poolJob{task: t, fn: fn, d: &d}
	}
	d.wg.Wait()
	return d.err
}

// Close releases the pool's worker goroutines.  Safe to call on a pool
// whose workers never started, and required before dropping a pool
// that did.
func (p *Pool) Close() {
	p.closed = true
	p.once.Do(func() {}) // mark started so a late Do cannot respawn
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
}
