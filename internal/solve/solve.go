// Package solve is the unified solver engine layer: a normalized
// Instance wrapper over every problem kind the repo knows how to
// schedule (single-task Switch/General/DAG, multi-task
// MTSwitch/MTDAG), a normalized Solution carrying cost, exactness and
// run statistics, a Solver interface, and a package-level registry so
// optimizers resolve by name (`-solver exact|aligned|ga|...`).
//
// The package is a leaf: it depends only on the data-model packages
// (model, dag, bitset), the stdlib-only chaos harness
// (resilience/faultinject) and the standard library, so every solver
// package can import it for the shared Options and Stats types while
// the adapters in solve/solvers wire the concrete optimizers into the
// registry.
package solve

import (
	"context"
	"time"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/model"
)

// Kind enumerates the problem families a Solver can accept.
type Kind int

const (
	// KindSwitch is the single-task Switch model (cost(h) = |h|).
	KindSwitch Kind = iota
	// KindGeneral is the single-task General model with an explicit
	// hypercontext catalog.
	KindGeneral
	// KindDAG is the single-task DAG model (catalog + precedence DAG).
	KindDAG
	// KindMTSwitch is the fully synchronized multi-task Switch model.
	KindMTSwitch
	// KindMTDAG is the fully synchronized multi-task DAG model.
	KindMTDAG

	numKinds = int(KindMTDAG) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindGeneral:
		return "general"
	case KindDAG:
		return "dag"
	case KindMTSwitch:
		return "mtswitch"
	case KindMTDAG:
		return "mtdag"
	default:
		return "unknown"
	}
}

// MTDAGTask mirrors mtdag.Task without importing mtdag (which would
// cycle through phc back into this package): one task of a multi-task
// DAG machine, its local hyperreconfiguration cost, and its DAG-model
// instance.
type MTDAGTask struct {
	Name string
	V    model.Cost
	Inst *dag.Instance
}

// Instance is the normalized problem wrapper handed to Solvers.
// Exactly one payload field is set, matching Kind().
type Instance struct {
	kind Kind

	// Switch is set for KindSwitch.
	Switch *model.SwitchInstance
	// General is set for KindGeneral.
	General *model.GeneralInstance
	// DAG is set for KindDAG.
	DAG *dag.Instance
	// MT is set for KindMTSwitch.
	MT *model.MTSwitchInstance
	// MTDAG is set for KindMTDAG.
	MTDAG []MTDAGTask

	// Cost carries the upload modes for the multi-task kinds; ignored
	// by the single-task models.
	Cost model.CostOptions
}

// Kind reports which payload the instance carries.
func (in *Instance) Kind() Kind { return in.kind }

// NewSwitch wraps a single-task Switch instance.
func NewSwitch(ins *model.SwitchInstance) *Instance {
	return &Instance{kind: KindSwitch, Switch: ins}
}

// NewGeneral wraps a single-task General instance.
func NewGeneral(ins *model.GeneralInstance) *Instance {
	return &Instance{kind: KindGeneral, General: ins}
}

// NewDAG wraps a single-task DAG instance.
func NewDAG(ins *dag.Instance) *Instance {
	return &Instance{kind: KindDAG, DAG: ins}
}

// NewMT wraps a fully synchronized multi-task Switch instance under
// the given upload modes.
func NewMT(ins *model.MTSwitchInstance, opt model.CostOptions) *Instance {
	return &Instance{kind: KindMTSwitch, MT: ins, Cost: opt}
}

// NewMTDAG wraps a fully synchronized multi-task DAG instance under
// the given upload modes.
func NewMTDAG(tasks []MTDAGTask, opt model.CostOptions) *Instance {
	return &Instance{kind: KindMTDAG, MTDAG: tasks, Cost: opt}
}

// Stats are the run statistics every solver reports.  Counters a
// particular algorithm has no notion of stay zero.
type Stats struct {
	// StatesExpanded counts DP/search states (or transitions) the
	// solver examined.
	StatesExpanded int64
	// DedupHits counts states merged into an already-known state
	// (frontier deduplication).
	DedupHits int64
	// PeakFrontier is the largest per-step state frontier the solver
	// held (after deduplication, before beam truncation).  Sub-solves
	// aggregate by max: the peak of the run is the peak of its largest
	// sub-solve.
	PeakFrontier int64
	// ArenaReused counts word slabs the packed frontier engine obtained
	// from its reuse arena instead of allocating fresh — a measure of
	// how allocation-free the hot path ran.
	ArenaReused int64
	// CandidatesPruned counts branches, candidates or moves discarded
	// by caps or bounds before expansion.
	CandidatesPruned int64
	// StatesPruned counts states or expansion branches the pruned
	// search layer eliminated before they reached the frontier — the
	// sum of DominanceHits and BoundCutoffs.
	StatesPruned int64
	// DominanceHits counts frontier states discarded because another
	// state at the same step, with equal requirement residue, no larger
	// per-task hypercontexts and no worse cost, makes them redundant.
	DominanceHits int64
	// BoundCutoffs counts expansion branches abandoned because the
	// admissible remaining-cost bound proved they cannot beat the
	// incumbent schedule.
	BoundCutoffs int64
	// IncumbentTightenings counts the times an externally published
	// incumbent (a portfolio contender's best-known cost on the shared
	// board) was tighter than the solver's own and was adopted
	// mid-flight.  Zero outside portfolio races.
	IncumbentTightenings int64
	// PreprocessReduction counts requirement-matrix cells removed by
	// instance preprocessing (duplicate-column grouping and step
	// run-length compression) before the DP ran.
	PreprocessReduction int64
	// BudgetDropped counts states the MaxFrontierBytes budget discarded
	// (per-worker successor-table caps and budget-forced beam
	// truncation).  Nonzero only on Degraded runs; it quantifies how
	// lossy the degradation was.
	BudgetDropped int64
	// Evaluations counts full-schedule cost evaluations (brute force
	// enumerations, GA fitness calls, annealing moves).
	Evaluations int64
	// Partitions counts the step-axis windows the partitioned solver
	// split the instance into (0 when the run was not partitioned, 1
	// when the planner collapsed to a monolithic solve).
	Partitions int64
	// CutColumns is the weighted column cut of the chosen partition:
	// the total duplicate-group weight of switch columns whose activity
	// interval spans at least one window boundary.
	CutColumns int64
	// StitchBound is the certified additive slack of a partitioned
	// solve: the optimum is guaranteed to lie in
	// [Cost − StitchBound, Cost].  0 on runs the solver proved exact.
	StitchBound int64
	// StitchTime is the wall time of the stitching and coupling
	// correction passes of a partitioned solve.
	StitchTime time.Duration
	// Truncated reports that a beam/candidate cap limited the search,
	// so the result is an upper bound rather than a proven optimum.
	Truncated bool
	// Degraded reports the solver gave up exactness specifically to
	// stay inside Options.MaxFrontierBytes (a budget-forced beam
	// truncation or a clamped GA population).  Degraded implies
	// Truncated; the service layer surfaces it in solution metadata so
	// a budget-degraded result is never mistaken for an exact one.
	Degraded bool
	// WallTime is the end-to-end solve duration.  Filled in by
	// solve.Run; direct calls into solver packages leave it zero.
	WallTime time.Duration
}

// Add accumulates another solver run's counters (used by solvers that
// decompose into sub-solves).
func (s *Stats) Add(o Stats) {
	s.StatesExpanded += o.StatesExpanded
	s.DedupHits += o.DedupHits
	if o.PeakFrontier > s.PeakFrontier {
		s.PeakFrontier = o.PeakFrontier
	}
	s.ArenaReused += o.ArenaReused
	s.CandidatesPruned += o.CandidatesPruned
	s.StatesPruned += o.StatesPruned
	s.DominanceHits += o.DominanceHits
	s.BoundCutoffs += o.BoundCutoffs
	s.IncumbentTightenings += o.IncumbentTightenings
	s.PreprocessReduction += o.PreprocessReduction
	s.BudgetDropped += o.BudgetDropped
	s.Evaluations += o.Evaluations
	s.Partitions += o.Partitions
	s.CutColumns += o.CutColumns
	s.StitchBound += o.StitchBound
	s.StitchTime += o.StitchTime
	s.Truncated = s.Truncated || o.Truncated
	s.Degraded = s.Degraded || o.Degraded
}

// Solution is the normalized result of a solver run.  Cost, Exact and
// Stats are always set; exactly the payload fields matching the
// instance kind are populated.
type Solution struct {
	Kind Kind
	Cost model.Cost
	// Exact reports the cost is a proven optimum for the solver's
	// search space as configured (false for heuristics and for
	// beam-truncated runs).
	Exact bool
	Stats Stats

	// Seg and Hypercontexts carry KindSwitch schedules.
	Seg           model.Segmentation
	Hypercontexts []bitset.Set
	// General carries KindGeneral and KindDAG schedules.
	General model.GeneralSchedule
	// MTSched carries KindMTSwitch schedules.
	MTSched *model.MTSchedule
	// HctxIdx carries KindMTDAG schedules ([task][step] hypercontext
	// index).
	HctxIdx [][]int
	// History is the best-so-far cost trajectory for iterative
	// solvers (GA, annealing); nil otherwise.
	History []model.Cost
	// Contenders is the per-contender breakdown of a portfolio race
	// (who ran, who won, what each cost and expanded); nil outside the
	// portfolio meta-solver.
	Contenders []ContenderReport
}

// ContenderReport is one contender's slice of a portfolio race.
type ContenderReport struct {
	// Solver is the contender's registry name.
	Solver string
	// Won marks the contender whose solution the race returned.
	Won bool
	// Direct marks a learned-dispatch shortcut: the table predicted
	// this solver with high confidence, so no race was run.
	Direct bool
	// Finished reports the contender ran to completion (losers
	// cancelled mid-flight report false).
	Finished bool
	// Cost and Exact mirror the contender's solution when it finished.
	Cost  model.Cost
	Exact bool
	// Err holds the contender's failure, if any ("" on success and on
	// cancellation by the race).
	Err string
	// Stats are the contender's own run statistics (partial for
	// cancelled losers when harvestable).
	Stats Stats
	// WallTime is the contender's own run duration.
	WallTime time.Duration
}

// Capabilities describe what a registered solver accepts.
type Capabilities struct {
	// Kinds lists the problem kinds the solver handles.
	Kinds []Kind
	// Exact reports the solver proves optimality when its caps are not
	// exceeded.
	Exact bool
}

// Supports reports whether the solver accepts the kind.
func (c Capabilities) Supports(k Kind) bool {
	for _, have := range c.Kinds {
		if have == k {
			return true
		}
	}
	return false
}

// Solver is the uniform optimizer interface behind the registry.
type Solver interface {
	// Name is the registry key (e.g. "exact", "ga").
	Name() string
	// Capabilities reports supported kinds and exactness.
	Capabilities() Capabilities
	// Solve runs the optimizer.  Implementations honor ctx
	// cancellation mid-solve and populate Solution.Stats.
	Solve(ctx context.Context, inst *Instance, opts Options) (*Solution, error)
}

// Checkpoint returns the context's error if it has been cancelled or
// its deadline has passed, nil otherwise.  Solver hot loops call this
// periodically; a nil context never cancels.
func Checkpoint(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
