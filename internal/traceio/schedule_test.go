package traceio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	ins := sampleInstance(t)
	sched, err := ins.CanonicalSchedule([][]bool{{true, false, true}, {true, true, false}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, ins, sched); err != nil {
		t.Fatal(err)
	}
	tasks, back, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0] != ins.Tasks[0] || tasks[1] != ins.Tasks[1] {
		t.Fatalf("tasks = %+v", tasks)
	}
	if err := ins.Validate(back); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	for j := range sched.Hyper {
		for i := range sched.Hyper[j] {
			if back.Hyper[j][i] != sched.Hyper[j][i] {
				t.Fatalf("hyper (%d,%d) mismatch", j, i)
			}
			if !back.Hctx[j][i].Equal(sched.Hctx[j][i]) {
				t.Fatalf("hctx (%d,%d) mismatch", j, i)
			}
		}
	}
	// Costs agree before and after the round trip.
	opt := model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	a, err := ins.Cost(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ins.Cost(back, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cost changed: %d vs %d", a, b)
	}
}

func TestWriteScheduleJSONRejectsInvalid(t *testing.T) {
	ins := sampleInstance(t)
	if err := WriteScheduleJSON(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("accepted nils")
	}
	bad := &model.MTSchedule{}
	if err := WriteScheduleJSON(&bytes.Buffer{}, ins, bad); err == nil {
		t.Fatal("accepted invalid schedule")
	}
}

func TestReadScheduleJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{bad`,
		`{"tasks":[]}`,
		`{"tasks":[{"name":"A","local":2,"v":1,"hyper":"1x","hctx":["11","11"]}]}`,
		`{"tasks":[{"name":"A","local":2,"v":1,"hyper":"10","hctx":["111","11"]}]}`,
		`{"tasks":[{"name":"A","local":2,"v":1,"hyper":"10","hctx":["11"]}]}`,
	}
	for _, c := range cases {
		if _, _, err := ReadScheduleJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed schedule %q", c)
		}
	}
}
