package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRequirementsCSV checks the CSV reader never panics and that
// every accepted instance survives a write/read round trip.
func FuzzReadRequirementsCSV(f *testing.F) {
	f.Add("A:2:2,B:1:1\n10,1\n01,0\n")
	f.Add("A:1:1\n1\n")
	f.Add("")
	f.Add("A:x:1\n")
	f.Add("A:1:1,B:2:3\n0,00\n1,11\n1,01\n")
	f.Fuzz(func(t *testing.T, s string) {
		ins, err := ReadRequirementsCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRequirementsCSV(&buf, ins); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadRequirementsCSV(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.NumTasks() != ins.NumTasks() || back.Steps() != ins.Steps() {
			t.Fatalf("round trip changed shape")
		}
		for j := range ins.Tasks {
			if back.Tasks[j] != ins.Tasks[j] {
				t.Fatalf("round trip changed task %d", j)
			}
			for i := 0; i < ins.Steps(); i++ {
				if !back.Reqs[j][i].Equal(ins.Reqs[j][i]) {
					t.Fatalf("round trip changed requirement (%d,%d)", j, i)
				}
			}
		}
	})
}

// FuzzReadTraceJSON checks the JSON trace reader never panics and that
// accepted traces survive a write/read round trip.
func FuzzReadTraceJSON(f *testing.F) {
	f.Add(`{"program":"x","init_regs":"0000000000","steps":[]}`)
	f.Add(`{bad`)
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadTraceJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTraceJSON(&buf, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadTraceJSON(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Program != tr.Program || back.Len() != tr.Len() || back.InitRegs != tr.InitRegs {
			t.Fatalf("round trip changed trace identity")
		}
	})
}
