package traceio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bitset"
	"repro/internal/model"
)

// jsonSchedule serializes a multi-task schedule together with the task
// shapes it applies to, so a reader can validate compatibility.
type jsonSchedule struct {
	Tasks []jsonScheduleTask `json:"tasks"`
}

type jsonScheduleTask struct {
	Name  string   `json:"name"`
	Local int      `json:"local"`
	V     int64    `json:"v"`
	Hyper string   `json:"hyper"` // '1' = hyperreconfiguration before the step
	Hctx  []string `json:"hctx"`  // per step, LSB-first bit string
}

// WriteScheduleJSON serializes a schedule solved for the given
// instance.
func WriteScheduleJSON(w io.Writer, ins *model.MTSwitchInstance, s *model.MTSchedule) error {
	if ins == nil || s == nil {
		return fmt.Errorf("traceio: nil instance or schedule")
	}
	if err := ins.Validate(s); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	out := jsonSchedule{}
	for j, task := range ins.Tasks {
		hyper := make([]byte, ins.Steps())
		hctx := make([]string, ins.Steps())
		for i := 0; i < ins.Steps(); i++ {
			hyper[i] = '0'
			if s.Hyper[j][i] {
				hyper[i] = '1'
			}
			hctx[i] = s.Hctx[j][i].String()
		}
		out.Tasks = append(out.Tasks, jsonScheduleTask{
			Name:  task.Name,
			Local: task.Local,
			V:     int64(task.V),
			Hyper: string(hyper),
			Hctx:  hctx,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadScheduleJSON parses a schedule and the task shapes it was written
// for.  The caller is responsible for matching it against an instance
// (model.MTSwitchInstance.Validate does the semantic checking).
func ReadScheduleJSON(r io.Reader) ([]model.Task, *model.MTSchedule, error) {
	var in jsonSchedule
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("traceio: %w", err)
	}
	if len(in.Tasks) == 0 {
		return nil, nil, fmt.Errorf("traceio: schedule has no tasks")
	}
	n := len(in.Tasks[0].Hyper)
	tasks := make([]model.Task, len(in.Tasks))
	s := &model.MTSchedule{
		Hyper: make([][]bool, len(in.Tasks)),
		Hctx:  make([][]bitset.Set, len(in.Tasks)),
	}
	for j, jt := range in.Tasks {
		if len(jt.Hyper) != n || len(jt.Hctx) != n {
			return nil, nil, fmt.Errorf("traceio: task %q has %d/%d steps, want %d", jt.Name, len(jt.Hyper), len(jt.Hctx), n)
		}
		tasks[j] = model.Task{Name: jt.Name, Local: jt.Local, V: model.Cost(jt.V)}
		s.Hyper[j] = make([]bool, n)
		s.Hctx[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			switch jt.Hyper[i] {
			case '1':
				s.Hyper[j][i] = true
			case '0':
			default:
				return nil, nil, fmt.Errorf("traceio: task %q hyper mask has invalid character %q", jt.Name, jt.Hyper[i])
			}
			set, err := bitset.Parse(jt.Hctx[i])
			if err != nil {
				return nil, nil, fmt.Errorf("traceio: task %q hypercontext %d: %w", jt.Name, i, err)
			}
			if set.Universe() != jt.Local {
				return nil, nil, fmt.Errorf("traceio: task %q hypercontext %d over %d bits, want %d", jt.Name, i, set.Universe(), jt.Local)
			}
			s.Hctx[j][i] = set
		}
	}
	return tasks, s, nil
}
