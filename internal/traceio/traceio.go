// Package traceio serializes reconfiguration traces and
// context-requirement sequences so experiments can be stored, diffed
// and re-analyzed without re-running the simulator.
//
// Two formats are supported:
//
//   - a JSON trace format carrying the full SHyRA execution record
//     (configuration bits, unit usage, live bits, register snapshots),
//   - a CSV requirement format carrying just the multi-task
//     requirement sequences (one row per synchronized step, one column
//     per task, cells are LSB-first bit strings), with the task
//     declarations in the header.  This is the exchange format of the
//     optimizer CLIs.
package traceio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/shyra"
)

// WriteRequirementsCSV writes the instance's requirement sequences.
// The header cell for task j is "name:local:v"; each data row holds one
// step's per-task requirement bit strings.
func WriteRequirementsCSV(w io.Writer, ins *model.MTSwitchInstance) error {
	if ins == nil {
		return fmt.Errorf("traceio: nil instance")
	}
	cw := csv.NewWriter(w)
	header := make([]string, ins.NumTasks())
	for j, t := range ins.Tasks {
		header[j] = fmt.Sprintf("%s:%d:%d", t.Name, t.Local, t.V)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, ins.NumTasks())
	for i := 0; i < ins.Steps(); i++ {
		for j := 0; j < ins.NumTasks(); j++ {
			row[j] = ins.Reqs[j][i].String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRequirementsCSV parses what WriteRequirementsCSV produced.
func ReadRequirementsCSV(r io.Reader) (*model.MTSwitchInstance, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("traceio: empty requirement file")
	}
	header := records[0]
	tasks := make([]model.Task, len(header))
	for j, cell := range header {
		parts := strings.Split(cell, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("traceio: malformed header cell %q (want name:local:v)", cell)
		}
		local, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("traceio: header cell %q: %w", cell, err)
		}
		v, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traceio: header cell %q: %w", cell, err)
		}
		tasks[j] = model.Task{Name: parts[0], Local: local, V: model.Cost(v)}
	}
	reqs := make([][]bitset.Set, len(tasks))
	for j := range reqs {
		reqs[j] = make([]bitset.Set, 0, len(records)-1)
	}
	for ri, row := range records[1:] {
		if len(row) != len(tasks) {
			return nil, fmt.Errorf("traceio: row %d has %d cells, want %d", ri+1, len(row), len(tasks))
		}
		for j, cell := range row {
			s, err := bitset.Parse(cell)
			if err != nil {
				return nil, fmt.Errorf("traceio: row %d task %q: %w", ri+1, tasks[j].Name, err)
			}
			if s.Universe() != tasks[j].Local {
				return nil, fmt.Errorf("traceio: row %d task %q bit string length %d, want %d", ri+1, tasks[j].Name, s.Universe(), tasks[j].Local)
			}
			reqs[j] = append(reqs[j], s)
		}
	}
	return model.NewMTSwitchInstance(tasks, reqs)
}

// jsonTrace mirrors shyra.Trace with serialization-friendly fields.
type jsonTrace struct {
	Program  string     `json:"program"`
	InitRegs string     `json:"init_regs"`
	Steps    []jsonStep `json:"steps"`
}

type jsonStep struct {
	PC        int      `json:"pc"`
	Name      string   `json:"name"`
	Config    string   `json:"config"` // 48-bit LSB-first bit string
	UseLUT1   bool     `json:"use_lut1"`
	UseLUT2   bool     `json:"use_lut2"`
	LiveIn1   uint8    `json:"live_inputs_lut1"`
	LiveIn2   uint8    `json:"live_inputs_lut2"`
	Live      []string `json:"live"` // per unit, LSB-first bit strings
	RegsAfter string   `json:"regs_after"`
}

// WriteTraceJSON serializes a SHyRA trace.
func WriteTraceJSON(w io.Writer, tr *shyra.Trace) error {
	if tr == nil {
		return fmt.Errorf("traceio: nil trace")
	}
	out := jsonTrace{Program: tr.Program, InitRegs: regsString(tr.InitRegs)}
	for _, st := range tr.Steps {
		live := make([]string, 0, len(st.Live))
		for _, u := range shyra.Units() {
			live = append(live, st.Live[u].String())
		}
		out.Steps = append(out.Steps, jsonStep{
			PC:        st.PC,
			Name:      st.Name,
			Config:    st.Cfg.Encode().String(),
			UseLUT1:   st.Use.LUT[0],
			UseLUT2:   st.Use.LUT[1],
			LiveIn1:   st.Use.LiveInputs[0],
			LiveIn2:   st.Use.LiveInputs[1],
			Live:      live,
			RegsAfter: regsString(st.RegsAfter),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// regsString renders a register image as a '0'/'1' string.
func regsString(regs [shyra.NumRegs]bool) string {
	out := make([]byte, shyra.NumRegs)
	for r := 0; r < shyra.NumRegs; r++ {
		out[r] = '0'
		if regs[r] {
			out[r] = '1'
		}
	}
	return string(out)
}

// parseRegs parses what regsString produced.
func parseRegs(s string) ([shyra.NumRegs]bool, error) {
	var regs [shyra.NumRegs]bool
	if len(s) != shyra.NumRegs {
		return regs, fmt.Errorf("regs string length %d, want %d", len(s), shyra.NumRegs)
	}
	for ri := 0; ri < shyra.NumRegs; ri++ {
		switch s[ri] {
		case '1':
			regs[ri] = true
		case '0':
		default:
			return regs, fmt.Errorf("regs string has invalid character %q", s[ri])
		}
	}
	return regs, nil
}

// ReadTraceJSON parses what WriteTraceJSON produced.
func ReadTraceJSON(r io.Reader) (*shyra.Trace, error) {
	var in jsonTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	tr := &shyra.Trace{Program: in.Program}
	if in.InitRegs != "" {
		regs, err := parseRegs(in.InitRegs)
		if err != nil {
			return nil, fmt.Errorf("traceio: init regs: %w", err)
		}
		tr.InitRegs = regs
	}
	for si, js := range in.Steps {
		cfgBits, err := bitset.Parse(js.Config)
		if err != nil {
			return nil, fmt.Errorf("traceio: step %d config: %w", si, err)
		}
		cfg, err := shyra.DecodeConfig(cfgBits)
		if err != nil {
			return nil, fmt.Errorf("traceio: step %d: %w", si, err)
		}
		if len(js.Live) != len(shyra.Units()) {
			return nil, fmt.Errorf("traceio: step %d has %d live sets, want %d", si, len(js.Live), len(shyra.Units()))
		}
		var live [4]bitset.Set
		for ui, u := range shyra.Units() {
			s, err := bitset.Parse(js.Live[ui])
			if err != nil {
				return nil, fmt.Errorf("traceio: step %d live[%v]: %w", si, u, err)
			}
			if s.Universe() != u.Bits() {
				return nil, fmt.Errorf("traceio: step %d live[%v] over %d bits, want %d", si, u, s.Universe(), u.Bits())
			}
			live[u] = s
		}
		regs, err := parseRegs(js.RegsAfter)
		if err != nil {
			return nil, fmt.Errorf("traceio: step %d: %w", si, err)
		}
		tr.Steps = append(tr.Steps, shyra.TraceStep{
			PC:        js.PC,
			Name:      js.Name,
			Cfg:       cfg,
			Use:       shyra.Usage{LUT: [2]bool{js.UseLUT1, js.UseLUT2}, LiveInputs: [2]uint8{js.LiveIn1, js.LiveIn2}},
			Live:      live,
			RegsAfter: regs,
		})
	}
	return tr, nil
}
