package traceio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/shyra"
)

func sampleInstance(t *testing.T) *model.MTSwitchInstance {
	t.Helper()
	tasks := []model.Task{
		{Name: "A", Local: 3, V: 2},
		{Name: "B", Local: 2, V: 5},
	}
	reqs := [][]bitset.Set{
		{bitset.FromMembers(3, 0), bitset.FromMembers(3, 1, 2), bitset.New(3)},
		{bitset.FromMembers(2, 1), bitset.New(2), bitset.FromMembers(2, 0, 1)},
	}
	ins, err := model.NewMTSwitchInstance(tasks, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestRequirementsCSVRoundTrip(t *testing.T) {
	ins := sampleInstance(t)
	var buf bytes.Buffer
	if err := WriteRequirementsCSV(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRequirementsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != ins.NumTasks() || back.Steps() != ins.Steps() {
		t.Fatalf("shape mismatch: %d×%d", back.NumTasks(), back.Steps())
	}
	for j := range ins.Tasks {
		if back.Tasks[j] != ins.Tasks[j] {
			t.Fatalf("task %d mismatch: %+v vs %+v", j, back.Tasks[j], ins.Tasks[j])
		}
		for i := 0; i < ins.Steps(); i++ {
			if !back.Reqs[j][i].Equal(ins.Reqs[j][i]) {
				t.Fatalf("requirement (%d,%d) mismatch", j, i)
			}
		}
	}
}

func TestReadRequirementsCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"A:x:1\n",           // bad local
		"A:1:x\n",           // bad v
		"A-1-1\n",           // malformed header
		"A:1:1\n10\n",       // bit string too long
		"A:2:1\n1x\n",       // invalid character
		"A:1:1,B:1:1\n1\n",  // short row
		"A:1:1\n1\n0\n11\n", // inconsistent later row
	}
	for _, c := range cases {
		if _, err := ReadRequirementsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestWriteRequirementsCSVNil(t *testing.T) {
	if err := WriteRequirementsCSV(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("accepted nil instance")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	p, err := apps.Counter(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := shyra.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != tr.Program || back.Len() != tr.Len() {
		t.Fatalf("trace identity mismatch: %q/%d vs %q/%d", back.Program, back.Len(), tr.Program, tr.Len())
	}
	if back.InitRegs != tr.InitRegs {
		t.Fatalf("init regs mismatch: %v vs %v", back.InitRegs, tr.InitRegs)
	}
	for i := range tr.Steps {
		a, b := tr.Steps[i], back.Steps[i]
		if a.PC != b.PC || a.Name != b.Name || a.Cfg != b.Cfg || a.Use != b.Use || a.RegsAfter != b.RegsAfter {
			t.Fatalf("step %d mismatch", i)
		}
		for _, u := range shyra.Units() {
			if !a.Live[u].Equal(b.Live[u]) {
				t.Fatalf("step %d live[%v] mismatch", i, u)
			}
		}
	}
	// The requirement extraction must agree too.
	ra := tr.TaskRequirements(shyra.GranularityBit)
	rb := back.TaskRequirements(shyra.GranularityBit)
	for j := range ra {
		for i := range ra[j] {
			if !ra[j][i].Equal(rb[j][i]) {
				t.Fatalf("requirements (%d,%d) mismatch after round trip", j, i)
			}
		}
	}
}

func TestReadTraceJSONErrors(t *testing.T) {
	cases := []string{
		"",
		"{bad json",
		`{"program":"x","steps":[{"config":"101"}]}`,                             // short config
		`{"program":"x","steps":[{"config":"` + strings.Repeat("0", 48) + `"}]}`, // missing live sets
	}
	for _, c := range cases {
		if _, err := ReadTraceJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestWriteTraceJSONNil(t *testing.T) {
	if err := WriteTraceJSON(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("accepted nil trace")
	}
}
