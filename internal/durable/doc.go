// Package durable is the crash-safety layer underneath hyperd: an
// append-only write-ahead log, an atomic file writer and a
// content-addressed on-disk store.  Together they let the service
// survive a kill -9 without losing solved work — the WAL journals
// every state mutation (job submits and completions, session openers
// and step batches), the store spills cache entries and engine
// checkpoints, and a restarted process replays the journal against the
// spilled state to resume exactly where the dead one stopped.
//
// Design points:
//
//   - WAL records are CRC32C (Castagnoli) framed.  Replay tolerates a
//     torn or corrupt tail — the valid prefix is recovered in full and
//     everything from the first bad frame on is dropped, so a crash
//     mid-append never poisons the log.
//   - The log is segmented (Options.SegmentBytes) and compacted by
//     snapshot: Compact rotates to a fresh segment, writes the caller's
//     snapshot of live state into it, and deletes every older segment.
//   - Fsync policy is configurable: FsyncAlways (every append, the
//     durability default), FsyncInterval (a background flusher, bounded
//     loss window), FsyncNever (rotation/close only — the OS decides).
//   - AtomicWrite is the shared tmp+rename checkpoint idiom (write,
//     fsync, rename, fsync dir): readers see the old bytes or the new
//     bytes, never a torn file.
//   - Store addresses blobs by key under two-level fan-out directories
//     and writes through AtomicWrite, so a crashed spill never leaves a
//     half-written entry.
package durable
