package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStorePutGetDelete(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := s.Put("deadbeef01", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("deadbeef01")
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if err := s.Put("deadbeef01", []byte("replaced")); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	if got, _ := s.Get("deadbeef01"); string(got) != "replaced" {
		t.Fatalf("Get after replace = %q", got)
	}
	if err := s.Delete("deadbeef01"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := s.Get("deadbeef01"); ok {
		t.Fatal("Get after Delete should miss")
	}
	if err := s.Delete("deadbeef01"); err != nil {
		t.Fatalf("Delete of absent key should be a no-op: %v", err)
	}
}

func TestStoreKeyValidation(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sess-7", "a", "AB.cd_ef-01"} {
		if err := s.Put(key, []byte("x")); err != nil {
			t.Fatalf("Put(%q): %v", key, err)
		}
		if _, ok := s.Get(key); !ok {
			t.Fatalf("Get(%q) missed", key)
		}
	}
	for _, key := range []string{"", ".", "..", "a/b", "../escape", "a b", "k\x00"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put(%q) should be rejected", key)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("Get(%q) should miss", key)
		}
	}
}

func TestStoreWalk(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"aa11": "one", "aa22": "two", "bb33": "three", "sess-1": "four"}
	for k, v := range want {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	// A leftover temp file from an interrupted AtomicWrite is skipped.
	if err := os.WriteFile(filepath.Join(dir, "aa", "aa11.tmp99"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	if err := s.Walk(func(key string, data []byte) error {
		got[key] = string(data)
		return nil
	}); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Walk saw %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Walk[%q] = %q, want %q", k, got[k], v)
		}
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	// Walk abort propagates.
	if err := s.Walk(func(string, []byte) error { return fmt.Errorf("stop") }); err == nil {
		t.Fatal("Walk should propagate fn error")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if err := s.Put("cafebabe", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("cafebabe"); !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}
