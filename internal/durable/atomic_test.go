package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := AtomicWrite(path, []byte("v1")); err != nil {
		t.Fatalf("AtomicWrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if err := AtomicWrite(path, []byte("v2")); err != nil {
		t.Fatalf("AtomicWrite overwrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

func TestAtomicWriteMissingDir(t *testing.T) {
	err := AtomicWrite(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("AtomicWrite into a missing directory should fail")
	}
}
