package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestWAL(t *testing.T, dir string, opt WALOptions) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, opt)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func replayAll(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var got [][]byte
	if err := w.Replay(func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	got := replayAll(t, w2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	st := w2.Stats()
	if st.Replayed != int64(len(want)) {
		t.Fatalf("Replayed = %d, want %d", st.Replayed, len(want))
	}
	if st.DroppedTail != 0 {
		t.Fatalf("DroppedTail = %d, want 0", st.DroppedTail)
	}
}

func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: append a frame header that promises more bytes
	// than follow (a crash mid-write).
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [frameBytes]byte
	binary.LittleEndian.PutUint32(frame[0:], 999)
	binary.LittleEndian.PutUint32(frame[4:], 0xdeadbeef)
	f.Write(frame[:])
	f.Write([]byte("partial"))
	f.Close()

	w2 := openTestWAL(t, dir, WALOptions{})
	got := replayAll(t, w2)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(got))
	}
	if w2.Stats().DroppedTail == 0 {
		t.Fatal("DroppedTail not counted")
	}
	// The repaired log must accept further appends cleanly.
	if err := w2.Append([]byte("after-repair")); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	w2.Close()
	w3 := openTestWAL(t, dir, WALOptions{})
	if got := replayAll(t, w3); len(got) != 6 || string(got[5]) != "after-repair" {
		t.Fatalf("after repair+append: got %d records (last %q)", len(got), got[len(got)-1])
	}
}

func TestWALCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	idxs := listSegments(t, dir)
	if len(idxs) < 3 {
		t.Fatalf("want >=3 segments for this test, got %d", len(idxs))
	}

	// Flip a payload byte in a middle segment.
	mid := idxs[len(idxs)/2]
	path := filepath.Join(dir, segmentName(mid))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameBytes] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, WALOptions{SegmentBytes: 64})
	got := replayAll(t, w2)
	// Everything before the corrupt record survives; the corrupt record
	// and all later segments are gone.
	for i, rec := range got {
		if want := fmt.Sprintf("record-%02d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
	if len(got) >= 20 {
		t.Fatalf("corrupt middle segment should drop records, got all %d", len(got))
	}
	for _, idx := range listSegments(t, dir) {
		if idx > mid {
			t.Fatalf("segment %d after corrupt segment %d not deleted", idx, mid)
		}
	}
}

func listSegments(t *testing.T, dir string) []int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var idxs []int64
	for _, e := range entries {
		if idx, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	return idxs
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 128})
	rec := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 10; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := w.Stats(); st.Segments < 2 {
		t.Fatalf("Segments = %d, want rotation to have happened", st.Segments)
	}
	got := replayAll(t, w)
	if len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := w.Append([]byte(fmt.Sprintf("old-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := w.Stats()
	err := w.Compact(func(app func([]byte) error) error {
		return app([]byte("snapshot"))
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := w.Stats()
	if after.Segments != 1 {
		t.Fatalf("Segments after compact = %d, want 1", after.Segments)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("Bytes after compact = %d, want < %d", after.Bytes, before.Bytes)
	}
	if err := w.Append([]byte("post-compact")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	w2 := openTestWAL(t, dir, WALOptions{SegmentBytes: 64})
	got := replayAll(t, w2)
	if len(got) != 2 || string(got[0]) != "snapshot" || string(got[1]) != "post-compact" {
		t.Fatalf("replay after compact = %q", got)
	}
}

func TestWALCompactWriteErrorKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("keep-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Compact(func(func([]byte) error) error {
		return fmt.Errorf("snapshot failed")
	}); err == nil {
		t.Fatal("Compact should propagate the snapshot error")
	}
	got := replayAll(t, w)
	if len(got) != 3 {
		t.Fatalf("history lost on failed compact: %d records", len(got))
	}
}

// TestWALReplayIdempotent is the satellite property test: replaying a
// journal twice yields exactly the same record sequence as once — the
// log itself adds no state, so replay(journal(ops)) is idempotent.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 96})
	for i := 0; i < 30; i++ {
		if err := w.Append([]byte(fmt.Sprintf("op-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	first := replayAll(t, w)
	second := replayAll(t, w)
	if len(first) != len(second) {
		t.Fatalf("double replay diverged: %d vs %d records", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("record %d diverged: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		w := openTestWAL(t, t.TempDir(), WALOptions{Fsync: FsyncAlways})
		w.Append([]byte("a"))
		w.Append([]byte("b"))
		if st := w.Stats(); st.Fsyncs < 2 {
			t.Fatalf("Fsyncs = %d, want >=2 under always", st.Fsyncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		w := openTestWAL(t, t.TempDir(), WALOptions{Fsync: FsyncInterval, FsyncIntervalDur: 5 * time.Millisecond})
		w.Append([]byte("a"))
		deadline := time.Now().Add(2 * time.Second)
		for w.Stats().Fsyncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval flusher never fsynced")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("never", func(t *testing.T) {
		w := openTestWAL(t, t.TempDir(), WALOptions{Fsync: FsyncNever})
		w.Append([]byte("a"))
		if st := w.Stats(); st.Fsyncs != 0 {
			t.Fatalf("Fsyncs = %d, want 0 under never before Sync", st.Fsyncs)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		if st := w.Stats(); st.Fsyncs != 1 {
			t.Fatalf("Fsyncs = %d after explicit Sync, want 1", st.Fsyncs)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"": FsyncAlways, "always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy should reject unknown policies")
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	w.Close()
	if err := w.Append([]byte("x")); err == nil {
		t.Fatal("Append on closed WAL should fail")
	}
}

// FuzzWALDecode is the satellite fuzz target: ScanRecords must never
// panic on arbitrary bytes, and for images built as valid-prefix +
// garbage-tail it must recover the prefix records exactly and report
// the image as not intact.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte(segMagic), []byte{})
	f.Add([]byte(segMagic), []byte("garbage"))
	f.Add([]byte{}, []byte{1, 2, 3})
	frame := func(payload []byte) []byte {
		var hdr [frameBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		return append(hdr[:], payload...)
	}
	good := append([]byte(segMagic), frame([]byte("hello"))...)
	good = append(good, frame([]byte("world"))...)
	f.Add(good, []byte{0x01})
	f.Add(good, frame([]byte("tail"))[:5])

	f.Fuzz(func(t *testing.T, prefix, tail []byte) {
		// Arbitrary bytes: must not panic, valid prefix length must be
		// in bounds and re-scanning the valid prefix must be stable.
		all := append(append([]byte(nil), prefix...), tail...)
		recs, valid, intact := ScanRecords(all)
		if valid < 0 || valid > len(all) {
			t.Fatalf("valid = %d out of range [0,%d]", valid, len(all))
		}
		if intact && valid != len(all) {
			t.Fatalf("intact image but valid %d != len %d", valid, len(all))
		}
		recs2, valid2, intact2 := ScanRecords(all[:valid])
		if valid2 != valid || (valid > 0 && !intact2) {
			t.Fatalf("re-scan of valid prefix: valid %d->%d intact %v", valid, valid2, intact2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-scan record count %d != %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("re-scan record %d diverged", i)
			}
		}
	})
}

// TestWALScanTornFinalRecord pins the exact satellite claim: a torn
// final record is dropped and the prefix is recovered in full.
func TestWALScanTornFinalRecord(t *testing.T) {
	frame := func(payload []byte) []byte {
		var hdr [frameBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		return append(hdr[:], payload...)
	}
	img := append([]byte(segMagic), frame([]byte("a"))...)
	img = append(img, frame([]byte("bb"))...)
	full := frame([]byte("torn-away"))
	for cut := 1; cut < len(full); cut++ {
		recs, valid, intact := ScanRecords(append(append([]byte(nil), img...), full[:cut]...))
		if intact {
			t.Fatalf("cut %d: image reported intact", cut)
		}
		if valid != len(img) {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, len(img))
		}
		if len(recs) != 2 || string(recs[0]) != "a" || string(recs[1]) != "bb" {
			t.Fatalf("cut %d: prefix records %q", cut, recs)
		}
	}
}
