package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when the WAL forces appended records to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: zero loss window, the
	// durability default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs from a background flusher on a fixed period:
	// a crash loses at most one interval of appends.
	FsyncInterval
	// FsyncNever leaves flushing to the OS (plus segment rotation and
	// Close): fastest, widest loss window.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy maps the -fsync flag values onto the policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
}

// WALOptions tune a WAL; the zero value selects the defaults.
type WALOptions struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 8 MiB).
	SegmentBytes int64
	// Fsync is the flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncIntervalDur is the background flush period for
	// FsyncInterval (default 100ms).
	FsyncIntervalDur time.Duration
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncIntervalDur <= 0 {
		o.FsyncIntervalDur = 100 * time.Millisecond
	}
	return o
}

// WALStats snapshot the log's observability counters.
type WALStats struct {
	// Appends counts records appended this process lifetime.
	Appends int64
	// Fsyncs counts explicit fsync calls (append-path, flusher,
	// rotation and Sync).
	Fsyncs int64
	// FlushSeconds is the cumulative wall time spent inside fsync, and
	// FlushCount how many flushes it covers (a Prometheus summary pair).
	FlushSeconds float64
	FlushCount   int64
	// ReplayedRecords counts records delivered by Replay.
	Replayed int64
	// DroppedTail counts bytes discarded at open because the final
	// frames were torn or corrupt.
	DroppedTail int64
	// Segments and Bytes describe the on-disk footprint.
	Segments int
	Bytes    int64
}

// WAL is an append-only, CRC32C-framed, segmented write-ahead log.
// One writer process owns a WAL directory at a time; Append and
// Compact are safe for concurrent use within that process.
type WAL struct {
	mu  sync.Mutex
	dir string
	opt WALOptions

	f      *os.File // current segment, opened for append
	idx    int64    // current segment index
	size   int64    // current segment size in bytes
	total  int64    // bytes across all live segments
	nseg   int      // live segment count
	dirty  bool     // appended since last fsync
	closed bool

	appends     atomic.Int64
	fsyncs      atomic.Int64
	flushNanos  atomic.Int64
	flushCount  atomic.Int64
	replayed    atomic.Int64
	droppedTail atomic.Int64

	stopFlush chan struct{}
	flushDone chan struct{}
}

const (
	// segMagic heads every segment file.
	segMagic = "HWALSEG1"
	// frameBytes is the per-record frame: u32 payload length, u32
	// CRC32C of the payload, both little-endian.
	frameBytes = 8
	// maxRecordBytes bounds one record; a larger declared length is
	// treated as corruption (hardens replay against garbage files).
	maxRecordBytes = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segmentName(idx int64) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (int64, bool) {
	var idx int64
	if n, err := fmt.Sscanf(name, "wal-%08d.seg", &idx); n != 1 || err != nil {
		return 0, false
	}
	return idx, true
}

// OpenWAL opens (creating if needed) the log in dir, scans the
// existing segments, repairs a torn tail — the file is truncated back
// to its last whole, checksummed record, and any segments after the
// first corruption are deleted — and positions the writer at the end.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	w := &WAL{dir: dir, opt: opt}
	if err := w.recoverSegments(); err != nil {
		return nil, err
	}
	if w.opt.Fsync == FsyncInterval {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher()
	}
	return w, nil
}

// segmentIndices lists the live segment indices in ascending order.
func (w *WAL) segmentIndices() ([]int64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var idxs []int64
	for _, e := range entries {
		if idx, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// recoverSegments validates every segment in order, truncating the
// first corrupt one back to its valid prefix and deleting everything
// after it, then opens the last survivor for append (or starts fresh).
func (w *WAL) recoverSegments() error {
	idxs, err := w.segmentIndices()
	if err != nil {
		return fmt.Errorf("durable: open wal: %w", err)
	}
	var live []int64
	for i, idx := range idxs {
		path := filepath.Join(w.dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("durable: open wal: %w", err)
		}
		_, valid, intact := ScanRecords(data)
		if valid == 0 {
			// Header gone: the segment carries nothing; it and every
			// later segment are causally after the loss point.
			w.dropSegmentsFrom(idxs[i:])
			w.droppedTail.Add(int64(len(data)))
			break
		}
		if !intact {
			w.droppedTail.Add(int64(len(data) - valid))
			if err := os.Truncate(path, int64(valid)); err != nil {
				return fmt.Errorf("durable: repair wal tail: %w", err)
			}
			live = append(live, idx)
			w.total += int64(valid)
			w.dropSegmentsFrom(idxs[i+1:])
			break
		}
		live = append(live, idx)
		w.total += int64(valid)
	}
	if len(live) == 0 {
		w.idx = 1
		return w.openSegmentLocked()
	}
	w.nseg = len(live)
	w.idx = live[len(live)-1]
	path := filepath.Join(w.dir, segmentName(w.idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: open wal: %w", err)
	}
	w.f = f
	w.size = st.Size()
	return nil
}

// dropSegmentsFrom deletes the named segment indices (corruption
// aftermath: records past the loss point must not replay).
func (w *WAL) dropSegmentsFrom(idxs []int64) {
	for _, idx := range idxs {
		path := filepath.Join(w.dir, segmentName(idx))
		if st, err := os.Stat(path); err == nil {
			w.droppedTail.Add(st.Size())
		}
		os.Remove(path)
	}
	syncDir(w.dir)
}

// openSegmentLocked creates segment w.idx fresh with its header.
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.dir, segmentName(w.idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("durable: open segment: %w", err)
	}
	syncDir(w.dir)
	w.f = f
	w.size = int64(len(segMagic))
	w.total += int64(len(segMagic))
	w.nseg++
	return nil
}

// ScanRecords walks one segment image and returns the whole records it
// carries, the byte length of the valid prefix (header plus whole
// checksummed frames) and whether the image was fully intact.  It
// never panics on arbitrary input and never allocates beyond the input
// size — the decode path FuzzWALDecode drives.
func ScanRecords(data []byte) (recs [][]byte, valid int, intact bool) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, false
	}
	off := len(segMagic)
	for {
		if off == len(data) {
			return recs, off, true
		}
		if len(data)-off < frameBytes {
			return recs, off, false
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || int(n) > len(data)-off-frameBytes {
			return recs, off, false
		}
		payload := data[off+frameBytes : off+frameBytes+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, false
		}
		recs = append(recs, payload)
		off += frameBytes + int(n)
	}
}

// Replay streams every surviving record, oldest first, into fn.  A
// non-nil fn error aborts the replay and is returned.  Replay may be
// called on a WAL that is also appending, but the records fn sees are
// only those on disk when their segment is read.
func (w *WAL) Replay(fn func(rec []byte) error) error {
	w.mu.Lock()
	idxs, err := w.segmentIndices()
	dir := w.dir
	w.mu.Unlock()
	if err != nil {
		return fmt.Errorf("durable: replay: %w", err)
	}
	for _, idx := range idxs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			return fmt.Errorf("durable: replay: %w", err)
		}
		recs, _, _ := ScanRecords(data)
		for _, rec := range recs {
			w.replayed.Add(1)
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append writes one record, rotating first if the current segment is
// full, and fsyncs according to the policy.
func (w *WAL) Append(rec []byte) error {
	if int64(len(rec)) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(rec), maxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: wal is closed")
	}
	if w.size+frameBytes+int64(len(rec)) > w.opt.SegmentBytes && w.size > int64(len(segMagic)) {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	var frame [frameBytes]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(rec, castagnoli))
	if _, err := w.f.Write(frame[:]); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	w.size += frameBytes + int64(len(rec))
	w.total += frameBytes + int64(len(rec))
	w.appends.Add(1)
	w.dirty = true
	if w.opt.Fsync == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

// rotateLocked seals the current segment (flushed to disk) and opens
// the next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: rotate: %w", err)
	}
	w.idx++
	return w.openSegmentLocked()
}

// syncLocked fsyncs the current segment if it has unflushed appends.
func (w *WAL) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.flushNanos.Add(int64(time.Since(start)))
	w.flushCount.Add(1)
	w.fsyncs.Add(1)
	w.dirty = false
	return nil
}

// Sync forces unflushed appends to stable storage regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// flusher is the FsyncInterval background loop.
func (w *WAL) flusher() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opt.FsyncIntervalDur)
	defer t.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

// Compact snapshots live state into a fresh segment and discards the
// history: it rotates, hands the caller an append function that writes
// into the new segment, fsyncs it, and deletes every older segment.
// Replay afterwards sees the snapshot records followed by anything
// appended later — equivalent to the full history for state that the
// snapshot captures.  If write returns an error the new segment keeps
// whatever was written but the old segments are retained (replay stays
// a superset; compaction can be retried).
func (w *WAL) Compact(write func(app func(rec []byte) error) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: wal is closed")
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	keepFrom := w.idx + 1
	w.idx = keepFrom
	if err := w.openSegmentLocked(); err != nil {
		return err
	}
	app := func(rec []byte) error {
		if int64(len(rec)) > maxRecordBytes {
			return fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(rec), maxRecordBytes)
		}
		var frame [frameBytes]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(rec)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(rec, castagnoli))
		if _, err := w.f.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.f.Write(rec); err != nil {
			return err
		}
		w.size += frameBytes + int64(len(rec))
		w.total += frameBytes + int64(len(rec))
		w.appends.Add(1)
		w.dirty = true
		return nil
	}
	if err := write(app); err != nil {
		return fmt.Errorf("durable: compact snapshot: %w", err)
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	// Snapshot durable: the history is redundant now.
	idxs, err := w.segmentIndices()
	if err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	for _, idx := range idxs {
		if idx >= keepFrom {
			continue
		}
		path := filepath.Join(w.dir, segmentName(idx))
		if st, err := os.Stat(path); err == nil {
			w.total -= st.Size()
		}
		os.Remove(path)
		w.nseg--
	}
	syncDir(w.dir)
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	nseg, bytes := w.nseg, w.total
	w.mu.Unlock()
	return WALStats{
		Appends:      w.appends.Load(),
		Fsyncs:       w.fsyncs.Load(),
		FlushSeconds: float64(w.flushNanos.Load()) / float64(time.Second),
		FlushCount:   w.flushCount.Load(),
		Replayed:     w.replayed.Load(),
		DroppedTail:  w.droppedTail.Load(),
		Segments:     nseg,
		Bytes:        bytes,
	}
}

// Close flushes and releases the log.  Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	w.mu.Unlock()
	if w.stopFlush != nil {
		close(w.stopFlush)
		<-w.flushDone
	}
	return err
}
