package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWrite writes data to path through the tmp+rename idiom: the
// bytes land in a sibling temp file, are fsynced, and the temp file is
// renamed over path.  A reader (or a process restarted after a crash
// at any point in between) sees either the previous content or the new
// content, never a torn mix.  The parent directory is fsynced after
// the rename so the new directory entry itself survives a power cut.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so entry creations/renames/removals are
// durable.  Best effort: some filesystems refuse directory fsync, and
// a failure here narrows durability without breaking correctness.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
