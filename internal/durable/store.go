package durable

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed blob store on disk: each key maps to
// one file under a two-level fan-out (dir/ab/abcdef...) and every
// write goes through AtomicWrite, so a crash mid-spill never leaves a
// torn entry.  Keys are restricted to [A-Za-z0-9._-] so hex digests
// and "sess-N" identifiers both work and nothing can escape the root.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func validKey(key string) bool {
	if key == "" || len(key) > 256 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	// "." and ".." are valid by character class but are path traversal.
	return key != "." && key != ".."
}

// path fans the key out over a two-character prefix directory.
func (s *Store) path(key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, prefix, key)
}

// Put durably writes the blob for key, replacing any previous value.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("durable: invalid store key %q", key)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("durable: store put %s: %w", key, err)
	}
	return AtomicWrite(path, data)
}

// Get returns the blob for key, or ok=false if it is absent.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete removes the blob for key; deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	if !validKey(key) {
		return fmt.Errorf("durable: invalid store key %q", key)
	}
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: store delete %s: %w", key, err)
	}
	return nil
}

// Walk visits every stored blob.  Returning an error from fn aborts
// the walk and propagates the error.  Temp files left by an
// interrupted AtomicWrite are skipped (and opportunistically removed).
func (s *Store) Walk(fn func(key string, data []byte) error) error {
	return filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.Contains(name, ".tmp") {
			os.Remove(path)
			return nil
		}
		if !validKey(name) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("durable: store walk: %w", err)
		}
		return fn(name, data)
	})
}

// Len counts the stored blobs (test/diagnostic helper).
func (s *Store) Len() int {
	n := 0
	s.Walk(func(string, []byte) error { n++; return nil })
	return n
}
