// Package portfolio is the racing meta-solver: it runs a small
// portfolio of registered MT-Switch solvers concurrently on one
// instance — the exact DP (monolithic, or partitioned above the
// automatic step threshold), the beam configuration and the GA — and
// returns the best result, cancelling the losers as soon as one
// contender proves optimality.
//
// The contenders are coupled through a shared incumbent board
// (solve.Incumbent): every valid full-schedule cost a heuristic finds
// is published, and the exact DP adopts any bound tighter than its own
// between steps, so its `> incumbent` cutoffs prune harder the moment
// a heuristic gets lucky.  The exchange never changes the returned
// cost (published bounds are valid upper bounds and the cutoffs are
// strict), only how much of the state space the DP has to touch.
//
// On top of the racer sits learned dispatch (dispatch.go): a win-record
// table keyed by coarse instance features predicts the likely winner,
// and when the prediction is confident the portfolio skips the race
// and dispatches straight to it.  Races feed the table; direct
// dispatches do not (so a wrong habit cannot reinforce itself
// unobserved — low confidence always forces a fresh race eventually
// via the staleness rule).
package portfolio

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mtswitch"
	"repro/internal/partition"
	"repro/internal/solve"
)

// Config shapes one race.  The zero value is NOT the default
// configuration; use Defaults().
type Config struct {
	// Exchange couples the contenders through a shared incumbent
	// board.  Off, the contenders run blind — only useful for
	// measuring what the exchange buys (paperbench gate b).
	Exchange bool
	// Table is the learned-dispatch win-record table; nil disables
	// dispatch and always races.
	Table *Table
	// MinSamples and MinShare gate direct dispatch: the predicted
	// winner must hold at least MinShare of at least MinSamples
	// recorded race wins in the instance's feature bucket.
	MinSamples int64
	MinShare   float64
	// ForceDirect names a solver to dispatch to without consulting the
	// table — the service batch mode sets it on follower requests after
	// the group leader's race has picked a winner.
	ForceDirect string
}

// Defaults is the configuration the registered "portfolio" solver
// runs with: exchange on, dispatch through the shared DefaultTable.
func Defaults() Config {
	return Config{Exchange: true, Table: DefaultTable, MinSamples: 3, MinShare: 0.8}
}

// contender is one lane of a race.
type contender struct {
	name string
	run  func(ctx context.Context) (*solve.Solution, solve.Stats, error)
}

// lane is one contender's outcome.
type lane struct {
	report solve.ContenderReport
	sol    *solve.Solution
}

// exactName picks the exact contender: the partitioned decomposition
// once the automatic planner would split the trace, the monolithic DP
// below that.
func exactName(inst *solve.Instance) string {
	if partition.AutoPartitions(inst.MT.Steps()) > 1 {
		return "exact-partitioned"
	}
	return "exact"
}

// contenders assembles the race lineup.  The exact lane keeps the
// caller's worker count (it is the one that scales); the heuristic
// scouts run single-threaded so the race does not oversubscribe the
// machine.
func contenders(inst *solve.Instance, opts solve.Options) []contender {
	exact := exactName(inst)
	scout := opts
	scout.Workers = 1
	scout.Timeout = 0
	exactOpts := opts
	exactOpts.Timeout = 0

	cs := make([]contender, 0, 3)
	if exact == "exact" {
		// Drive the monolithic DP through the stepped engine so a
		// cancelled lane still surrenders the stats of the work it did.
		cs = append(cs, contender{name: "exact", run: func(ctx context.Context) (*solve.Solution, solve.Stats, error) {
			return runSteppedExact(ctx, inst, exactOpts)
		}})
	} else {
		cs = append(cs, contender{name: exact, run: func(ctx context.Context) (*solve.Solution, solve.Stats, error) {
			sol, err := solve.Run(ctx, exact, inst, exactOpts)
			if err != nil {
				return nil, solve.Stats{}, err
			}
			return sol, sol.Stats, nil
		}})
	}
	for _, name := range []string{"beam", "ga"} {
		name := name
		o := scout
		cs = append(cs, contender{name: name, run: func(ctx context.Context) (*solve.Solution, solve.Stats, error) {
			sol, err := solve.Run(ctx, name, inst, o)
			if err != nil {
				return nil, solve.Stats{}, err
			}
			return sol, sol.Stats, nil
		}})
	}
	return cs
}

// runSteppedExact runs the monolithic exact DP via the stepped engine,
// harvesting partial stats when the race cancels it mid-flight.
func runSteppedExact(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, solve.Stats, error) {
	en, err := mtswitch.NewEngine(ctx, inst.MT, inst.Cost, opts, false)
	if err != nil {
		return nil, solve.Stats{}, err
	}
	defer en.Close()
	s, err := en.Solution(ctx)
	if err != nil {
		return nil, en.Stats(), err
	}
	sol := &solve.Solution{
		Kind:    solve.KindMTSwitch,
		Cost:    s.Cost,
		Exact:   !s.Stats.Truncated,
		Stats:   s.Stats,
		MTSched: s.Schedule,
	}
	return sol, sol.Stats, nil
}

// Race runs the portfolio on one MT-Switch instance.  When the
// learned-dispatch table (or ForceDirect) confidently names a winner,
// the race collapses to that single solver (reported as a Direct
// contender); otherwise all contenders run concurrently, the first
// proven-optimal finisher cancels the rest, and the race outcome is
// recorded into the table.
func Race(ctx context.Context, inst *solve.Instance, opts solve.Options, cfg Config) (*solve.Solution, error) {
	if inst == nil || inst.Kind() != solve.KindMTSwitch || inst.MT == nil {
		return nil, fmt.Errorf("portfolio: race needs an mtswitch instance")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// Learned dispatch: skip the race when the table (or the service
	// batch leader, via ForceDirect) confidently names the winner.
	var feat Features
	var haveFeat bool
	if cfg.Table != nil || cfg.ForceDirect != "" {
		feat = Extract(inst.MT)
		haveFeat = true
	}
	direct := cfg.ForceDirect
	if direct == "" && cfg.Table != nil {
		if winner, share, samples := cfg.Table.Predict(feat.Bucket()); samples >= cfg.MinSamples && share >= cfg.MinShare {
			direct = winner
		}
	}
	if direct != "" {
		return runDirect(ctx, inst, opts, cfg, direct)
	}

	sol, winner, err := race(ctx, inst, opts, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Table != nil && haveFeat && winner != "" {
		cfg.Table.Record(feat.Bucket(), winner)
	}
	return sol, nil
}

// runDirect executes the confidence shortcut: one solver, no race.
// The incumbent board is still attached (when exchange is on) so the
// exact DP keeps its warm-start publication path exercised.
func runDirect(ctx context.Context, inst *solve.Instance, opts solve.Options, cfg Config, name string) (*solve.Solution, error) {
	if cfg.Exchange {
		ctx = solve.WithIncumbent(ctx, solve.NewIncumbent())
	}
	o := opts
	o.Timeout = 0
	start := time.Now()
	sol, err := solve.Run(ctx, name, inst, o)
	if err != nil {
		return nil, err
	}
	rep := solve.ContenderReport{
		Solver:   name,
		Won:      true,
		Direct:   true,
		Finished: true,
		Cost:     sol.Cost,
		Exact:    sol.Exact,
		Stats:    sol.Stats,
		WallTime: time.Since(start),
	}
	out := *sol
	out.Contenders = []solve.ContenderReport{rep}
	return &out, nil
}

// race runs all contenders concurrently and picks the winner: a
// proven-optimal finisher if there is one (it also cancelled everyone
// else the moment it finished), otherwise the cheapest finished
// result.  It returns the winner's solution with the per-contender
// breakdown attached and every lane's stats folded into the top-level
// counters (the winner's Truncated/Degraded/Exact semantics are
// preserved — a loser's truncation must not taint an exact winner).
func race(ctx context.Context, inst *solve.Instance, opts solve.Options, cfg Config) (*solve.Solution, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Exchange {
		ctx = solve.WithIncumbent(ctx, solve.NewIncumbent())
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	cs := contenders(inst, opts)
	lanes := make([]lane, len(cs))
	board := solve.IncumbentFrom(raceCtx)

	pool := solve.NewPool(len(cs))
	defer pool.Close()
	err := pool.Do(len(cs), func(i int) {
		c := cs[i]
		start := time.Now()
		sol, stats, err := c.run(raceCtx)
		rep := solve.ContenderReport{Solver: c.name, Stats: stats, WallTime: time.Since(start)}
		switch {
		case err == nil:
			rep.Finished = true
			rep.Cost = sol.Cost
			rep.Exact = sol.Exact
			lanes[i].sol = sol
			// A finished lane's cost is a valid bound for everyone
			// still running.
			board.Publish(sol.Cost)
			if sol.Exact {
				// First proven-optimal finisher: stop the losers.
				cancel()
			}
		case raceCtx.Err() != nil && ctx.Err() == nil:
			// Cancelled by the race, not by the caller: a loser, not a
			// failure.
		default:
			rep.Err = err.Error()
		}
		lanes[i].report = rep
	})
	if err != nil {
		return nil, "", err
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}

	// Pick the winner: proven-optimal beats everything; among
	// heuristics the cheapest finished cost wins (ties to the earlier
	// lane, i.e. the exact lane's truncated upper bound).
	win := -1
	for i := range lanes {
		if lanes[i].sol == nil {
			continue
		}
		if win < 0 {
			win = i
			continue
		}
		a, b := lanes[i].sol, lanes[win].sol
		if (a.Exact && !b.Exact) || (a.Exact == b.Exact && a.Cost < b.Cost) {
			win = i
		}
	}
	if win < 0 {
		for i := range lanes {
			if e := lanes[i].report.Err; e != "" {
				return nil, "", fmt.Errorf("portfolio: all contenders failed; first: %s: %s", lanes[i].report.Solver, e)
			}
		}
		return nil, "", fmt.Errorf("portfolio: no contender finished")
	}
	lanes[win].report.Won = true

	out := *lanes[win].sol
	stats := out.Stats
	for i := range lanes {
		if i == win {
			continue
		}
		stats.Add(lanes[i].report.Stats)
	}
	// Stats.Add ORs Truncated/Degraded; the race's exactness is the
	// winner's alone.
	stats.Truncated = out.Stats.Truncated
	stats.Degraded = out.Stats.Degraded
	out.Stats = stats
	out.Contenders = make([]solve.ContenderReport, len(lanes))
	for i := range lanes {
		out.Contenders[i] = lanes[i].report
	}
	return &out, lanes[win].report.Solver, nil
}

func init() {
	solve.Register(solve.NewSolver("portfolio",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			cfg := Defaults()
			if d, ok := directFrom(ctx); ok {
				cfg.ForceDirect = d
			}
			return Race(ctx, inst, opts, cfg)
		}))
}

// directKey carries a batch-mode dispatch override in the context.
type directKey struct{}

// WithDirect returns a context that forces the portfolio solver to
// dispatch straight to the named solver — the service batch mode sets
// it on follower requests once their group leader's race has picked a
// winner.
func WithDirect(ctx context.Context, solver string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, directKey{}, solver)
}

func directFrom(ctx context.Context) (string, bool) {
	if ctx == nil {
		return "", false
	}
	s, ok := ctx.Value(directKey{}).(string)
	return s, ok && s != ""
}
