package portfolio

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/partition"
)

// Features are the coarse instance descriptors learned dispatch keys
// on.  They are deliberately crude: the table only has to separate
// workload *families* (dense vs blocked vs sparse, small vs large),
// not individual instances, and coarse buckets mean a handful of
// races is enough to reach confidence on a repeat family.
type Features struct {
	// Tasks and Steps are the instance dimensions m and n.
	Tasks int
	// Steps is the trace length.
	Steps int
	// DensityPct is the percentage of (task, step) cells with a
	// non-empty requirement.
	DensityPct int
	// BlockPct is the percentage of interior step boundaries with zero
	// hyperedge cut (PR8 CutProfile) — high for blocked instances that
	// decompose well, zero for dense ones.
	BlockPct int
}

// Extract computes the features of one instance.  Cost is O(total
// requirement cells), negligible next to any contender.
func Extract(ins *model.MTSwitchInstance) Features {
	m, n := ins.NumTasks(), ins.Steps()
	f := Features{Tasks: m, Steps: n}
	if m == 0 || n == 0 {
		return f
	}
	filled := 0
	for _, row := range ins.Reqs {
		for _, r := range row {
			if !r.IsEmpty() {
				filled++
			}
		}
	}
	f.DensityPct = (filled*100 + m*n/2) / (m * n)
	if n > 1 {
		cut := partition.BuildHypergraph(ins).CutProfile()
		zero := 0
		for s := 1; s < n; s++ {
			if cut[s] == 0 {
				zero++
			}
		}
		f.BlockPct = (zero*100 + (n-1)/2) / (n - 1)
	}
	return f
}

// Bucket quantizes the features into a table key: log2 buckets for the
// dimensions, quintiles for density and blockiness.  Everything that
// lands in one bucket is "the same family" as far as dispatch is
// concerned.
func (f Features) Bucket() string {
	return fmt.Sprintf("m%d_n%d_d%d_b%d",
		bits.Len(uint(f.Tasks)), bits.Len(uint(f.Steps)), f.DensityPct/20, f.BlockPct/20)
}

// staleCap bounds a bucket's total win count: when recording pushes
// the total past it, every count is halved (integer division).  Old
// regimes therefore wash out geometrically — after the workload
// shifts, ~staleCap races rewrite the bucket's majority no matter how
// long the old winner reigned.
const staleCap = 64

// Table is the persisted win-record table behind learned dispatch:
// feature bucket → solver → race wins.  Safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	buckets map[string]map[string]int64
}

// DefaultTable is the process-wide table the registered "portfolio"
// solver consults; hyperd loads and persists it under -data-dir.
var DefaultTable = NewTable()

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{buckets: map[string]map[string]int64{}}
}

// Record adds one race outcome.  Only genuine races record — direct
// dispatches must not reinforce their own prediction.
func (t *Table) Record(bucket, winner string) {
	if t == nil || bucket == "" || winner == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[bucket]
	if b == nil {
		b = map[string]int64{}
		t.buckets[bucket] = b
	}
	b[winner]++
	var total int64
	for _, c := range b {
		total += c
	}
	if total > staleCap {
		for s, c := range b {
			if c /= 2; c == 0 {
				delete(b, s)
			} else {
				b[s] = c
			}
		}
	}
}

// Predict returns the bucket's leading solver, its share of the
// recorded wins, and the total sample count (0, "", 0 for an unseen
// bucket).  Ties break lexicographically so prediction is
// deterministic.
func (t *Table) Predict(bucket string) (winner string, share float64, samples int64) {
	if t == nil {
		return "", 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[bucket]
	var best, total int64
	for _, c := range b {
		total += c
	}
	if total == 0 {
		return "", 0, 0
	}
	names := make([]string, 0, len(b))
	for s := range b {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		if b[s] > best {
			best, winner = b[s], s
		}
	}
	return winner, float64(best) / float64(total), total
}

// tableSnapshot is the persisted JSON form.
type tableSnapshot struct {
	Version int                         `json:"version"`
	Buckets map[string]map[string]int64 `json:"buckets"`
}

// Snapshot serializes the table.
func (t *Table) Snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(tableSnapshot{Version: 1, Buckets: t.buckets})
}

// Save atomically persists the table to path (durable.AtomicWrite:
// temp file, fsync, rename — crash-safe like the service journals).
func (t *Table) Save(path string) error {
	data, err := t.Snapshot()
	if err != nil {
		return err
	}
	return durable.AtomicWrite(path, data)
}

// Load replaces the table's contents from a snapshot produced by
// Save.  A missing file is not an error (cold start); a corrupt one
// is, so callers can distinguish "new node" from "damaged state".
func (t *Table) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var snap tableSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("portfolio: corrupt dispatch table %s: %w", path, err)
	}
	if snap.Buckets == nil {
		snap.Buckets = map[string]map[string]int64{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets = snap.Buckets
	return nil
}

// Len reports the number of populated buckets.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets)
}
