package portfolio_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/portfolio"
	"repro/internal/solve"
	_ "repro/internal/solve/solvers"
	"repro/internal/workload"
)

var (
	parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	// raceModes are the upload-mode combinations the agreement matrix
	// covers; the mixed modes are where the incumbent exchange can
	// actually tighten the exact DP, so racing them exercises the
	// bound-adoption path for real.
	raceModes = []model.CostOptions{
		{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel},
		{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskSequential},
		{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel},
	}
)

// randomMT mirrors the generator the mtswitch agreement suite uses:
// m<=maxM tasks with individual local universes, requirement cells
// filled with probability 1/3.
func randomMT(r *rand.Rand, maxM, maxL, maxN int) *model.MTSwitchInstance {
	m := 1 + r.Intn(maxM)
	n := 1 + r.Intn(maxN)
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(maxL)
		tasks[j] = model.Task{Name: string(rune('A' + j)), Local: l, V: model.Cost(1 + r.Intn(4))}
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rows[j][i] = s
		}
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		panic(err)
	}
	return ins
}

// TestRaceMatchesReference is the portfolio property test: on
// instances small enough for the exact lane to finish, the race must
// return the reference optimum with the exactness flag set, across the
// worker matrix, with and without pruning, under every upload mode.
// The incumbent exchange is on throughout — published bounds must
// never change the cost.
func TestRaceMatchesReference(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(11))
	instances := make([]*model.MTSwitchInstance, 0, 10)
	for k := 0; k < 10; k++ {
		instances = append(instances, randomMT(r, 3, 5, 6))
	}
	for ii, ins := range instances {
		for _, mode := range raceModes {
			ref, err := mtswitch.SolveExactReference(ctx, ins, mode, solve.Options{})
			if err != nil {
				t.Fatalf("instance %d: reference: %v", ii, err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, noPrune := range []bool{false, true} {
					opts := solve.Options{Workers: workers, DisablePruning: noPrune}
					sol, err := portfolio.Race(ctx, solve.NewMT(ins, mode), opts, portfolio.Config{Exchange: true})
					if err != nil {
						t.Fatalf("instance %d workers %d noPrune %t: race: %v", ii, workers, noPrune, err)
					}
					if !sol.Exact {
						t.Fatalf("instance %d workers %d: race result not exact", ii, workers)
					}
					if sol.Cost != ref.Cost {
						t.Fatalf("instance %d workers %d noPrune %t: race cost %d, reference %d",
							ii, workers, noPrune, sol.Cost, ref.Cost)
					}
					if sol.MTSched == nil {
						t.Fatalf("instance %d: race returned no schedule", ii)
					}
					if err := ins.Validate(sol.MTSched); err != nil {
						t.Fatalf("instance %d workers %d: invalid schedule: %v", ii, workers, err)
					}
					if len(sol.Contenders) != 3 {
						t.Fatalf("instance %d: %d contenders reported, want 3", ii, len(sol.Contenders))
					}
					won := 0
					for _, c := range sol.Contenders {
						if c.Won {
							won++
							if c.Cost != sol.Cost {
								t.Fatalf("instance %d: winner cost %d != solution cost %d", ii, c.Cost, sol.Cost)
							}
						}
						if c.Direct {
							t.Fatalf("instance %d: tableless race reported a direct contender", ii)
						}
					}
					if won != 1 {
						t.Fatalf("instance %d: %d winners, want exactly 1", ii, won)
					}
				}
			}
		}
	}
}

// TestRaceCancelsCleanly pins the race teardown: after a race whose
// losers are cancelled mid-flight, no goroutine may linger.  The GA is
// given enough generations that it is guaranteed to still be running
// when the exact lane finishes and cancels it.
func TestRaceCancelsCleanly(t *testing.T) {
	ctx := context.Background()
	mt, err := workload.Phased(workload.Config{Tasks: 2, Steps: 24, Switches: 10, MeanPhase: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inst := solve.NewMT(mt, parallel)

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		sol, err := portfolio.Race(ctx, inst, solve.Options{Generations: 5000, Pop: 60}, portfolio.Config{Exchange: true})
		if err != nil {
			t.Fatalf("race %d: %v", i, err)
		}
		if !sol.Exact {
			t.Fatalf("race %d: expected the exact lane to win", i)
		}
		cancelled := 0
		for _, c := range sol.Contenders {
			if !c.Finished && c.Err == "" {
				cancelled++
			}
		}
		if cancelled == 0 {
			t.Fatalf("race %d: no lane was cancelled — the GA finished before the exact lane, weaken the workload", i)
		}
	}
	// The pool and engine teardown are synchronous, but give the
	// runtime a moment to retire exiting goroutines before declaring a
	// leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by cancelled races: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRaceCallerCancel distinguishes caller cancellation from race
// cancellation: a race whose outer context dies must report the
// context error, not a fabricated result.
func TestRaceCallerCancel(t *testing.T) {
	mt, err := workload.Phased(workload.Config{Tasks: 3, Steps: 32, Switches: 12, MeanPhase: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := portfolio.Race(ctx, solve.NewMT(mt, parallel), solve.Options{}, portfolio.Config{Exchange: true}); err == nil {
		t.Fatal("race under a cancelled context returned no error")
	}
}

// TestDirectDispatch warms a table until the prediction is confident
// and checks the race collapses to the predicted solver.
func TestDirectDispatch(t *testing.T) {
	ctx := context.Background()
	mt, err := workload.Phased(workload.Config{Tasks: 2, Steps: 16, Switches: 8, MeanPhase: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := solve.NewMT(mt, parallel)
	bucket := portfolio.Extract(mt).Bucket()

	table := portfolio.NewTable()
	cfg := portfolio.Config{Exchange: true, Table: table, MinSamples: 3, MinShare: 0.8}

	// Below MinSamples the portfolio must keep racing.
	table.Record(bucket, "beam")
	table.Record(bucket, "beam")
	sol, err := portfolio.Race(ctx, inst, solve.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Contenders) == 1 && sol.Contenders[0].Direct {
		t.Fatal("portfolio dispatched directly below MinSamples")
	}
	// That race recorded its own winner (the exact lane); drown it out
	// so "beam" holds the confident majority.
	for i := 0; i < 20; i++ {
		table.Record(bucket, "beam")
	}
	sol, err = portfolio.Race(ctx, inst, solve.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Contenders) != 1 || !sol.Contenders[0].Direct || sol.Contenders[0].Solver != "beam" {
		t.Fatalf("expected a direct beam dispatch, got %+v", sol.Contenders)
	}
	// Direct dispatches must not record: the beam win count is
	// unchanged, so a wrong habit cannot reinforce itself.
	if winner, share, samples := table.Predict(bucket); winner != "beam" {
		t.Fatalf("prediction drifted after direct dispatch: %s %.2f %d", winner, share, samples)
	} else if samples != 23 {
		t.Fatalf("direct dispatch recorded into the table: %d samples, want 23", samples)
	}
}

// TestForceDirect covers the batch-mode override: WithDirect routes
// the registered portfolio solver straight to the named contender.
func TestForceDirect(t *testing.T) {
	mt, err := workload.Phased(workload.Config{Tasks: 2, Steps: 16, Switches: 8, MeanPhase: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := portfolio.WithDirect(context.Background(), "beam")
	sol, err := solve.Run(ctx, "portfolio", solve.NewMT(mt, parallel), solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Contenders) != 1 || !sol.Contenders[0].Direct || sol.Contenders[0].Solver != "beam" {
		t.Fatalf("WithDirect ignored: %+v", sol.Contenders)
	}
}

// TestRaceRejectsNonMT pins the input validation.
func TestRaceRejectsNonMT(t *testing.T) {
	if _, err := portfolio.Race(context.Background(), nil, solve.Options{}, portfolio.Defaults()); err == nil {
		t.Fatal("nil instance accepted")
	}
}
