package portfolio_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mtswitch"
	"repro/internal/portfolio"
	"repro/internal/solve"
)

// FuzzPortfolioAgreement races the portfolio against the reference
// exact solver on fuzzer-chosen instances: whatever the race dynamics
// — which lane wins, when the losers are cancelled, which incumbent
// bounds land mid-solve — the returned cost must be the reference
// optimum and the exactness flag must hold.
func FuzzPortfolioAgreement(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(7), true)
	f.Add(int64(42), false)
	f.Fuzz(func(t *testing.T, seed int64, noPrune bool) {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 4, 5)
		mode := raceModes[int(uint64(seed)%uint64(len(raceModes)))]

		ref, err := mtswitch.SolveExactReference(context.Background(), ins, mode, solve.Options{})
		if err != nil {
			t.Skipf("reference refused the instance: %v", err)
		}
		sol, err := portfolio.Race(context.Background(), solve.NewMT(ins, mode),
			solve.Options{DisablePruning: noPrune, Seed: seed}, portfolio.Config{Exchange: true})
		if err != nil {
			t.Fatalf("race: %v", err)
		}
		if !sol.Exact {
			t.Fatalf("seed %d: race result not exact", seed)
		}
		if sol.Cost != ref.Cost {
			t.Fatalf("seed %d noPrune %t: race cost %d, reference %d", seed, noPrune, sol.Cost, ref.Cost)
		}
		if err := ins.Validate(sol.MTSched); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
	})
}
