package portfolio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestPredictEmptyAndTies(t *testing.T) {
	table := NewTable()
	if w, s, n := table.Predict("unseen"); w != "" || s != 0 || n != 0 {
		t.Fatalf("unseen bucket predicted %q %.2f %d", w, s, n)
	}
	// Ties break lexicographically so prediction is deterministic.
	table.Record("b", "zeta")
	table.Record("b", "alpha")
	if w, s, n := table.Predict("b"); w != "alpha" || s != 0.5 || n != 2 {
		t.Fatalf("tie broke to %q %.2f %d, want alpha 0.50 2", w, s, n)
	}
	// A nil table never predicts and never panics.
	var nilTable *Table
	if w, _, _ := nilTable.Predict("b"); w != "" {
		t.Fatalf("nil table predicted %q", w)
	}
	nilTable.Record("b", "x")
}

func TestRecordStaleness(t *testing.T) {
	table := NewTable()
	for i := 0; i < staleCap; i++ {
		table.Record("b", "old")
	}
	if _, share, samples := table.Predict("b"); share != 1 || samples != staleCap {
		t.Fatalf("warm bucket: share %.2f samples %d", share, samples)
	}
	// The push past staleCap halves every count, so a regime shift
	// rewrites the majority in ~staleCap races no matter how long the
	// old winner reigned.
	table.Record("b", "new")
	if _, _, samples := table.Predict("b"); samples >= staleCap {
		t.Fatalf("staleness halving did not fire: %d samples", samples)
	}
	for i := 0; i < staleCap; i++ {
		table.Record("b", "new")
	}
	if w, _, _ := table.Predict("b"); w != "new" {
		t.Fatalf("majority did not flip after a regime shift: %q", w)
	}
}

func TestTableSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.json")
	table := NewTable()
	table.Record("b1", "exact")
	table.Record("b1", "exact")
	table.Record("b2", "ga")
	if err := table.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewTable()
	if err := loaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d buckets, want 2", loaded.Len())
	}
	if w, s, n := loaded.Predict("b1"); w != "exact" || s != 1 || n != 2 {
		t.Fatalf("b1 round-trip: %q %.2f %d", w, s, n)
	}

	// A missing file is a cold start, not an error.
	fresh := NewTable()
	if err := fresh.Load(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if fresh.Len() != 0 {
		t.Fatalf("missing file populated %d buckets", fresh.Len())
	}

	// A corrupt file is an error, so callers can tell "new node" from
	// "damaged state".
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Load(path); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

func TestExtractFeatures(t *testing.T) {
	dense, err := workload.Dense(workload.Config{Tasks: 3, Steps: 16, Switches: 8, MeanPhase: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := Extract(dense)
	if f.Tasks != 3 || f.Steps != 16 {
		t.Fatalf("dimensions: %+v", f)
	}
	if f.DensityPct <= 0 || f.DensityPct > 100 {
		t.Fatalf("density out of range: %d", f.DensityPct)
	}

	blocked, err := workload.Blocked(workload.Config{Tasks: 3, Steps: 48, Switches: 12, MeanPhase: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bf := Extract(blocked)
	// Blocked traces decompose at zero-cut boundaries; dense ones do
	// not — the feature must separate the two families.
	if bf.BlockPct <= f.BlockPct {
		t.Fatalf("blocked trace BlockPct %d not above dense %d", bf.BlockPct, f.BlockPct)
	}

	// Same config, different seed: same bucket (that is what makes a
	// handful of races enough to learn a family).
	blocked2, err := workload.Blocked(workload.Config{Tasks: 3, Steps: 48, Switches: 12, MeanPhase: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if Extract(blocked).Bucket() != Extract(blocked2).Bucket() {
		t.Fatalf("sibling seeds bucketed apart: %s vs %s",
			Extract(blocked).Bucket(), Extract(blocked2).Bucket())
	}
}
