package partition

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/workload"
)

// buildInstance makes a tiny hand-written instance: two tasks over
// four steps, task 0 using column 0 on steps 0–1 and column 1 on
// steps 2–3, task 1 using both of its columns everywhere.
func buildInstance(t *testing.T) *model.MTSwitchInstance {
	t.Helper()
	tasks := []model.Task{
		{Name: "A", Local: 2, V: 1},
		{Name: "B", Local: 2, V: 1},
	}
	reqs := [][]bitset.Set{
		{
			bitset.FromMembers(2, 0), bitset.FromMembers(2, 0),
			bitset.FromMembers(2, 1), bitset.FromMembers(2, 1),
		},
		{
			bitset.FromMembers(2, 0, 1), bitset.FromMembers(2, 0, 1),
			bitset.FromMembers(2, 0, 1), bitset.FromMembers(2, 0, 1),
		},
	}
	ins, err := model.NewMTSwitchInstance(tasks, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestBuildHypergraph(t *testing.T) {
	h := BuildHypergraph(buildInstance(t))
	if h.Steps != 4 {
		t.Fatalf("Steps = %d, want 4", h.Steps)
	}
	// Task 0 contributes two single-column edges ([0,1] and [2,3]);
	// task 1's two identical columns collapse into one weight-2 edge
	// spanning [0,3].
	want := []Edge{
		{Task: 0, Weight: 1, First: 0, Last: 1},
		{Task: 0, Weight: 1, First: 2, Last: 3},
		{Task: 1, Weight: 2, First: 0, Last: 3},
	}
	if len(h.Edges) != len(want) {
		t.Fatalf("edges = %+v, want %+v", h.Edges, want)
	}
	for i, e := range want {
		if h.Edges[i] != e {
			t.Fatalf("edge %d = %+v, want %+v", i, h.Edges[i], e)
		}
	}
}

func TestCutProfile(t *testing.T) {
	h := BuildHypergraph(buildInstance(t))
	// Boundary 1 cuts task 0's first edge (+1) and task 1's group
	// (+2); boundary 2 cuts only the group; boundary 3 cuts the group
	// and task 0's second edge.
	want := []int64{0, 3, 2, 3}
	got := h.CutProfile()
	if len(got) != len(want) {
		t.Fatalf("profile = %v, want %v", got, want)
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("profile[%d] = %d, want %d (full: %v)", s, got[s], want[s], got)
		}
	}
}

func TestPlanWindowsPrefersCheapBoundary(t *testing.T) {
	plan := PlanWindows(buildInstance(t), 2, 0)
	if len(plan.Boundaries) != 1 || plan.Boundaries[0] != 2 {
		t.Fatalf("boundaries = %v, want [2]", plan.Boundaries)
	}
	if plan.CutColumns != 2 {
		t.Fatalf("CutColumns = %d, want 2", plan.CutColumns)
	}
	wins := plan.Windows(4)
	if len(wins) != 2 || wins[0] != [2]int{0, 2} || wins[1] != [2]int{2, 4} {
		t.Fatalf("windows = %v", wins)
	}
}

func TestPlanWindowsCutCap(t *testing.T) {
	// Every boundary of this instance cuts at least 2 columns, so a
	// cap of 1 must merge all windows back into a monolithic plan.
	plan := PlanWindows(buildInstance(t), 2, 1)
	if len(plan.Boundaries) != 0 || plan.CutColumns != 0 {
		t.Fatalf("plan = %+v, want empty", plan)
	}
}

func TestPlanWindowsCutFreeBlocked(t *testing.T) {
	ins, err := workload.Blocked(workload.Config{Tasks: 3, Steps: 24, Switches: 12, MeanPhase: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanWindows(ins, 3, 0)
	if len(plan.Boundaries) != 2 {
		t.Fatalf("boundaries = %v, want 2 of them", plan.Boundaries)
	}
	if plan.CutColumns != 0 {
		t.Fatalf("CutColumns = %d, want 0 (block-disjoint working sets)", plan.CutColumns)
	}
	for _, s := range plan.Boundaries {
		if s%4 != 0 {
			t.Fatalf("boundary %d is not on a block edge (block length 4): %v", s, plan.Boundaries)
		}
	}
}

func TestAutoPartitions(t *testing.T) {
	cases := []struct{ steps, want int }{
		{0, 1}, {63, 1}, {64, 2}, {96, 3}, {256, 8}, {100000, 64},
	}
	for _, c := range cases {
		if got := AutoPartitions(c.steps); got != c.want {
			t.Fatalf("AutoPartitions(%d) = %d, want %d", c.steps, got, c.want)
		}
	}
}
