// Package partition decomposes large MT-Switch instances along the
// step axis: a multilevel hypergraph partitioner chooses window
// boundaries that cut as little shared switch-column activity as
// possible, the windows are solved independently (and concurrently)
// by the exact engine, and the window schedules are stitched back
// together with a coupling-correction pass.
//
// The hypergraph is the instance's column-activity structure: each
// duplicate-group of switch columns (columns of one task with
// identical requirement patterns) is a weighted hyperedge spanning
// the step interval on which the group is required.  A window
// boundary before step s cuts an edge iff the edge's interval spans
// s — the group's hypercontext then has to be paid for on both sides
// of the boundary.  Minimizing the weighted cut minimizes the
// coupling the stitch has to correct for.
//
// The stitched schedule is always feasible, so its cost is an upper
// bound on the optimum; forcing an all-task install at each boundary
// of an optimal schedule raises its cost by at most the boundary's
// Δ(s) (the HyperUpload-combine of every task's v_j), so the optimum
// is certified to lie in [Cost − StitchBound, Cost] with
// StitchBound = Σ_s Δ(s) − (S0 − Cost), where S0 is the pre-correction
// stitched cost.  An empty column cut does NOT by itself make the
// stitch exact (a single task with requirement {A} then {B} has zero
// crossing columns, yet keeping one install beats splitting); on
// block-structured workloads with v_j equal to the per-block working
// set (workload.Blocked), boundary installs are exchange-argument
// optimal and the stitched cost equals the monolithic optimum —
// pinned by the property tests, not claimed by Solution.Exact.
package partition

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Edge is one hyperedge of the column-activity hypergraph: a
// duplicate-group of switch columns of one task, required somewhere
// on the step interval [First, Last].  A window boundary before step
// s cuts the edge iff First < s ≤ Last.
type Edge struct {
	Task   int
	Weight int64
	First  int
	Last   int
}

// Hypergraph is the column-activity hypergraph of an instance.
type Hypergraph struct {
	Steps int
	Edges []Edge
}

// BuildHypergraph groups each task's switch columns by identical
// requirement pattern (the same duplicate-column grouping the exact
// engine's preprocess layer performs) and emits one weighted
// interval edge per group.  Columns never required anywhere produce
// no edge.
func BuildHypergraph(ins *model.MTSwitchInstance) *Hypergraph {
	n := ins.Steps()
	h := &Hypergraph{Steps: n}
	for j, reqs := range ins.Reqs {
		groups := make(map[string]*Edge, ins.Tasks[j].Local)
		for c := 0; c < ins.Tasks[j].Local; c++ {
			pat := bitset.New(n)
			for i := 0; i < n; i++ {
				if reqs[i].Contains(c) {
					pat.Add(i)
				}
			}
			if pat.IsEmpty() {
				continue
			}
			key := pat.Key()
			if e, ok := groups[key]; ok {
				e.Weight++
				continue
			}
			members := pat.Members()
			groups[key] = &Edge{Task: j, Weight: 1, First: members[0], Last: members[len(members)-1]}
		}
		for _, e := range groups {
			h.Edges = append(h.Edges, *e)
		}
	}
	sort.Slice(h.Edges, func(a, b int) bool {
		ea, eb := h.Edges[a], h.Edges[b]
		if ea.Task != eb.Task {
			return ea.Task < eb.Task
		}
		if ea.First != eb.First {
			return ea.First < eb.First
		}
		if ea.Last != eb.Last {
			return ea.Last < eb.Last
		}
		return ea.Weight < eb.Weight
	})
	return h
}

// CutProfile returns w[s] for every candidate boundary s ∈ [1, n−1]:
// the total weight of edges a window boundary before step s cuts.
// Index 0 is unused and zero.  Computed with a difference array in
// O(edges + steps).
func (h *Hypergraph) CutProfile() []int64 {
	diff := make([]int64, h.Steps+1)
	for _, e := range h.Edges {
		if e.Last > e.First {
			diff[e.First+1] += e.Weight
			diff[e.Last+1] -= e.Weight
		}
	}
	w := make([]int64, h.Steps)
	var acc int64
	for s := 1; s < h.Steps; s++ {
		acc += diff[s]
		w[s] = acc
	}
	return w
}

// Plan is a chosen step-axis decomposition: interior boundaries in
// increasing order (window w spans [Boundaries[w−1], Boundaries[w]),
// with 0 and n implied at the ends), the per-boundary cut weights,
// and their total.  CutColumns counts (edge, boundary) incidences —
// a duplicate-group spanning two boundaries contributes its weight
// twice, matching the per-boundary certified bound Σ_s Δ(s).
type Plan struct {
	Boundaries []int
	Weights    []int64
	CutColumns int64
}

// Windows expands the plan into [lo, hi) step windows of an n-step
// instance.
func (p *Plan) Windows(n int) [][2]int {
	out := make([][2]int, 0, len(p.Boundaries)+1)
	lo := 0
	for _, s := range p.Boundaries {
		out = append(out, [2]int{lo, s})
		lo = s
	}
	return append(out, [2]int{lo, n})
}

// autoStepThreshold is the instance size below which partitioning is
// not worth the stitch slack; autoWindowSteps is the target window
// length of an automatic plan.
const (
	autoStepThreshold = 64
	autoWindowSteps   = 32
	maxAutoPartitions = 64
)

// AutoPartitions picks the automatic window count for an n-step
// instance: 1 (monolithic) below autoStepThreshold steps, then one
// window per autoWindowSteps steps, capped at maxAutoPartitions.
func AutoPartitions(steps int) int {
	if steps < autoStepThreshold {
		return 1
	}
	k := (steps + autoWindowSteps - 1) / autoWindowSteps
	if k > maxAutoPartitions {
		k = maxAutoPartitions
	}
	return k
}

// PlanWindows runs the multilevel partitioner: build the
// column-activity hypergraph, coarsen by merging the adjacent step
// ranges joined by the heaviest boundaries (only the cheapest
// candidate boundaries survive to the coarse level), place k−1
// boundaries balanced over the coarse candidates, then refine each
// boundary at full resolution with greedy FM-style moves that lower
// the cut under a minimum-window-length balance constraint.
// k = 0 selects AutoPartitions; maxCut > 0 drops the heaviest
// boundaries (merging their windows) until the total weighted cut
// fits.  An empty plan (no boundaries) means solve monolithically.
func PlanWindows(ins *model.MTSwitchInstance, k, maxCut int) *Plan {
	n := ins.Steps()
	if k == 0 {
		k = AutoPartitions(n)
	}
	if k > n {
		k = n
	}
	if k <= 1 || n < 2 {
		return &Plan{}
	}
	profile := BuildHypergraph(ins).CutProfile()

	// Coarsening: treat every step as an atom and merge across the
	// heaviest boundaries until at most coarseTarget candidates remain
	// — equivalently, keep the coarseTarget cheapest boundaries.
	coarseTarget := 8 * k
	if coarseTarget < 32 {
		coarseTarget = 32
	}
	allowed := make([]int, 0, n-1)
	for s := 1; s < n; s++ {
		allowed = append(allowed, s)
	}
	if len(allowed) > coarseTarget {
		sort.Slice(allowed, func(a, b int) bool {
			if profile[allowed[a]] != profile[allowed[b]] {
				return profile[allowed[a]] < profile[allowed[b]]
			}
			return allowed[a] < allowed[b]
		})
		allowed = allowed[:coarseTarget]
		sort.Ints(allowed)
	}

	// Balanced initial split over the coarse candidates: for each
	// target position pick the nearest surviving boundary after the
	// previous choice.
	chosen := make([]int, 0, k-1)
	prev := 0
	for i := 1; i < k; i++ {
		target := i * n / k
		best := -1
		for _, s := range allowed {
			if s <= prev {
				continue
			}
			if best < 0 || abs(s-target) < abs(best-target) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		prev = best
	}

	// Refinement (uncoarsened): greedily move each boundary to the
	// cheapest position between its neighbors that keeps every window
	// at least minLen steps long, sweeping until a fixpoint.
	minLen := n / (4 * k)
	if minLen < 1 {
		minLen = 1
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for i, b := range chosen {
			lo := minLen
			if i > 0 {
				lo = chosen[i-1] + minLen
			}
			hi := n - minLen
			if i < len(chosen)-1 {
				hi = chosen[i+1] - minLen
			}
			best, bestW := b, profile[b]
			for s := lo; s <= hi; s++ {
				if s < 1 || s > n-1 {
					continue
				}
				if profile[s] < bestW {
					best, bestW = s, profile[s]
				}
			}
			if best != b {
				chosen[i] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	// Enforce the cut cap by merging across the heaviest boundaries.
	if maxCut > 0 {
		for len(chosen) > 0 {
			var total int64
			worst, worstW := -1, int64(-1)
			for i, s := range chosen {
				total += profile[s]
				if profile[s] > worstW {
					worst, worstW = i, profile[s]
				}
			}
			if total <= int64(maxCut) {
				break
			}
			chosen = append(chosen[:worst], chosen[worst+1:]...)
		}
	}

	plan := &Plan{Boundaries: chosen}
	for _, s := range chosen {
		plan.Weights = append(plan.Weights, profile[s])
		plan.CutColumns += profile[s]
	}
	return plan
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
