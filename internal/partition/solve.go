package partition

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

// Solve runs the partitioned exact solver: plan a step-axis
// decomposition (Options.Partitions windows, 0 = automatic,
// Options.MaxCutColumns capping the weighted cut), solve every window
// as a standalone instance concurrently on a solve.Pool, stitch the
// window schedules by concatenating their hyperreconfiguration masks,
// and run a greedy coupling-correction pass that clears boundary
// installs whenever doing so strictly lowers the cost.
//
// The returned cost is always feasible (an upper bound on the
// optimum) and Stats carries the certificate: the optimum lies in
// [Cost − Stats.StitchBound, Cost].  Runs that collapse to a single
// window (small instances, Partitions = 1, an empty plan, a fully
// task-sequential cost model, or the empty trace) delegate to
// mtswitch.SolveExact and inherit its exactness; IsExact reports
// whether a solution's cost is a proven optimum.
func Solve(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*mtswitch.Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("partition: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := ins.Steps()

	// The fully task-sequential cost model already decomposes per task
	// inside SolveExact, and empty traces have nothing to split.
	if n == 0 || (opt.HyperUpload == model.TaskSequential && opt.ReconfUpload == model.TaskSequential) {
		return delegate(ctx, ins, opt, o)
	}
	plan := PlanWindows(ins, o.Partitions, o.MaxCutColumns)
	if len(plan.Boundaries) == 0 {
		return delegate(ctx, ins, opt, o)
	}
	windows := plan.Windows(n)
	m := ins.NumTasks()

	// Window solves must not touch a shared portfolio incumbent board:
	// a window's warm-start cost is a bound for the *window*, not the
	// full trace, and publishing it would poison a racing monolithic
	// solver into cutting optimal paths.  Consuming the (full-trace)
	// board inside a window is equally wrong in the other direction, so
	// the windows run fully detached.
	winCtx := solve.DetachIncumbent(ctx)

	// Each window becomes a standalone instance: sliced requirement
	// rows, the same tasks and public-global term, W = 0 (the one-time
	// global hyperreconfiguration belongs to the whole trace).  The
	// exact engine's preprocess layer drops the columns a window never
	// touches, so windows are cheaper than their step count suggests.
	subs := make([]*model.MTSwitchInstance, len(windows))
	for w, win := range windows {
		reqs := make([][]bitset.Set, m)
		for j := 0; j < m; j++ {
			reqs[j] = ins.Reqs[j][win[0]:win[1]]
		}
		sub, err := model.NewMTSwitchInstance(ins.Tasks, reqs)
		if err != nil {
			return nil, fmt.Errorf("partition: window %d: %w", w, err)
		}
		sub.PublicGlobal = ins.PublicGlobal
		subs[w] = sub
	}

	// Fan the windows out on the shared pool; inner solves run
	// single-threaded when the sweep itself is parallel (the
	// SolvePrivateGlobal idiom).
	pool := solve.NewPool(o.Workers)
	defer pool.Close()
	workers := pool.Workers()
	if workers > len(subs) {
		workers = len(subs)
	}
	innerOpts := o
	if workers > 1 {
		innerOpts.Workers = 1
	}
	results := make([]*mtswitch.Solution, len(subs))
	var (
		errOnce  sync.Once
		sweepErr error
	)
	poolErr := pool.Do(workers, func(w int) {
		for t := w; t < len(subs); t += workers {
			if err := solve.Checkpoint(ctx); err != nil {
				errOnce.Do(func() { sweepErr = err })
				return
			}
			sol, err := mtswitch.SolveExact(winCtx, subs[t], opt, innerOpts)
			if err != nil {
				errOnce.Do(func() { sweepErr = err })
				return
			}
			results[t] = sol
		}
	})
	if poolErr != nil {
		return nil, poolErr
	}
	if sweepErr != nil {
		return nil, sweepErr
	}

	// Stitch: concatenate the window masks (every window's first step
	// installs, so each boundary carries an all-task install) and
	// re-derive the canonical schedule of the full trace.
	stitchStart := time.Now()
	hyper := make([][]bool, m)
	for j := 0; j < m; j++ {
		hyper[j] = make([]bool, n)
	}
	for w, win := range windows {
		for j := 0; j < m; j++ {
			copy(hyper[j][win[0]:win[1]], results[w].Schedule.Hyper[j])
		}
	}
	sched, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		return nil, fmt.Errorf("partition: stitch: %w", err)
	}
	s0, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, fmt.Errorf("partition: stitch cost: %w", err)
	}

	best, bestSched, err := correctCoupling(ctx, ins, opt, hyper, plan.Boundaries, s0, sched)
	if err != nil {
		return nil, err
	}
	stitchTime := time.Since(stitchStart)

	var stats solve.Stats
	for _, r := range results {
		stats.Add(r.Stats)
	}
	stats.Partitions = int64(len(windows))
	stats.CutColumns = plan.CutColumns
	stats.StitchTime = stitchTime

	// Certificate: forcing an all-task install at a boundary of an
	// optimal schedule adds at most Δ = HyperUpload-combine of every
	// v_j (canonical hypercontexts only shrink, so the reconf term
	// never grows), hence OPT ≥ S0 − Σ_s Δ.  Our schedule costs
	// best ≤ S0, so OPT ∈ [best − StitchBound, best] with
	// StitchBound = Σ_s Δ − (S0 − best), clamped at zero.
	var delta model.Cost
	for _, t := range ins.Tasks {
		delta = opt.HyperUpload.Combine(delta, t.V)
	}
	bound := model.Cost(len(plan.Boundaries))*delta - (s0 - best)
	if bound < 0 {
		bound = 0
	}
	stats.StitchBound = int64(bound)

	return &mtswitch.Solution{Schedule: bestSched, Cost: best, Stats: stats}, nil
}

// delegate runs the monolithic exact solver and marks the run as a
// single partition so Stats distinguish "collapsed to monolithic"
// from "never partitioned".
func delegate(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*mtswitch.Solution, error) {
	sol, err := mtswitch.SolveExact(ctx, ins, opt, o)
	if err != nil {
		return nil, err
	}
	sol.Stats.Partitions = 1
	return sol, nil
}

// IsExact reports whether a solution returned by Solve carries a
// proven-optimal cost: delegated (single-window) untruncated runs,
// and partitioned untruncated runs whose certificate collapsed to a
// point — StitchBound = 0 means the optimum lies in [Cost, Cost].
// Note an empty column cut alone does NOT qualify: it does not
// structurally force boundary installs to be optimal (see the package
// comment); only the collapsed certificate or a monolithic solve
// proves optimality.  Truncated runs never qualify — a truncated
// window cost is an upper bound, which voids the certificate's lower
// side.
func IsExact(s *mtswitch.Solution) bool {
	if s == nil || s.Stats.Truncated {
		return false
	}
	return s.Stats.Partitions <= 1 || s.Stats.StitchBound == 0
}

// correctCoupling greedily repairs the stitched schedule at the
// window boundaries: for each boundary it tries clearing the install
// jointly for all tasks and for each single task, accepts any strict
// cost decrease, and sweeps until a fixpoint (bounded at four
// sweeps).  Clearing an install merges the adjacent segments, whose
// canonical hypercontext is re-derived by CanonicalSchedule, so every
// trial stays feasible; the accepted schedule's cost only decreases.
func correctCoupling(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, hyper [][]bool, boundaries []int, cost model.Cost, sched *model.MTSchedule) (model.Cost, *model.MTSchedule, error) {
	m := ins.NumTasks()
	best, bestSched := cost, sched
	trial := make([][]bool, m)
	for j := range trial {
		trial[j] = make([]bool, len(hyper[j]))
	}
	for sweep := 0; sweep < 4; sweep++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return 0, nil, err
		}
		improved := false
		for _, s := range boundaries {
			// variant −1 clears every task's boundary install; variant
			// j ≥ 0 clears only task j's.
			for variant := -1; variant < m; variant++ {
				if variant >= 0 && !hyper[variant][s] {
					continue
				}
				any := false
				for j := 0; j < m; j++ {
					copy(trial[j], hyper[j])
					if variant < 0 && trial[j][s] {
						trial[j][s] = false
						any = true
					}
				}
				if variant >= 0 {
					trial[variant][s] = false
					any = true
				}
				if !any {
					continue
				}
				cand, err := ins.CanonicalSchedule(trial)
				if err != nil {
					return 0, nil, fmt.Errorf("partition: correction: %w", err)
				}
				c, err := ins.Cost(cand, opt)
				if err != nil {
					return 0, nil, fmt.Errorf("partition: correction cost: %w", err)
				}
				if c < best {
					best, bestSched = c, cand
					for j := 0; j < m; j++ {
						copy(hyper[j], trial[j])
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestSched, nil
}
