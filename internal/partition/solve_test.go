package partition

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
	"repro/internal/workload"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

// TestPartitionedMatchesReferenceCutFree pins the exactness property
// of the blocked workload: with block-disjoint working sets and
// v_j = ws, the stitched cost equals the monolithic optimum for every
// worker count and window count (window boundaries land on block
// edges, where installing every task is exchange-argument optimal).
func TestPartitionedMatchesReferenceCutFree(t *testing.T) {
	configs := []workload.Config{
		{Tasks: 2, Steps: 12, Switches: 8, MeanPhase: 3, Seed: 11},
		{Tasks: 3, Steps: 16, Switches: 12, MeanPhase: 4, Seed: 23},
	}
	for _, cfg := range configs {
		ins, err := workload.Blocked(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := mtswitch.SolveExactReference(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			for _, parts := range []int{2, 4} {
				o := solve.Options{Workers: workers, Partitions: parts}
				sol, err := Solve(context.Background(), ins, parallel, o)
				if err != nil {
					t.Fatalf("seed %d workers %d parts %d: %v", cfg.Seed, workers, parts, err)
				}
				if sol.Cost != ref.Cost {
					t.Fatalf("seed %d workers %d parts %d: cost %d, reference %d (bound %d)",
						cfg.Seed, workers, parts, sol.Cost, ref.Cost, sol.Stats.StitchBound)
				}
				if sol.Stats.Partitions != int64(parts) {
					t.Fatalf("seed %d parts %d: Stats.Partitions = %d", cfg.Seed, parts, sol.Stats.Partitions)
				}
				if sol.Stats.CutColumns != 0 {
					t.Fatalf("seed %d parts %d: CutColumns = %d, want 0", cfg.Seed, parts, sol.Stats.CutColumns)
				}
				assertFeasible(t, ins, sol)
			}
		}
	}
}

// TestPartitionedBoundContainsOptimum drives non-empty cuts: the
// certified interval [Cost − StitchBound, Cost] must contain the true
// optimum, and the schedule must stay feasible at its reported cost.
func TestPartitionedBoundContainsOptimum(t *testing.T) {
	for _, cut := range []int{1, 2} {
		for seed := int64(1); seed <= 5; seed++ {
			cfg := workload.Config{Tasks: 2, Steps: 12, Switches: 10, MeanPhase: 3, CutWidth: cut, Seed: seed}
			ins, err := workload.Blocked(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := mtswitch.SolveExactReference(context.Background(), ins, parallel, solve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sol, err := Solve(context.Background(), ins, parallel, solve.Options{Partitions: 3})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Stats.CutColumns == 0 {
				t.Fatalf("cut %d seed %d: expected a non-empty column cut", cut, seed)
			}
			lo := sol.Cost - model.Cost(sol.Stats.StitchBound)
			if ref.Cost > sol.Cost || ref.Cost < lo {
				t.Fatalf("cut %d seed %d: optimum %d outside certified [%d, %d]",
					cut, seed, ref.Cost, lo, sol.Cost)
			}
			assertFeasible(t, ins, sol)
		}
	}
}

// TestPartitionedDelegates pins every monolithic-delegation path:
// explicit Partitions=1, instances below the auto threshold, the
// fully task-sequential cost model, and plans emptied by the cut cap
// all match SolveExact exactly and report a single partition.
func TestPartitionedDelegates(t *testing.T) {
	ins, err := workload.Blocked(workload.Config{Tasks: 2, Steps: 12, Switches: 8, MeanPhase: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sequential := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	cases := []struct {
		name string
		opt  model.CostOptions
		o    solve.Options
	}{
		{"partitions-1", parallel, solve.Options{Partitions: 1}},
		{"auto-below-threshold", parallel, solve.Options{}},
		{"sequential", sequential, solve.Options{Partitions: 4}},
	}
	for _, c := range cases {
		exact, err := mtswitch.SolveExact(context.Background(), ins, c.opt, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(context.Background(), ins, c.opt, c.o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if sol.Cost != exact.Cost {
			t.Fatalf("%s: cost %d, SolveExact %d", c.name, sol.Cost, exact.Cost)
		}
		if sol.Stats.Partitions != 1 {
			t.Fatalf("%s: Stats.Partitions = %d, want 1", c.name, sol.Stats.Partitions)
		}
		if !IsExact(sol) {
			t.Fatalf("%s: delegated run must be exact", c.name)
		}
		if sol.Stats.StitchBound != 0 {
			t.Fatalf("%s: StitchBound = %d, want 0", c.name, sol.Stats.StitchBound)
		}
	}

	// A cut cap no boundary satisfies must merge back to monolithic.
	sol, err := Solve(context.Background(), ins, parallel, solve.Options{Partitions: 4, MaxCutColumns: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Partitions != 4 {
		t.Fatalf("uncapped: Partitions = %d, want 4", sol.Stats.Partitions)
	}
}

func TestPartitionedCancelledContext(t *testing.T) {
	ins, err := workload.Blocked(workload.Config{Tasks: 2, Steps: 12, Switches: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, ins, parallel, solve.Options{Partitions: 2}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// assertFeasible re-validates and re-prices the returned schedule: the
// reported cost must be the schedule's true cost.
func assertFeasible(t *testing.T, ins *model.MTSwitchInstance, sol *mtswitch.Solution) {
	t.Helper()
	if err := ins.Validate(sol.Schedule); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	c, err := ins.Cost(sol.Schedule, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if c != sol.Cost {
		t.Fatalf("reported cost %d, schedule prices at %d", sol.Cost, c)
	}
}

// FuzzPartitionStitch asserts the stitch certificate on arbitrary
// blocked shapes: for any task/step/switch/cut/window mix the true
// optimum lies in [Cost − StitchBound, Cost] and the schedule prices
// at its reported cost.
func FuzzPartitionStitch(f *testing.F) {
	f.Add(2, 10, 6, 3, 1, int64(1), 3)
	f.Add(1, 2, 2, 1, 0, int64(7), 2)
	f.Add(3, 9, 9, 4, 2, int64(42), 4)
	f.Fuzz(func(t *testing.T, tasks, steps, switches, meanPhase, cutWidth int, seed int64, parts int) {
		cfg := workload.Config{
			Tasks:     1 + abs(tasks)%3,
			Steps:     2 + abs(steps)%10,
			Switches:  2 + abs(switches)%6,
			MeanPhase: 1 + abs(meanPhase)%4,
			CutWidth:  abs(cutWidth) % 3,
			Seed:      seed,
		}
		if cfg.Seed == 0 {
			cfg.Seed = 1
		}
		ins, err := workload.Blocked(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(context.Background(), ins, parallel, solve.Options{Partitions: abs(parts) % 5})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := mtswitch.SolveExactReference(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lo := sol.Cost - model.Cost(sol.Stats.StitchBound)
		if ref.Cost > sol.Cost || ref.Cost < lo {
			t.Fatalf("optimum %d outside certified [%d, %d] (cfg %+v)", ref.Cost, lo, sol.Cost, cfg)
		}
		if err := ins.Validate(sol.Schedule); err != nil {
			t.Fatalf("invalid schedule: %v (cfg %+v)", err, cfg)
		}
		c, err := ins.Cost(sol.Schedule, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if c != sol.Cost {
			t.Fatalf("reported cost %d, schedule prices at %d (cfg %+v)", sol.Cost, c, cfg)
		}
	})
}
