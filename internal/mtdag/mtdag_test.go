package mtdag

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/model"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
var sequential = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}

// chainTask builds a task over a 3-level routability chain with the
// given requirement sequence (contexts 0=local, 1=row, 2=global).
func chainTask(t *testing.T, name string, v model.Cost, seq []int) Task {
	t.Helper()
	levels := []model.Hypercontext{
		{Name: "local", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "row", PerStep: 3, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "global", PerStep: 7, Sat: bitset.Full(3)},
	}
	ins, err := dag.Chain(3, levels, seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Task{Name: name, V: v, Inst: ins}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("accepted zero tasks")
	}
	a := chainTask(t, "A", 2, []int{0, 1})
	bad := a
	bad.V = 0
	if _, err := New([]Task{bad}); err == nil {
		t.Fatal("accepted v=0")
	}
	b := chainTask(t, "B", 2, []int{0})
	if _, err := New([]Task{a, b}); err == nil {
		t.Fatal("accepted unequal sequence lengths")
	}
	if _, err := New([]Task{{Name: "X", V: 1}}); err == nil {
		t.Fatal("accepted task without DAG instance")
	}
}

func TestSolveKnownOptimum(t *testing.T) {
	// Task A needs global routing once; task B stays local.
	a := chainTask(t, "A", 2, []int{0, 2, 0, 0})
	b := chainTask(t, "B", 2, []int{0, 0, 0, 0})
	ins, err := New([]Task{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	sched, cost := sol.Schedule, sol.Cost
	// Step costs (parallel): B stays in "local" (1/step, never the max
	// except when A is local too).  A: local,global,local,local with
	// hypers at 0,1,2.
	// i0: hyper max(2,2)=2 + reconf max(1,1)=1
	// i1: hyper 2 (A) + reconf max(7,1)=7
	// i2: hyper 2 (A) + reconf 1
	// i3: reconf 1
	if cost != 2+1+2+7+2+1+1 {
		t.Fatalf("cost = %d, want 16", cost)
	}
	// A must not linger in "global" after step 1.
	if sched.HctxIdx[0][2] == 2 || sched.HctxIdx[0][3] == 2 {
		t.Fatalf("task A schedule lingers in global: %v", sched.HctxIdx[0])
	}
}

func TestCostRejects(t *testing.T) {
	a := chainTask(t, "A", 2, []int{2})
	ins, err := New([]Task{a})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Cost(&Schedule{HctxIdx: [][]int{{0}}}, parallel); err == nil {
		t.Fatal("accepted hypercontext that misses the context")
	}
	if _, err := ins.Cost(&Schedule{HctxIdx: [][]int{{9}}}, parallel); err == nil {
		t.Fatal("accepted unknown hypercontext index")
	}
	if _, err := ins.Cost(&Schedule{}, parallel); err == nil {
		t.Fatal("accepted wrong-shape schedule")
	}
}

// bruteForce enumerates every joint schedule (for tiny instances).
func bruteForce(t *testing.T, ins *Instance, opt model.CostOptions) model.Cost {
	t.Helper()
	m := len(ins.Tasks)
	n := ins.Steps()
	radix := make([]int, m)
	perStep := 1
	for j, task := range ins.Tasks {
		radix[j] = len(task.Inst.General.Hypercontexts)
		perStep *= radix[j]
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= perStep
		if total > 5_000_000 {
			t.Fatal("brute force too large")
		}
	}
	best := model.Cost(1 << 60)
	sched := &Schedule{HctxIdx: make([][]int, m)}
	for j := range sched.HctxIdx {
		sched.HctxIdx[j] = make([]int, n)
	}
	for code := 0; code < total; code++ {
		v := code
		for i := 0; i < n; i++ {
			stepCode := v % perStep
			v /= perStep
			for j := 0; j < m; j++ {
				sched.HctxIdx[j][i] = stepCode % radix[j]
				stepCode /= radix[j]
			}
		}
		c, err := ins.Cost(sched, opt)
		if err != nil {
			continue
		}
		if c < best {
			best = c
		}
	}
	return best
}

func randomInstance(t *testing.T, r *rand.Rand) *Instance {
	t.Helper()
	m := 1 + r.Intn(2)
	n := 1 + r.Intn(4)
	tasks := make([]Task, m)
	for j := 0; j < m; j++ {
		seq := make([]int, n)
		for i := range seq {
			seq[i] = r.Intn(3)
		}
		tasks[j] = chainTask(t, string(rune('A'+j)), model.Cost(1+r.Intn(4)), seq)
	}
	ins, err := New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestQuickSolveMatchesBruteForce(t *testing.T) {
	for _, opt := range []model.CostOptions{parallel, sequential} {
		opt := opt
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			ins := randomInstance(t, r)
			sol, err := Solve(context.Background(), ins, opt)
			if err != nil {
				return false
			}
			return sol.Cost == bruteForce(t, ins, opt)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%v/%v: %v", opt.HyperUpload, opt.ReconfUpload, err)
		}
	}
}

func TestSolvePerTaskBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for k := 0; k < 10; k++ {
		ins := randomInstance(t, r)
		exact, err := Solve(context.Background(), ins, parallel)
		if err != nil {
			t.Fatal(err)
		}
		upper, err := SolvePerTask(context.Background(), ins, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if upper.Cost < exact.Cost {
			t.Fatalf("per-task %d below joint optimum %d", upper.Cost, exact.Cost)
		}
		// Under fully sequential uploads the cost separates, so the
		// per-task solution is optimal.
		exactSeq, err := Solve(context.Background(), ins, sequential)
		if err != nil {
			t.Fatal(err)
		}
		perSeq, err := SolvePerTask(context.Background(), ins, sequential)
		if err != nil {
			t.Fatal(err)
		}
		if perSeq.Cost != exactSeq.Cost {
			t.Fatalf("sequential per-task %d != joint %d", perSeq.Cost, exactSeq.Cost)
		}
	}
}

func TestSolveEmptyAndNil(t *testing.T) {
	if _, err := Solve(context.Background(), nil, parallel); err == nil {
		t.Fatal("accepted nil")
	}
	a := chainTask(t, "A", 1, nil)
	ins, err := New([]Task{a})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("empty cost = %d", sol.Cost)
	}
	if _, err := SolvePerTask(context.Background(), nil, parallel); err == nil {
		t.Fatal("accepted nil")
	}
}
