// Package mtdag implements the paper's Multi Task DAG (MT-DAG) cost
// model: every task owns a catalog of local hypercontexts partially
// ordered by a precedence DAG (coarse-grained machines with a handful
// of quality levels), local hyperreconfigurations cost v_j, and an
// ordinary reconfiguration of task j costs the per-step cost of its
// current hypercontext, with costs monotone along the DAG edges.
//
// For the fully synchronized machine the total time between global
// hyperreconfigurations is
//
//	w + Σ_i ( combine_j I_{j,i}·v_j + combine_j cost_j(h_{j,i}) )
//
// with combine = max for task-parallel uploads and Σ for
// task-sequential ones — the direct DAG analogue of the MT-Switch
// formulas.  Because every task's hypercontext catalog is explicit, the
// joint scheduling problem is solvable exactly by dynamic programming
// over per-task hypercontext vectors: the state space is Π_j |H_j|,
// polynomial for a fixed number of tasks (the coarse-grained regime the
// DAG model targets keeps |H_j| small).
package mtdag

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/solve"
)

// Task is one task of an MT-DAG machine: its DAG-model instance (local
// hypercontext catalog + precedence DAG + its own requirement sequence)
// and its local hyperreconfiguration cost v_j.
type Task struct {
	Name string
	// V is v_j > 0, the cost of one local hyperreconfiguration.
	V model.Cost
	// Inst carries the task's hypercontext catalog, precedence DAG and
	// context-requirement sequence (Inst.General.Seq).
	Inst *dag.Instance
}

// Instance is a fully synchronized MT-DAG problem: all task sequences
// have equal length n.
type Instance struct {
	Tasks []Task
	n     int
}

// New validates and builds an instance.
func New(tasks []Task) (*Instance, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("mtdag: instance needs at least one task")
	}
	n := -1
	for _, t := range tasks {
		if t.V <= 0 {
			return nil, fmt.Errorf("mtdag: task %q needs positive v_j", t.Name)
		}
		if t.Inst == nil || t.Inst.General == nil {
			return nil, fmt.Errorf("mtdag: task %q has no DAG instance", t.Name)
		}
		if n < 0 {
			n = t.Inst.General.Len()
		} else if t.Inst.General.Len() != n {
			return nil, fmt.Errorf("mtdag: task %q has %d steps, want %d (fully synchronized)", t.Name, t.Inst.General.Len(), n)
		}
	}
	return &Instance{Tasks: tasks, n: n}, nil
}

// Steps returns n.
func (ins *Instance) Steps() int { return ins.n }

// Schedule assigns each task a hypercontext index per step; task j
// hyperreconfigures at step 0 and wherever the index changes.
type Schedule struct {
	HctxIdx [][]int // [task][step]
}

// Solution is a solved MT-DAG schedule with its cost and search stats.
type Solution struct {
	Schedule *Schedule
	Cost     model.Cost
	Stats    solve.Stats
}

// Cost prices a schedule under the given upload modes, validating
// feasibility (every step's context requirement must be satisfied).
func (ins *Instance) Cost(s *Schedule, opt model.CostOptions) (model.Cost, error) {
	if len(s.HctxIdx) != len(ins.Tasks) {
		return 0, fmt.Errorf("mtdag: schedule has %d task rows, want %d", len(s.HctxIdx), len(ins.Tasks))
	}
	for j, t := range ins.Tasks {
		if len(s.HctxIdx[j]) != ins.n {
			return 0, fmt.Errorf("mtdag: task %q schedule has %d steps, want %d", t.Name, len(s.HctxIdx[j]), ins.n)
		}
	}
	var total model.Cost
	for i := 0; i < ins.n; i++ {
		var hyper, reconf model.Cost
		for j, t := range ins.Tasks {
			k := s.HctxIdx[j][i]
			gen := t.Inst.General
			if k < 0 || k >= len(gen.Hypercontexts) {
				return 0, fmt.Errorf("mtdag: task %q step %d uses unknown hypercontext %d", t.Name, i, k)
			}
			h := gen.Hypercontexts[k]
			if !h.Sat.Contains(gen.Seq[i]) {
				return 0, fmt.Errorf("mtdag: task %q hypercontext %q does not satisfy context %d at step %d", t.Name, h.Name, gen.Seq[i], i)
			}
			if i == 0 || s.HctxIdx[j][i-1] != k {
				hyper = opt.HyperUpload.Combine(hyper, t.V)
			}
			reconf = opt.ReconfUpload.Combine(reconf, h.PerStep)
		}
		total += hyper + reconf
	}
	return total, nil
}

const infCost = model.Cost(math.MaxInt64 / 4)

// Solve computes an optimal schedule by forward DP over joint
// hypercontext vectors.  State count is Π_j |H_j| (capped at
// MaxStates); per step every state expands to the product of each
// task's {stay | switch} options.  Exact — the future cost depends only
// on the current vector, so keeping the cheapest cost per vector is
// lossless.  The context is checked once per (step, source-state) pair,
// so cancellation lands within one vector expansion.
func Solve(ctx context.Context, ins *Instance, opt model.CostOptions) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtdag: nil instance")
	}
	m := len(ins.Tasks)
	if ins.n == 0 {
		return &Solution{Schedule: &Schedule{HctxIdx: make([][]int, m)}}, nil
	}
	// Joint states are encoded as mixed-radix integers over the catalog
	// sizes.
	radix := make([]int, m)
	states := 1
	for j, t := range ins.Tasks {
		radix[j] = len(t.Inst.General.Hypercontexts)
		if states > maxStates/radix[j] {
			return nil, fmt.Errorf("mtdag: joint state space exceeds %d", maxStates)
		}
		states *= radix[j]
	}
	decode := func(code int, out []int) {
		for j := 0; j < m; j++ {
			out[j] = code % radix[j]
			code /= radix[j]
		}
	}

	var stats solve.Stats
	d := make([]model.Cost, states)
	prev := make([][]int, ins.n) // prev[i][code] = predecessor code
	cur := make([]model.Cost, states)
	vec := make([]int, m)

	// satisfies[j][k][i] is precomputed per task lazily via closure.
	sat := func(j, k, i int) bool {
		gen := ins.Tasks[j].Inst.General
		return gen.Hypercontexts[k].Sat.Contains(gen.Seq[i])
	}

	for code := range d {
		d[code] = infCost
	}
	// Step 0: every feasible vector, all tasks hyperreconfigure.
	for code := 0; code < states; code++ {
		if code&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		decode(code, vec)
		ok := true
		var hyper, reconf model.Cost
		for j := 0; j < m; j++ {
			if !sat(j, vec[j], 0) {
				ok = false
				break
			}
			hyper = opt.HyperUpload.Combine(hyper, ins.Tasks[j].V)
			reconf = opt.ReconfUpload.Combine(reconf, ins.Tasks[j].Inst.General.Hypercontexts[vec[j]].PerStep)
		}
		if ok {
			d[code] = hyper + reconf
			stats.StatesExpanded++
		}
	}
	prev[0] = nil

	prevVec := make([]int, m)
	for i := 1; i < ins.n; i++ {
		for code := range cur {
			cur[code] = infCost
		}
		prev[i] = make([]int, states)
		for code := range prev[i] {
			prev[i][code] = -1
		}
		for from := 0; from < states; from++ {
			if d[from] >= infCost {
				continue
			}
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
			stats.StatesExpanded++
			decode(from, prevVec)
			// Expand the per-task option product recursively.
			var expand func(j int, hyper, reconf model.Cost, code, mult int)
			expand = func(j int, hyper, reconf model.Cost, code, mult int) {
				if j == m {
					c := d[from] + hyper + reconf
					if c < cur[code] {
						cur[code] = c
						prev[i][code] = from
					} else {
						stats.DedupHits++
					}
					return
				}
				for k := 0; k < radix[j]; k++ {
					if !sat(j, k, i) {
						continue
					}
					h := hyper
					if k != prevVec[j] {
						h = opt.HyperUpload.Combine(h, ins.Tasks[j].V)
					}
					r := opt.ReconfUpload.Combine(reconf, ins.Tasks[j].Inst.General.Hypercontexts[k].PerStep)
					expand(j+1, h, r, code+k*mult, mult*radix[j])
				}
			}
			expand(0, 0, 0, 0, 1)
		}
		d, cur = cur, d
	}

	best, bestCode := infCost, -1
	for code := 0; code < states; code++ {
		if d[code] < best {
			best, bestCode = d[code], code
		}
	}
	if bestCode < 0 {
		return nil, fmt.Errorf("mtdag: no feasible schedule")
	}

	out := &Schedule{HctxIdx: make([][]int, m)}
	for j := range out.HctxIdx {
		out.HctxIdx[j] = make([]int, ins.n)
	}
	code := bestCode
	for i := ins.n - 1; i >= 0; i-- {
		decode(code, vec)
		for j := 0; j < m; j++ {
			out.HctxIdx[j][i] = vec[j]
		}
		if i > 0 {
			code = prev[i][code]
		}
	}
	check, err := ins.Cost(out, opt)
	if err != nil {
		return nil, fmt.Errorf("mtdag: internal reconstruction error: %w", err)
	}
	if check != best {
		return nil, fmt.Errorf("mtdag: DP cost %d disagrees with model cost %d", best, check)
	}
	return &Solution{Schedule: out, Cost: best, Stats: stats}, nil
}

// maxStates bounds the joint state space (coarse-grained catalogs are
// small; the cap is a guard against misuse, not a tuning knob).
const maxStates = 2_000_000

// SolvePerTask schedules every task independently with the single-task
// General DP — optimal for task-sequential uploads (the cost separates)
// and an upper bound for task-parallel ones.  Stats aggregate the
// per-task DP runs; Stats.Truncated is set for task-parallel uploads,
// where the result is only an upper bound.
func SolvePerTask(ctx context.Context, ins *Instance, opt model.CostOptions) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtdag: nil instance")
	}
	var stats solve.Stats
	out := &Schedule{HctxIdx: make([][]int, len(ins.Tasks))}
	for j, t := range ins.Tasks {
		// The single-task DP prices init(h) per entry; MT-DAG charges a
		// flat v_j per local hyperreconfiguration, so solve a copy of
		// the catalog with init = v_j.
		gen := t.Inst.General
		hs := make([]model.Hypercontext, len(gen.Hypercontexts))
		copy(hs, gen.Hypercontexts)
		for k := range hs {
			hs[k].Init = t.V
		}
		sub, err := model.NewGeneralInstance(gen.NumContexts, hs, gen.Seq)
		if err != nil {
			return nil, err
		}
		sol, err := phc.SolveGeneral(ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("mtdag: task %q: %w", t.Name, err)
		}
		stats.Add(sol.Stats)
		out.HctxIdx[j] = sol.Schedule.HctxIdx
	}
	cost, err := ins.Cost(out, opt)
	if err != nil {
		return nil, err
	}
	stats.Truncated = opt.HyperUpload == model.TaskParallel || opt.ReconfUpload == model.TaskParallel
	return &Solution{Schedule: out, Cost: cost, Stats: stats}, nil
}
