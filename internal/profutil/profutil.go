// Package profutil wraps runtime/pprof for the CLIs: every binary with
// a solver hot path (mtopt, phcopt, hyperd bench) exposes -cpuprofile
// and -memprofile flags through these two helpers, so profiles are
// collected identically everywhere.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function to defer.  An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path, running the GC first
// so the numbers reflect live and cumulative allocations accurately.
// An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}
