package shyra

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Granularity selects how context requirements are extracted from a
// trace.
type Granularity int

const (
	// GranularityBit includes exactly the live configuration bits of a
	// step: the reachable truth-table cells of each used LUT (2^arity
	// cells), the MUX selections feeding live LUT inputs, and the DeMUX
	// selections of used LUTs.  This is the finest, cheapest notion of
	// "switches that must be reconfigurable at this step".
	GranularityBit Granularity = iota
	// GranularityUnit includes every configuration bit of each used
	// unit — the coarse notion visible in the paper's Figure 2 (units
	// in use / unused / not available).
	GranularityUnit
	// GranularityDelta includes exactly the configuration bits whose
	// value must change relative to the previous step (all live bits
	// for the first step).  Configuration state persists across steps,
	// so a step that keeps its routing or LUT functions needs no
	// reconfiguration of those switches — the reading that matches the
	// paper's remark that only difference information has to be loaded
	// onto the machine.
	GranularityDelta
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranularityBit:
		return "bit"
	case GranularityUnit:
		return "unit"
	case GranularityDelta:
		return "delta"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// ParseGranularity parses the CLI spelling of a granularity.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "bit":
		return GranularityBit, nil
	case "unit":
		return GranularityUnit, nil
	case "delta":
		return GranularityDelta, nil
	default:
		return 0, fmt.Errorf("shyra: unknown granularity %q (want bit, unit or delta)", s)
	}
}

// TraceStep records one executed reconfiguration + cycle.
type TraceStep struct {
	// PC is the program counter of the executed step.
	PC int
	// Name copies the step's label.
	Name string
	// Cfg is the full configuration in effect during the cycle.
	Cfg Config
	// Use says which LUTs participated.
	Use Usage
	// Live[u] are the live local configuration bits of unit u at bit
	// granularity.
	Live [numUnits]bitset.Set
	// RegsAfter snapshots the register file after the cycle.
	RegsAfter [NumRegs]bool
}

// Trace is the reconfiguration trace of one program run: the sequence
// the cost-model analysis consumes ("during execution each
// reconfiguration step was traced").
type Trace struct {
	Program string
	// InitRegs is the register image the run started from; replaying
	// the trace (see ReplayMT) starts here.
	InitRegs [NumRegs]bool
	Steps    []TraceStep
}

// Len returns n, the number of traced reconfiguration steps.
func (t *Trace) Len() int { return len(t.Steps) }

// liveBits computes the bit-granularity live sets of a step.
func liveBits(st *Step) [numUnits]bitset.Set {
	var live [numUnits]bitset.Set
	for _, u := range Units() {
		live[u] = bitset.New(u.Bits())
	}
	for k := 0; k < NumLUTs; k++ {
		spec := st.LUT[k]
		if spec == nil {
			continue
		}
		lutUnit := UnitLUT1
		if k == 1 {
			lutUnit = UnitLUT2
		}
		// Reachable truth-table cells: dead input bits are zero.
		for v := 0; v < 1<<uint(spec.arity()); v++ {
			live[lutUnit].Add(v)
		}
		// MUX selections of live inputs.
		for i := 0; i < spec.arity(); i++ {
			sel := k*LUTInputs + i
			for b := 0; b < SelBits; b++ {
				live[UnitMUX].Add(sel*SelBits + b)
			}
		}
		// DeMUX selection of the used LUT.
		for b := 0; b < SelBits; b++ {
			live[UnitDeMUX].Add(k*SelBits + b)
		}
	}
	return live
}

// Run executes the program on a fresh machine and returns its
// reconfiguration trace.  maxCycles bounds execution (loops are data
// dependent); exceeding it is an error.
func Run(p *Program, maxCycles int) (*Trace, error) {
	if p == nil {
		return nil, fmt.Errorf("shyra: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxCycles <= 0 {
		maxCycles = 100000
	}
	var m Machine
	m.LoadRegs(p.InitRegs)
	tr := &Trace{Program: p.Name, InitRegs: p.InitRegs}
	prev := Config{}
	pc := 0
	for cycles := 0; ; cycles++ {
		if cycles >= maxCycles {
			return nil, fmt.Errorf("shyra: program %q exceeded %d cycles", p.Name, maxCycles)
		}
		st := &p.Steps[pc]
		cfg, use, err := st.compile(prev)
		if err != nil {
			return nil, fmt.Errorf("shyra: step %d (%s): %w", pc, st.Name, err)
		}
		if err := m.Configure(cfg); err != nil {
			return nil, err
		}
		if err := m.Cycle(use); err != nil {
			return nil, fmt.Errorf("shyra: step %d (%s): %w", pc, st.Name, err)
		}
		tr.Steps = append(tr.Steps, TraceStep{
			PC:        pc,
			Name:      st.Name,
			Cfg:       cfg,
			Use:       use,
			Live:      liveBits(st),
			RegsAfter: m.Regs(),
		})
		prev = cfg

		next := pc + 1
		if st.Branch != nil {
			v, err := m.Reg(st.Branch.Reg)
			if err != nil {
				return nil, err
			}
			if v == st.Branch.IfSet {
				next = st.Branch.Target
				pc = next
				continue
			}
		}
		if st.Halt {
			return tr, nil
		}
		if next >= len(p.Steps) {
			return tr, nil
		}
		pc = next
	}
}

// TaskRequirements extracts per-task context-requirement sequences from
// the trace under the chosen granularity, in the paper's task order
// (T1=LUT1, T2=LUT2, T3=DeMUX, T4=MUX), each over its local switch
// universe.
func (t *Trace) TaskRequirements(g Granularity) [][]bitset.Set {
	units := Units()
	out := make([][]bitset.Set, len(units))
	var deltas []bitset.Set
	if g == GranularityDelta {
		deltas = t.configDeltas()
	}
	for j, u := range units {
		out[j] = make([]bitset.Set, t.Len())
		for i, st := range t.Steps {
			switch g {
			case GranularityUnit:
				s := bitset.New(u.Bits())
				if !st.Live[u].IsEmpty() {
					s.Fill()
				}
				out[j][i] = s
			case GranularityDelta:
				s := bitset.New(u.Bits())
				start, end := u.BitRange()
				deltas[i].ForEach(func(b int) {
					if b >= start && b < end {
						s.Add(b - start)
					}
				})
				out[j][i] = s
			default: // GranularityBit
				out[j][i] = st.Live[u].Clone()
			}
		}
	}
	return out
}

// configDeltas returns, per step, the live configuration bits whose
// required value differs from what is installed on the machine under
// the minimal-upload policy: the machine powers on all-zero, each step
// uploads exactly its delta, and bits outside a step's live set keep
// their installed (possibly stale) values.  The definition is therefore
// inductive —
//
//	installed_0 = 0
//	delta_i     = { b ∈ live_i : desired_i[b] ≠ installed_i[b] }
//	installed_{i+1} = installed_i patched with desired_i on delta_i
//
// — which is exactly the set of switches a reconfiguration at step i
// must write for the computation to proceed correctly.  (Computing
// deltas between consecutive *desired* configurations instead would be
// unsound: a bit that was dead at the step where its desired value last
// changed still holds the stale value.  ReplayMT exposes the
// difference.)
func (t *Trace) configDeltas() []bitset.Set {
	out := make([]bitset.Set, t.Len())
	installed := bitset.New(ConfigBits)
	for i, st := range t.Steps {
		desired := st.Cfg.Encode()
		live := bitset.New(ConfigBits)
		for _, u := range Units() {
			start, _ := u.BitRange()
			st.Live[u].ForEach(func(b int) { live.Add(start + b) })
		}
		delta := installed.SymmetricDifference(desired)
		delta.IntersectWith(live)
		out[i] = delta
		// Patch the installed image on the delta bits.
		installed.DifferenceWith(delta)
		installed.UnionWith(desired.Intersect(delta))
	}
	return out
}

// MTInstance builds the fully synchronized multi-task Switch-model
// instance of the trace: the m=4 analysis of the paper's experiment.
func (t *Trace) MTInstance(g Granularity) (*model.MTSwitchInstance, error) {
	return model.NewMTSwitchInstance(Tasks(), t.TaskRequirements(g))
}

// SingleInstance builds the m=1 view where all four components form one
// task over the full 48-switch universe, with the paper's typical
// special case W = |X| = 48.
func (t *Trace) SingleInstance(g Granularity) (*model.SwitchInstance, error) {
	mt, err := t.MTInstance(g)
	if err != nil {
		return nil, err
	}
	return mt.SingleTaskView()
}
