package shyra

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
)

// runAndSchedule runs the two-step fixture and builds a canonical
// schedule from a hyperreconfiguration mask at the given granularity.
func runAndSchedule(t *testing.T, g Granularity, mask [][]bool) (*Trace, *model.MTSchedule, *model.MTSwitchInstance) {
	t.Helper()
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	if mask == nil {
		mask = make([][]bool, ins.NumTasks())
		for j := range mask {
			mask[j] = make([]bool, ins.Steps())
			mask[j][0] = true
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		t.Fatal(err)
	}
	return tr, sched, ins
}

func TestReplayMTAllGranularities(t *testing.T) {
	for _, g := range []Granularity{GranularityBit, GranularityUnit, GranularityDelta} {
		tr, sched, _ := runAndSchedule(t, g, nil)
		rep, err := ReplayMT(tr, sched)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if rep.Steps != tr.Len() {
			t.Fatalf("%v: steps = %d", g, rep.Steps)
		}
		if rep.TotalUploaded <= 0 {
			t.Fatalf("%v: no uploads recorded", g)
		}
		// Gated uploads never change more bits than the cost model pays.
		for i := range rep.ChangedBits {
			if rep.ChangedBits[i] > rep.UploadedBits[i] {
				t.Fatalf("%v: step %d changed %d > uploaded %d", g, i, rep.ChangedBits[i], rep.UploadedBits[i])
			}
		}
	}
}

func TestReplayMTDetectsInsufficientHypercontext(t *testing.T) {
	tr, sched, _ := runAndSchedule(t, GranularityBit, nil)
	// Sabotage: empty LUT1's hypercontext at every step.
	for i := range sched.Hctx[0] {
		sched.Hctx[0][i] = bitset.New(UnitLUT1.Bits())
	}
	if _, err := ReplayMT(tr, sched); err == nil {
		t.Fatal("replay accepted a schedule that cannot configure LUT1")
	}
}

func TestReplayMTDetectsShapeErrors(t *testing.T) {
	tr, sched, _ := runAndSchedule(t, GranularityBit, nil)
	if _, err := ReplayMT(nil, sched); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := ReplayMT(tr, nil); err == nil {
		t.Fatal("accepted nil schedule")
	}
	bad := &model.MTSchedule{Hyper: sched.Hyper[:2], Hctx: sched.Hctx[:2]}
	if _, err := ReplayMT(tr, bad); err == nil {
		t.Fatal("accepted wrong task count")
	}
	short := &model.MTSchedule{
		Hyper: [][]bool{{true}, {true}, {true}, {true}},
		Hctx: [][]bitset.Set{
			{bitset.New(8)}, {bitset.New(8)}, {bitset.New(8)}, {bitset.New(24)},
		},
	}
	if _, err := ReplayMT(tr, short); err == nil {
		t.Fatal("accepted wrong step count")
	}
	wrongUniverse := &model.MTSchedule{
		Hyper: sched.Hyper,
		Hctx: [][]bitset.Set{
			{bitset.New(9), bitset.New(9)}, sched.Hctx[1], sched.Hctx[2], sched.Hctx[3],
		},
	}
	if _, err := ReplayMT(tr, wrongUniverse); err == nil {
		t.Fatal("accepted wrong hypercontext universe")
	}
}

func TestReplayMTFullHypercontexts(t *testing.T) {
	// Full hypercontexts everywhere must always replay (it is the
	// hyperreconfiguration-disabled machine).
	tr, _, ins := runAndSchedule(t, GranularityBit, nil)
	full := &model.MTSchedule{
		Hyper: make([][]bool, ins.NumTasks()),
		Hctx:  make([][]bitset.Set, ins.NumTasks()),
	}
	for j, u := range Units() {
		full.Hyper[j] = make([]bool, tr.Len())
		full.Hyper[j][0] = true
		full.Hctx[j] = make([]bitset.Set, tr.Len())
		for i := range full.Hctx[j] {
			full.Hctx[j][i] = bitset.Full(u.Bits())
		}
	}
	rep, err := ReplayMT(tr, full)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUploaded != tr.Len()*ConfigBits {
		t.Fatalf("full replay uploaded %d, want %d", rep.TotalUploaded, tr.Len()*ConfigBits)
	}
}
