package shyra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestConstants(t *testing.T) {
	if ConfigBits != 48 {
		t.Fatalf("ConfigBits = %d, want 48 (paper's reconfiguration bit budget)", ConfigBits)
	}
	want := map[Unit]int{UnitLUT1: 8, UnitLUT2: 8, UnitDeMUX: 8, UnitMUX: 24}
	total := 0
	for _, u := range Units() {
		if got := u.Bits(); got != want[u] {
			t.Errorf("%v has %d bits, want %d", u, got, want[u])
		}
		total += u.Bits()
	}
	if total != ConfigBits {
		t.Fatalf("unit bits sum to %d, want %d", total, ConfigBits)
	}
}

func TestBitRangesPartition(t *testing.T) {
	seen := make([]bool, ConfigBits)
	for _, u := range Units() {
		s, e := u.BitRange()
		for b := s; b < e; b++ {
			if seen[b] {
				t.Fatalf("bit %d covered twice", b)
			}
			seen[b] = true
		}
	}
	for b, ok := range seen {
		if !ok {
			t.Fatalf("bit %d uncovered", b)
		}
	}
}

func TestTasksMatchPaper(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 4 {
		t.Fatalf("len(Tasks) = %d", len(tasks))
	}
	wantL := []int{8, 8, 8, 24}
	wantN := []string{"LUT1", "LUT2", "DeMUX", "MUX"}
	for j, task := range tasks {
		if task.Local != wantL[j] || task.Name != wantN[j] {
			t.Errorf("task %d = %+v, want %s/%d", j, task, wantN[j], wantL[j])
		}
		if int(task.V) != wantL[j] {
			t.Errorf("task %d V = %d, want v_j = l_j = %d", j, task.V, wantL[j])
		}
	}
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	for b := 0; b < ConfigBits; b++ {
		u, local, err := GlobalToLocal(b)
		if err != nil {
			t.Fatal(err)
		}
		back, err := LocalToGlobal(u, local)
		if err != nil {
			t.Fatal(err)
		}
		if back != b {
			t.Fatalf("round trip %d → (%v,%d) → %d", b, u, local, back)
		}
	}
	if _, _, err := GlobalToLocal(48); err == nil {
		t.Fatal("accepted bit 48")
	}
	if _, err := LocalToGlobal(UnitLUT1, 8); err == nil {
		t.Fatal("accepted local 8 for LUT1")
	}
}

func randomConfig(r *rand.Rand) Config {
	var c Config
	for k := 0; k < NumLUTs; k++ {
		for v := 0; v < LUTTableBits; v++ {
			c.LUT[k][v] = r.Intn(2) == 1
		}
		c.DemuxSel[k] = uint8(r.Intn(NumRegs))
	}
	for i := range c.MuxSel {
		c.MuxSel[i] = uint8(r.Intn(NumRegs))
	}
	return c
}

func TestQuickConfigEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomConfig(r)
		d, err := DecodeConfig(c.Encode())
		return err == nil && d == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	c.MuxSel[0] = 10
	if err := c.Validate(); err == nil {
		t.Fatal("accepted MUX selection 10")
	}
	c.MuxSel[0] = 0
	c.DemuxSel[1] = 12
	if err := c.Validate(); err == nil {
		t.Fatal("accepted DeMUX selection 12")
	}
}

func TestDecodeConfigWrongUniverse(t *testing.T) {
	if _, err := DecodeConfig(bitset.New(47)); err == nil {
		t.Fatal("accepted 47-bit universe")
	}
}

func TestMachineCycleLUTEval(t *testing.T) {
	var m Machine
	var c Config
	// LUT1 computes AND of r0 and r1 into r2: table[v] = bit0&bit1.
	for v := 0; v < LUTTableBits; v++ {
		c.LUT[0][v] = v&1 != 0 && v&2 != 0
	}
	c.MuxSel[0], c.MuxSel[1], c.MuxSel[2] = 0, 1, 0
	c.DemuxSel[0] = 2
	if err := m.Configure(c); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want bool }{
		{false, false, false}, {true, false, false}, {false, true, false}, {true, true, true},
	}
	for _, tc := range cases {
		m.SetReg(0, tc.a)
		m.SetReg(1, tc.b)
		if err := m.Cycle(Usage{LUT: [2]bool{true, false}, LiveInputs: [2]uint8{2, 0}}); err != nil {
			t.Fatal(err)
		}
		got, _ := m.Reg(2)
		if got != tc.want {
			t.Fatalf("AND(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestMachineReadsBeforeWrites(t *testing.T) {
	// Both LUTs read the same register while one overwrites it: the
	// values must be the pre-cycle ones.
	var m Machine
	var c Config
	// LUT1: NOT r0 -> r0; LUT2: identity r0 -> r1.
	for v := 0; v < LUTTableBits; v++ {
		c.LUT[0][v] = v&1 == 0 // NOT input0
		c.LUT[1][v] = v&1 != 0 // identity input0
	}
	c.MuxSel = [6]uint8{0, 0, 0, 0, 0, 0}
	c.DemuxSel = [2]uint8{0, 1}
	m.Configure(c)
	m.SetReg(0, true)
	if err := m.Cycle(Usage{LUT: [2]bool{true, true}, LiveInputs: [2]uint8{1, 1}}); err != nil {
		t.Fatal(err)
	}
	r0, _ := m.Reg(0)
	r1, _ := m.Reg(1)
	if r0 != false || r1 != true {
		t.Fatalf("r0=%v r1=%v, want false/true (edge-triggered semantics)", r0, r1)
	}
}

func TestMachineWriteConflict(t *testing.T) {
	var m Machine
	var c Config
	c.DemuxSel = [2]uint8{3, 3}
	m.Configure(c)
	if err := m.Cycle(Usage{LUT: [2]bool{true, true}}); err == nil {
		t.Fatal("accepted double write to register 3")
	}
	// One LUT unused: no conflict.
	if err := m.Cycle(Usage{LUT: [2]bool{true, false}}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineUnusedLUTDoesNotWrite(t *testing.T) {
	var m Machine
	var c Config
	for v := 0; v < LUTTableBits; v++ {
		c.LUT[0][v] = true // constant 1
	}
	c.DemuxSel[0] = 5
	m.Configure(c)
	if err := m.Cycle(Usage{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Reg(5); v {
		t.Fatal("unused LUT wrote its output")
	}
}

func TestMachineRegBounds(t *testing.T) {
	var m Machine
	if err := m.SetReg(10, true); err == nil {
		t.Fatal("accepted register 10")
	}
	if _, err := m.Reg(-1); err == nil {
		t.Fatal("accepted register -1")
	}
}

func TestMachineReset(t *testing.T) {
	var m Machine
	m.SetReg(3, true)
	m.Reset()
	if v, _ := m.Reg(3); v {
		t.Fatal("Reset did not clear registers")
	}
}

func TestUnitString(t *testing.T) {
	names := []string{"LUT1", "LUT2", "DeMUX", "MUX"}
	for i, u := range Units() {
		if u.String() != names[i] {
			t.Errorf("unit %d String = %q", i, u.String())
		}
	}
	if Unit(9).String() == "" {
		t.Error("unknown unit should render")
	}
}
