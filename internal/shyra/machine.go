package shyra

import "fmt"

// Usage says which LUTs participate in a cycle and how many of their
// inputs are live.  Unused LUTs neither evaluate nor write, and their
// configuration bits (plus the MUX/DeMUX selections that only serve
// them) are don't-cares for the cycle.  Inputs beyond LiveInputs are
// tied to zero by the sequencer, so only the first 2^LiveInputs
// truth-table cells can be addressed — this is what makes the
// bit-granularity context requirements (2^arity live cells) sound:
// cells outside the live region can hold stale values without
// affecting the computation.
type Usage struct {
	LUT [NumLUTs]bool
	// LiveInputs[k] is the number of inputs LUT k reads (0..3);
	// meaningful only when LUT[k] is true.
	LiveInputs [NumLUTs]uint8
}

// Machine is a functional simulator of SHyRA: ten 1-bit registers and
// the currently loaded configuration.  The zero value is a machine with
// all registers cleared and an all-zero configuration.
type Machine struct {
	regs [NumRegs]bool
	cfg  Config
}

// Reset clears all registers.
func (m *Machine) Reset() { m.regs = [NumRegs]bool{} }

// SetReg stores a value into a register.
func (m *Machine) SetReg(r int, v bool) error {
	if r < 0 || r >= NumRegs {
		return fmt.Errorf("shyra: register %d out of range", r)
	}
	m.regs[r] = v
	return nil
}

// Reg reads a register.
func (m *Machine) Reg(r int) (bool, error) {
	if r < 0 || r >= NumRegs {
		return false, fmt.Errorf("shyra: register %d out of range", r)
	}
	return m.regs[r], nil
}

// Regs returns a snapshot of the register file.
func (m *Machine) Regs() [NumRegs]bool { return m.regs }

// LoadRegs installs a full register-file image.
func (m *Machine) LoadRegs(v [NumRegs]bool) { m.regs = v }

// Configure performs an ordinary reconfiguration step: it installs the
// given configuration (in cost-model terms, uploads the reconfiguration
// bits permitted by the current hypercontext).
func (m *Machine) Configure(c Config) error {
	if err := c.Validate(); err != nil {
		return err
	}
	m.cfg = c
	return nil
}

// Config returns the currently installed configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cycle executes one computational cycle under the current
// configuration: used LUTs read their MUX-selected registers, evaluate,
// and their outputs are written through the DeMUX.  Both reads happen
// before any write (registers are edge-triggered).  Two used LUTs must
// not target the same destination register.
func (m *Machine) Cycle(use Usage) error {
	if use.LUT[0] && use.LUT[1] && m.cfg.DemuxSel[0] == m.cfg.DemuxSel[1] {
		return fmt.Errorf("shyra: both LUTs write register %d in the same cycle", m.cfg.DemuxSel[0])
	}
	var out [NumLUTs]bool
	for k := 0; k < NumLUTs; k++ {
		if !use.LUT[k] {
			continue
		}
		live := int(use.LiveInputs[k])
		if live > LUTInputs {
			return fmt.Errorf("shyra: LUT%d declares %d live inputs (max %d)", k+1, live, LUTInputs)
		}
		idx := 0
		for i := 0; i < live; i++ {
			if m.regs[m.cfg.MuxSel[k*LUTInputs+i]] {
				idx |= 1 << uint(i)
			}
		}
		out[k] = m.cfg.LUT[k][idx]
	}
	for k := 0; k < NumLUTs; k++ {
		if use.LUT[k] {
			m.regs[m.cfg.DemuxSel[k]] = out[k]
		}
	}
	return nil
}
