package shyra

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
)

// ReplayReport is the outcome of re-executing a trace under a
// hypercontext-gated machine.
type ReplayReport struct {
	// Steps is the number of replayed reconfiguration steps.
	Steps int
	// UploadedBits[i] is Σ_j |hctx_j(i)| — the reconfiguration bits the
	// cost model charges at step i (task-sequential accounting; the
	// task-parallel step time is the per-task maximum).
	UploadedBits []int
	// ChangedBits[i] counts the configuration bits that actually
	// changed value at step i (≤ UploadedBits[i]).
	ChangedBits []int
	// TotalUploaded sums UploadedBits.
	TotalUploaded int
}

// ReplayMT re-executes a traced program under a multi-task
// hyperreconfiguration schedule, enforcing hypercontexts in hardware
// terms: at every step only the configuration bits inside the tasks'
// current hypercontexts may be written; all other bits keep their
// previous values.  The replay fails if a bit the computation depends
// on (a live bit whose required value differs from what is installed)
// lies outside the hypercontexts, or if the register trajectory
// diverges from the original trace.
//
// A successful replay is the end-to-end proof that the schedule is
// functionally sound: the machine computes exactly what the
// hyperreconfiguration-disabled run computed while uploading only
// hypercontext-sized configurations.  The schedule must come from the
// same trace (same step count) with per-task universes matching the
// SHyRA task decomposition.
func ReplayMT(tr *Trace, sched *model.MTSchedule) (*ReplayReport, error) {
	if tr == nil || sched == nil {
		return nil, fmt.Errorf("shyra: nil trace or schedule")
	}
	units := Units()
	if len(sched.Hyper) != len(units) || len(sched.Hctx) != len(units) {
		return nil, fmt.Errorf("shyra: schedule has %d task rows, want %d", len(sched.Hyper), len(units))
	}
	n := tr.Len()
	for j, u := range units {
		if len(sched.Hctx[j]) != n {
			return nil, fmt.Errorf("shyra: task %v schedule has %d steps, want %d", u, len(sched.Hctx[j]), n)
		}
		for i, h := range sched.Hctx[j] {
			if h.Universe() != u.Bits() {
				return nil, fmt.Errorf("shyra: task %v hypercontext %d over universe %d, want %d", u, i, h.Universe(), u.Bits())
			}
		}
	}

	var m Machine
	m.LoadRegs(tr.InitRegs)
	installed := bitset.New(ConfigBits)
	rep := &ReplayReport{Steps: n, UploadedBits: make([]int, n), ChangedBits: make([]int, n)}

	for i := 0; i < n; i++ {
		st := &tr.Steps[i]
		// Allowed bits: the union of the tasks' current hypercontexts,
		// mapped into the global bit layout.
		allowed := bitset.New(ConfigBits)
		uploaded := 0
		for j, u := range units {
			start, _ := u.BitRange()
			sched.Hctx[j][i].ForEach(func(b int) { allowed.Add(start + b) })
			uploaded += sched.Hctx[j][i].Count()
		}
		desired := st.Cfg.Encode()

		// Gate the upload: only allowed bits take their desired values.
		next := installed.Clone()
		next.DifferenceWith(allowed)
		patch := desired.Intersect(allowed)
		next.UnionWith(patch)
		rep.ChangedBits[i] = installed.SymmetricDifferenceCount(next)
		rep.UploadedBits[i] = uploaded
		rep.TotalUploaded += uploaded

		// Every live bit must now hold its desired value, or the
		// hypercontexts were insufficient for the computation.
		for _, u := range units {
			start, _ := u.BitRange()
			bad := -1
			st.Live[u].ForEach(func(b int) {
				g := start + b
				if bad < 0 && next.Contains(g) != desired.Contains(g) {
					bad = g
				}
			})
			if bad >= 0 {
				return nil, fmt.Errorf("shyra: step %d (%s): live bit %d of %v not reconfigurable under the schedule's hypercontext", i, st.Name, bad, u)
			}
		}

		// Execute the cycle on the gated configuration.  Stale bits
		// outside the live set may decode to out-of-range selections;
		// they are never read, so the raw decode (without validation)
		// is installed directly.
		installed = next
		m.cfg = rawDecode(installed)
		if err := m.Cycle(st.Use); err != nil {
			return nil, fmt.Errorf("shyra: step %d (%s): %w", i, st.Name, err)
		}
		if m.Regs() != st.RegsAfter {
			return nil, fmt.Errorf("shyra: step %d (%s): register trajectory diverged from the trace", i, st.Name)
		}
	}
	return rep, nil
}

// rawDecode unpacks configuration bits without range validation;
// out-of-range selections can only occur in dead fields, which the
// replay never reads.
func rawDecode(s bitset.Set) Config {
	var c Config
	for k := 0; k < NumLUTs; k++ {
		base := k * LUTTableBits
		for v := 0; v < LUTTableBits; v++ {
			c.LUT[k][v] = s.Contains(base + v)
		}
	}
	demuxBase, _ := UnitDeMUX.BitRange()
	for k := 0; k < NumLUTs; k++ {
		var val uint8
		for b := 0; b < SelBits; b++ {
			if s.Contains(demuxBase + k*SelBits + b) {
				val |= 1 << uint(b)
			}
		}
		c.DemuxSel[k] = val
	}
	muxBase, _ := UnitMUX.BitRange()
	for i := 0; i < NumLUTs*LUTInputs; i++ {
		var val uint8
		for b := 0; b < SelBits; b++ {
			if s.Contains(muxBase + i*SelBits + b) {
				val |= 1 << uint(b)
			}
		}
		c.MuxSel[i] = val
	}
	return c
}
