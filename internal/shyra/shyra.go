// Package shyra implements SHyRA, the Simple HYperReconfigurable
// Architecture of Lange & Middendorf (Figure 1): a minimalistic model
// of a rapidly reconfiguring machine with
//
//   - two reconfigurable look-up tables (LUT1, LUT2), each with three
//     inputs and one output,
//   - a file of ten 1-bit registers,
//   - a 10:6 multiplexer connecting registers to the six LUT inputs,
//   - a 2:10 demultiplexer routing the two LUT outputs back to
//     registers.
//
// One configuration comprises 48 reconfiguration bits ("switches"):
//
//	LUT1 truth table   8 bits   (task T1, l1 = 8)
//	LUT2 truth table   8 bits   (task T2, l2 = 8)
//	DeMUX selections   2×4 bits (task T3, l3 = 8)
//	MUX selections     6×4 bits (task T4, l4 = 24)
//
// matching the task decomposition of the paper's multi-task experiment.
// The tiny number of LUTs bottlenecks every application and forces
// extensive use of reconfiguration — which is exactly what makes the
// architecture a good vehicle for studying (partial)
// hyperreconfiguration.
//
// Whether a LUT participates in a cycle is part of the instruction
// semantics (a clock-enable), not of the 48 configuration bits; the
// configuration bits of unused units are don't-cares and therefore
// excluded from that step's context requirement.
package shyra

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Architecture constants.
const (
	// NumRegs is the size of the register file.
	NumRegs = 10
	// NumLUTs is the number of look-up tables.
	NumLUTs = 2
	// LUTInputs is the fan-in of each LUT.
	LUTInputs = 3
	// LUTTableBits is the truth-table size of one LUT.
	LUTTableBits = 1 << LUTInputs
	// SelBits is the width of one MUX/DeMUX register selection.
	SelBits = 4
	// ConfigBits is the total reconfiguration bit budget.
	ConfigBits = 2*LUTTableBits + NumLUTs*SelBits + NumLUTs*LUTInputs*SelBits // 48
)

// Unit identifies one of SHyRA's four reconfigurable components; each
// forms one task of the paper's multi-task decomposition (m = 4).
type Unit int

const (
	UnitLUT1 Unit = iota
	UnitLUT2
	UnitDeMUX
	UnitMUX
	numUnits
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case UnitLUT1:
		return "LUT1"
	case UnitLUT2:
		return "LUT2"
	case UnitDeMUX:
		return "DeMUX"
	case UnitMUX:
		return "MUX"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// Units lists all units in the paper's task order T1..T4.
func Units() []Unit { return []Unit{UnitLUT1, UnitLUT2, UnitDeMUX, UnitMUX} }

// BitRange returns the unit's [start, end) slice of the 48-bit global
// configuration bit layout:
//
//	bits  0.. 7  LUT1 truth table
//	bits  8..15  LUT2 truth table
//	bits 16..23  DeMUX selections (2 × 4)
//	bits 24..47  MUX selections (6 × 4)
func (u Unit) BitRange() (start, end int) {
	switch u {
	case UnitLUT1:
		return 0, 8
	case UnitLUT2:
		return 8, 16
	case UnitDeMUX:
		return 16, 24
	case UnitMUX:
		return 24, 48
	default:
		panic(fmt.Sprintf("shyra: invalid unit %d", int(u)))
	}
}

// Bits returns the unit's local switch count l_j.
func (u Unit) Bits() int {
	s, e := u.BitRange()
	return e - s
}

// Tasks returns the paper's multi-task decomposition as model tasks
// (T1 = LUT1 with l1 = 8, ..., T4 = MUX with l4 = 24) using the typical
// special case v_j = l_j for the local hyperreconfiguration costs.
func Tasks() []model.Task {
	out := make([]model.Task, 0, numUnits)
	for _, u := range Units() {
		out = append(out, model.Task{Name: u.String(), Local: u.Bits(), V: model.Cost(u.Bits())})
	}
	return out
}

// Config is one full configuration of the architecture: the values of
// all 48 reconfiguration bits.
type Config struct {
	// LUT[k] is LUT k's truth table: LUT[k][v] is the output for the
	// 3-bit input value v (input 0 is the least significant bit).
	LUT [NumLUTs][LUTTableBits]bool
	// MuxSel[i] is the register (0..9) feeding LUT input i, where
	// inputs 0..2 belong to LUT1 and 3..5 to LUT2.
	MuxSel [NumLUTs * LUTInputs]uint8
	// DemuxSel[k] is the register (0..9) LUT k's output is written to
	// when the LUT is used in a cycle.
	DemuxSel [NumLUTs]uint8
}

// Validate checks all selections address existing registers.
func (c *Config) Validate() error {
	for i, s := range c.MuxSel {
		if s >= NumRegs {
			return fmt.Errorf("shyra: MUX selection %d addresses register %d (have %d)", i, s, NumRegs)
		}
	}
	for k, s := range c.DemuxSel {
		if s >= NumRegs {
			return fmt.Errorf("shyra: DeMUX selection %d addresses register %d (have %d)", k, s, NumRegs)
		}
	}
	return nil
}

// Encode packs the configuration into a 48-element bit set following
// the global bit layout.  Selection fields are encoded LSB-first.
func (c *Config) Encode() bitset.Set {
	s := bitset.New(ConfigBits)
	for k := 0; k < NumLUTs; k++ {
		base := k * LUTTableBits
		for v := 0; v < LUTTableBits; v++ {
			if c.LUT[k][v] {
				s.Add(base + v)
			}
		}
	}
	demuxBase, _ := UnitDeMUX.BitRange()
	for k := 0; k < NumLUTs; k++ {
		for b := 0; b < SelBits; b++ {
			if c.DemuxSel[k]&(1<<uint(b)) != 0 {
				s.Add(demuxBase + k*SelBits + b)
			}
		}
	}
	muxBase, _ := UnitMUX.BitRange()
	for i := 0; i < NumLUTs*LUTInputs; i++ {
		for b := 0; b < SelBits; b++ {
			if c.MuxSel[i]&(1<<uint(b)) != 0 {
				s.Add(muxBase + i*SelBits + b)
			}
		}
	}
	return s
}

// DecodeConfig unpacks a 48-element bit set into a configuration.
func DecodeConfig(s bitset.Set) (Config, error) {
	var c Config
	if s.Universe() != ConfigBits {
		return c, fmt.Errorf("shyra: config bit set over universe %d, want %d", s.Universe(), ConfigBits)
	}
	for k := 0; k < NumLUTs; k++ {
		base := k * LUTTableBits
		for v := 0; v < LUTTableBits; v++ {
			c.LUT[k][v] = s.Contains(base + v)
		}
	}
	demuxBase, _ := UnitDeMUX.BitRange()
	for k := 0; k < NumLUTs; k++ {
		var val uint8
		for b := 0; b < SelBits; b++ {
			if s.Contains(demuxBase + k*SelBits + b) {
				val |= 1 << uint(b)
			}
		}
		c.DemuxSel[k] = val
	}
	muxBase, _ := UnitMUX.BitRange()
	for i := 0; i < NumLUTs*LUTInputs; i++ {
		var val uint8
		for b := 0; b < SelBits; b++ {
			if s.Contains(muxBase + i*SelBits + b) {
				val |= 1 << uint(b)
			}
		}
		c.MuxSel[i] = val
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// GlobalToLocal converts a global configuration-bit index into its
// (unit, local index) pair.
func GlobalToLocal(bit int) (Unit, int, error) {
	for _, u := range Units() {
		s, e := u.BitRange()
		if bit >= s && bit < e {
			return u, bit - s, nil
		}
	}
	return 0, 0, fmt.Errorf("shyra: configuration bit %d out of range [0,%d)", bit, ConfigBits)
}

// LocalToGlobal converts a unit's local switch index into the global
// configuration-bit index.
func LocalToGlobal(u Unit, local int) (int, error) {
	s, e := u.BitRange()
	if local < 0 || s+local >= e {
		return 0, fmt.Errorf("shyra: %v has no local switch %d", u, local)
	}
	return s + local, nil
}
