package shyra

import "fmt"

// Discard as an LUTSpec destination would contradict the usage model —
// unused LUTs simply set Spec to nil — so destinations are always real
// registers.

// LUTFunc is a boolean function of up to three inputs.  Inputs beyond
// the spec's arity are passed as false and must be ignored.
type LUTFunc func(a, b, c bool) bool

// LUTSpec describes one LUT's role in a step: the function it computes,
// the registers feeding its live inputs, and the destination register.
type LUTSpec struct {
	// Name documents the computed signal (e.g. "b1' = b1 XOR carry").
	Name string
	// Fn is the computed function.
	Fn LUTFunc
	// In lists the registers feeding the live inputs; len(In) ∈ [0,3].
	In []int
	// Dest is the register receiving the output.
	Dest int
}

// arity returns the number of live inputs.
func (s *LUTSpec) arity() int { return len(s.In) }

// Branch describes conditional control flow evaluated after a step's
// cycle completes.
type Branch struct {
	// Reg is the register tested.
	Reg int
	// IfSet is the value that triggers the jump.
	IfSet bool
	// Target is the instruction index jumped to when the test fires;
	// otherwise control falls through to the next instruction.
	Target int
}

// Step is one instruction of a SHyRA program: a reconfiguration (to the
// step's compiled configuration) followed by one computational cycle,
// then optional control flow.
type Step struct {
	// Name labels the step in traces (e.g. "inc0").
	Name string
	// LUT[k] describes LUT k's work this step; nil = unused.
	LUT [NumLUTs]*LUTSpec
	// Branch, if non-nil, is evaluated after the cycle.
	Branch *Branch
	// Halt stops the program after this step (checked after Branch; a
	// taken branch wins).
	Halt bool
}

// Program is a sequence of steps executed from index 0.
type Program struct {
	Name  string
	Steps []Step
	// InitRegs is the register file image installed before execution.
	InitRegs [NumRegs]bool
}

// Validate checks structural well-formedness: register ranges, branch
// targets, destination conflicts and LUT arities.
func (p *Program) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("shyra: program %q has no steps", p.Name)
	}
	for si := range p.Steps {
		st := &p.Steps[si]
		var dests []int
		for k := 0; k < NumLUTs; k++ {
			spec := st.LUT[k]
			if spec == nil {
				continue
			}
			if spec.Fn == nil {
				return fmt.Errorf("shyra: step %d (%s) LUT%d has no function", si, st.Name, k+1)
			}
			if spec.arity() > LUTInputs {
				return fmt.Errorf("shyra: step %d (%s) LUT%d has %d inputs (max %d)", si, st.Name, k+1, spec.arity(), LUTInputs)
			}
			for _, in := range spec.In {
				if in < 0 || in >= NumRegs {
					return fmt.Errorf("shyra: step %d (%s) LUT%d reads invalid register %d", si, st.Name, k+1, in)
				}
			}
			if spec.Dest < 0 || spec.Dest >= NumRegs {
				return fmt.Errorf("shyra: step %d (%s) LUT%d writes invalid register %d", si, st.Name, k+1, spec.Dest)
			}
			dests = append(dests, spec.Dest)
		}
		if len(dests) == 2 && dests[0] == dests[1] {
			return fmt.Errorf("shyra: step %d (%s) both LUTs write register %d", si, st.Name, dests[0])
		}
		if st.Branch != nil {
			if st.Branch.Reg < 0 || st.Branch.Reg >= NumRegs {
				return fmt.Errorf("shyra: step %d (%s) branches on invalid register %d", si, st.Name, st.Branch.Reg)
			}
			if st.Branch.Target < 0 || st.Branch.Target >= len(p.Steps) {
				return fmt.Errorf("shyra: step %d (%s) branches to invalid step %d", si, st.Name, st.Branch.Target)
			}
		}
	}
	return nil
}

// compile turns a step into a full configuration, threading the
// previous configuration so that don't-care fields keep their old
// values (they are not part of the step's context requirement, and a
// real machine would not upload them).
func (st *Step) compile(prev Config) (Config, Usage, error) {
	cfg := prev
	var use Usage
	for k := 0; k < NumLUTs; k++ {
		spec := st.LUT[k]
		if spec == nil {
			continue
		}
		use.LUT[k] = true
		use.LiveInputs[k] = uint8(spec.arity())
		// Truth table: live inputs map to table index bits 0..arity-1;
		// dead input bits are ignored by replicating the function value,
		// so the table is well-defined for every electrical input.
		for v := 0; v < LUTTableBits; v++ {
			args := [LUTInputs]bool{}
			for i := 0; i < spec.arity(); i++ {
				args[i] = v&(1<<uint(i)) != 0
			}
			cfg.LUT[k][v] = spec.Fn(args[0], args[1], args[2])
		}
		for i := 0; i < spec.arity(); i++ {
			cfg.MuxSel[k*LUTInputs+i] = uint8(spec.In[i])
		}
		cfg.DemuxSel[k] = uint8(spec.Dest)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, Usage{}, err
	}
	return cfg, use, nil
}
