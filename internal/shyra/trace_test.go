package shyra

import (
	"testing"
)

// twoStepProgram: step 0 uses LUT1 only (1 input), step 1 uses both
// LUTs (2 and 3 inputs).
func twoStepProgram() *Program {
	not := func(a, _, _ bool) bool { return !a }
	and := func(a, b, _ bool) bool { return a && b }
	maj := func(a, b, c bool) bool { return (a && b) || (a && c) || (b && c) }
	return &Program{
		Name: "two-step",
		Steps: []Step{
			{Name: "s0", LUT: [2]*LUTSpec{{Name: "not", Fn: not, In: []int{0}, Dest: 1}, nil}},
			{Name: "s1", LUT: [2]*LUTSpec{
				{Name: "and", Fn: and, In: []int{0, 1}, Dest: 2},
				{Name: "maj", Fn: maj, In: []int{0, 1, 2}, Dest: 3},
			}, Halt: true},
		},
	}
}

func TestRunTwoStep(t *testing.T) {
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace length = %d, want 2", tr.Len())
	}
	// r0=false initially: s0 writes r1 = !r0 = true.
	if !tr.Steps[0].RegsAfter[1] {
		t.Fatal("step 0 result wrong")
	}
	// s1: r2 = r0 AND r1 = false; r3 = MAJ(false,true,false) = false.
	if tr.Steps[1].RegsAfter[2] || tr.Steps[1].RegsAfter[3] {
		t.Fatal("step 1 result wrong")
	}
}

func TestLiveBitsGranularity(t *testing.T) {
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tr.TaskRequirements(GranularityBit)
	// Step 0: LUT1 arity 1 → 2 table cells live; LUT2 unused; DeMUX 4
	// bits (LUT1's selection); MUX 4 bits (1 live input).
	if got := reqs[0][0].Count(); got != 2 {
		t.Errorf("LUT1 live bits step 0 = %d, want 2", got)
	}
	if got := reqs[1][0].Count(); got != 0 {
		t.Errorf("LUT2 live bits step 0 = %d, want 0", got)
	}
	if got := reqs[2][0].Count(); got != 4 {
		t.Errorf("DeMUX live bits step 0 = %d, want 4", got)
	}
	if got := reqs[3][0].Count(); got != 4 {
		t.Errorf("MUX live bits step 0 = %d, want 4", got)
	}
	// Step 1: LUT1 arity 2 → 4 cells; LUT2 arity 3 → 8 cells; DeMUX 8;
	// MUX (2+3)·4 = 20.
	if got := reqs[0][1].Count(); got != 4 {
		t.Errorf("LUT1 live bits step 1 = %d, want 4", got)
	}
	if got := reqs[1][1].Count(); got != 8 {
		t.Errorf("LUT2 live bits step 1 = %d, want 8", got)
	}
	if got := reqs[2][1].Count(); got != 8 {
		t.Errorf("DeMUX live bits step 1 = %d, want 8", got)
	}
	if got := reqs[3][1].Count(); got != 20 {
		t.Errorf("MUX live bits step 1 = %d, want 20", got)
	}
}

func TestUnitGranularityFillsUnits(t *testing.T) {
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := tr.TaskRequirements(GranularityUnit)
	// Step 0: LUT1 fully required (8), LUT2 empty, DeMUX 8, MUX 24.
	wants := []int{8, 0, 8, 24}
	for j, w := range wants {
		if got := reqs[j][0].Count(); got != w {
			t.Errorf("task %d unit-level step 0 = %d, want %d", j, got, w)
		}
	}
}

func TestMTInstanceShape(t *testing.T) {
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumTasks() != 4 || ins.Steps() != 2 {
		t.Fatalf("instance shape %d×%d", ins.NumTasks(), ins.Steps())
	}
	if ins.TotalLocalSwitches() != ConfigBits {
		t.Fatalf("total switches = %d", ins.TotalLocalSwitches())
	}
	single, err := tr.SingleInstance(GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	if single.Universe != ConfigBits || single.W != ConfigBits {
		t.Fatalf("single view universe %d W %d", single.Universe, single.W)
	}
}

func TestRunBranchAndHalt(t *testing.T) {
	not := func(a, _, _ bool) bool { return !a }
	// Step 0 toggles r0 and branches back to itself while r0 is set —
	// executes twice (first run sets r0, second clears it).
	p := &Program{
		Name: "bounce",
		Steps: []Step{
			{Name: "t", LUT: [2]*LUTSpec{{Name: "not", Fn: not, In: []int{0}, Dest: 0}, nil},
				Branch: &Branch{Reg: 0, IfSet: true, Target: 0}, Halt: true},
		},
	}
	tr, err := Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace length = %d, want 2", tr.Len())
	}
}

func TestRunMaxCycles(t *testing.T) {
	id := func(a, _, _ bool) bool { return a }
	p := &Program{
		Name: "forever",
		Steps: []Step{
			{Name: "loop", LUT: [2]*LUTSpec{{Name: "id", Fn: id, In: []int{0}, Dest: 0}, nil},
				Branch: &Branch{Reg: 0, IfSet: false, Target: 0}},
		},
	}
	if _, err := Run(p, 10); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, 0); err == nil {
		t.Fatal("accepted nil program")
	}
	if _, err := Run(&Program{Name: "empty"}, 0); err == nil {
		t.Fatal("accepted empty program")
	}
	bad := twoStepProgram()
	bad.Steps[0].LUT[0].Dest = 11
	if _, err := Run(bad, 0); err == nil {
		t.Fatal("accepted invalid destination")
	}
	bad = twoStepProgram()
	bad.Steps[0].Branch = &Branch{Reg: 0, Target: 99}
	if _, err := Run(bad, 0); err == nil {
		t.Fatal("accepted invalid branch target")
	}
	bad = twoStepProgram()
	bad.Steps[1].LUT[0].Dest = 3 // same as LUT2's
	if _, err := Run(bad, 0); err == nil {
		t.Fatal("accepted double write")
	}
	bad = twoStepProgram()
	bad.Steps[0].LUT[0].In = []int{0, 1, 2, 3}
	if _, err := Run(bad, 0); err == nil {
		t.Fatal("accepted arity 4")
	}
	bad = twoStepProgram()
	bad.Steps[0].LUT[0].Fn = nil
	if _, err := Run(bad, 0); err == nil {
		t.Fatal("accepted nil function")
	}
}

func TestDontCarePersistence(t *testing.T) {
	// Unused unit fields keep their previous values across steps, so
	// don't-care bits never churn.
	tr, err := Run(twoStepProgram(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0 leaves LUT2's table at its zero value; step 1 programs it.
	if tr.Steps[0].Cfg.LUT[1] != [LUTTableBits]bool{} {
		t.Fatal("unused LUT2 table modified at step 0")
	}
	// Step 1 keeps LUT1's input selections from step 0 where unused:
	// LUT1 arity grew from 1 to 2, so selection 2 (third input) must
	// still hold its step-0 value.
	if tr.Steps[1].Cfg.MuxSel[2] != tr.Steps[0].Cfg.MuxSel[2] {
		t.Fatal("don't-care MUX selection churned")
	}
}

func TestGranularityString(t *testing.T) {
	if GranularityBit.String() != "bit" || GranularityUnit.String() != "unit" {
		t.Fatal("granularity strings wrong")
	}
	if Granularity(9).String() == "" {
		t.Fatal("unknown granularity should render")
	}
}
