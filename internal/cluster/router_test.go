package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// newNode starts one real hyperd node over httptest.
func newNode(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// newCluster starts n nodes and a router in front of them.
func newCluster(t *testing.T, n int) ([]*service.Server, []*httptest.Server, *Router, *httptest.Server) {
	t.Helper()
	var (
		servers []*service.Server
		nodes   []*httptest.Server
		peers   []string
	)
	for i := 0; i < n; i++ {
		s, ts := newNode(t, service.Config{Workers: 1, NodeID: fmt.Sprintf("node-%d", i)})
		servers = append(servers, s)
		nodes = append(nodes, ts)
		peers = append(peers, ts.URL)
	}
	rt, err := NewRouter(RouterConfig{Peers: peers, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		rt.Close()
		front.Close()
	})
	return servers, nodes, rt, front
}

// solveRequest builds the i-th distinct two-task instance (varying
// requirement bits so different i hash to different ring positions).
func solveRequest(i int) *service.SolveRequest {
	reqs := make([][]string, 4)
	for r := range reqs {
		reqs[r] = []string{
			fmt.Sprintf("%03b", (i*7+r*3)%8),
			fmt.Sprintf("%02b", (i*5+r)%4),
		}
	}
	return &service.SolveRequest{
		Solver: "exact",
		Instance: &service.WireInstance{
			Tasks: []service.WireTask{{Name: "alpha", Local: 3, V: 2}, {Name: "beta", Local: 2, V: 1}},
			Reqs:  reqs,
		},
	}
}

func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// twinOf builds a structural twin of a two-task request: tasks swapped
// and renamed, every task's switch columns reversed.  Canonically
// identical, literally different.
func twinOf(req *service.SolveRequest) *service.SolveRequest {
	t0, t1 := req.Instance.Tasks[0], req.Instance.Tasks[1]
	twin := &service.SolveRequest{
		Solver: req.Solver,
		Instance: &service.WireInstance{
			Tasks: []service.WireTask{
				{Name: "south", Local: t1.Local, V: t1.V},
				{Name: "north", Local: t0.Local, V: t0.V},
			},
		},
	}
	for _, row := range req.Instance.Reqs {
		twin.Instance.Reqs = append(twin.Instance.Reqs, []string{
			reverseString(row[1]), reverseString(row[0]),
		})
	}
	return twin
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestRouterRoutesTwinsToOneNode is the routing acceptance: a request
// and its structural twin, submitted through the router, land on the
// same node — so the twin is served from that node's canonical store
// without any peer fill configured.
func TestRouterRoutesTwinsToOneNode(t *testing.T) {
	_, _, _, front := newCluster(t, 3)

	req := solveRequest(1)
	resp, raw := postJSON(t, front.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("original: status %d: %s", resp.StatusCode, raw)
	}
	var first service.JobStatus
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}

	resp, raw = postJSON(t, front.URL+"/v1/solve", twinOf(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("twin: status %d: %s", resp.StatusCode, raw)
	}
	var second service.JobStatus
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("twin was not a cache hit — routed to a different node: %s", raw)
	}
	if second.Result == nil || first.Result == nil || second.Result.Cost != first.Result.Cost {
		t.Fatalf("twin cost differs: first=%+v second=%+v", first.Result, second.Result)
	}
}

// TestRouterStickyJobs submits through the router and polls the job id
// back through the router: the poll must land on the owning node, and
// a fresh router (empty sticky table) must rediscover the owner.
func TestRouterStickyJobs(t *testing.T) {
	_, nodes, _, front := newCluster(t, 3)

	resp, raw := postJSON(t, front.URL+"/v1/jobs", solveRequest(2))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submit response has no id: %s", raw)
	}

	resp, raw = getBody(t, front.URL+"/v1/jobs/"+st.ID+"/wait")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d: %s", resp.StatusCode, raw)
	}
	var done service.JobStatus
	if err := json.Unmarshal(raw, &done); err != nil {
		t.Fatal(err)
	}
	if done.ID != st.ID || done.State != string(service.JobDone) {
		t.Fatalf("wait did not reach the owning node: %s", raw)
	}

	// A fresh router has no sticky assignment for the id; the ring-ordered
	// search must find the owner anyway.
	var peers []string
	for _, n := range nodes {
		peers = append(peers, n.URL)
	}
	rt2, err := NewRouter(RouterConfig{Peers: peers, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()
	resp, raw = getBody(t, front2.URL+"/v1/jobs/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh-router poll: status %d: %s", resp.StatusCode, raw)
	}

	// Unknown ids still answer 404 with the unified error body.
	resp, raw = getBody(t, front.URL+"/v1/jobs/job-does-not-exist")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d: %s", resp.StatusCode, raw)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
		t.Fatalf("404 body is not the unified error shape: %s", raw)
	}
}

// TestRouterStickySessions opens a streaming session through the
// router and appends steps through it: every follow-up must reach the
// one node holding the session's engine state.
func TestRouterStickySessions(t *testing.T) {
	_, _, rt, front := newCluster(t, 3)

	req := solveRequest(3)
	sessReq := &service.SessionRequest{Solver: "exact", Instance: req.Instance}
	resp, raw := postJSON(t, front.URL+"/v1/sessions", sessReq)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d: %s", resp.StatusCode, raw)
	}
	var st service.SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("session has no id: %s", raw)
	}
	if got := rt.sessions.len(); got != 1 {
		t.Fatalf("router learned %d sticky sessions, want 1", got)
	}

	steps := &service.SessionSteps{Reqs: [][]string{{"101", "11"}, {"010", "00"}}}
	resp, raw = postJSON(t, front.URL+"/v1/sessions/"+st.ID+"/steps", steps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steps: status %d: %s", resp.StatusCode, raw)
	}
	var after service.SessionStatus
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if after.Steps != st.Steps+2 {
		t.Fatalf("steps did not reach the session's node: before=%d after=%d", st.Steps, after.Steps)
	}

	if resp, raw := getBody(t, front.URL+"/v1/sessions/"+st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("session get: status %d: %s", resp.StatusCode, raw)
	}
	req2, err := http.NewRequest(http.MethodDelete, front.URL+"/v1/sessions/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("session delete: status %d", dresp.StatusCode)
	}
}

// TestRouterFailover runs a cluster where one member is already dead:
// after the initial health sweep every submission must succeed on the
// surviving nodes, including the keys the dead node owned.
func TestRouterFailover(t *testing.T) {
	_, tsA := newNode(t, service.Config{Workers: 1, NodeID: "alive-a"})
	_, tsB := newNode(t, service.Config{Workers: 1, NodeID: "alive-b"})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, err := NewRouter(RouterConfig{
		Peers:          []string{tsA.URL, tsB.URL, deadURL},
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	owners := map[string]bool{}
	for i := 0; i < 20; i++ {
		req := solveRequest(i)
		key, err := req.RoutingKey(service.RouteLimits{})
		if err != nil {
			t.Fatal(err)
		}
		owners[rt.Members().Ring().Owner(key)] = true
		resp, raw := postJSON(t, front.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	// The sample is large enough that the dead node owned some keys —
	// otherwise the test proved nothing.
	deadID, err := NormalizeMemberURL(deadURL)
	if err != nil {
		t.Fatal(err)
	}
	if !owners[deadID] {
		t.Fatalf("no sampled key was owned by the dead node %q: %v", deadID, owners)
	}
}

// TestRouterErrorBodies pins the unified error shape at the router
// layer: bad JSON answers 400 with {"error": ...}, and a cluster with
// every node down answers 503.
func TestRouterErrorBodies(t *testing.T) {
	_, _, _, front := newCluster(t, 1)

	resp, err := http.Post(front.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d: %s", resp.StatusCode, raw)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
		t.Fatalf("400 body is not the unified error shape: %s", raw)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, err := NewRouter(RouterConfig{Peers: []string{deadURL}, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front2 := httptest.NewServer(rt.Handler())
	defer front2.Close()
	resp2, raw2 := postJSON(t, front2.URL+"/v1/solve", solveRequest(0))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead cluster: status %d: %s", resp2.StatusCode, raw2)
	}
	if err := json.Unmarshal(raw2, &eb); err != nil || eb.Error == "" {
		t.Fatalf("503 body is not the unified error shape: %s", raw2)
	}
}

// TestRouterHealthAndMetrics checks the router's own endpoints.
func TestRouterHealthAndMetrics(t *testing.T) {
	_, _, _, front := newCluster(t, 2)

	resp, raw := getBody(t, front.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", resp.StatusCode, raw)
	}
	var hs service.HealthStatus
	if err := json.Unmarshal(raw, &hs); err != nil {
		t.Fatal(err)
	}
	if hs.NodeID != "hyperd-router" || hs.Ring == nil || len(hs.Ring.Members) != 2 {
		t.Fatalf("unexpected router health: %s", raw)
	}
	for _, m := range hs.Ring.Members {
		if !m.Healthy {
			t.Fatalf("member %q reported unhealthy: %s", m.ID, raw)
		}
	}

	if _, raw := postJSON(t, front.URL+"/v1/solve", solveRequest(5)); len(raw) == 0 {
		t.Fatal("empty solve response")
	}
	resp, raw = getBody(t, front.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"hyperd_router_requests_total",
		"hyperd_router_failovers_total",
		"hyperd_router_no_node_total",
		"hyperd_router_node_healthy",
		"hyperd_router_sticky_jobs",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("metrics output missing %s:\n%s", want, raw)
		}
	}
}
