package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: high enough that
// the load split across a handful of nodes stays within a few percent
// of even, low enough that ring construction and lookup stay trivial.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a fixed member list.
// Each member owns VNodes points placed by SHA-256, keys hash onto the
// first point at or after their own hash (wrapping), and the
// preference order of a key is the sequence of distinct members met
// walking clockwise from there.  Construction is deterministic: the
// same member list (in any order) yields the same ring in every
// process, which is what lets a router, a smart client and the nodes
// themselves agree on ownership without coordination.
type Ring struct {
	vnodes  int
	members []string    // sorted, deduplicated
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// hash64 maps arbitrary bytes onto the ring coordinate space.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing places every member on the ring.  Member ids are
// deduplicated and sorted first, so construction order never matters.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var ids []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member id")
		}
		if !seen[m] {
			seen[m] = true
			ids = append(ids, m)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ids)
	r := &Ring{vnodes: vnodes, members: ids}
	r.points = make([]ringPoint, 0, len(ids)*vnodes)
	for mi, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(id + "#" + strconv.Itoa(v)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Hash ties (vanishingly rare) break by member order so the ring
		// stays deterministic.
		return pa.member < pb.member
	})
	return r, nil
}

// Members returns the sorted member ids.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Lookup returns the key's full preference order: the owner first,
// then each distinct member met walking clockwise — the deterministic
// failover sequence when the owner is down.
func (r *Ring) Lookup(key string) []string {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Owner returns the key's primary member.
func (r *Ring) Owner(key string) string {
	return r.Lookup(key)[0]
}
