package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHealthCheckerRecoveringNotReady checks the router's probe reads
// the durable-recovery state out of /v1/healthz: a node replaying its
// journal ("recovering") is not routable, a "ready" node is, and a
// node predating the state field (no "state" key) stays routable.
func TestHealthCheckerRecoveringNotReady(t *testing.T) {
	state := map[string]string{}
	node := func(name, body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/healthz" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(state[name]))
		}))
	}
	recovering := node("recovering", "")
	defer recovering.Close()
	ready := node("ready", "")
	defer ready.Close()
	legacy := node("legacy", "")
	defer legacy.Close()
	state["recovering"] = `{"status":"ok","state":"recovering"}`
	state["ready"] = `{"status":"ok","state":"ready"}`
	state["legacy"] = `{"status":"ok"}`

	set, err := NewMemberSet([]string{recovering.URL, ready.URL, legacy.URL}, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHealthChecker(set, 500*time.Millisecond, nil, "")
	h.CheckNow(context.Background())

	byURL := func(url string) *Member {
		t.Helper()
		for _, m := range set.Members() {
			if m.URL == url {
				return m
			}
		}
		t.Fatalf("no member for %s", url)
		return nil
	}
	if byURL(recovering.URL).Healthy() {
		t.Fatal("a recovering node must not be routable")
	}
	if !byURL(ready.URL).Healthy() {
		t.Fatal("a ready node must be routable")
	}
	if !byURL(legacy.URL).Healthy() {
		t.Fatal("a node without a state field must stay routable")
	}

	// The node finishes replay and flips ready on the next sweep.
	state["recovering"] = `{"status":"ok","state":"ready"}`
	h.CheckNow(context.Background())
	if !byURL(recovering.URL).Healthy() {
		t.Fatal("a recovered node must become routable again")
	}
}
