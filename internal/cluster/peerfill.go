package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
)

// Peer-fill tuning defaults: how many ring-adjacent siblings a node
// asks on a canonical-cache miss, and how long a sibling may park the
// request on an in-flight twin solve before answering a miss.
const (
	DefaultFanout   = 2
	DefaultPeerWait = time.Second
)

// PeerClientConfig configures a node's peer-fill client.
type PeerClientConfig struct {
	// Self is the node's own ring id; it is skipped during fill.
	Self string
	// Members supplies the ring and health state.
	Members *MemberSet
	// Client performs the HTTP fetches; nil selects a default with a
	// timeout slightly above Wait.
	Client *http.Client
	// Fanout caps how many siblings are asked per miss (default 2).
	Fanout int
	// Wait is the wait_ms forwarded to siblings — how long each may
	// hold the request against an in-flight twin solve (default 1s,
	// capped server-side at 10s).
	Wait time.Duration
	// Breaker tunes the per-peer circuit breaker.
	Breaker resilience.BreakerConfig
}

// PeerClient implements service.PeerFiller: on a local canonical-cache
// miss it walks the key's ring preference order and asks up to Fanout
// healthy siblings for their cached (or in-flight) entry before the
// local node solves.  Each sibling has its own circuit breaker so a
// dead peer costs one connection error per cooldown, not per miss.
type PeerClient struct {
	cfg      PeerClientConfig
	breakers map[string]*resilience.Breaker
}

// NewPeerClient builds the client.  Members is required.
func NewPeerClient(cfg PeerClientConfig) (*PeerClient, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("cluster: peer client needs a member set")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Wait <= 0 {
		cfg.Wait = DefaultPeerWait
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Wait + 5*time.Second}
	}
	pc := &PeerClient{cfg: cfg, breakers: map[string]*resilience.Breaker{}}
	for _, m := range cfg.Members.Members() {
		pc.breakers[m.ID] = resilience.NewBreaker(cfg.Breaker)
	}
	return pc, nil
}

// Fill implements service.PeerFiller.  It returns the first valid
// entry any sibling supplies, or (nil, false) after the fanout budget
// is spent.
func (pc *PeerClient) Fill(key string) (*service.PeerEntry, bool) {
	asked := 0
	for _, id := range pc.cfg.Members.Ring().Lookup(key) {
		if asked >= pc.cfg.Fanout {
			break
		}
		if id == pc.cfg.Self {
			continue
		}
		m, ok := pc.cfg.Members.Member(id)
		if !ok || !m.Healthy() {
			continue
		}
		br := pc.breakers[id]
		if ok, _ := br.Allow(); !ok {
			continue
		}
		asked++
		pe, err := pc.fetch(m.URL, key)
		if err != nil {
			br.Failure()
			continue
		}
		br.Success()
		if pe != nil {
			return pe, true
		}
	}
	return nil, false
}

// fetch asks one sibling.  A 404 is a successful probe with no entry
// (nil, nil); transport errors and unexpected statuses count against
// the peer's breaker.
func (pc *PeerClient) fetch(base, key string) (*service.PeerEntry, error) {
	waitMS := pc.cfg.Wait.Milliseconds()
	u := fmt.Sprintf("%s/v1/cache/%s?wait_ms=%d", base, url.PathEscape(key), waitMS)
	ctx, cancel := context.WithTimeout(context.Background(), pc.cfg.Wait+5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := pc.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("cluster: peer %s returned %d for cache key", base, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	pe, err := service.DecodePeerEntry(body)
	if err != nil {
		return nil, err
	}
	if pe.Key != key {
		return nil, fmt.Errorf("cluster: peer %s answered key %q for %q", base, pe.Key, key)
	}
	return pe, nil
}
