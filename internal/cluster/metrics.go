package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// routerMetrics is the router's Prometheus surface.  Per-node request
// counters are pre-allocated from the immutable member set, so the hot
// path is a single atomic add with no lock.
type routerMetrics struct {
	requests  map[string]*atomic.Int64 // member id -> routed requests
	failovers atomic.Int64
	noNode    atomic.Int64
	errors    atomic.Int64
}

func newRouterMetrics(set *MemberSet) *routerMetrics {
	m := &routerMetrics{requests: map[string]*atomic.Int64{}}
	for _, mem := range set.Members() {
		m.requests[mem.ID] = &atomic.Int64{}
	}
	return m
}

// observe counts one request routed to a member.
func (m *routerMetrics) observe(member string) {
	if c, ok := m.requests[member]; ok {
		c.Add(1)
	}
}

// render writes the Prometheus text exposition.
func (m *routerMetrics) render(w io.Writer, rt *Router) {
	fmt.Fprintln(w, "# HELP hyperd_router_requests_total Requests routed per node.")
	fmt.Fprintln(w, "# TYPE hyperd_router_requests_total counter")
	ids := make([]string, 0, len(m.requests))
	for id := range m.requests {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "hyperd_router_requests_total{node=%q} %d\n", id, m.requests[id].Load())
	}
	fmt.Fprintln(w, "# HELP hyperd_router_failovers_total Submissions retried on a lower-preference node.")
	fmt.Fprintln(w, "# TYPE hyperd_router_failovers_total counter")
	fmt.Fprintf(w, "hyperd_router_failovers_total %d\n", m.failovers.Load())
	fmt.Fprintln(w, "# HELP hyperd_router_no_node_total Requests that found no healthy node.")
	fmt.Fprintln(w, "# TYPE hyperd_router_no_node_total counter")
	fmt.Fprintf(w, "hyperd_router_no_node_total %d\n", m.noNode.Load())
	fmt.Fprintln(w, "# HELP hyperd_router_upstream_errors_total Transport failures against nodes.")
	fmt.Fprintln(w, "# TYPE hyperd_router_upstream_errors_total counter")
	fmt.Fprintf(w, "hyperd_router_upstream_errors_total %d\n", m.errors.Load())
	fmt.Fprintln(w, "# HELP hyperd_router_sticky_jobs Learned job placements held.")
	fmt.Fprintln(w, "# TYPE hyperd_router_sticky_jobs gauge")
	fmt.Fprintf(w, "hyperd_router_sticky_jobs %d\n", rt.jobs.len())
	fmt.Fprintln(w, "# HELP hyperd_router_sticky_sessions Learned session placements held.")
	fmt.Fprintln(w, "# TYPE hyperd_router_sticky_sessions gauge")
	fmt.Fprintf(w, "hyperd_router_sticky_sessions %d\n", rt.sessions.len())
	fmt.Fprintln(w, "# HELP hyperd_router_node_healthy Last observed member health (1 healthy, 0 down).")
	fmt.Fprintln(w, "# TYPE hyperd_router_node_healthy gauge")
	for _, mem := range rt.members.Members() {
		v := 0
		if mem.Healthy() {
			v = 1
		}
		fmt.Fprintf(w, "hyperd_router_node_healthy{node=%q} %d\n", mem.ID, v)
	}
}
