package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/solve"
)

// fillerHook late-binds a PeerFiller: the service.Config needs one at
// New() time, but the PeerClient needs the node URLs, which httptest
// assigns after the handlers exist.
type fillerHook struct {
	mu sync.Mutex
	f  service.PeerFiller
}

func (h *fillerHook) set(f service.PeerFiller) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.f = f
}

func (h *fillerHook) Fill(key string) (*service.PeerEntry, bool) {
	h.mu.Lock()
	f := h.f
	h.mu.Unlock()
	if f == nil {
		return nil, false
	}
	return f.Fill(key)
}

// metricValue scrapes one counter out of a /metrics exposition.
func metricValue(t *testing.T, url, name string) int64 {
	t.Helper()
	_, raw := getBody(t, url+"/metrics")
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? (\d+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, raw)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func waitJob(t *testing.T, j *service.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

// TestPeerFillTwinAcrossNodes is the cross-node twin replay property:
// for a family of instances, solving the original on node A and then
// submitting a structural twin to node B (which has never seen the
// problem) must serve the twin from A's canonical entry via peer fill
// — same cost, no second solve, schedule re-labeled in the twin's own
// task names.
func TestPeerFillTwinAcrossNodes(t *testing.T) {
	sA, tsA := newNode(t, service.Config{Workers: 1, NodeID: "node-a"})
	hook := &fillerHook{}
	sB, tsB := newNode(t, service.Config{Workers: 1, NodeID: "node-b", PeerFill: hook})

	set, err := NewMemberSet([]string{tsA.URL, tsB.URL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	self, err := NormalizeMemberURL(tsB.URL)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPeerClient(PeerClientConfig{Self: self, Members: set, Wait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hook.set(pc)

	for i := 0; i < 8; i++ {
		req := solveRequest(i)
		orig, _, err := sA.Submit(req)
		if err != nil {
			t.Fatalf("case %d: submit original: %v", i, err)
		}
		waitJob(t, orig)
		origSol, err := orig.Solution()
		if err != nil {
			t.Fatalf("case %d: original solve: %v", i, err)
		}

		twinJob, _, err := sB.Submit(twinOf(req))
		if err != nil {
			t.Fatalf("case %d: submit twin: %v", i, err)
		}
		if !twinJob.CacheHit {
			t.Fatalf("case %d: twin was solved locally instead of peer-filled", i)
		}
		waitJob(t, twinJob)
		twinSol, err := twinJob.Solution()
		if err != nil {
			t.Fatalf("case %d: twin result: %v", i, err)
		}
		if twinSol.Cost != origSol.Cost {
			t.Fatalf("case %d: twin cost %d != original %d", i, twinSol.Cost, origSol.Cost)
		}
		if twinSol.Exact != origSol.Exact {
			t.Fatalf("case %d: twin exact=%t, original=%t", i, twinSol.Exact, origSol.Exact)
		}

		// The replayed schedule must carry the twin's task labels, not the
		// original's — the entry is re-labeled per requester.
		st := twinJob.Snapshot()
		if st.Result == nil || st.Result.Schedule == nil {
			t.Fatalf("case %d: twin has no schedule document", i)
		}
		doc := string(st.Result.Schedule)
		for _, name := range []string{"south", "north"} {
			if !strings.Contains(doc, name) {
				t.Fatalf("case %d: twin schedule missing task %q:\n%s", i, name, doc)
			}
		}
		if strings.Contains(doc, "alpha") || strings.Contains(doc, "beta") {
			t.Fatalf("case %d: twin schedule leaks the original's labels:\n%s", i, doc)
		}
	}

	if hits := metricValue(t, tsB.URL, "hyperd_cluster_peer_fill_hits_total"); hits != 8 {
		t.Fatalf("node B peer fill hits = %d, want 8", hits)
	}
	if served := metricValue(t, tsA.URL, "hyperd_cluster_peer_serve_hits_total"); served != 8 {
		t.Fatalf("node A peer serve hits = %d, want 8", served)
	}
}

// TestCrossNodeSingleflight submits an instance to node A with a slow
// solver and, while that solve is still running, submits a structural
// twin to node B.  B's peer fill must park on A's in-flight job and
// reuse its result: exactly one solver run for both requests.
func TestCrossNodeSingleflight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	solve.Register(solve.NewSolver("cluster-slow",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			calls.Add(1)
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return solve.Run(ctx, "exact", inst, opts)
		}))

	sA, tsA := newNode(t, service.Config{Workers: 1, NodeID: "sf-a"})
	hook := &fillerHook{}
	sB, _ := newNode(t, service.Config{Workers: 1, NodeID: "sf-b", PeerFill: hook})

	set, err := NewMemberSet([]string{tsA.URL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPeerClient(PeerClientConfig{Members: set, Wait: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hook.set(pc)

	req := solveRequest(42)
	req.Solver = "cluster-slow"
	jobA, _, err := sA.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	twin := twinOf(req)
	type result struct {
		job *service.Job
		err error
	}
	ch := make(chan result, 1)
	go func() {
		j, _, err := sB.Submit(twin)
		ch <- result{j, err}
	}()

	// Let B's fill reach A and park on the in-flight job, then release
	// the solver.  (If the fill arrives after the solve finished it hits
	// the canonical store directly — either way one solver run.)
	time.Sleep(200 * time.Millisecond)
	close(gate)
	waitJob(t, jobA)

	res := <-ch
	if res.err != nil {
		t.Fatalf("twin submit: %v", res.err)
	}
	if !res.job.CacheHit {
		t.Fatal("twin was enqueued for a second solve instead of joining A's in-flight one")
	}
	waitJob(t, res.job)
	solA, err := jobA.Solution()
	if err != nil {
		t.Fatal(err)
	}
	solB, err := res.job.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if solA.Cost != solB.Cost {
		t.Fatalf("costs diverge: A=%d B=%d", solA.Cost, solB.Cost)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times across the cluster, want 1", got)
	}
	if waits := metricValue(t, tsA.URL, "hyperd_cluster_peer_serve_waits_total"); waits != 1 {
		t.Fatalf("node A peer serve waits = %d, want 1 (the singleflight join)", waits)
	}
}

// TestPeerClientRejectsMismatchedKey makes sure a sibling answering
// the wrong key (corrupt proxy, version skew) is discarded rather than
// replayed.
func TestPeerClientRejectsMismatchedKey(t *testing.T) {
	wrong := service.PeerEntry{
		Key:   strings.Repeat("ab", 32),
		Cost:  1,
		Exact: true,
		Mask:  []string{"01", "10"},
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&wrong)
	}))
	defer bad.Close()

	set, err := NewMemberSet([]string{bad.URL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPeerClient(PeerClientConfig{Members: set, Wait: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pe, ok := pc.Fill(strings.Repeat("cd", 32)); ok {
		t.Fatalf("mismatched key accepted: %+v", pe)
	}
}

// TestPeerClientBreakerSkipsDeadPeer checks a dead sibling trips its
// breaker after enough misses: fills keep answering (false) without
// hanging, and once open the breaker short-circuits the network call.
func TestPeerClientBreakerSkipsDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	set, err := NewMemberSet([]string{deadURL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPeerClient(PeerClientConfig{Members: set, Wait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)
	for i := 0; i < 10; i++ {
		if _, ok := pc.Fill(key); ok {
			t.Fatal("dead peer produced an entry")
		}
	}
	id, err := NormalizeMemberURL(deadURL)
	if err != nil {
		t.Fatal(err)
	}
	if allowed, _ := pc.breakers[id].Allow(); allowed {
		t.Fatal("breaker still closed after 10 consecutive transport failures")
	}
}

// TestMemberSetStatusAndHealthChecker exercises the health sweep
// against one live node and one dead one.
func TestMemberSetStatusAndHealthChecker(t *testing.T) {
	_, tsA := newNode(t, service.Config{Workers: 1, NodeID: "hc-a"})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	set, err := NewMemberSet([]string{tsA.URL, deadURL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	hc := NewHealthChecker(set, 100*time.Millisecond, nil, "")
	hc.CheckNow(context.Background())
	hc.Start()
	defer hc.Stop()

	aliveID, _ := NormalizeMemberURL(tsA.URL)
	deadID, _ := NormalizeMemberURL(deadURL)
	a, _ := set.Member(aliveID)
	d, _ := set.Member(deadID)
	if !a.Healthy() {
		t.Fatalf("live node %q marked unhealthy", aliveID)
	}
	if d.Healthy() {
		t.Fatalf("dead node %q marked healthy", deadID)
	}

	st := set.Status(aliveID)
	if st.Self != aliveID || len(st.Members) != 2 {
		t.Fatalf("unexpected ring status: %+v", st)
	}
	healthyByID := map[string]bool{}
	for _, m := range st.Members {
		healthyByID[m.ID] = m.Healthy
	}
	if !healthyByID[aliveID] || healthyByID[deadID] {
		t.Fatalf("ring status health wrong: %+v", st)
	}
}
