// Package cluster shards the hyperd solve service across nodes.
//
// The shard key is the canonical form of the instance
// (mtswitch.CanonicalForm via service.SolveRequest.RoutingKey), so
// structural twins — the same problem up to task order, task names and
// switch-column labels — hash to the same node no matter which client
// submits them.  Three pieces cooperate:
//
//   - Ring: a consistent-hash ring with virtual nodes.  Lookup returns
//     the full deterministic preference order for a key, so failover
//     ("next ring position") needs no coordination.
//   - Router: a stateless-ish HTTP proxy in front of N hyperd nodes.
//     Solve submissions route by shard key with health-checked failover
//     and a per-node circuit breaker; job polls and streaming sessions
//     follow sticky assignments learned from the routed responses
//     (sessions hold node-local engine state, so stickiness is
//     mandatory, not an optimization).
//   - PeerClient: the node-side fill protocol.  On a canonical-cache
//     miss a node asks its ring-adjacent siblings via
//     GET /v1/cache/{key} before solving; a sibling that is solving the
//     same canonical key right now parks the request on that in-flight
//     job (cross-node singleflight) instead of answering a miss.
//
// Everything is deterministic given the member list: the ring hash is
// SHA-256, members are sorted before placement, and a dead node's keys
// always fail over to the same successor.
package cluster
