package cluster

import (
	"container/list"
	"sync"
)

// stickyTable is a bounded id→member map with LRU eviction: the router
// learns job and session placements from routed responses and must
// forget the oldest when the table fills (a lost job assignment is
// recoverable by the ring-ordered search; an unbounded table is not).
type stickyTable struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent
	items map[string]*list.Element // id -> element holding stickyItem
}

type stickyItem struct {
	id     string
	member string
}

func newStickyTable(capacity int) *stickyTable {
	return &stickyTable{
		cap:   capacity,
		order: list.New(),
		items: map[string]*list.Element{},
	}
}

func (t *stickyTable) get(id string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[id]
	if !ok {
		return "", false
	}
	t.order.MoveToFront(el)
	return el.Value.(*stickyItem).member, true
}

func (t *stickyTable) put(id, member string) {
	if id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		el.Value.(*stickyItem).member = member
		t.order.MoveToFront(el)
		return
	}
	t.items[id] = t.order.PushFront(&stickyItem{id: id, member: member})
	for t.order.Len() > t.cap {
		oldest := t.order.Back()
		t.order.Remove(oldest)
		delete(t.items, oldest.Value.(*stickyItem).id)
	}
}

func (t *stickyTable) drop(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		t.order.Remove(el)
		delete(t.items, id)
	}
}

func (t *stickyTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}
