package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Member is one hyperd node as seen by a router or a sibling node: its
// ring identity (the normalized base URL) and its last observed
// health.  Members start healthy so a cluster serves before the first
// sweep completes; the checker flips them as evidence arrives.
type Member struct {
	// ID is the ring identity.
	ID string
	// URL is the node's base URL ("http://host:port", no trailing
	// slash).
	URL string

	unhealthy atomic.Bool
	checks    atomic.Int64 // completed health probes (tests and /v1/healthz)
}

// Healthy reports the last observed health.
func (m *Member) Healthy() bool { return !m.unhealthy.Load() }

// SetHealthy records an observation (exported so a load generator or
// test can pin a member's state without running a checker).
func (m *Member) SetHealthy(ok bool) {
	m.unhealthy.Store(!ok)
	m.checks.Add(1)
}

// NormalizeMemberURL canonicalizes one peer URL into a ring identity:
// scheme defaults to http, trailing slashes are dropped.
func NormalizeMemberURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", errEmptyPeer
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Host == "" {
		return "", errEmptyPeer
	}
	return u.Scheme + "://" + u.Host, nil
}

var errEmptyPeer = errInvalid("cluster: empty peer url")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// MemberSet is an immutable set of members plus their shared ring.
type MemberSet struct {
	ring *Ring
	byID map[string]*Member
	list []*Member // sorted by ID, same order as ring.Members()
}

// NewMemberSet normalizes the peer URLs, builds the ring and the
// member records.
func NewMemberSet(peers []string, vnodes int) (*MemberSet, error) {
	byID := map[string]*Member{}
	for _, raw := range peers {
		id, err := NormalizeMemberURL(raw)
		if err != nil {
			return nil, err
		}
		if _, ok := byID[id]; !ok {
			byID[id] = &Member{ID: id, URL: id}
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, vnodes)
	if err != nil {
		return nil, err
	}
	set := &MemberSet{ring: ring, byID: byID}
	sort.Strings(ids)
	for _, id := range ids {
		set.list = append(set.list, byID[id])
	}
	return set, nil
}

// Ring returns the set's consistent-hash ring.
func (s *MemberSet) Ring() *Ring { return s.ring }

// Member looks a member up by ring id.
func (s *MemberSet) Member(id string) (*Member, bool) {
	m, ok := s.byID[id]
	return m, ok
}

// Members returns the members in ring (sorted-id) order.
func (s *MemberSet) Members() []*Member {
	out := make([]*Member, len(s.list))
	copy(out, s.list)
	return out
}

// Status renders the set as the /v1/healthz ring document.
func (s *MemberSet) Status(self string) *service.RingStatus {
	st := &service.RingStatus{Self: self, VNodes: s.ring.VNodes()}
	for _, m := range s.list {
		st.Members = append(st.Members, service.MemberHealth{
			ID: m.ID, URL: m.URL, Healthy: m.Healthy(),
		})
	}
	return st
}

// HealthChecker sweeps every member's GET /v1/healthz on an interval
// and flips their Healthy state.  A single failed probe marks a member
// down (the router's per-node breaker smooths flapping); a single
// success brings it back.
type HealthChecker struct {
	set      *MemberSet
	client   *http.Client
	interval time.Duration
	skip     string // member id never probed (a node does not probe itself)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewHealthChecker builds a checker over the set.  skip names a member
// to leave permanently healthy (the local node); empty skips nobody.
func NewHealthChecker(set *MemberSet, interval time.Duration, client *http.Client, skip string) *HealthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	return &HealthChecker{
		set:      set,
		client:   client,
		interval: interval,
		skip:     skip,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// CheckNow probes every member once, synchronously (startup and
// tests).
func (h *HealthChecker) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range h.set.list {
		if m.ID == h.skip {
			continue
		}
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			m.SetHealthy(h.probe(ctx, m))
		}(m)
	}
	wg.Wait()
}

// probe reports one member's readiness: a 200 from /v1/healthz whose
// state is "ready" (or absent, for nodes predating the durable layer).
// A node replaying its journal reports "recovering" and must not be
// routed to yet — its sessions and warm cache are still rebuilding.
func (h *HealthChecker) probe(ctx context.Context, m *Member) bool {
	ctx, cancel := context.WithTimeout(ctx, h.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return false
	}
	return st.State == "ready" || st.State == ""
}

// Start launches the periodic sweep.
func (h *HealthChecker) Start() {
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		ctx := context.Background()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.CheckNow(ctx)
			}
		}
	}()
}

// Stop halts the sweep and waits for it to exit.
func (h *HealthChecker) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}
