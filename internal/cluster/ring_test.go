package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic pins the core cluster invariant: the same
// member list, in any order, yields identical preference orders in
// every process — routers and nodes agree on ownership without
// coordination.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got, want := a.Lookup(key), b.Lookup(key); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: ring a prefers %v, ring b prefers %v", key, got, want)
		}
	}
}

// TestRingLookupIsFullPreferenceOrder checks Lookup returns every
// member exactly once, owner first.
func TestRingLookupIsFullPreferenceOrder(t *testing.T) {
	members := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r, err := NewRing(members, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := r.Lookup(key)
		if len(order) != len(members) {
			t.Fatalf("key %q: preference order %v misses members", key, order)
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("key %q: member %q repeats in %v", key, m, order)
			}
			seen[m] = true
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("key %q: Owner %q != Lookup[0] %q", key, r.Owner(key), order[0])
		}
	}
}

// TestRingFailoverMatchesShrunkenRing removes the owner from the
// member list and checks the shrunken ring's owner is the original
// ring's second preference: "fail over to the next ring position" and
// "the node actually owning the key once the owner is gone" are the
// same thing.
func TestRingFailoverMatchesShrunkenRing(t *testing.T) {
	members := []string{"http://n1", "http://n2", "http://n3"}
	full, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := full.Lookup(key)
		var rest []string
		for _, m := range members {
			if m != order[0] {
				rest = append(rest, m)
			}
		}
		shrunk, err := NewRing(rest, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Owner(key); got != order[1] {
			t.Fatalf("key %q: shrunken ring owner %q, full ring second preference %q", key, got, order[1])
		}
	}
}

// TestRingDistribution checks virtual nodes keep the split across
// three members roughly even (each within [15%, 55%] of 10k keys —
// loose bounds, the point is no member starves or dominates).
func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for m, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %q owns %.1f%% of keys: %v", m, 100*frac, counts)
		}
	}
}

func TestNewRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"http://n1", ""}, 64); err == nil {
		t.Fatal("empty member id accepted")
	}
}

func TestNormalizeMemberURL(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "http://host:8080", want: "http://host:8080"},
		{in: "http://host:8080/", want: "http://host:8080"},
		{in: "host:8080", want: "http://host:8080"},
		{in: " https://host ", want: "https://host"},
		{in: "", wantErr: true},
		{in: "http://", wantErr: true},
	}
	for _, c := range cases {
		got, err := NormalizeMemberURL(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("NormalizeMemberURL(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("NormalizeMemberURL(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("NormalizeMemberURL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
