package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
)

// Router defaults.
const (
	DefaultStickyCap      = 65536
	DefaultHealthInterval = time.Second
	maxRouteBody          = 16 << 20 // mirrors the node-side body bound
	maxProxyResponse      = 64 << 20
)

// RouterConfig configures the cluster front door.
type RouterConfig struct {
	// Peers are the hyperd node base URLs (required, at least one).
	Peers []string
	// VNodes is the virtual-node count per member (default 64); it
	// must match the nodes' own -vnodes for peer fill to align.
	VNodes int
	// HealthInterval is the /v1/healthz sweep period (default 1s).
	HealthInterval time.Duration
	// Client performs the proxied requests; nil selects a default
	// without a timeout (long polls flow through the router).
	Client *http.Client
	// StickyCap bounds each sticky table, jobs and sessions alike
	// (default 65536 entries).
	StickyCap int
	// Breaker tunes the per-node circuit breakers.
	Breaker resilience.BreakerConfig
	// Limits are the option clamps the nodes serve with.  The router
	// applies them before hashing so its shard keys match the nodes'
	// canonical store keys in a homogeneous cluster.
	Limits service.RouteLimits
	// NodeID names the router in /v1/healthz (default "hyperd-router").
	NodeID string
}

// Router is the cluster front door: it hashes solve submissions onto
// nodes by canonical form, fails over along the ring preference order,
// and pins job polls and streaming sessions to the node that owns
// their state.
type Router struct {
	cfg      RouterConfig
	members  *MemberSet
	checker  *HealthChecker
	client   *http.Client
	breakers map[string]*resilience.Breaker

	jobs     *stickyTable // job id -> member id
	sessions *stickyTable // session id -> member id
	metrics  *routerMetrics
}

// NewRouter builds the router and runs one synchronous health sweep so
// the first request already sees real member states.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: router needs at least one peer")
	}
	if cfg.StickyCap <= 0 {
		cfg.StickyCap = DefaultStickyCap
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "hyperd-router"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	set, err := NewMemberSet(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		members:  set,
		client:   cfg.Client,
		breakers: map[string]*resilience.Breaker{},
		jobs:     newStickyTable(cfg.StickyCap),
		sessions: newStickyTable(cfg.StickyCap),
		metrics:  newRouterMetrics(set),
	}
	for _, m := range set.Members() {
		r.breakers[m.ID] = resilience.NewBreaker(cfg.Breaker)
	}
	r.checker = NewHealthChecker(set, cfg.HealthInterval, nil, "")
	r.checker.CheckNow(context.Background())
	r.checker.Start()
	return r, nil
}

// Close stops the health sweep.
func (rt *Router) Close() { rt.checker.Stop() }

// Members exposes the member set (bench and tests).
func (rt *Router) Members() *MemberSet { return rt.members }

// Handler returns the router's HTTP surface: the node API re-exported
// with routing, plus the router's own /healthz, /v1/healthz and
// /metrics served locally.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("POST /v1/solve", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", rt.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleSession)
	mux.HandleFunc("POST /v1/sessions/{id}/steps", rt.handleSession)
	mux.HandleFunc("GET /v1/sessions/{id}/schedule", rt.handleSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleSession)
	mux.HandleFunc("GET /v1/cache/{key}", rt.handleCache)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// errorBody mirrors the node-side error shape so clients see one JSON
// error format whether the router or a node answered.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

var errNoNode = errors.New("cluster: no healthy node available")

// handleSubmit routes POST /v1/solve and POST /v1/jobs by shard key.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	var req service.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := req.RoutingKey(rt.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.forward(w, r, rt.members.Ring().Lookup(key), body, rt.jobs)
}

// handleSessionCreate routes POST /v1/sessions by shard key and learns
// the session's sticky node from the response.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	var req service.SessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := req.RoutingKey(rt.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.forward(w, r, rt.members.Ring().Lookup(key), body, rt.sessions)
}

// handleJob routes job polls/cancels to the sticky owner, falling back
// to a ring-ordered search when the assignment is unknown (router
// restart): the id is probed on every healthy node until one answers
// something other than 404.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	rt.routeByID(w, r, r.PathValue("id"), rt.jobs)
}

func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	rt.routeByID(w, r, r.PathValue("id"), rt.sessions)
}

// handleCache routes peer-fill reads to the key's owner (so an
// external smart client can use the router as its cache front end).
func (rt *Router) handleCache(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, rt.members.Ring().Lookup(r.PathValue("key")), nil, nil)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := &service.HealthStatus{
		Status:  "ok",
		State:   "ready", // the router holds no journal; it never recovers
		NodeID:  rt.cfg.NodeID,
		Version: service.BuildVersion(),
		Ring:    rt.members.Status(rt.cfg.NodeID),
	}
	writeJSON(w, http.StatusOK, st)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	rt.metrics.render(&buf, rt)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(buf.Bytes())
}

// routeByID forwards a request whose target is an id-addressed
// resource (job or session).  The sticky table names the owner; on a
// miss every healthy member is probed in ring order and the first
// non-404 answer wins (and repopulates the table).
func (rt *Router) routeByID(w http.ResponseWriter, r *http.Request, id string, table *stickyTable) {
	// Buffer the body once so retries against other members can replay
	// it (session step batches arrive here).
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
			} else {
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		if len(b) > 0 {
			body = b
		}
	}
	if node, ok := table.get(id); ok {
		if m, exists := rt.members.Member(node); exists && m.Healthy() {
			res, err := rt.fetch(r, m, body)
			if err == nil {
				rt.noteSuccess(m)
				if res.status != http.StatusNotFound {
					rt.metrics.observe(m.ID)
					res.writeTo(w)
					return
				}
			} else {
				rt.noteFailure(m)
			}
			// The owner lost the resource (restart) or the transport
			// failed; fall through to the search so a still-alive
			// replica can answer.
		}
		table.drop(id)
	}
	var last *proxyResult
	for _, m := range rt.healthyMembers() {
		res, err := rt.fetch(r, m, body)
		if err != nil {
			rt.noteFailure(m)
			continue
		}
		rt.noteSuccess(m)
		if res.status != http.StatusNotFound {
			table.put(id, m.ID)
			rt.metrics.observe(m.ID)
			res.writeTo(w)
			return
		}
		last = res
	}
	if last != nil {
		last.writeTo(w)
		return
	}
	rt.metrics.noNode.Add(1)
	writeError(w, http.StatusServiceUnavailable, errNoNode)
}

// healthyMembers returns the members currently marked healthy, in ring
// (sorted-id) order.
func (rt *Router) healthyMembers() []*Member {
	var out []*Member
	for _, m := range rt.members.Members() {
		if m.Healthy() {
			out = append(out, m)
		}
	}
	return out
}

// forward proxies the request to the first reachable member of the
// preference order: unhealthy members and open breakers are skipped,
// transport failures advance to the next member (counting a failover).
// table, when non-nil, learns the response's "id" field.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, prefer []string, body []byte, table *stickyTable) {
	tried := 0
	for _, id := range prefer {
		m, ok := rt.members.Member(id)
		if !ok || !m.Healthy() {
			continue
		}
		if allowed, _ := rt.breakers[id].Allow(); !allowed {
			continue
		}
		if tried > 0 {
			rt.metrics.failovers.Add(1)
		}
		tried++
		if _, err := rt.proxy(w, r, m, body, table); err != nil {
			continue
		}
		return
	}
	rt.metrics.noNode.Add(1)
	writeError(w, http.StatusServiceUnavailable, errNoNode)
}

// proxy performs one forwarded request and, on success, relays the
// response.  A transport error before any bytes reach the client
// returns the error so the caller can fail over.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, m *Member, body []byte, table *stickyTable) (int, error) {
	res, err := rt.fetch(r, m, body)
	if err != nil {
		rt.noteFailure(m)
		return 0, err
	}
	rt.noteSuccess(m)
	rt.metrics.observe(m.ID)
	if table != nil && res.status < 300 {
		if id := decodeID(res.body); id != "" {
			table.put(id, m.ID)
		}
	}
	res.writeTo(w)
	return res.status, nil
}

// proxyResult is one buffered upstream response.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
}

func (p *proxyResult) writeTo(w http.ResponseWriter) {
	for k, vs := range p.header {
		if hopByHop(k) {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
}

// hopByHop filters connection-scoped headers out of relayed responses.
func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade",
		"Proxy-Connection", "Te", "Trailer":
		return true
	}
	return false
}

// fetch performs the upstream request, buffering the response so it
// can be retried on another node or relayed.
func (rt *Router) fetch(r *http.Request, m *Member, body []byte) (*proxyResult, error) {
	u := m.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponse))
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, header: resp.Header.Clone(), body: b}, nil
}

func (rt *Router) noteFailure(m *Member) {
	rt.breakers[m.ID].Failure()
	rt.metrics.errors.Add(1)
}

func (rt *Router) noteSuccess(m *Member) {
	rt.breakers[m.ID].Success()
}

// decodeID pulls the "id" field out of a routed response body (job and
// session statuses both carry one).
func decodeID(body []byte) string {
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return ""
	}
	return strings.TrimSpace(v.ID)
}

// String renders the routing table summary (debug logging).
func (rt *Router) String() string {
	return fmt.Sprintf("cluster.Router{members=%d, vnodes=%d}", len(rt.members.Members()), rt.members.Ring().VNodes())
}
