package ga

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

func randomMT(r *rand.Rand, maxM, maxL, maxN int) *model.MTSwitchInstance {
	m := 1 + r.Intn(maxM)
	n := 1 + r.Intn(maxN)
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(maxL)
		tasks[j] = model.Task{Name: string(rune('A' + j)), Local: l, V: model.Cost(1 + r.Intn(4))}
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rows[j][i] = s
		}
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		panic(err)
	}
	return ins
}

func TestOptimizeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ins := randomMT(r, 3, 5, 8)
	cfg := solve.Options{Pop: 20, Generations: 30, Seed: 7}
	a, err := Optimize(context.Background(), ins, parallel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(context.Background(), ins, parallel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Solution.Cost != b.Solution.Cost {
		t.Fatalf("same seed produced different costs: %d vs %d", a.Solution.Cost, b.Solution.Cost)
	}
	if len(a.History) != 30 {
		t.Fatalf("history length = %d, want 30", len(a.History))
	}
}

func TestOptimizeFindsOptimumOnSmallInstances(t *testing.T) {
	// On tiny instances the GA (with heuristic seeds) should match the
	// exact optimum.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 2, 4, 5)
		ex, err1 := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
		res, err2 := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 40, Generations: 60, Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		return res.Solution.Cost >= ex.Cost // never below the optimum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeMatchesExactFrequently(t *testing.T) {
	matched, total := 0, 0
	r := rand.New(rand.NewSource(99))
	for k := 0; k < 15; k++ {
		ins := randomMT(r, 2, 4, 6)
		ex, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 60, Generations: 80, Seed: int64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Solution.Cost == ex.Cost {
			matched++
		}
	}
	if matched*2 < total {
		t.Fatalf("GA matched the exact optimum only %d/%d times", matched, total)
	}
	t.Logf("GA matched exact optimum on %d/%d instances", matched, total)
}

func TestOptimizeNeverWorseThanSeeds(t *testing.T) {
	// With heuristic seeding the GA result can never be worse than the
	// aligned DP (that mask is in the initial population and elitism
	// preserves the best individual).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 5, 8)
		al, err1 := mtswitch.SolveAligned(context.Background(), ins, parallel)
		res, err2 := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 20, Generations: 10, Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		return res.Solution.Cost <= al.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ins := randomMT(r, 3, 5, 10)
	var costs []model.Cost
	for _, workers := range []int{1, 2, 8} {
		res, err := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 30, Generations: 40, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.Solution.Cost)
	}
	if costs[0] != costs[1] || costs[1] != costs[2] {
		t.Fatalf("worker count changed the result: %v", costs)
	}
}

func TestOptimizeHistoryMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ins := randomMT(r, 3, 5, 10)
	res, err := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 30, Generations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best-so-far history increased at generation %d", i)
		}
	}
}

func TestOptimizeScheduleValid(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ins := randomMT(r, 3, 6, 12)
	res, err := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 25, Generations: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(res.Solution.Schedule); err != nil {
		t.Fatalf("GA schedule invalid: %v", err)
	}
	lb := mtswitch.LowerBound(ins, parallel)
	if res.Solution.Cost < lb {
		t.Fatalf("GA cost %d below lower bound %d", res.Solution.Cost, lb)
	}
}

func TestOptimizeSequentialUploads(t *testing.T) {
	seq := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	r := rand.New(rand.NewSource(13))
	ins := randomMT(r, 2, 4, 6)
	ex, err := mtswitch.SolveExact(context.Background(), ins, seq, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(context.Background(), ins, seq, solve.Options{Pop: 40, Generations: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost < ex.Cost {
		t.Fatalf("GA cost %d below exact optimum %d", res.Solution.Cost, ex.Cost)
	}
}

func TestOptimizeNilAndEmpty(t *testing.T) {
	if _, err := Optimize(context.Background(), nil, parallel, solve.Options{}); err == nil {
		t.Fatal("accepted nil instance")
	}
	tasks := []model.Task{{Name: "A", Local: 1, V: 1}}
	ins, err := model.NewMTSwitchInstance(tasks, [][]bitset.Set{{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost != 0 {
		t.Fatalf("empty instance cost = %d", res.Solution.Cost)
	}
}

func TestCrossoverOperators(t *testing.T) {
	// Every operator produces genomes mixing only parent genes, is
	// deterministic under a fixed source, and the GA stays sound with
	// each.
	r := rand.New(rand.NewSource(9))
	m, n := 3, 7
	a := make(genome, m*n)
	b := make(genome, m*n)
	for k := range a {
		a[k] = true // parent a all-true, parent b all-false
	}
	for _, kind := range []CrossoverKind{CrossUniform, CrossTwoPoint, CrossTaskRow} {
		child := crossover(r, kind, m, n, a, b)
		if len(child) != m*n {
			t.Fatalf("%v: child length %d", kind, len(child))
		}
		// Two-point must take a single contiguous false range from b.
		if kind == CrossTwoPoint {
			transitions := 0
			for k := 1; k < len(child); k++ {
				if child[k] != child[k-1] {
					transitions++
				}
			}
			if transitions > 2 {
				t.Fatalf("two-point produced %d transitions", transitions)
			}
		}
		// Task-row must keep each row homogeneous.
		if kind == CrossTaskRow {
			for j := 0; j < m; j++ {
				row := child[j*n : (j+1)*n]
				for k := 1; k < n; k++ {
					if row[k] != row[0] {
						t.Fatalf("task-row mixed genes within a row")
					}
				}
			}
		}
	}
	if CrossUniform.String() != "uniform" || CrossTwoPoint.String() != "two-point" ||
		CrossTaskRow.String() != "task-row" || CrossoverKind(9).String() == "" {
		t.Fatal("crossover names wrong")
	}
}

func TestOptimizeAllCrossovers(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ins := randomMT(r, 3, 5, 8)
	ex, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []CrossoverKind{CrossUniform, CrossTwoPoint, CrossTaskRow} {
		res, err := Optimize(context.Background(), ins, parallel, solve.Options{Pop: 30, Generations: 40, Seed: 2, Crossover: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Solution.Cost < ex.Cost {
			t.Fatalf("%v: GA cost %d below optimum %d", kind, res.Solution.Cost, ex.Cost)
		}
		if err := ins.Validate(res.Solution.Schedule); err != nil {
			t.Fatalf("%v: invalid schedule: %v", kind, err)
		}
	}
}

func TestGAParamDefaults(t *testing.T) {
	p := gaParams(solve.Options{}, 2, 10)
	if p.pop != 80 || p.generations != 300 || p.tournamentK != 3 || p.elites != 2 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if p.mutRate <= 0 || p.crossRate != 0.9 || p.seed != 1 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	// Elites capped at Pop.
	p = gaParams(solve.Options{Pop: 1, Elites: 5}, 2, 10)
	if p.elites != 1 {
		t.Fatalf("elites not capped: %+v", p)
	}
}

func TestOptimizeBudgetClampsPopulation(t *testing.T) {
	// The GA inherits MaxFrontierBytes: a budget too small for the
	// requested population clamps it (never below 2) and marks the run
	// Degraded, while a generous budget changes nothing.
	p := gaParams(solve.Options{Pop: 500, MaxFrontierBytes: 400}, 3, 10)
	if p.pop >= 500 {
		t.Fatalf("budget did not clamp population: %d", p.pop)
	}
	if p.pop < 2 {
		t.Fatalf("population clamped below 2: %d", p.pop)
	}
	if !p.degraded {
		t.Fatal("clamped params not marked degraded")
	}
	p = gaParams(solve.Options{Pop: 40, MaxFrontierBytes: 64 << 20}, 3, 10)
	if p.pop != 40 || p.degraded {
		t.Fatalf("generous budget altered params: %+v", p)
	}

	r := rand.New(rand.NewSource(11))
	ins := randomMT(r, 3, 5, 8)
	res, err := Optimize(context.Background(), ins, parallel, solve.Options{
		Pop: 300, Generations: 10, Seed: 3, MaxFrontierBytes: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Stats.Degraded {
		t.Fatal("budget-clamped run not flagged Degraded")
	}
	if !res.Solution.Stats.Truncated {
		t.Fatal("Degraded without Truncated")
	}
	if err := ins.Validate(res.Solution.Schedule); err != nil {
		t.Fatalf("clamped run produced invalid schedule: %v", err)
	}
}
