package ga

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/mtswitch"
)

// AnnealConfig are the simulated-annealing hyperparameters.  The zero
// value selects the defaults noted per field.  Simulated annealing is
// not used by the paper — it serves as an ablation against the genetic
// algorithm on the same search space (joint hyperreconfiguration
// masks).
type AnnealConfig struct {
	// Iterations of the annealing loop (default 20000).
	Iterations int
	// InitialTemp is the starting temperature in cost units (default:
	// 1/10 of the seed schedule's cost, adaptive).
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every iteration
	// (default chosen so the temperature decays to ~1e-3 of the start
	// over the run).
	Cooling float64
	// Seed drives the deterministic random source (default 1).
	Seed int64
}

func (c AnnealConfig) withDefaults(seedCost model.Cost) AnnealConfig {
	if c.Iterations <= 0 {
		c.Iterations = 20000
	}
	if c.InitialTemp <= 0 {
		c.InitialTemp = float64(seedCost) / 10
		if c.InitialTemp < 1 {
			c.InitialTemp = 1
		}
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		// Decay to 1e-3 of the initial temperature over the run.
		c.Cooling = math.Exp(math.Log(1e-3) / float64(c.Iterations))
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Anneal optimizes hyperreconfiguration masks by simulated annealing:
// the state is a joint mask, a move flips one (task, step>0) bit, and
// worsening moves are accepted with the Metropolis probability
// exp(-Δ/T) under a geometric cooling schedule.  The search is seeded
// with the aligned-DP schedule so the result is never worse than that
// baseline, and the best state ever visited is returned (repriced and
// validated through the model).
func Anneal(ins *model.MTSwitchInstance, opt model.CostOptions, cfg AnnealConfig) (*Result, error) {
	if ins == nil {
		return nil, fmt.Errorf("ga: nil instance")
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		sched, err := ins.CanonicalSchedule(make([][]bool, m))
		if err != nil {
			return nil, err
		}
		return &Result{Solution: &mtswitch.Solution{Schedule: sched, Cost: ins.W}}, nil
	}

	ev := newEvaluator(ins, opt)

	// Seed with the aligned-DP schedule.
	cur := make(genome, m*n)
	if al, err := mtswitch.SolveAligned(ins, opt); err == nil {
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				cur[j*n+i] = al.Schedule.Hyper[j][i]
			}
		}
	}
	for j := 0; j < m; j++ {
		cur[j*n] = true
	}
	curCost := ev.cost(cur)
	cfg = cfg.withDefaults(curCost)
	r := rand.New(rand.NewSource(cfg.Seed))

	best := cur.clone()
	bestCost := curCost
	temp := cfg.InitialTemp
	history := make([]model.Cost, 0, cfg.Iterations/100+1)

	for it := 0; it < cfg.Iterations; it++ {
		// Flip one random non-initial bit.  With n == 1 every bit is an
		// initial bit and no move exists.
		if n > 1 {
			j := r.Intn(m)
			i := 1 + r.Intn(n-1)
			k := j*n + i
			cur[k] = !cur[k]
			newCost := ev.cost(cur)
			delta := float64(newCost - curCost)
			if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
				curCost = newCost
				if curCost < bestCost {
					bestCost = curCost
					copy(best, cur)
				}
			} else {
				cur[k] = !cur[k] // reject: undo
			}
		}
		temp *= cfg.Cooling
		if it%100 == 0 {
			history = append(history, bestCost)
		}
	}

	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		mask[j] = make([]bool, n)
		for i := 0; i < n; i++ {
			mask[j][i] = best[j*n+i]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost != bestCost {
		return nil, fmt.Errorf("ga: annealing evaluator cost %d disagrees with model cost %d", bestCost, cost)
	}
	return &Result{
		Solution: &mtswitch.Solution{Schedule: sched, Cost: cost, Truncated: true},
		History:  history,
	}, nil
}
