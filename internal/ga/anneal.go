package ga

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

// annealParams are the fully defaulted simulated-annealing
// hyperparameters derived from solve.Options.  Simulated annealing is
// not used by the paper — it serves as an ablation against the genetic
// algorithm on the same search space (joint hyperreconfiguration
// masks).
type annealParams struct {
	iterations  int
	initialTemp float64
	cooling     float64
	seed        int64
}

func annealDefaults(o solve.Options, seedCost model.Cost) annealParams {
	p := annealParams{
		iterations:  o.Iterations,
		initialTemp: o.InitialTemp,
		cooling:     o.Cooling,
		seed:        o.Seed,
	}
	if p.iterations <= 0 {
		p.iterations = 20000
	}
	if p.initialTemp <= 0 {
		// Adaptive: 1/10 of the seed schedule's cost.
		p.initialTemp = float64(seedCost) / 10
		if p.initialTemp < 1 {
			p.initialTemp = 1
		}
	}
	if p.cooling <= 0 || p.cooling >= 1 {
		// Decay to 1e-3 of the initial temperature over the run.
		p.cooling = math.Exp(math.Log(1e-3) / float64(p.iterations))
	}
	if p.seed == 0 {
		p.seed = 1
	}
	return p
}

// Anneal optimizes hyperreconfiguration masks by simulated annealing:
// the state is a joint mask, a move flips one (task, step>0) bit, and
// worsening moves are accepted with the Metropolis probability
// exp(-Δ/T) under a geometric cooling schedule.  The search is seeded
// with the aligned-DP schedule so the result is never worse than that
// baseline, and the best state ever visited is returned (repriced and
// validated through the model).  The context is checked every 256
// iterations.
func Anneal(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Result, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("ga: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		sched, err := ins.CanonicalSchedule(make([][]bool, m))
		if err != nil {
			return nil, err
		}
		return &Result{Solution: &mtswitch.Solution{Schedule: sched, Cost: ins.W}}, nil
	}

	ev := newEvaluator(ins, opt)
	var stats solve.Stats

	// Seed with the aligned-DP schedule.
	cur := make(genome, m*n)
	if al, err := mtswitch.SolveAligned(ctx, ins, opt); err == nil {
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				cur[j*n+i] = al.Schedule.Hyper[j][i]
			}
		}
	} else if solve.Checkpoint(ctx) != nil {
		return nil, err
	}
	for j := 0; j < m; j++ {
		cur[j*n] = true
	}
	curCost := ev.cost(cur)
	stats.Evaluations++
	cfg := annealDefaults(o, curCost)
	r := rand.New(rand.NewSource(cfg.seed))

	best := cur.clone()
	bestCost := curCost
	temp := cfg.initialTemp
	history := make([]model.Cost, 0, cfg.iterations/100+1)

	for it := 0; it < cfg.iterations; it++ {
		if it&255 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		// Flip one random non-initial bit.  With n == 1 every bit is an
		// initial bit and no move exists.
		if n > 1 {
			j := r.Intn(m)
			i := 1 + r.Intn(n-1)
			k := j*n + i
			cur[k] = !cur[k]
			newCost := ev.cost(cur)
			stats.Evaluations++
			delta := float64(newCost - curCost)
			if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
				curCost = newCost
				if curCost < bestCost {
					bestCost = curCost
					copy(best, cur)
				}
			} else {
				cur[k] = !cur[k] // reject: undo
			}
		}
		temp *= cfg.cooling
		if it%100 == 0 {
			history = append(history, bestCost)
		}
	}

	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		mask[j] = make([]bool, n)
		for i := 0; i < n; i++ {
			mask[j][i] = best[j*n+i]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost != bestCost {
		return nil, fmt.Errorf("ga: annealing evaluator cost %d disagrees with model cost %d", bestCost, cost)
	}
	stats.Truncated = true // stochastic search: cost is an upper bound
	return &Result{
		Solution: &mtswitch.Solution{Schedule: sched, Cost: cost, Stats: stats},
		History:  history,
	}, nil
}
