// Package ga implements the genetic algorithm the paper used to compute
// multi-task (hyper)reconfiguration schedules for the SHyRA experiment
// ("(Hyper)reconfiguration costs with partial hyperreconfigurations for
// the multiple task case were computed using a genetic algorithm").
//
// A genome is the joint hyperreconfiguration mask: one bit per (task,
// step) saying whether the task performs a partial hyperreconfiguration
// immediately before the step (step 0 is always set — tasks must
// establish an initial hypercontext).  Hypercontexts are implied:
// canonical segment unions are optimal for any fixed mask, so the
// search space is exactly the mask space.
//
// The GA is deterministic for a fixed Options.Seed: tournament
// selection, uniform crossover, per-bit mutation, elitism, and seeding
// with informed individuals (the aligned-DP mask, the
// hyperreconfigure-only-at-step-0 mask, and the every-step mask) so the
// search starts no worse than the best classical baseline.  Solver
// knobs come from the shared solve.Options (Pop, Generations, MutRate,
// CrossRate, TournamentK, Elites, Seed, Workers, Crossover,
// NoHeuristicSeeds).
package ga

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

// CrossoverKind re-exports the shared crossover selector for
// convenience; see solve.CrossoverKind.
type CrossoverKind = solve.CrossoverKind

// Crossover operator aliases (see the solve package for semantics).
const (
	CrossUniform  = solve.CrossUniform
	CrossTwoPoint = solve.CrossTwoPoint
	CrossTaskRow  = solve.CrossTaskRow
)

// params are the fully defaulted GA hyperparameters derived from
// solve.Options.
type params struct {
	pop, generations   int
	mutRate, crossRate float64
	tournamentK        int
	elites             int
	seed               int64
	workers            int
	noHeuristicSeeds   bool
	crossover          CrossoverKind
	degraded           bool // population clamped by MaxFrontierBytes
}

func gaParams(o solve.Options, m, n int) params {
	p := params{
		pop:              o.Pop,
		generations:      o.Generations,
		mutRate:          o.MutRate,
		crossRate:        o.CrossRate,
		tournamentK:      o.TournamentK,
		elites:           o.Elites,
		seed:             o.Seed,
		workers:          o.Workers,
		noHeuristicSeeds: o.NoHeuristicSeeds,
		crossover:        o.Crossover,
	}
	if p.pop <= 0 {
		p.pop = 80
	}
	if p.generations <= 0 {
		p.generations = 300
	}
	if p.mutRate <= 0 {
		p.mutRate = 2.0 / float64(m*n+1)
	}
	if p.crossRate <= 0 {
		p.crossRate = 0.9
	}
	if p.tournamentK <= 0 {
		p.tournamentK = 3
	}
	if o.MaxFrontierBytes > 0 {
		// The GA inherits the solve memory budget: its resident state
		// is two generations of m·n-bool genomes plus their fitness
		// slots, so clamp the population to what the budget affords
		// (never below 2 — a GA needs parents) and record the
		// degradation.
		perGenome := 2 * (int64(m)*int64(n) + 16)
		maxPop := o.MaxFrontierBytes / perGenome
		if maxPop < 2 {
			maxPop = 2
		}
		if int64(p.pop) > maxPop {
			p.pop = int(maxPop)
			p.degraded = true
		}
	}
	if p.elites <= 0 {
		p.elites = 2
	}
	if p.elites > p.pop {
		p.elites = p.pop
	}
	if p.seed == 0 {
		p.seed = 1
	}
	if p.workers <= 0 {
		p.workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// genome is a flat m·n hyperreconfiguration mask.
type genome []bool

func (g genome) clone() genome { return append(genome(nil), g...) }

// evaluator computes fitness (= schedule cost, lower is better) for
// genomes without materializing a model.MTSchedule: per task it walks
// the mask's segments once, computing canonical union sizes, then
// combines per-step terms under the upload modes.
type evaluator struct {
	ins   *model.MTSwitchInstance
	opt   model.CostOptions
	m, n  int
	sizes [][]int // scratch: per task per step hypercontext size
}

func newEvaluator(ins *model.MTSwitchInstance, opt model.CostOptions) *evaluator {
	m, n := ins.NumTasks(), ins.Steps()
	sizes := make([][]int, m)
	for j := range sizes {
		sizes[j] = make([]int, n)
	}
	return &evaluator{ins: ins, opt: opt, m: m, n: n, sizes: sizes}
}

func (ev *evaluator) cost(g genome) model.Cost {
	m, n := ev.m, ev.n
	for j := 0; j < m; j++ {
		row := g[j*n : (j+1)*n]
		u := bitset.New(ev.ins.Tasks[j].Local)
		for start := 0; start < n; {
			end := start + 1
			for end < n && !row[end] {
				end++
			}
			u.Clear()
			for i := start; i < end; i++ {
				u.UnionWith(ev.ins.Reqs[j][i])
			}
			c := u.Count()
			for i := start; i < end; i++ {
				ev.sizes[j][i] = c
			}
			start = end
		}
	}
	total := ev.ins.W
	for i := 0; i < n; i++ {
		var hyper model.Cost
		for j := 0; j < m; j++ {
			if i == 0 || g[j*n+i] {
				hyper = ev.opt.HyperUpload.Combine(hyper, ev.ins.Tasks[j].V)
			}
		}
		var reconf model.Cost
		if ev.opt.ReconfUpload == model.TaskParallel {
			reconf = model.Cost(ev.ins.PublicGlobal)
		}
		for j := 0; j < m; j++ {
			reconf = ev.opt.ReconfUpload.Combine(reconf, model.Cost(ev.sizes[j][i]))
		}
		if ev.opt.ReconfUpload == model.TaskSequential {
			reconf += model.Cost(ev.ins.PublicGlobal)
		}
		total += hyper + reconf
	}
	return total
}

// crossover recombines two parents under the selected operator.
func crossover(r *rand.Rand, kind CrossoverKind, m, n int, a, b genome) genome {
	child := make(genome, m*n)
	switch kind {
	case CrossTwoPoint:
		lo := r.Intn(m * n)
		hi := lo + r.Intn(m*n-lo) + 1 // (lo, hi]
		copy(child, a)
		copy(child[lo:hi], b[lo:hi])
	case CrossTaskRow:
		for j := 0; j < m; j++ {
			src := a
			if r.Intn(2) == 1 {
				src = b
			}
			copy(child[j*n:(j+1)*n], src[j*n:(j+1)*n])
		}
	default: // CrossUniform
		for k := range child {
			if r.Intn(2) == 0 {
				child[k] = a[k]
			} else {
				child[k] = b[k]
			}
		}
	}
	return child
}

// evalPool evaluates genomes concurrently on the shared solve.Pool —
// the same persistent-worker pool the packed frontier engine and the
// private-global window sweep dispatch onto, instead of spawning fresh
// goroutines per generation.  Each pool task owns an evaluator (the
// evaluator carries scratch buffers, so sharing one across goroutines
// would race).
type evalPool struct {
	pool *solve.Pool
	evs  []*evaluator
}

func newEvalPool(ins *model.MTSwitchInstance, opt model.CostOptions, workers int) *evalPool {
	p := &evalPool{pool: solve.NewPool(workers)}
	p.evs = make([]*evaluator, p.pool.Workers())
	for i := range p.evs {
		p.evs[i] = newEvaluator(ins, opt)
	}
	return p
}

func (p *evalPool) close() { p.pool.Close() }

// evalRange computes out[i] = cost(genomes[i]) for i in [from, len).
// A panic inside an evaluator (isolated by the pool) is returned as a
// *solve.PanicError.
func (p *evalPool) evalRange(genomes []genome, out []model.Cost, from int) error {
	n := len(genomes) - from
	if n <= 0 {
		return nil
	}
	workers := len(p.evs)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	return p.pool.Do(workers, func(w int) {
		ev := p.evs[w]
		lo := from + w*chunk
		hi := lo + chunk
		if hi > len(genomes) {
			hi = len(genomes)
		}
		for i := lo; i < hi; i++ {
			out[i] = ev.cost(genomes[i])
		}
	})
}

// Result is the GA outcome: the best schedule found, its cost, and the
// best-of-generation history (for convergence plots).
type Result struct {
	Solution *mtswitch.Solution
	History  []model.Cost
}

// Optimize evolves hyperreconfiguration masks for the fully
// synchronized MT-Switch instance and returns the best schedule found.
// The result is repriced through the model (validating feasibility), so
// Result.Solution.Cost is trustworthy even if the fast evaluator were
// wrong — the two are also cross-checked.  The context is checked once
// per generation, so cancellation lands within one generation's work.
func Optimize(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Result, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("ga: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		sched, err := ins.CanonicalSchedule(make([][]bool, m))
		if err != nil {
			return nil, err
		}
		return &Result{Solution: &mtswitch.Solution{Schedule: sched, Cost: ins.W}}, nil
	}
	cfg := gaParams(o, m, n)
	r := rand.New(rand.NewSource(cfg.seed))
	pool := newEvalPool(ins, opt, cfg.workers)
	defer pool.close()
	var stats solve.Stats

	forceStep0 := func(g genome) {
		for j := 0; j < m; j++ {
			g[j*n] = true
		}
	}

	pop := make([]genome, 0, cfg.pop)
	if !cfg.noHeuristicSeeds {
		// Initial-only mask.
		initial := make(genome, m*n)
		forceStep0(initial)
		pop = append(pop, initial)
		// Every-step mask.
		every := make(genome, m*n)
		for i := range every {
			every[i] = true
		}
		pop = append(pop, every)
		// Aligned-DP mask.
		if al, err := mtswitch.SolveAligned(ctx, ins, opt); err == nil {
			g := make(genome, m*n)
			for j := 0; j < m; j++ {
				for i := 0; i < n; i++ {
					g[j*n+i] = al.Schedule.Hyper[j][i]
				}
			}
			pop = append(pop, g)
		} else if solve.Checkpoint(ctx) != nil {
			return nil, err
		}
	}
	for len(pop) < cfg.pop {
		g := make(genome, m*n)
		density := r.Float64() * 0.4 // varied sparsity
		for i := range g {
			g[i] = r.Float64() < density
		}
		forceStep0(g)
		pop = append(pop, g)
	}

	fit := make([]model.Cost, cfg.pop)
	if err := pool.evalRange(pop, fit, 0); err != nil {
		return nil, err
	}
	stats.Evaluations += int64(cfg.pop)

	bestG := pop[0].clone()
	bestC := fit[0]
	for i := 1; i < cfg.pop; i++ {
		if fit[i] < bestC {
			bestC, bestG = fit[i], pop[i].clone()
		}
	}
	// Incumbent exchange: every GA fitness value is a full valid
	// schedule's cost (the evaluator is cross-checked against the
	// model below), so best-so-far improvements are publishable upper
	// bounds for a racing exact DP.
	board := solve.IncumbentFrom(ctx)
	board.Publish(bestC)

	history := make([]model.Cost, 0, cfg.generations)
	tournament := func() genome {
		best := r.Intn(cfg.pop)
		for k := 1; k < cfg.tournamentK; k++ {
			c := r.Intn(cfg.pop)
			if fit[c] < fit[best] {
				best = c
			}
		}
		return pop[best]
	}

	next := make([]genome, cfg.pop)
	nextFit := make([]model.Cost, cfg.pop)
	for gen := 0; gen < cfg.generations; gen++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		// Elitism: copy the current best individuals.
		order := make([]int, cfg.pop)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fit[order[a]] < fit[order[b]] })
		for e := 0; e < cfg.elites; e++ {
			next[e] = pop[order[e]].clone()
			nextFit[e] = fit[order[e]]
		}
		// Generate all children with the sequential random source, then
		// evaluate them in parallel.
		for i := cfg.elites; i < cfg.pop; i++ {
			var child genome
			if r.Float64() < cfg.crossRate {
				child = crossover(r, cfg.crossover, m, n, tournament(), tournament())
			} else {
				child = tournament().clone()
			}
			for k := range child {
				if r.Float64() < cfg.mutRate {
					child[k] = !child[k]
				}
			}
			forceStep0(child)
			next[i] = child
		}
		if err := pool.evalRange(next, nextFit, cfg.elites); err != nil {
			return nil, err
		}
		stats.Evaluations += int64(cfg.pop - cfg.elites)
		pop, next = next, pop
		fit, nextFit = nextFit, fit
		for i := 0; i < cfg.pop; i++ {
			if fit[i] < bestC {
				bestC, bestG = fit[i], pop[i].clone()
			}
		}
		board.Publish(bestC)
		history = append(history, bestC)
	}

	// Materialize, validate and reprice the best genome through the
	// model; the fast evaluator and the model must agree exactly.
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		mask[j] = make([]bool, n)
		for i := 0; i < n; i++ {
			mask[j][i] = bestG[j*n+i]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost != bestC {
		return nil, fmt.Errorf("ga: evaluator cost %d disagrees with model cost %d", bestC, cost)
	}
	stats.Truncated = true // stochastic search: cost is an upper bound
	stats.Degraded = cfg.degraded
	return &Result{
		Solution: &mtswitch.Solution{Schedule: sched, Cost: cost, Stats: stats},
		History:  history,
	}, nil
}
