// Package ga implements the genetic algorithm the paper used to compute
// multi-task (hyper)reconfiguration schedules for the SHyRA experiment
// ("(Hyper)reconfiguration costs with partial hyperreconfigurations for
// the multiple task case were computed using a genetic algorithm").
//
// A genome is the joint hyperreconfiguration mask: one bit per (task,
// step) saying whether the task performs a partial hyperreconfiguration
// immediately before the step (step 0 is always set — tasks must
// establish an initial hypercontext).  Hypercontexts are implied:
// canonical segment unions are optimal for any fixed mask, so the
// search space is exactly the mask space.
//
// The GA is deterministic for a fixed Config.Seed: tournament
// selection, uniform crossover, per-bit mutation, elitism, and seeding
// with informed individuals (the aligned-DP mask, the
// hyperreconfigure-only-at-step-0 mask, and the every-step mask) so the
// search starts no worse than the best classical baseline.
package ga

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
)

// Config are the GA hyperparameters.  The zero value selects the
// defaults noted on each field.
type Config struct {
	// Pop is the population size (default 80).
	Pop int
	// Generations to evolve (default 300).
	Generations int
	// MutRate is the per-bit mutation probability (default 2/(m·n),
	// encoded as 0 → adaptive).
	MutRate float64
	// CrossRate is the probability a child is produced by crossover
	// rather than cloning (default 0.9).
	CrossRate float64
	// TournamentK is the tournament size (default 3).
	TournamentK int
	// Elites survive unchanged each generation (default 2).
	Elites int
	// Seed drives the deterministic random source (default 1).
	Seed int64
	// SeedWithHeuristics injects the aligned-DP, initial-only and
	// every-step masks into the initial population (default true;
	// disable with NoHeuristicSeeds).
	NoHeuristicSeeds bool
	// Workers is the number of goroutines evaluating fitness in
	// parallel (default GOMAXPROCS).  Children are generated with the
	// sequential random source before evaluation fans out, so results
	// are identical for every worker count.
	Workers int
	// Crossover selects the recombination operator (default
	// CrossUniform).
	Crossover CrossoverKind
}

// CrossoverKind selects the GA's recombination operator.
type CrossoverKind int

const (
	// CrossUniform draws every (task, step) gene independently from one
	// of the two parents — the classic disruptive operator.
	CrossUniform CrossoverKind = iota
	// CrossTwoPoint exchanges one contiguous gene range, preserving
	// runs of hyperreconfiguration decisions.
	CrossTwoPoint
	// CrossTaskRow inherits each task's entire row from one parent —
	// schedules recombine along the problem's natural task structure.
	CrossTaskRow
)

// String implements fmt.Stringer.
func (c CrossoverKind) String() string {
	switch c {
	case CrossUniform:
		return "uniform"
	case CrossTwoPoint:
		return "two-point"
	case CrossTaskRow:
		return "task-row"
	default:
		return fmt.Sprintf("CrossoverKind(%d)", int(c))
	}
}

func (c Config) withDefaults(m, n int) Config {
	if c.Pop <= 0 {
		c.Pop = 80
	}
	if c.Generations <= 0 {
		c.Generations = 300
	}
	if c.MutRate <= 0 {
		c.MutRate = 2.0 / float64(m*n+1)
	}
	if c.CrossRate <= 0 {
		c.CrossRate = 0.9
	}
	if c.TournamentK <= 0 {
		c.TournamentK = 3
	}
	if c.Elites <= 0 {
		c.Elites = 2
	}
	if c.Elites > c.Pop {
		c.Elites = c.Pop
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// genome is a flat m·n hyperreconfiguration mask.
type genome []bool

func (g genome) clone() genome { return append(genome(nil), g...) }

// evaluator computes fitness (= schedule cost, lower is better) for
// genomes without materializing a model.MTSchedule: per task it walks
// the mask's segments once, computing canonical union sizes, then
// combines per-step terms under the upload modes.
type evaluator struct {
	ins   *model.MTSwitchInstance
	opt   model.CostOptions
	m, n  int
	sizes [][]int // scratch: per task per step hypercontext size
}

func newEvaluator(ins *model.MTSwitchInstance, opt model.CostOptions) *evaluator {
	m, n := ins.NumTasks(), ins.Steps()
	sizes := make([][]int, m)
	for j := range sizes {
		sizes[j] = make([]int, n)
	}
	return &evaluator{ins: ins, opt: opt, m: m, n: n, sizes: sizes}
}

func (ev *evaluator) cost(g genome) model.Cost {
	m, n := ev.m, ev.n
	for j := 0; j < m; j++ {
		row := g[j*n : (j+1)*n]
		u := bitset.New(ev.ins.Tasks[j].Local)
		for start := 0; start < n; {
			end := start + 1
			for end < n && !row[end] {
				end++
			}
			u.Clear()
			for i := start; i < end; i++ {
				u.UnionWith(ev.ins.Reqs[j][i])
			}
			c := u.Count()
			for i := start; i < end; i++ {
				ev.sizes[j][i] = c
			}
			start = end
		}
	}
	total := ev.ins.W
	for i := 0; i < n; i++ {
		var hyper model.Cost
		for j := 0; j < m; j++ {
			if i == 0 || g[j*n+i] {
				hyper = ev.opt.HyperUpload.Combine(hyper, ev.ins.Tasks[j].V)
			}
		}
		var reconf model.Cost
		if ev.opt.ReconfUpload == model.TaskParallel {
			reconf = model.Cost(ev.ins.PublicGlobal)
		}
		for j := 0; j < m; j++ {
			reconf = ev.opt.ReconfUpload.Combine(reconf, model.Cost(ev.sizes[j][i]))
		}
		if ev.opt.ReconfUpload == model.TaskSequential {
			reconf += model.Cost(ev.ins.PublicGlobal)
		}
		total += hyper + reconf
	}
	return total
}

// crossover recombines two parents under the selected operator.
func crossover(r *rand.Rand, kind CrossoverKind, m, n int, a, b genome) genome {
	child := make(genome, m*n)
	switch kind {
	case CrossTwoPoint:
		lo := r.Intn(m * n)
		hi := lo + r.Intn(m*n-lo) + 1 // (lo, hi]
		copy(child, a)
		copy(child[lo:hi], b[lo:hi])
	case CrossTaskRow:
		for j := 0; j < m; j++ {
			src := a
			if r.Intn(2) == 1 {
				src = b
			}
			copy(child[j*n:(j+1)*n], src[j*n:(j+1)*n])
		}
	default: // CrossUniform
		for k := range child {
			if r.Intn(2) == 0 {
				child[k] = a[k]
			} else {
				child[k] = b[k]
			}
		}
	}
	return child
}

// evalPool evaluates genomes concurrently.  Each worker owns an
// evaluator (the evaluator carries scratch buffers, so sharing one
// across goroutines would race).
type evalPool struct {
	evs []*evaluator
}

func newEvalPool(ins *model.MTSwitchInstance, opt model.CostOptions, workers int) *evalPool {
	p := &evalPool{evs: make([]*evaluator, workers)}
	for i := range p.evs {
		p.evs[i] = newEvaluator(ins, opt)
	}
	return p
}

// evalRange computes out[i] = cost(genomes[i]) for i in [from, len).
func (p *evalPool) evalRange(genomes []genome, out []model.Cost, from int) {
	n := len(genomes) - from
	if n <= 0 {
		return
	}
	workers := len(p.evs)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := from; i < len(genomes); i++ {
			out[i] = p.evs[0].cost(genomes[i])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := from + w*chunk
		hi := lo + chunk
		if hi > len(genomes) {
			hi = len(genomes)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ev *evaluator, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = ev.cost(genomes[i])
			}
		}(p.evs[w], lo, hi)
	}
	wg.Wait()
}

// Result is the GA outcome: the best schedule found, its cost, and the
// best-of-generation history (for convergence plots).
type Result struct {
	Solution *mtswitch.Solution
	History  []model.Cost
}

// Optimize evolves hyperreconfiguration masks for the fully
// synchronized MT-Switch instance and returns the best schedule found.
// The result is repriced through the model (validating feasibility), so
// Result.Solution.Cost is trustworthy even if the fast evaluator were
// wrong — the two are also cross-checked.
func Optimize(ins *model.MTSwitchInstance, opt model.CostOptions, cfg Config) (*Result, error) {
	if ins == nil {
		return nil, fmt.Errorf("ga: nil instance")
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		sched, err := ins.CanonicalSchedule(make([][]bool, m))
		if err != nil {
			return nil, err
		}
		return &Result{Solution: &mtswitch.Solution{Schedule: sched, Cost: ins.W}}, nil
	}
	cfg = cfg.withDefaults(m, n)
	r := rand.New(rand.NewSource(cfg.Seed))
	pool := newEvalPool(ins, opt, cfg.Workers)

	forceStep0 := func(g genome) {
		for j := 0; j < m; j++ {
			g[j*n] = true
		}
	}

	pop := make([]genome, 0, cfg.Pop)
	if !cfg.NoHeuristicSeeds {
		// Initial-only mask.
		initial := make(genome, m*n)
		forceStep0(initial)
		pop = append(pop, initial)
		// Every-step mask.
		every := make(genome, m*n)
		for i := range every {
			every[i] = true
		}
		pop = append(pop, every)
		// Aligned-DP mask.
		if al, err := mtswitch.SolveAligned(ins, opt); err == nil {
			g := make(genome, m*n)
			for j := 0; j < m; j++ {
				for i := 0; i < n; i++ {
					g[j*n+i] = al.Schedule.Hyper[j][i]
				}
			}
			pop = append(pop, g)
		}
	}
	for len(pop) < cfg.Pop {
		g := make(genome, m*n)
		density := r.Float64() * 0.4 // varied sparsity
		for i := range g {
			g[i] = r.Float64() < density
		}
		forceStep0(g)
		pop = append(pop, g)
	}

	fit := make([]model.Cost, cfg.Pop)
	pool.evalRange(pop, fit, 0)

	bestG := pop[0].clone()
	bestC := fit[0]
	for i := 1; i < cfg.Pop; i++ {
		if fit[i] < bestC {
			bestC, bestG = fit[i], pop[i].clone()
		}
	}

	history := make([]model.Cost, 0, cfg.Generations)
	tournament := func() genome {
		best := r.Intn(cfg.Pop)
		for k := 1; k < cfg.TournamentK; k++ {
			c := r.Intn(cfg.Pop)
			if fit[c] < fit[best] {
				best = c
			}
		}
		return pop[best]
	}

	next := make([]genome, cfg.Pop)
	nextFit := make([]model.Cost, cfg.Pop)
	for gen := 0; gen < cfg.Generations; gen++ {
		// Elitism: copy the current best individuals.
		order := make([]int, cfg.Pop)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fit[order[a]] < fit[order[b]] })
		for e := 0; e < cfg.Elites; e++ {
			next[e] = pop[order[e]].clone()
			nextFit[e] = fit[order[e]]
		}
		// Generate all children with the sequential random source, then
		// evaluate them in parallel.
		for i := cfg.Elites; i < cfg.Pop; i++ {
			var child genome
			if r.Float64() < cfg.CrossRate {
				child = crossover(r, cfg.Crossover, m, n, tournament(), tournament())
			} else {
				child = tournament().clone()
			}
			for k := range child {
				if r.Float64() < cfg.MutRate {
					child[k] = !child[k]
				}
			}
			forceStep0(child)
			next[i] = child
		}
		pool.evalRange(next, nextFit, cfg.Elites)
		pop, next = next, pop
		fit, nextFit = nextFit, fit
		for i := 0; i < cfg.Pop; i++ {
			if fit[i] < bestC {
				bestC, bestG = fit[i], pop[i].clone()
			}
		}
		history = append(history, bestC)
	}

	// Materialize, validate and reprice the best genome through the
	// model; the fast evaluator and the model must agree exactly.
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		mask[j] = make([]bool, n)
		for i := 0; i < n; i++ {
			mask[j][i] = bestG[j*n+i]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost != bestC {
		return nil, fmt.Errorf("ga: evaluator cost %d disagrees with model cost %d", bestC, cost)
	}
	return &Result{
		Solution: &mtswitch.Solution{Schedule: sched, Cost: cost, Truncated: true},
		History:  history,
	}, nil
}
