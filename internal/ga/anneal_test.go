package ga

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

func TestAnnealDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ins := randomMT(r, 3, 5, 8)
	cfg := solve.Options{Iterations: 2000, Seed: 7}
	a, err := Anneal(context.Background(), ins, parallel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(context.Background(), ins, parallel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Solution.Cost != b.Solution.Cost {
		t.Fatalf("same seed produced different costs: %d vs %d", a.Solution.Cost, b.Solution.Cost)
	}
}

func TestAnnealNeverWorseThanAligned(t *testing.T) {
	// The aligned schedule seeds the search and the best-ever state is
	// returned, so annealing can never end above the aligned cost.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 5, 8)
		al, err1 := mtswitch.SolveAligned(context.Background(), ins, parallel)
		res, err2 := Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 500, Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		return res.Solution.Cost <= al.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealNeverBelowOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 2, 4, 5)
		ex, err1 := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
		res, err2 := Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 2000, Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		return res.Solution.Cost >= ex.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealMatchesExactOften(t *testing.T) {
	matched, total := 0, 0
	r := rand.New(rand.NewSource(77))
	for k := 0; k < 12; k++ {
		ins := randomMT(r, 2, 4, 6)
		ex, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 5000, Seed: int64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Solution.Cost == ex.Cost {
			matched++
		}
	}
	if matched*2 < total {
		t.Fatalf("annealing matched the exact optimum only %d/%d times", matched, total)
	}
	t.Logf("annealing matched exact optimum on %d/%d instances", matched, total)
}

func TestAnnealScheduleValid(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ins := randomMT(r, 3, 6, 12)
	res, err := Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(res.Solution.Schedule); err != nil {
		t.Fatalf("annealed schedule invalid: %v", err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("best-so-far history increased")
		}
	}
}

func TestAnnealSingleStep(t *testing.T) {
	// n == 1 has no legal move (the initial hyperreconfiguration is
	// mandatory); annealing must still return the only schedule.
	tasks := []model.Task{{Name: "A", Local: 2, V: 1}}
	ins, err := model.NewMTSwitchInstance(tasks, [][]bitset.Set{{bitset.FromMembers(2, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost != 1+1 { // v + |{0}|
		t.Fatalf("cost = %d, want 2", res.Solution.Cost)
	}
}

func TestAnnealNilAndEmpty(t *testing.T) {
	if _, err := Anneal(context.Background(), nil, parallel, solve.Options{}); err == nil {
		t.Fatal("accepted nil instance")
	}
	tasks := []model.Task{{Name: "A", Local: 1, V: 1}}
	ins, err := model.NewMTSwitchInstance(tasks, [][]bitset.Set{{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost != 0 {
		t.Fatalf("empty cost = %d", res.Solution.Cost)
	}
}
