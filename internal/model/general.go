package model

import (
	"fmt"

	"repro/internal/bitset"
)

// Hypercontext is one hypercontext of the General (or DAG) cost model
// with an explicitly enumerated hypercontext set H.  Sat is its context
// set h(C): the subset of the context-requirement catalog it satisfies.
type Hypercontext struct {
	// Name identifies the hypercontext in reports.
	Name string
	// Init is init(h), the cost of hyperreconfiguring into h.
	Init Cost
	// PerStep is cost(h), the cost of one ordinary reconfiguration
	// performed while h is active.
	PerStep Cost
	// Sat is h(C) over the catalog universe {0..NumContexts-1}.
	Sat bitset.Set
}

// GeneralInstance is a single-task instance of the General cost model
// with an explicit hypercontext set.  The catalog of possible context
// requirements is abstract: requirements are identified by integers
// 0..NumContexts-1 and a hypercontext h satisfies requirement c iff
// c ∈ h(C).
//
// With H explicit the optimization problem is polynomial (see
// internal/phc).  The paper's NP-completeness result concerns the
// general model with implicitly described (exponentially many)
// hypercontexts, which internal/phc attacks with branch-and-bound and
// heuristics on the Switch representation.
type GeneralInstance struct {
	NumContexts   int
	Hypercontexts []Hypercontext
	// Seq is the computation's requirement sequence, each an index into
	// the catalog.
	Seq []int
}

// NewGeneralInstance validates and builds an instance.  Every
// requirement in the sequence must be satisfiable by at least one
// hypercontext, otherwise no schedule exists.
func NewGeneralInstance(numContexts int, hs []Hypercontext, seq []int) (*GeneralInstance, error) {
	if numContexts < 0 {
		return nil, fmt.Errorf("model: negative context catalog size")
	}
	if len(hs) == 0 {
		return nil, fmt.Errorf("model: instance needs at least one hypercontext")
	}
	for k, h := range hs {
		if h.Init < 0 || h.PerStep < 0 {
			return nil, fmt.Errorf("model: hypercontext %q has negative costs", h.Name)
		}
		if h.Sat.Universe() != numContexts {
			return nil, fmt.Errorf("model: hypercontext %d context set over universe %d, want %d", k, h.Sat.Universe(), numContexts)
		}
	}
	for i, c := range seq {
		if c < 0 || c >= numContexts {
			return nil, fmt.Errorf("model: sequence step %d references unknown context %d", i, c)
		}
		ok := false
		for _, h := range hs {
			if h.Sat.Contains(c) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("model: context %d (step %d) is satisfied by no hypercontext", c, i)
		}
	}
	return &GeneralInstance{NumContexts: numContexts, Hypercontexts: hs, Seq: seq}, nil
}

// Len returns the number of reconfiguration steps.
func (ins *GeneralInstance) Len() int { return len(ins.Seq) }

// GeneralSchedule assigns a hypercontext (index into
// GeneralInstance.Hypercontexts) to every step.  A hyperreconfiguration
// happens before step 0 and before every step whose assignment differs
// from the previous one.
type GeneralSchedule struct {
	HctxIdx []int
}

// Cost validates the schedule and computes
// Σ_segments ( init(h) + cost(h)·len ).
func (ins *GeneralInstance) Cost(s GeneralSchedule) (Cost, error) {
	if len(s.HctxIdx) != ins.Len() {
		return 0, fmt.Errorf("model: schedule covers %d steps, want %d", len(s.HctxIdx), ins.Len())
	}
	var total Cost
	for i, k := range s.HctxIdx {
		if k < 0 || k >= len(ins.Hypercontexts) {
			return 0, fmt.Errorf("model: step %d assigned unknown hypercontext %d", i, k)
		}
		h := ins.Hypercontexts[k]
		if !h.Sat.Contains(ins.Seq[i]) {
			return 0, fmt.Errorf("model: hypercontext %q does not satisfy context %d at step %d", h.Name, ins.Seq[i], i)
		}
		if i == 0 || s.HctxIdx[i-1] != k {
			total += h.Init
		}
		total += h.PerStep
	}
	return total, nil
}

// Hyperreconfigurations returns the steps at which the schedule
// hyperreconfigures (step 0 plus every change point).
func (s GeneralSchedule) Hyperreconfigurations() []int {
	var out []int
	for i, k := range s.HctxIdx {
		if i == 0 || s.HctxIdx[i-1] != k {
			out = append(out, i)
		}
	}
	return out
}

// AsyncPhase is one "local hyperreconfiguration followed by a run of
// ordinary reconfigurations" episode of a task in the asynchronous
// (non-synchronized) multi-task General model: the pair
// (h^loc_{j,i}, h^priv_{j,i}) S_{j,i} of Section 4.1.
type AsyncPhase struct {
	// LocalInit is init(h_j, f_j^loc), the cost of the phase's local
	// hyperreconfiguration.
	LocalInit Cost
	// ReconfCost is cost(h^loc, h^priv), the per-step reconfiguration
	// cost within this phase.
	ReconfCost Cost
	// Steps is |S_{j,i}|, the number of ordinary reconfigurations.
	Steps int
}

// AsyncTaskRun is the sequence of phases one task executes between two
// global hyperreconfigurations.  The paper requires n_j ≥ 1: after a
// global hyperreconfiguration every task must perform a local
// hyperreconfiguration before it can reconfigure.
type AsyncTaskRun struct {
	Name   string
	Phases []AsyncPhase
}

// Time returns the task's total (hyper)reconfiguration time
// Σ_i ( init_i + cost_i·|S_i| ).
func (t AsyncTaskRun) Time() Cost {
	var total Cost
	for _, p := range t.Phases {
		total += p.LocalInit + p.ReconfCost*Cost(p.Steps)
	}
	return total
}

// AsyncRun is one window between global hyperreconfiguration h and the
// next one h' on a non-synchronized machine where partial operations
// run task parallel.  Its total time is the General Multi Task model's
//
//	init(h) + max_j Σ_i ( init(h_j, f_j^loc) + cost(h^loc,h^priv)·|S_{j,i}| ).
type AsyncRun struct {
	// GlobalInit is init(h) of the window-opening global
	// hyperreconfiguration.
	GlobalInit Cost
	Tasks      []AsyncTaskRun
}

// Validate checks the n_j ≥ 1 requirement and non-negative costs.
func (r *AsyncRun) Validate() error {
	if len(r.Tasks) == 0 {
		return fmt.Errorf("model: async run needs at least one task")
	}
	if r.GlobalInit < 0 {
		return fmt.Errorf("model: negative global init cost")
	}
	for _, t := range r.Tasks {
		if len(t.Phases) == 0 {
			return fmt.Errorf("model: task %q must perform at least one local hyperreconfiguration after a global one", t.Name)
		}
		for i, p := range t.Phases {
			if p.LocalInit < 0 || p.ReconfCost < 0 || p.Steps < 0 {
				return fmt.Errorf("model: task %q phase %d has negative components", t.Name, i)
			}
		}
	}
	return nil
}

// TotalTime computes the window's maximal total
// (hyper)reconfiguration time.  Because the machine is
// non-synchronized, reconfiguration time of one task overlaps with
// computation of the others and the window is bounded by its slowest
// task.
func (r *AsyncRun) TotalTime() (Cost, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	var worst Cost
	for _, t := range r.Tasks {
		if tt := t.Time(); tt > worst {
			worst = tt
		}
	}
	return r.GlobalInit + worst, nil
}

// BottleneckTask returns the index of the task that determines the
// window time (ties resolved to the lowest index).
func (r *AsyncRun) BottleneckTask() (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	best, bestTime := 0, Cost(-1)
	for j, t := range r.Tasks {
		if tt := t.Time(); tt > bestTime {
			best, bestTime = j, tt
		}
	}
	return best, nil
}
