package model

import "fmt"

// Cost measures (hyper)reconfiguration time.  In the Switch model a cost
// unit corresponds to one reconfiguration bit that must be uploaded, so
// all costs in this library are exact integers, never floats.
type Cost int64

// ResourceClass classifies the reconfigurable resources of a multi-task
// hyperreconfigurable machine (Section 3 of the paper).
type ResourceClass int

const (
	// PrivateGlobal resources are shared between tasks: the total
	// amount and its assignment to tasks is defined by the global
	// hypercontext (e.g. I/O units split among tasks).  Ownership can
	// change at every global hyperreconfiguration.
	PrivateGlobal ResourceClass = iota
	// PublicGlobal resources are used by all tasks at the same time and
	// quality (e.g. the switch type available on the whole chip).  They
	// exist only on context- or fully-synchronized machines, because
	// reconfiguring them influences every task at once.
	PublicGlobal
	// Local resources are fixed to one task at initialization; their
	// available amount/quality is set by that task's local
	// hyperreconfigurations independently of all other tasks.
	Local
)

// String implements fmt.Stringer.
func (r ResourceClass) String() string {
	switch r {
	case PrivateGlobal:
		return "private-global"
	case PublicGlobal:
		return "public-global"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("ResourceClass(%d)", int(r))
	}
}

// SyncMode is the synchronization discipline between tasks for partial
// hyperreconfigurations and reconfigurations.  Global
// hyperreconfigurations are always barrier-synchronized regardless of
// mode.
type SyncMode int

const (
	// NonSynchronized: neither partial hyperreconfigurations nor
	// reconfigurations synchronize the tasks.
	NonSynchronized SyncMode = iota
	// HypercontextSynchronized: partial hyperreconfigurations are
	// barrier-synchronized across all tasks (idle tasks issue
	// no-hyperreconfiguration statements).
	HypercontextSynchronized
	// ContextSynchronized: ordinary reconfigurations are
	// barrier-synchronized across all tasks.
	ContextSynchronized
	// FullySynchronized: both hypercontext- and context-synchronized.
	// This is the mode of the paper's Theorem 1 and of the SHyRA
	// experiment.
	FullySynchronized
)

// String implements fmt.Stringer.
func (s SyncMode) String() string {
	switch s {
	case NonSynchronized:
		return "non-synchronized"
	case HypercontextSynchronized:
		return "hypercontext-synchronized"
	case ContextSynchronized:
		return "context-synchronized"
	case FullySynchronized:
		return "fully-synchronized"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(s))
	}
}

// HyperSynchronized reports whether partial hyperreconfigurations are
// barrier-synchronized in this mode.
func (s SyncMode) HyperSynchronized() bool {
	return s == HypercontextSynchronized || s == FullySynchronized
}

// ContextSynchronizedMode reports whether ordinary reconfigurations are
// barrier-synchronized in this mode.
func (s SyncMode) ContextSynchronizedMode() bool {
	return s == ContextSynchronized || s == FullySynchronized
}

// AllowsPublicGlobal reports whether public global resources may exist
// under this mode.  The paper notes they require context- or full
// synchronization, because reconfiguring them influences all tasks.
func (s SyncMode) AllowsPublicGlobal() bool { return s.ContextSynchronizedMode() }

// UploadMode states whether the reconfiguration bits of different tasks
// are uploaded onto the machine in parallel or one task after another.
// It determines whether the per-step cost of a synchronized operation is
// the maximum or the sum over the participating tasks.
type UploadMode int

const (
	// TaskParallel: bits for all tasks (and the public global
	// resources) upload concurrently; the step lasts as long as its
	// slowest participant.
	TaskParallel UploadMode = iota
	// TaskSequential: bits upload one task after another; the step
	// lasts the sum of the participants' times.
	TaskSequential
)

// String implements fmt.Stringer.
func (u UploadMode) String() string {
	switch u {
	case TaskParallel:
		return "task-parallel"
	case TaskSequential:
		return "task-sequential"
	default:
		return fmt.Sprintf("UploadMode(%d)", int(u))
	}
}

// Combine folds a per-task cost into a step cost under the upload mode:
// running maximum for TaskParallel, running sum for TaskSequential.
func (u UploadMode) Combine(acc, c Cost) Cost {
	if u == TaskParallel {
		if c > acc {
			return c
		}
		return acc
	}
	return acc + c
}

// MachineClass is the degree of partiality a multi-task
// hyperreconfigurable machine supports (Section 3).
type MachineClass int

const (
	// PartiallyReconfigurable: a subset of tasks can reconfigure
	// without interrupting the others, but hyperreconfigurations are
	// always for all tasks at a time.
	PartiallyReconfigurable MachineClass = iota
	// PartiallyHyperreconfigurable: a subset of tasks can perform both
	// local hyperreconfigurations and reconfigurations without
	// interrupting the others.
	PartiallyHyperreconfigurable
	// RestrictedPartiallyHyperreconfigurable: a subset of tasks can
	// perform local hyperreconfigurations without interrupting the
	// others, but reconfigurations are for all tasks at a time.
	RestrictedPartiallyHyperreconfigurable
)

// String implements fmt.Stringer.
func (m MachineClass) String() string {
	switch m {
	case PartiallyReconfigurable:
		return "partially-reconfigurable"
	case PartiallyHyperreconfigurable:
		return "partially-hyperreconfigurable"
	case RestrictedPartiallyHyperreconfigurable:
		return "restricted-partially-hyperreconfigurable"
	default:
		return fmt.Sprintf("MachineClass(%d)", int(m))
	}
}

// AllowsPartialHyper reports whether the class permits local
// hyperreconfigurations by a strict subset of the tasks.
func (m MachineClass) AllowsPartialHyper() bool {
	return m == PartiallyHyperreconfigurable || m == RestrictedPartiallyHyperreconfigurable
}

// AllowsPartialReconf reports whether the class permits ordinary
// reconfigurations by a strict subset of the tasks.
func (m MachineClass) AllowsPartialReconf() bool {
	return m == PartiallyReconfigurable || m == PartiallyHyperreconfigurable
}
