package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func reqs(universe int, members ...[]int) []bitset.Set {
	out := make([]bitset.Set, len(members))
	for i, m := range members {
		out[i] = bitset.FromMembers(universe, m...)
	}
	return out
}

func mustSwitch(t *testing.T, universe int, w Cost, rs []bitset.Set) *SwitchInstance {
	t.Helper()
	ins, err := NewSwitchInstance(universe, w, rs)
	if err != nil {
		t.Fatalf("NewSwitchInstance: %v", err)
	}
	return ins
}

func TestNewSwitchInstanceValidation(t *testing.T) {
	if _, err := NewSwitchInstance(4, 0, nil); err == nil {
		t.Fatal("accepted W=0")
	}
	if _, err := NewSwitchInstance(-1, 1, nil); err == nil {
		t.Fatal("accepted negative universe")
	}
	bad := []bitset.Set{bitset.New(5)}
	if _, err := NewSwitchInstance(4, 1, bad); err == nil {
		t.Fatal("accepted requirement over wrong universe")
	}
}

func TestSegmentationValidate(t *testing.T) {
	cases := []struct {
		starts []int
		n      int
		ok     bool
	}{
		{[]int{0}, 3, true},
		{[]int{0, 2}, 3, true},
		{[]int{0, 1, 2}, 3, true},
		{nil, 0, true},
		{[]int{}, 3, false},  // must begin at 0
		{[]int{1}, 3, false}, // must begin at 0
		{[]int{0, 0}, 3, false},
		{[]int{0, 2, 1}, 3, false},
		{[]int{0, 3}, 3, false}, // beyond end
		{[]int{0}, 0, false},
	}
	for _, c := range cases {
		err := Segmentation{Starts: c.starts}.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v, n=%d) err=%v, want ok=%v", c.starts, c.n, err, c.ok)
		}
	}
}

func TestSegments(t *testing.T) {
	seg := Segmentation{Starts: []int{0, 2, 5}}
	got := seg.Segments(7)
	want := [][2]int{{0, 2}, {2, 5}, {5, 7}}
	if len(got) != len(want) {
		t.Fatalf("Segments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Segments[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCanonicalHypercontextsAndCost(t *testing.T) {
	// Universe {0..3}; requirements {0},{1},{2,3},{2}.
	ins := mustSwitch(t, 4, 3, reqs(4, []int{0}, []int{1}, []int{2, 3}, []int{2}))

	// One segment: union {0,1,2,3}, cost = 3 + 4*4 = 19.
	c, err := ins.Cost(Segmentation{Starts: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 19 {
		t.Fatalf("single-segment cost = %d, want 19", c)
	}

	// Two segments [0,2),[2,4): unions {0,1},{2,3}; cost = 2*3 + 2*2 + 2*2 = 14.
	c, err = ins.Cost(Segmentation{Starts: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 14 {
		t.Fatalf("two-segment cost = %d, want 14", c)
	}

	hs, err := ins.CanonicalHypercontexts(Segmentation{Starts: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].String() != "1100" || hs[1].String() != "0011" {
		t.Fatalf("canonical hypercontexts = %v %v", hs[0], hs[1])
	}
}

func TestCostWithHypercontextsRejectsUnsatisfied(t *testing.T) {
	ins := mustSwitch(t, 4, 1, reqs(4, []int{0}, []int{1}))
	seg := Segmentation{Starts: []int{0}}
	hs := []bitset.Set{bitset.FromMembers(4, 0)} // misses requirement {1}
	if _, err := ins.CostWithHypercontexts(seg, hs); err == nil {
		t.Fatal("accepted hypercontext that misses a requirement")
	}
}

func TestCostWithOversizedHypercontext(t *testing.T) {
	ins := mustSwitch(t, 4, 1, reqs(4, []int{0}, []int{1}))
	seg := Segmentation{Starts: []int{0}}
	full := []bitset.Set{bitset.Full(4)}
	c, err := ins.CostWithHypercontexts(seg, full)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1+4*2 {
		t.Fatalf("cost = %d, want 9", c)
	}
}

func TestChangeoverCost(t *testing.T) {
	ins := mustSwitch(t, 4, 2, reqs(4, []int{0, 1}, []int{1, 2}))
	seg := Segmentation{Starts: []int{0, 1}}
	hs := []bitset.Set{bitset.FromMembers(4, 0, 1), bitset.FromMembers(4, 1, 2)}
	// Hyper 1: W + |∅ Δ {0,1}| = 2+2; step cost 2.
	// Hyper 2: W + |{0,1} Δ {1,2}| = 2+2; step cost 2.
	c, err := ins.ChangeoverCost(seg, hs)
	if err != nil {
		t.Fatal(err)
	}
	if c != 12 {
		t.Fatalf("changeover cost = %d, want 12", c)
	}
}

func TestBaselinesAndLowerBound(t *testing.T) {
	ins := mustSwitch(t, 4, 3, reqs(4, []int{0}, []int{1, 2}, nil))
	if got := ins.DisabledCost(); got != 12 {
		t.Fatalf("DisabledCost = %d, want 12", got)
	}
	if got := ins.EveryStepCost(); got != 3+1+3+2+3+0 {
		t.Fatalf("EveryStepCost = %d, want 12", got)
	}
	if got := ins.LowerBound(); got != 3+1+2+0 {
		t.Fatalf("LowerBound = %d, want 6", got)
	}
	empty := mustSwitch(t, 4, 3, nil)
	if got := empty.LowerBound(); got != 0 {
		t.Fatalf("empty LowerBound = %d, want 0", got)
	}
}

func randomSwitchInstance(r *rand.Rand) *SwitchInstance {
	universe := 1 + r.Intn(8)
	n := 1 + r.Intn(10)
	rs := make([]bitset.Set, n)
	for i := range rs {
		s := bitset.New(universe)
		for b := 0; b < universe; b++ {
			if r.Intn(3) == 0 {
				s.Add(b)
			}
		}
		rs[i] = s
	}
	ins, err := NewSwitchInstance(universe, Cost(1+r.Intn(5)), rs)
	if err != nil {
		panic(err)
	}
	return ins
}

func randomSegmentation(r *rand.Rand, n int) Segmentation {
	starts := []int{0}
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			starts = append(starts, i)
		}
	}
	return Segmentation{Starts: starts}
}

// Property: canonical cost is never above the cost of the same
// segmentation with the full hypercontext everywhere, and never below
// the instance lower bound.
func TestQuickCanonicalIsCheapestPerSegmentation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomSwitchInstance(r)
		seg := randomSegmentation(r, ins.Len())
		canon, err := ins.Cost(seg)
		if err != nil {
			return false
		}
		full := make([]bitset.Set, len(seg.Starts))
		for i := range full {
			full[i] = bitset.Full(ins.Universe)
		}
		fullCost, err := ins.CostWithHypercontexts(seg, full)
		if err != nil {
			return false
		}
		return canon <= fullCost && canon >= ins.LowerBound()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two adjacent segments never decreases cost by more
// than one W (the saved hyperreconfiguration): cost(merged) ≥
// cost(split) - W is NOT generally true, but cost(split) ≤ cost(merged)
// + W always holds because splitting a segment keeps unions no larger.
func TestQuickSplitBoundedByMerge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomSwitchInstance(r)
		if ins.Len() < 2 {
			return true
		}
		merged := Segmentation{Starts: []int{0}}
		cut := 1 + r.Intn(ins.Len()-1)
		split := Segmentation{Starts: []int{0, cut}}
		cm, err1 := ins.Cost(merged)
		cs, err2 := ins.Cost(split)
		if err1 != nil || err2 != nil {
			return false
		}
		return cs <= cm+ins.W
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
