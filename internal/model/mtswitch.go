package model

import (
	"fmt"

	"repro/internal/bitset"
)

// Task describes one task of a multi-task switch-model machine.
type Task struct {
	// Name identifies the task in reports (e.g. "LUT1", "MUX").
	Name string
	// Local is l_j, the number of local switches assigned to the task
	// at initialization (|f_j^loc|).
	Local int
	// V is v_j > 0, the cost of one local (partial) hyperreconfiguration
	// of this task.  The paper's typical special case is
	// v_j = |h_j| + |f_j^loc|, which for machines without private global
	// resources reduces to v_j = l_j.
	V Cost
}

// MTSwitchInstance is a fully synchronized multi-task instance of the
// MT-Switch cost model.  All m tasks advance in lockstep through n
// reconfiguration steps; before each step every task may perform a local
// (partial) hyperreconfiguration or a no-hyperreconfiguration operation.
//
// The instance models the paper's Theorem 1 setting: only local
// resources (plus an optional public-global term that enters the
// reconfiguration max/sum, and an optional global-init cost W paid once
// at the start).  Private global resources are handled by the extended
// solver in internal/mtswitch.
type MTSwitchInstance struct {
	Tasks []Task
	// Reqs[j][i] is task j's context requirement at step i, a subset of
	// that task's local switch universe {0..Tasks[j].Local-1}.
	Reqs [][]bitset.Set
	// PublicGlobal is |h^pub|, the number of public global switches
	// reconfigured at every synchronized step (0 if this resource class
	// is absent).  Public global resources require context- or full
	// synchronization.
	PublicGlobal int
	// W is the cost of the single global hyperreconfiguration that
	// opens the analyzed window (0 if there are no global resources and
	// hence no global hyperreconfigurations, as in the SHyRA experiment).
	W Cost
}

// NewMTSwitchInstance validates and builds an instance.  All task
// requirement sequences must have equal length (the machine is fully
// synchronized) and range over their task's local universe.
func NewMTSwitchInstance(tasks []Task, reqs [][]bitset.Set) (*MTSwitchInstance, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("model: instance needs at least one task")
	}
	if len(reqs) != len(tasks) {
		return nil, fmt.Errorf("model: %d requirement sequences for %d tasks", len(reqs), len(tasks))
	}
	n := len(reqs[0])
	for j, t := range tasks {
		if t.Local < 0 {
			return nil, fmt.Errorf("model: task %q has negative local switch count", t.Name)
		}
		if t.V <= 0 {
			return nil, fmt.Errorf("model: task %q needs positive local hyperreconfiguration cost v_j", t.Name)
		}
		if len(reqs[j]) != n {
			return nil, fmt.Errorf("model: task %q has %d steps, task %q has %d (fully synchronized machines need equal lengths)",
				tasks[j].Name, len(reqs[j]), tasks[0].Name, n)
		}
		for i, r := range reqs[j] {
			if r.Universe() != t.Local {
				return nil, fmt.Errorf("model: task %q requirement %d over universe %d, want %d", t.Name, i, r.Universe(), t.Local)
			}
		}
	}
	return &MTSwitchInstance{Tasks: tasks, Reqs: reqs}, nil
}

// NumTasks returns m.
func (ins *MTSwitchInstance) NumTasks() int { return len(ins.Tasks) }

// Steps returns n, the synchronized step count.
func (ins *MTSwitchInstance) Steps() int {
	if len(ins.Reqs) == 0 {
		return 0
	}
	return len(ins.Reqs[0])
}

// TotalLocalSwitches returns Σ_j l_j (48 for SHyRA).
func (ins *MTSwitchInstance) TotalLocalSwitches() int {
	total := 0
	for _, t := range ins.Tasks {
		total += t.Local
	}
	return total
}

// MTSchedule is a candidate solution for a fully synchronized instance:
// which tasks hyperreconfigure before which steps, and the local
// hypercontext each task holds during each step.
type MTSchedule struct {
	// Hyper[j][i] is I_{j,i}: true iff task j performs a local
	// hyperreconfiguration immediately before step i.  Hyper[j][0] must
	// be true for every j — tasks must establish an initial
	// hypercontext.
	Hyper [][]bool
	// Hctx[j][i] is the local hypercontext of task j in effect during
	// step i.  If Hyper[j][i] is false it must equal Hctx[j][i-1].
	Hctx [][]bitset.Set
}

// CostOptions selects the upload discipline for the two operation kinds.
// The paper's SHyRA experiment uses TaskParallel for both.
type CostOptions struct {
	HyperUpload  UploadMode
	ReconfUpload UploadMode
}

// Validate checks schedule shape and semantics against the instance:
// initial hyperreconfigurations present, hypercontexts persistent across
// no-hyperreconfiguration steps, and every requirement satisfied by the
// hypercontext in effect.
func (ins *MTSwitchInstance) Validate(s *MTSchedule) error {
	m, n := ins.NumTasks(), ins.Steps()
	if len(s.Hyper) != m || len(s.Hctx) != m {
		return fmt.Errorf("model: schedule has %d/%d task rows, want %d", len(s.Hyper), len(s.Hctx), m)
	}
	for j := 0; j < m; j++ {
		if len(s.Hyper[j]) != n || len(s.Hctx[j]) != n {
			return fmt.Errorf("model: task %q schedule has %d/%d steps, want %d", ins.Tasks[j].Name, len(s.Hyper[j]), len(s.Hctx[j]), n)
		}
		if n > 0 && !s.Hyper[j][0] {
			return fmt.Errorf("model: task %q must hyperreconfigure before step 0", ins.Tasks[j].Name)
		}
		for i := 0; i < n; i++ {
			h := s.Hctx[j][i]
			if h.Universe() != ins.Tasks[j].Local {
				return fmt.Errorf("model: task %q hypercontext %d over universe %d, want %d", ins.Tasks[j].Name, i, h.Universe(), ins.Tasks[j].Local)
			}
			if !s.Hyper[j][i] && !h.Equal(s.Hctx[j][i-1]) {
				return fmt.Errorf("model: task %q changed hypercontext at step %d without hyperreconfiguring", ins.Tasks[j].Name, i)
			}
			if !ins.Reqs[j][i].IsSubsetOf(h) {
				return fmt.Errorf("model: task %q requirement at step %d not satisfied by its hypercontext", ins.Tasks[j].Name, i)
			}
		}
	}
	return nil
}

// Cost prices a schedule under the fully synchronized MT-Switch model.
// With task-parallel uploads the total is
//
//	W + Σ_i ( max_j I_{j,i}·v_j + max{ |h^pub|, max_j |h_{j,i}| } )
//
// and task-sequential uploads replace the corresponding max by a sum
// (the public-global term joins the sum as well).  The schedule is
// validated first.
func (ins *MTSwitchInstance) Cost(s *MTSchedule, opt CostOptions) (Cost, error) {
	if err := ins.Validate(s); err != nil {
		return 0, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	total := ins.W
	for i := 0; i < n; i++ {
		var hyper Cost
		for j := 0; j < m; j++ {
			if s.Hyper[j][i] {
				hyper = opt.HyperUpload.Combine(hyper, ins.Tasks[j].V)
			}
		}
		reconf := Cost(ins.PublicGlobal)
		if opt.ReconfUpload == TaskSequential {
			reconf = 0
		}
		for j := 0; j < m; j++ {
			reconf = opt.ReconfUpload.Combine(reconf, Cost(s.Hctx[j][i].Count()))
		}
		if opt.ReconfUpload == TaskSequential {
			reconf += Cost(ins.PublicGlobal)
		}
		total += hyper + reconf
	}
	return total, nil
}

// StepCosts returns the per-step (hyper, reconf) cost pairs of a valid
// schedule, for reporting and figure generation.
func (ins *MTSwitchInstance) StepCosts(s *MTSchedule, opt CostOptions) ([]Cost, []Cost, error) {
	if err := ins.Validate(s); err != nil {
		return nil, nil, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	hyperCosts := make([]Cost, n)
	reconfCosts := make([]Cost, n)
	for i := 0; i < n; i++ {
		var hyper Cost
		for j := 0; j < m; j++ {
			if s.Hyper[j][i] {
				hyper = opt.HyperUpload.Combine(hyper, ins.Tasks[j].V)
			}
		}
		reconf := Cost(ins.PublicGlobal)
		if opt.ReconfUpload == TaskSequential {
			reconf = 0
		}
		for j := 0; j < m; j++ {
			reconf = opt.ReconfUpload.Combine(reconf, Cost(s.Hctx[j][i].Count()))
		}
		if opt.ReconfUpload == TaskSequential {
			reconf += Cost(ins.PublicGlobal)
		}
		hyperCosts[i] = hyper
		reconfCosts[i] = reconf
	}
	return hyperCosts, reconfCosts, nil
}

// CanonicalSchedule expands hyperreconfiguration masks into a full
// schedule by giving every segment its cheapest valid hypercontext: the
// union of the segment's requirements.  Hyper[j][0] is forced true.
func (ins *MTSwitchInstance) CanonicalSchedule(hyper [][]bool) (*MTSchedule, error) {
	m, n := ins.NumTasks(), ins.Steps()
	if len(hyper) != m {
		return nil, fmt.Errorf("model: %d hyper rows for %d tasks", len(hyper), m)
	}
	s := &MTSchedule{Hyper: make([][]bool, m), Hctx: make([][]bitset.Set, m)}
	for j := 0; j < m; j++ {
		if len(hyper[j]) != n {
			return nil, fmt.Errorf("model: task %q hyper row has %d steps, want %d", ins.Tasks[j].Name, len(hyper[j]), n)
		}
		row := append([]bool(nil), hyper[j]...)
		if n > 0 {
			row[0] = true
		}
		s.Hyper[j] = row
		s.Hctx[j] = make([]bitset.Set, n)
		// Walk segments: [start, end) between consecutive true flags.
		for start := 0; start < n; {
			end := start + 1
			for end < n && !row[end] {
				end++
			}
			u := bitset.New(ins.Tasks[j].Local)
			for i := start; i < end; i++ {
				u.UnionWith(ins.Reqs[j][i])
			}
			for i := start; i < end; i++ {
				s.Hctx[j][i] = u
			}
			start = end
		}
	}
	return s, nil
}

// DisabledCost is the hyperreconfiguration-off baseline: the monolithic
// machine uploads all Σ_j l_j (+ public global) bits at every one of the
// n steps.  For the SHyRA counter trace this is the paper's 5280.
func (ins *MTSwitchInstance) DisabledCost() Cost {
	return Cost(ins.Steps()) * Cost(ins.TotalLocalSwitches()+ins.PublicGlobal)
}

// SingleTaskView flattens the multi-task instance into one combined
// task over the disjoint union of all local switch universes, as in the
// paper's m=1 comparison where LUT1, LUT2, MUX and DeMUX are a single
// task.  The hyperreconfiguration cost of the combined task defaults to
// the total switch count (the paper's typical special case w = |X|).
func (ins *MTSwitchInstance) SingleTaskView() (*SwitchInstance, error) {
	total := ins.TotalLocalSwitches()
	n := ins.Steps()
	reqs := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		u := bitset.New(total)
		off := 0
		for j, t := range ins.Tasks {
			ins.Reqs[j][i].ForEach(func(b int) { u.Add(off + b) })
			off += t.Local
		}
		reqs[i] = u
	}
	w := Cost(total)
	if w == 0 {
		w = 1
	}
	return NewSwitchInstance(total, w, reqs)
}

// TaskOffsets returns the starting index of each task's switches in the
// flattened single-task universe, plus the total size.  Offsets follow
// task order.
func (ins *MTSwitchInstance) TaskOffsets() ([]int, int) {
	offs := make([]int, len(ins.Tasks))
	off := 0
	for j, t := range ins.Tasks {
		offs[j] = off
		off += t.Local
	}
	return offs, off
}
