// Package model defines the formal objects of Lange & Middendorf's
// hyperreconfigurable-architecture framework and its multi-task
// extension (IPPS 2004):
//
//   - context requirements and hypercontexts,
//   - the three single-task cost models (General, DAG, Switch),
//   - the multi-task resource classes (private global, public global,
//     local), hyperreconfiguration kinds (global, local/partial),
//     machine partiality classes and synchronization modes,
//   - the multi-task cost models (General MT, MT-DAG, MT-Switch) in both
//     the asynchronous and the fully synchronized form, each with task
//     parallel or task sequential uploads,
//   - the changeover-cost model variant.
//
// The package is purely descriptive: it represents problem instances and
// candidate (hyper)reconfiguration schedules and prices them, but does
// not optimize.  Solvers live in internal/phc (single task),
// internal/mtswitch (multi task, exact) and internal/ga (multi task,
// genetic).  Machine semantics (barrier-synchronized execution of task
// programs) live in internal/machine, and the SHyRA example architecture
// in internal/shyra.
//
// # Vocabulary
//
// A computation is a sequence of context requirements c_1 ... c_n.  Each
// requirement names the reconfigurable features the computation needs at
// that reconfiguration step.  A hypercontext h determines which
// requirements are satisfiable; installing h costs init(h) and every
// ordinary reconfiguration performed under h costs cost(h).  In the
// Switch model both requirements and hypercontexts are subsets of a
// switch universe X, a requirement c is satisfied by h iff c ⊆ h, and
// cost(h) = |h|.
//
// In the multi-task setting m tasks T_1..T_m run in parallel.  Each task
// has its own sequence of requirements over its local switches; partial
// (local) hyperreconfigurations adapt a single task's hypercontext
// without disturbing the others, while global hyperreconfigurations are
// barrier-synchronized across all tasks.
package model
