package model

import (
	"testing"

	"repro/internal/bitset"
)

// threeHypercontexts builds a catalog over 3 contexts:
//
//	small:  satisfies {0},      init 2, per-step 1
//	medium: satisfies {0,1},    init 4, per-step 2
//	full:   satisfies {0,1,2},  init 8, per-step 5
func threeHypercontexts() []Hypercontext {
	return []Hypercontext{
		{Name: "small", Init: 2, PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "medium", Init: 4, PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "full", Init: 8, PerStep: 5, Sat: bitset.FromMembers(3, 0, 1, 2)},
	}
}

func TestNewGeneralInstanceValidation(t *testing.T) {
	hs := threeHypercontexts()
	if _, err := NewGeneralInstance(3, nil, nil); err == nil {
		t.Fatal("accepted empty hypercontext set")
	}
	if _, err := NewGeneralInstance(3, hs, []int{3}); err == nil {
		t.Fatal("accepted out-of-catalog context")
	}
	bad := []Hypercontext{{Name: "neg", Init: -1, PerStep: 0, Sat: bitset.Full(3)}}
	if _, err := NewGeneralInstance(3, bad, nil); err == nil {
		t.Fatal("accepted negative init")
	}
	// A context with no satisfier.
	only := []Hypercontext{{Name: "s", Init: 1, PerStep: 1, Sat: bitset.FromMembers(2, 0)}}
	if _, err := NewGeneralInstance(2, only, []int{1}); err == nil {
		t.Fatal("accepted unsatisfiable context")
	}
}

func TestGeneralCost(t *testing.T) {
	ins, err := NewGeneralInstance(3, threeHypercontexts(), []int{0, 0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Stay in full the whole time: 8 + 5*5 = 33.
	c, err := ins.Cost(GeneralSchedule{HctxIdx: []int{2, 2, 2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 33 {
		t.Fatalf("full-only cost = %d, want 33", c)
	}
	// small,small,medium,full,small: inits 2+4+8+2, per-steps 1+1+2+5+1.
	c, err = ins.Cost(GeneralSchedule{HctxIdx: []int{0, 0, 1, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 16+10 {
		t.Fatalf("adaptive cost = %d, want 26", c)
	}
}

func TestGeneralCostRejects(t *testing.T) {
	ins, err := NewGeneralInstance(3, threeHypercontexts(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Cost(GeneralSchedule{HctxIdx: []int{0}}); err == nil {
		t.Fatal("accepted hypercontext that misses the context")
	}
	if _, err := ins.Cost(GeneralSchedule{HctxIdx: []int{9}}); err == nil {
		t.Fatal("accepted unknown hypercontext index")
	}
	if _, err := ins.Cost(GeneralSchedule{HctxIdx: nil}); err == nil {
		t.Fatal("accepted wrong-length schedule")
	}
}

func TestHyperreconfigurations(t *testing.T) {
	s := GeneralSchedule{HctxIdx: []int{1, 1, 0, 0, 2, 2}}
	got := s.Hyperreconfigurations()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Hyperreconfigurations = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hyperreconfigurations = %v, want %v", got, want)
		}
	}
}

func TestAsyncRunTotalTime(t *testing.T) {
	run := &AsyncRun{
		GlobalInit: 10,
		Tasks: []AsyncTaskRun{
			{Name: "fast", Phases: []AsyncPhase{{LocalInit: 1, ReconfCost: 2, Steps: 3}}},                                           // 7
			{Name: "slow", Phases: []AsyncPhase{{LocalInit: 5, ReconfCost: 4, Steps: 10}, {LocalInit: 1, ReconfCost: 1, Steps: 1}}}, // 47
		},
	}
	total, err := run.TotalTime()
	if err != nil {
		t.Fatal(err)
	}
	if total != 10+47 {
		t.Fatalf("TotalTime = %d, want 57", total)
	}
	j, err := run.BottleneckTask()
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Fatalf("BottleneckTask = %d, want 1", j)
	}
}

func TestAsyncRunValidation(t *testing.T) {
	if _, err := (&AsyncRun{}).TotalTime(); err == nil {
		t.Fatal("accepted run without tasks")
	}
	run := &AsyncRun{Tasks: []AsyncTaskRun{{Name: "empty"}}}
	if _, err := run.TotalTime(); err == nil {
		t.Fatal("accepted task without mandatory local hyperreconfiguration")
	}
	run = &AsyncRun{Tasks: []AsyncTaskRun{{Name: "neg", Phases: []AsyncPhase{{LocalInit: -1}}}}}
	if _, err := run.TotalTime(); err == nil {
		t.Fatal("accepted negative phase cost")
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		val  interface{ String() string }
		want string
	}{
		{PrivateGlobal, "private-global"},
		{PublicGlobal, "public-global"},
		{Local, "local"},
		{NonSynchronized, "non-synchronized"},
		{HypercontextSynchronized, "hypercontext-synchronized"},
		{ContextSynchronized, "context-synchronized"},
		{FullySynchronized, "fully-synchronized"},
		{TaskParallel, "task-parallel"},
		{TaskSequential, "task-sequential"},
		{PartiallyReconfigurable, "partially-reconfigurable"},
		{PartiallyHyperreconfigurable, "partially-hyperreconfigurable"},
		{RestrictedPartiallyHyperreconfigurable, "restricted-partially-hyperreconfigurable"},
	}
	for _, c := range cases {
		if got := c.val.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if ResourceClass(99).String() == "" || SyncMode(99).String() == "" ||
		UploadMode(99).String() == "" || MachineClass(99).String() == "" {
		t.Error("unknown enum values should still render")
	}
}

func TestSyncModePredicates(t *testing.T) {
	if !FullySynchronized.HyperSynchronized() || !FullySynchronized.ContextSynchronizedMode() {
		t.Error("FullySynchronized predicates wrong")
	}
	if NonSynchronized.HyperSynchronized() || NonSynchronized.ContextSynchronizedMode() {
		t.Error("NonSynchronized predicates wrong")
	}
	if !HypercontextSynchronized.HyperSynchronized() || HypercontextSynchronized.ContextSynchronizedMode() {
		t.Error("HypercontextSynchronized predicates wrong")
	}
	if ContextSynchronized.HyperSynchronized() || !ContextSynchronized.ContextSynchronizedMode() {
		t.Error("ContextSynchronized predicates wrong")
	}
	// Public global resources only exist under context synchronization.
	if NonSynchronized.AllowsPublicGlobal() || HypercontextSynchronized.AllowsPublicGlobal() {
		t.Error("public global resources must require context synchronization")
	}
	if !ContextSynchronized.AllowsPublicGlobal() || !FullySynchronized.AllowsPublicGlobal() {
		t.Error("context/fully synchronized machines allow public global resources")
	}
}

func TestMachineClassPredicates(t *testing.T) {
	if !PartiallyHyperreconfigurable.AllowsPartialHyper() || !PartiallyHyperreconfigurable.AllowsPartialReconf() {
		t.Error("PartiallyHyperreconfigurable predicates wrong")
	}
	if !RestrictedPartiallyHyperreconfigurable.AllowsPartialHyper() || RestrictedPartiallyHyperreconfigurable.AllowsPartialReconf() {
		t.Error("RestrictedPartiallyHyperreconfigurable predicates wrong")
	}
	if PartiallyReconfigurable.AllowsPartialHyper() || !PartiallyReconfigurable.AllowsPartialReconf() {
		t.Error("PartiallyReconfigurable predicates wrong")
	}
}

func TestUploadModeCombine(t *testing.T) {
	if TaskParallel.Combine(3, 5) != 5 || TaskParallel.Combine(5, 3) != 5 {
		t.Error("TaskParallel.Combine should take the max")
	}
	if TaskSequential.Combine(3, 5) != 8 {
		t.Error("TaskSequential.Combine should sum")
	}
}
