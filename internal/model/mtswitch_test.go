package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// twoTaskInstance builds a small fixed instance:
//
//	task A: 2 local switches, v=2, reqs {0},{1},{0,1}
//	task B: 3 local switches, v=3, reqs {2},{},{0}
func twoTaskInstance(t *testing.T) *MTSwitchInstance {
	t.Helper()
	tasks := []Task{{Name: "A", Local: 2, V: 2}, {Name: "B", Local: 3, V: 3}}
	rs := [][]bitset.Set{
		reqs(2, []int{0}, []int{1}, []int{0, 1}),
		reqs(3, []int{2}, nil, []int{0}),
	}
	ins, err := NewMTSwitchInstance(tasks, rs)
	if err != nil {
		t.Fatalf("NewMTSwitchInstance: %v", err)
	}
	return ins
}

func TestNewMTSwitchInstanceValidation(t *testing.T) {
	if _, err := NewMTSwitchInstance(nil, nil); err == nil {
		t.Fatal("accepted zero tasks")
	}
	tasks := []Task{{Name: "A", Local: 2, V: 1}}
	if _, err := NewMTSwitchInstance(tasks, nil); err == nil {
		t.Fatal("accepted missing requirement rows")
	}
	if _, err := NewMTSwitchInstance([]Task{{Name: "A", Local: 2, V: 0}},
		[][]bitset.Set{reqs(2, []int{0})}); err == nil {
		t.Fatal("accepted v_j = 0")
	}
	// Unequal lengths.
	two := []Task{{Name: "A", Local: 1, V: 1}, {Name: "B", Local: 1, V: 1}}
	if _, err := NewMTSwitchInstance(two, [][]bitset.Set{
		reqs(1, []int{0}), reqs(1, []int{0}, []int{0}),
	}); err == nil {
		t.Fatal("accepted unequal sequence lengths")
	}
	// Wrong universe.
	if _, err := NewMTSwitchInstance(two, [][]bitset.Set{
		reqs(1, []int{0}), reqs(2, []int{1}),
	}); err == nil {
		t.Fatal("accepted requirement over wrong universe")
	}
}

func TestCanonicalScheduleSegments(t *testing.T) {
	ins := twoTaskInstance(t)
	// Task A hyperreconfigures at 0 and 2; task B only at 0.
	hyper := [][]bool{{true, false, true}, {true, false, false}}
	s, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(s); err != nil {
		t.Fatalf("canonical schedule invalid: %v", err)
	}
	// Task A: segment [0,2) union {0,1}; segment [2,3) union {0,1}.
	if s.Hctx[0][0].String() != "11" || s.Hctx[0][1].String() != "11" || s.Hctx[0][2].String() != "11" {
		t.Fatalf("task A hypercontexts: %v %v %v", s.Hctx[0][0], s.Hctx[0][1], s.Hctx[0][2])
	}
	// Task B: one segment, union {0,2}.
	if s.Hctx[1][0].String() != "101" {
		t.Fatalf("task B hypercontext: %v", s.Hctx[1][0])
	}
}

func TestCanonicalScheduleForcesInitialHyper(t *testing.T) {
	ins := twoTaskInstance(t)
	hyper := [][]bool{{false, false, false}, {false, false, false}}
	s, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Hyper[0][0] || !s.Hyper[1][0] {
		t.Fatal("initial hyperreconfiguration not forced")
	}
}

func TestMTCostTaskParallel(t *testing.T) {
	ins := twoTaskInstance(t)
	hyper := [][]bool{{true, false, true}, {true, false, false}}
	s, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		t.Fatal(err)
	}
	opt := CostOptions{HyperUpload: TaskParallel, ReconfUpload: TaskParallel}
	got, err := ins.Cost(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: hyper max(2,3)=3; reconf max(|{0,1}|=2, |{0,2}|=2)=2.
	// Step 1: hyper 0; reconf max(2,2)=2.
	// Step 2: hyper max(2)=2; reconf max(2,2)=2.
	want := Cost(3 + 2 + 0 + 2 + 2 + 2)
	if got != want {
		t.Fatalf("cost = %d, want %d", got, want)
	}
}

func TestMTCostTaskSequential(t *testing.T) {
	ins := twoTaskInstance(t)
	hyper := [][]bool{{true, false, true}, {true, false, false}}
	s, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		t.Fatal(err)
	}
	opt := CostOptions{HyperUpload: TaskSequential, ReconfUpload: TaskSequential}
	got, err := ins.Cost(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: hyper 2+3=5; reconf 2+2=4.
	// Step 1: hyper 0; reconf 4.
	// Step 2: hyper 2; reconf 4.
	want := Cost(5 + 4 + 0 + 4 + 2 + 4)
	if got != want {
		t.Fatalf("cost = %d, want %d", got, want)
	}
}

func TestMTCostPublicGlobal(t *testing.T) {
	ins := twoTaskInstance(t)
	ins.PublicGlobal = 5
	ins.W = 7
	hyper := [][]bool{{true, false, false}, {true, false, false}}
	s, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ins.Cost(s, CostOptions{HyperUpload: TaskParallel, ReconfUpload: TaskParallel})
	if err != nil {
		t.Fatal(err)
	}
	// W + step0 (3 + max(5, 2, 2)) + step1 (0+5) + step2 (0+5).
	if want := Cost(7 + 3 + 5 + 5 + 5); par != want {
		t.Fatalf("parallel cost = %d, want %d", par, want)
	}
	seq, err := ins.Cost(s, CostOptions{HyperUpload: TaskSequential, ReconfUpload: TaskSequential})
	if err != nil {
		t.Fatal(err)
	}
	// W + step0 (5 + (2+2+5)) + step1 (0+9) + step2 (0+9).
	if want := Cost(7 + 5 + 9 + 9 + 9); seq != want {
		t.Fatalf("sequential cost = %d, want %d", seq, want)
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	ins := twoTaskInstance(t)
	good, err := ins.CanonicalSchedule([][]bool{{true, false, false}, {true, false, false}})
	if err != nil {
		t.Fatal(err)
	}

	// Missing initial hyperreconfiguration.
	bad := &MTSchedule{Hyper: [][]bool{{false, false, false}, {true, false, false}}, Hctx: good.Hctx}
	if err := ins.Validate(bad); err == nil {
		t.Fatal("accepted missing initial hyperreconfiguration")
	}

	// Hypercontext change without hyperreconfiguration.
	hctx := [][]bitset.Set{
		{bitset.Full(2), bitset.FromMembers(2, 1), bitset.Full(2)},
		good.Hctx[1],
	}
	bad = &MTSchedule{Hyper: [][]bool{{true, false, false}, {true, false, false}}, Hctx: hctx}
	if err := ins.Validate(bad); err == nil {
		t.Fatal("accepted hypercontext drift without hyperreconfiguration")
	}

	// Requirement not satisfied.
	hctx = [][]bitset.Set{
		{bitset.FromMembers(2, 0), bitset.FromMembers(2, 0), bitset.FromMembers(2, 0)},
		good.Hctx[1],
	}
	bad = &MTSchedule{Hyper: [][]bool{{true, false, false}, {true, false, false}}, Hctx: hctx}
	if err := ins.Validate(bad); err == nil {
		t.Fatal("accepted unsatisfied requirement")
	}
}

func TestStepCosts(t *testing.T) {
	ins := twoTaskInstance(t)
	s, err := ins.CanonicalSchedule([][]bool{{true, false, true}, {true, false, false}})
	if err != nil {
		t.Fatal(err)
	}
	opt := CostOptions{HyperUpload: TaskParallel, ReconfUpload: TaskParallel}
	hc, rc, err := ins.StepCosts(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sum Cost
	for i := range hc {
		sum += hc[i] + rc[i]
	}
	total, err := ins.Cost(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum+ins.W != total {
		t.Fatalf("step costs sum %d + W %d != total %d", sum, ins.W, total)
	}
}

func TestDisabledCost(t *testing.T) {
	ins := twoTaskInstance(t)
	if got := ins.DisabledCost(); got != Cost(3*(2+3)) {
		t.Fatalf("DisabledCost = %d, want 15", got)
	}
	ins.PublicGlobal = 2
	if got := ins.DisabledCost(); got != Cost(3*(2+3+2)) {
		t.Fatalf("DisabledCost with public = %d, want 21", got)
	}
}

func TestSingleTaskView(t *testing.T) {
	ins := twoTaskInstance(t)
	flat, err := ins.SingleTaskView()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Universe != 5 {
		t.Fatalf("flat universe = %d, want 5", flat.Universe)
	}
	if flat.W != 5 {
		t.Fatalf("flat W = %d, want 5", flat.W)
	}
	if flat.Len() != 3 {
		t.Fatalf("flat length = %d, want 3", flat.Len())
	}
	// Step 0: A={0} → {0}; B={2} → offset 2 → {4}.
	if flat.Reqs[0].String() != "10001" {
		t.Fatalf("flat req 0 = %v", flat.Reqs[0])
	}
	// Step 2: A={0,1}; B={0} → {2}.
	if flat.Reqs[2].String() != "11100" {
		t.Fatalf("flat req 2 = %v", flat.Reqs[2])
	}
	offs, total := ins.TaskOffsets()
	if total != 5 || offs[0] != 0 || offs[1] != 2 {
		t.Fatalf("TaskOffsets = %v, %d", offs, total)
	}
	// Disabled costs agree between views.
	if flat.DisabledCost() != ins.DisabledCost() {
		t.Fatalf("disabled cost mismatch: %d vs %d", flat.DisabledCost(), ins.DisabledCost())
	}
}

func randomMTInstance(r *rand.Rand) *MTSwitchInstance {
	m := 1 + r.Intn(3)
	n := 1 + r.Intn(8)
	tasks := make([]Task, m)
	rs := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(5)
		tasks[j] = Task{Name: string(rune('A' + j)), Local: l, V: Cost(1 + r.Intn(4))}
		rs[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rs[j][i] = s
		}
	}
	ins, err := NewMTSwitchInstance(tasks, rs)
	if err != nil {
		panic(err)
	}
	return ins
}

func randomHyperMask(r *rand.Rand, m, n int) [][]bool {
	h := make([][]bool, m)
	for j := 0; j < m; j++ {
		h[j] = make([]bool, n)
		h[j][0] = true
		for i := 1; i < n; i++ {
			h[j][i] = r.Intn(3) == 0
		}
	}
	return h
}

// Property: task-parallel cost never exceeds task-sequential cost for
// the same schedule (max ≤ sum for non-negative terms).
func TestQuickParallelLEQSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMTInstance(r)
		s, err := ins.CanonicalSchedule(randomHyperMask(r, ins.NumTasks(), ins.Steps()))
		if err != nil {
			return false
		}
		par, err1 := ins.Cost(s, CostOptions{TaskParallel, TaskParallel})
		seq, err2 := ins.Cost(s, CostOptions{TaskSequential, TaskSequential})
		return err1 == nil && err2 == nil && par <= seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canonical schedules are always valid and task-sequential
// cost never exceeds the disabled baseline plus total hyper costs
// (since canonical hypercontexts are subsets of each task's universe).
func TestQuickCanonicalValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMTInstance(r)
		mask := randomHyperMask(r, ins.NumTasks(), ins.Steps())
		s, err := ins.CanonicalSchedule(mask)
		if err != nil {
			return false
		}
		if err := ins.Validate(s); err != nil {
			return false
		}
		seq, err := ins.Cost(s, CostOptions{TaskSequential, TaskSequential})
		if err != nil {
			return false
		}
		var hyperTotal Cost
		for j := range mask {
			for i := range mask[j] {
				if s.Hyper[j][i] {
					hyperTotal += ins.Tasks[j].V
				}
			}
		}
		return seq <= ins.DisabledCost()+hyperTotal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the flattened single-task view preserves per-step union
// sizes: for any segmentation of the flat instance the canonical
// hypercontext size equals the sum of per-task unions over the same
// interval.
func TestQuickSingleTaskViewPreservesUnions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMTInstance(r)
		flat, err := ins.SingleTaskView()
		if err != nil {
			return false
		}
		n := ins.Steps()
		a := r.Intn(n)
		b := a + r.Intn(n-a) + 1 // (a, b]
		flatU := bitset.New(flat.Universe)
		for i := a; i < b; i++ {
			flatU.UnionWith(flat.Reqs[i])
		}
		sum := 0
		for j := range ins.Tasks {
			u := bitset.New(ins.Tasks[j].Local)
			for i := a; i < b; i++ {
				u.UnionWith(ins.Reqs[j][i])
			}
			sum += u.Count()
		}
		return flatU.Count() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
