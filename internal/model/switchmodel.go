package model

import (
	"fmt"

	"repro/internal/bitset"
)

// SwitchInstance is a single-task instance of the Switch cost model:
// a universe X of reconfigurable units ("switches"), a fixed
// hyperreconfiguration cost W = init(h), and a sequence of context
// requirements, each a subset of X.  The total reconfiguration time of a
// computation that performs r hyperreconfigurations h_1..h_r, the i-th
// followed by |S_i| ordinary reconfigurations, is
//
//	r·W + Σ_i |h_i|·|S_i|.
//
// Because a hypercontext must satisfy every requirement reconfigured
// under it (c ⊆ h), and cost grows with |h|, an optimal hypercontext for
// a fixed segment of the sequence is exactly the union of the segment's
// requirements; this canonical form is what Segmentation-based
// schedules use.
type SwitchInstance struct {
	// Universe is |X|, the number of switches.
	Universe int
	// W is the cost of one hyperreconfiguration step, init(h) = W > 0
	// for every h.  The paper's "typical special case" is W = |X|.
	W Cost
	// Reqs is the requirement sequence c_1 ... c_n; every set must
	// range over Universe.
	Reqs []bitset.Set
}

// NewSwitchInstance validates and builds an instance.  It returns an
// error if W is not positive or any requirement ranges over a different
// universe.
func NewSwitchInstance(universe int, w Cost, reqs []bitset.Set) (*SwitchInstance, error) {
	if universe < 0 {
		return nil, fmt.Errorf("model: negative universe %d", universe)
	}
	if w <= 0 {
		return nil, fmt.Errorf("model: hyperreconfiguration cost W must be positive, got %d", w)
	}
	for i, r := range reqs {
		if r.Universe() != universe {
			return nil, fmt.Errorf("model: requirement %d ranges over universe %d, want %d", i, r.Universe(), universe)
		}
	}
	return &SwitchInstance{Universe: universe, W: w, Reqs: reqs}, nil
}

// Len returns n, the number of reconfiguration steps.
func (ins *SwitchInstance) Len() int { return len(ins.Reqs) }

// Segmentation describes when hyperreconfigurations happen: Starts lists
// the indices (0-based, strictly increasing) of the steps immediately
// preceded by a hyperreconfiguration.  A valid segmentation of a
// non-empty sequence must start with 0 — the machine has to establish a
// hypercontext before the first reconfiguration.
type Segmentation struct {
	Starts []int
}

// Validate checks the segmentation against a sequence of length n.
func (s Segmentation) Validate(n int) error {
	if n == 0 {
		if len(s.Starts) != 0 {
			return fmt.Errorf("model: segmentation of empty sequence must be empty")
		}
		return nil
	}
	if len(s.Starts) == 0 || s.Starts[0] != 0 {
		return fmt.Errorf("model: segmentation must begin at step 0")
	}
	for i := 1; i < len(s.Starts); i++ {
		if s.Starts[i] <= s.Starts[i-1] {
			return fmt.Errorf("model: segmentation starts not strictly increasing at %d", i)
		}
	}
	if last := s.Starts[len(s.Starts)-1]; last >= n {
		return fmt.Errorf("model: segmentation start %d beyond sequence length %d", last, n)
	}
	return nil
}

// Segments returns the [start, end) half-open intervals induced on a
// sequence of length n.
func (s Segmentation) Segments(n int) [][2]int {
	out := make([][2]int, 0, len(s.Starts))
	for i, st := range s.Starts {
		end := n
		if i+1 < len(s.Starts) {
			end = s.Starts[i+1]
		}
		out = append(out, [2]int{st, end})
	}
	return out
}

// CanonicalHypercontexts returns, for each segment, the cheapest
// hypercontext that satisfies every requirement inside it: the union of
// the segment's requirements.
func (ins *SwitchInstance) CanonicalHypercontexts(seg Segmentation) ([]bitset.Set, error) {
	if err := seg.Validate(ins.Len()); err != nil {
		return nil, err
	}
	segs := seg.Segments(ins.Len())
	out := make([]bitset.Set, len(segs))
	for k, se := range segs {
		u := bitset.New(ins.Universe)
		for i := se[0]; i < se[1]; i++ {
			u.UnionWith(ins.Reqs[i])
		}
		out[k] = u
	}
	return out, nil
}

// Cost prices a segmentation using canonical hypercontexts:
// r·W + Σ_k |U_k|·len_k.
func (ins *SwitchInstance) Cost(seg Segmentation) (Cost, error) {
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return 0, err
	}
	return ins.CostWithHypercontexts(seg, hs)
}

// CostWithHypercontexts prices a segmentation with explicitly chosen
// hypercontexts, validating that each hypercontext satisfies every
// requirement of its segment.  Larger-than-canonical hypercontexts are
// legal (they are simply more expensive under the plain model, though
// they can pay off under changeover costs).
func (ins *SwitchInstance) CostWithHypercontexts(seg Segmentation, hs []bitset.Set) (Cost, error) {
	if err := seg.Validate(ins.Len()); err != nil {
		return 0, err
	}
	segs := seg.Segments(ins.Len())
	if len(hs) != len(segs) {
		return 0, fmt.Errorf("model: %d hypercontexts for %d segments", len(hs), len(segs))
	}
	var total Cost
	for k, se := range segs {
		h := hs[k]
		if h.Universe() != ins.Universe {
			return 0, fmt.Errorf("model: hypercontext %d ranges over universe %d, want %d", k, h.Universe(), ins.Universe)
		}
		for i := se[0]; i < se[1]; i++ {
			if !ins.Reqs[i].IsSubsetOf(h) {
				return 0, fmt.Errorf("model: requirement %d not satisfied by hypercontext of segment %d", i, k)
			}
		}
		total += ins.W + Cost(h.Count())*Cost(se[1]-se[0])
	}
	return total, nil
}

// ChangeoverCost prices a segmentation under the changeover-cost model
// variant: a hyperreconfiguration into h from predecessor h' costs
// W + |h Δ h'| (only the difference information is uploaded).  The
// machine starts with an empty hypercontext, so the first
// hyperreconfiguration pays W + |h_1|.  Ordinary reconfigurations cost
// |h| per step as before.
func (ins *SwitchInstance) ChangeoverCost(seg Segmentation, hs []bitset.Set) (Cost, error) {
	if err := seg.Validate(ins.Len()); err != nil {
		return 0, err
	}
	segs := seg.Segments(ins.Len())
	if len(hs) != len(segs) {
		return 0, fmt.Errorf("model: %d hypercontexts for %d segments", len(hs), len(segs))
	}
	prev := bitset.New(ins.Universe)
	var total Cost
	for k, se := range segs {
		h := hs[k]
		if h.Universe() != ins.Universe {
			return 0, fmt.Errorf("model: hypercontext %d ranges over universe %d, want %d", k, h.Universe(), ins.Universe)
		}
		for i := se[0]; i < se[1]; i++ {
			if !ins.Reqs[i].IsSubsetOf(h) {
				return 0, fmt.Errorf("model: requirement %d not satisfied by hypercontext of segment %d", i, k)
			}
		}
		total += ins.W + Cost(prev.SymmetricDifferenceCount(h))
		total += Cost(h.Count()) * Cost(se[1]-se[0])
		prev = h
	}
	return total, nil
}

// DisabledCost is the baseline where hyperreconfiguration is switched
// off: the machine permanently offers its full reconfiguration
// potential, so every step uploads all |X| bits and no
// hyperreconfiguration cost is paid.  For SHyRA's counter trace this is
// the paper's 5280 = 110·48.
func (ins *SwitchInstance) DisabledCost() Cost {
	return Cost(ins.Len()) * Cost(ins.Universe)
}

// EveryStepCost is the opposite baseline: hyperreconfigure before every
// single step to the exact requirement, paying W each time:
// Σ_i (W + |c_i|).
func (ins *SwitchInstance) EveryStepCost() Cost {
	var total Cost
	for _, r := range ins.Reqs {
		total += ins.W + Cost(r.Count())
	}
	return total
}

// LowerBound returns a simple instance lower bound on any schedule's
// cost: one hyperreconfiguration is unavoidable and every step must pay
// at least |c_i| reconfiguration bits.
func (ins *SwitchInstance) LowerBound() Cost {
	if ins.Len() == 0 {
		return 0
	}
	total := ins.W
	for _, r := range ins.Reqs {
		total += Cost(r.Count())
	}
	return total
}
