package mtswitch

import (
	"context"
	"errors"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Pruned search layer for the packed frontier engine (DESIGN.md §9):
// an incumbent upper bound from cheap warm starts, admissible
// remaining-cost lower bounds cutting expansion branches, and a
// dominance filter removing frontier states another state renders
// redundant.  All three are deterministic — the bound depends only on
// per-step precomputed tables and the incumbent, and dominance runs as
// a single pass over the (cost, vector)-sorted frontier — so the
// bit-identical-across-Workers guarantee of packed.go survives.

// pruneContext is what SolveExact hands the engine when the pruned
// layer is enabled: the incumbent cost and the preprocessing outcome.
type pruneContext struct {
	// incumbent is the cost of a known-valid schedule; expansion
	// branches whose admissible bound exceeds it are cut.
	incumbent model.Cost
	// mult are per-step multiplicities from run-length compression
	// (nil = every step counts once).
	mult []model.Cost
	// weights are per-task column weights from duplicate-column
	// grouping (nil rows = unweighted).
	weights [][]model.Cost
}

// errFrontierEmptied reports that bound pruning cut every successor of
// a step.  On an untruncated run this is impossible — the incumbent's
// own canonical path always survives the strict-inequality cutoff — so
// it signals that a beam/candidate cap dropped every state at least as
// good as the incumbent, and the incumbent itself is the answer.
var errFrontierEmptied = errors.New("mtswitch: pruned frontier emptied")

// warmStart computes a cheap feasible incumbent for bound pruning: the
// better of the aligned DP (which dominates the install-once and
// install-every-step patterns, both being aligned) and a per-task
// greedy mask.  Deterministic, and priced on the original instance so
// the incumbent is directly comparable with the DP totals.
func warmStart(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (model.Cost, [][]bool, error) {
	al, err := SolveAligned(ctx, ins, opt)
	if err != nil {
		return 0, nil, err
	}
	bestCost, bestMask := al.Cost, al.Schedule.Hyper

	mask := greedyMask(ins)
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return 0, nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return 0, nil, err
	}
	if cost < bestCost {
		bestCost, bestMask = cost, mask
	}
	return bestCost, bestMask, nil
}

// greedyMask opens a new segment for a task exactly when the incoming
// requirement no longer fits the requirements accumulated since the
// segment started — small contexts, unaligned breakpoints; the natural
// complement of the aligned warm start.
func greedyMask(ins *model.MTSwitchInstance) [][]bool {
	m, n := ins.NumTasks(), ins.Steps()
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		row := make([]bool, n)
		row[0] = true
		union := ins.Reqs[j][0].Clone()
		for i := 1; i < n; i++ {
			if ins.Reqs[j][i].IsSubsetOf(union) {
				continue
			}
			row[i] = true
			union = ins.Reqs[j][i].Clone()
		}
		mask[j] = row
	}
	return mask
}

// weightedCountWords is the weighted popcount of a packed task context:
// each set bit contributes its column weight (1 when weights is nil).
func weightedCountWords(words []uint64, weights []model.Cost) model.Cost {
	if weights == nil {
		return model.Cost(popcountWords(words))
	}
	var c model.Cost
	for wi, w := range words {
		base := wi * 64
		for w != 0 {
			c += weights[base+bits.TrailingZeros64(w)]
			w &= w - 1
		}
	}
	return c
}

// taskWeightsOf returns the engine's column weights for task j.
func (e *engine) taskWeightsOf(j int) []model.Cost {
	if e.weights == nil {
		return nil
	}
	return e.weights[j]
}

// multAt is the step multiplicity (1 when no steps collapsed).
func (e *engine) multAt(i int) model.Cost {
	if e.mult == nil {
		return 1
	}
	return e.mult[i]
}

// computeBounds precomputes the pruned layer's tables:
//
//   - sufUnion[j]: the suffix requirement unions U_j(i..n), used by the
//     dominance residue (bits outside the suffix union can never be
//     required again, so they are dead weight a state keeps only for
//     its popcount).
//   - tailReconf[j][i]: the reconf-upload fold of tasks j..m-1's
//     weighted requirement sizes at step i — an admissible bound on
//     the reconf contribution of the not-yet-branched tasks, since a
//     hypercontext can never be smaller than the requirement it
//     satisfies.
//   - sufLB[i]: an admissible bound on the total cost of steps i..n-1
//     (per-step requirement sizes plus the public-global term, times
//     the step multiplicity; hyper terms are bounded by zero).
func (e *engine) computeBounds() {
	m, n := e.lay.m, e.ins.Steps()
	pub := model.Cost(e.ins.PublicGlobal)

	e.sufUnion = e.sufUnion[:0]
	for j := 0; j < m; j++ {
		tw := e.lay.taskWords[j]
		suf := make([]uint64, (n+1)*tw)
		for i := n - 1; i >= 0; i-- {
			dst := suf[i*tw : (i+1)*tw]
			copy(dst, suf[(i+1)*tw:(i+2)*tw])
			req := e.reqAt(j, i)
			for w := range dst {
				dst[w] |= req[w]
			}
		}
		e.sufUnion = append(e.sufUnion, suf)
	}

	for len(e.tailReconf) < m+1 {
		e.tailReconf = append(e.tailReconf, nil)
	}
	e.tailReconf = e.tailReconf[:m+1]
	for j := range e.tailReconf {
		e.tailReconf[j] = growCosts(e.tailReconf[j], n)
	}
	for i := 0; i < n; i++ {
		e.tailReconf[m][i] = 0
	}
	for j := m - 1; j >= 0; j-- {
		wj := e.taskWeightsOf(j)
		for i := 0; i < n; i++ {
			e.tailReconf[j][i] = e.opt.ReconfUpload.Combine(
				e.tailReconf[j+1][i], weightedCountWords(e.reqAt(j, i), wj))
		}
	}

	e.sufLB = growCosts(e.sufLB, n+1)
	e.sufLB[n] = 0
	for i := n - 1; i >= 0; i-- {
		step := e.tailReconf[0][i]
		if e.opt.ReconfUpload == model.TaskParallel {
			if pub > step {
				step = pub
			}
		} else {
			step += pub
		}
		e.sufLB[i] = e.sufLB[i+1] + step*e.multAt(i)
	}
}

func growCosts(s []model.Cost, n int) []model.Cost {
	if cap(s) < n {
		return make([]model.Cost, n)
	}
	return s[:n]
}

// domGroupCap bounds how many kept states one candidate is compared
// against inside a residue-hash group.  Capping keeps the filter
// O(frontier · cap) in the worst case; missed comparisons only forgo
// prunes, never soundness, and the cap is position-deterministic.
const domGroupCap = 64

// dominanceFilter compacts the sorted frontier order e.perm in place,
// dropping every state B for which an earlier-sorted state A (hence
// cost(A) ≤ cost(B)) exists with, for every task, an identical residue
// (context ∩ remaining suffix requirements) and a no-larger weighted
// context size.  A can mimic B's future schedule step for step: equal
// residues give identical keep-feasibility and identical install
// candidates, and the componentwise size bound keeps every keep at
// most as expensive, so A's best completion never exceeds B's and B is
// redundant.  The rule is transitive, so comparing only against kept
// states loses nothing.
//
// The filter runs between the deterministic (cost, vector) sort and
// the beam truncation: its outcome depends only on the sorted frontier
// and the precomputed suffix tables, never on worker count, and
// pruning before truncating means a beam keeps domGroupCap-diverse
// states instead of near-duplicates.
func (e *engine) dominanceFilter(fl flat) {
	m, sw := e.lay.m, e.lay.setWords
	next := e.step + 1

	if e.domGroups == nil {
		e.domGroups = make(map[uint64][]int32)
	} else {
		for k := range e.domGroups {
			delete(e.domGroups, k)
		}
	}
	e.domRes = e.domRes[:0]
	e.domCnt = e.domCnt[:0]
	e.domResBuf = growWords(e.domResBuf, sw)
	e.domCntBuf = growCosts(e.domCntBuf, m)
	res, cnt := e.domResBuf, e.domCntBuf

	out := 0
	var nk int32
	for _, p := range e.perm {
		st := fl.state(p)
		for j := 0; j < m; j++ {
			off, tw := e.lay.taskOff[j], e.lay.taskWords[j]
			suf := e.sufUnion[j][next*tw : (next+1)*tw]
			for w := 0; w < tw; w++ {
				res[off+w] = st[off+w] & suf[w]
			}
			cnt[j] = weightedCountWords(st[off:off+tw], e.taskWeightsOf(j))
		}
		h := bitset.HashWords(res)
		group := e.domGroups[h]
		lim := len(group)
		if lim > domGroupCap {
			lim = domGroupCap
		}
		dominated := false
		for _, k := range group[:lim] {
			if !wordsEqual(e.domRes[int(k)*sw:(int(k)+1)*sw], res) {
				continue
			}
			le := true
			base := int(k) * m
			for j := 0; j < m; j++ {
				if e.domCnt[base+j] > cnt[j] {
					le = false
					break
				}
			}
			if le {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		e.domRes = append(e.domRes, res...)
		e.domCnt = append(e.domCnt, cnt...)
		e.domGroups[h] = append(group, nk)
		nk++
		e.perm[out] = p
		out++
	}
	e.perm = e.perm[:out]
}
