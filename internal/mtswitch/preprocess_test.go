package mtswitch

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
)

// TestPreprocessRunLength checks step run-length compression: runs of
// identical requirements collapse into one step with the right
// multiplicity and run-start mapping.
func TestPreprocessRunLength(t *testing.T) {
	tasks := []model.Task{{Name: "A", Local: 3, V: 2}}
	rows := [][]bitset.Set{
		reqs(3, []int{0}, []int{0}, []int{0}, []int{1, 2}, []int{1, 2}, []int{0}),
	}
	ins := mustMT(t, tasks, rows)
	red := preprocess(ins)
	if red == nil {
		t.Fatal("run-structured instance not reduced")
	}
	if got := red.ins.Steps(); got != 3 {
		t.Fatalf("reduced to %d steps, want 3", got)
	}
	wantStarts := []int{0, 3, 5}
	for i, want := range wantStarts {
		if red.runStart[i] != want {
			t.Fatalf("runStart[%d] = %d, want %d", i, red.runStart[i], want)
		}
	}
	wantMult := []model.Cost{3, 2, 1}
	for i, want := range wantMult {
		if red.mult[i] != want {
			t.Fatalf("mult[%d] = %d, want %d", i, red.mult[i], want)
		}
	}
	mask := red.expandMask([][]bool{{true, true, false}})
	want := []bool{true, false, false, true, false, false}
	for i := range want {
		if mask[0][i] != want[i] {
			t.Fatalf("expandMask[0] = %v, want %v", mask[0], want)
		}
	}
}

// TestPreprocessColumnGrouping checks duplicate-column grouping: columns
// with identical step signatures merge into one weighted column, and
// never-required columns vanish.
func TestPreprocessColumnGrouping(t *testing.T) {
	tasks := []model.Task{{Name: "A", Local: 5, V: 2}}
	// Columns 0 and 2 share a signature, column 4 is never required.
	rows := [][]bitset.Set{
		reqs(5, []int{0, 2}, []int{1, 3}, []int{0, 2, 3}),
	}
	ins := mustMT(t, tasks, rows)
	red := preprocess(ins)
	if red == nil {
		t.Fatal("groupable instance not reduced")
	}
	if got := red.ins.Tasks[0].Local; got != 3 {
		t.Fatalf("reduced universe %d, want 3 (two groups + one singleton dropped)", got)
	}
	w := red.taskWeights(0)
	if w == nil {
		t.Fatal("grouped task reports nil weights")
	}
	var total model.Cost
	for _, x := range w {
		total += x
	}
	if total != 4 {
		t.Fatalf("group weights sum to %d, want 4 (column 4 dropped)", total)
	}
	// cells = l·n − l'·n' = 5·3 − 3·3.
	if red.cells != 6 {
		t.Fatalf("cells = %d, want 6", red.cells)
	}
}

// TestPreprocessIrreducible checks the nil contract: an instance with
// no equal adjacent steps and no duplicate columns passes through.
func TestPreprocessIrreducible(t *testing.T) {
	tasks := []model.Task{{Name: "A", Local: 2, V: 1}}
	rows := [][]bitset.Set{
		reqs(2, []int{0}, []int{1}, []int{0, 1}),
	}
	if red := preprocess(mustMT(t, tasks, rows)); red != nil {
		t.Fatalf("irreducible instance reduced: %+v", red)
	}
}

// TestCanonicalFormInvariance checks the cache-sharing contract: the
// canonical form is unchanged by task reordering, task renaming, column
// permutation and padding with never-required columns — and changed by
// anything that affects the optimum.
func TestCanonicalFormInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for k := 0; k < 10; k++ {
		ins := randomMT(r, 3, 5, 5)
		ins.PublicGlobal = r.Intn(3)
		ins.W = model.Cost(r.Intn(4))
		base, _ := CanonicalForm(ins)

		// Task reorder + rename: same form, perm maps back.
		m := ins.NumTasks()
		order := r.Perm(m)
		tasks := make([]model.Task, m)
		rows := make([][]bitset.Set, m)
		for c, j := range order {
			tasks[c] = ins.Tasks[j]
			tasks[c].Name = string(rune('Z' - c))
			rows[c] = ins.Reqs[j]
		}
		permuted := mustMT(t, tasks, rows)
		permuted.PublicGlobal = ins.PublicGlobal
		permuted.W = ins.W
		form, perm := CanonicalForm(permuted)
		if !bytes.Equal(base, form) {
			t.Fatalf("instance %d: canonical form changed by task permutation", k)
		}
		for c, j := range perm {
			want := ins.Tasks[order[j]]
			got := permuted.Tasks[j]
			if got.Local != want.Local || got.V != want.V {
				t.Fatalf("instance %d: perm[%d] maps to mismatched task", k, c)
			}
		}

		// Column shuffle within one task: same form.
		shuffled := shuffleColumns(t, ins, r)
		shuffled.PublicGlobal = ins.PublicGlobal
		shuffled.W = ins.W
		form2, _ := CanonicalForm(shuffled)
		if !bytes.Equal(base, form2) {
			t.Fatalf("instance %d: canonical form changed by column shuffle", k)
		}

		// Cost-relevant change: different form.
		bumped := mustMT(t, append([]model.Task(nil), ins.Tasks...), ins.Reqs)
		bumped.PublicGlobal = ins.PublicGlobal + 1
		bumped.W = ins.W
		form3, _ := CanonicalForm(bumped)
		if bytes.Equal(base, form3) {
			t.Fatalf("instance %d: canonical form blind to PublicGlobal", k)
		}
	}
}

// shuffleColumns relabels every task's switch columns by a random
// permutation (and appends one never-required column), which must not
// affect the canonical form.
func shuffleColumns(t *testing.T, ins *model.MTSwitchInstance, r *rand.Rand) *model.MTSwitchInstance {
	t.Helper()
	m, n := ins.NumTasks(), ins.Steps()
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := ins.Tasks[j].Local
		tasks[j] = ins.Tasks[j]
		tasks[j].Local = l + 1 // padding column, never required
		relabel := r.Perm(l)
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l + 1)
			ins.Reqs[j][i].ForEach(func(b int) {
				s.Add(relabel[b])
			})
			rows[j][i] = s
		}
	}
	return mustMT(t, tasks, rows)
}
