package mtswitch

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

func reqs(universe int, members ...[]int) []bitset.Set {
	out := make([]bitset.Set, len(members))
	for i, m := range members {
		out[i] = bitset.FromMembers(universe, m...)
	}
	return out
}

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
var sequential = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}

func mustMT(t testing.TB, tasks []model.Task, rows [][]bitset.Set) *model.MTSwitchInstance {
	t.Helper()
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatalf("NewMTSwitchInstance: %v", err)
	}
	return ins
}

// phased builds the canonical demonstration instance: two tasks whose
// requirement phases are deliberately misaligned, so partial
// hyperreconfiguration beats aligned scheduling.
func phased(t testing.TB) *model.MTSwitchInstance {
	tasks := []model.Task{
		{Name: "A", Local: 4, V: 4},
		{Name: "B", Local: 4, V: 4},
	}
	rows := [][]bitset.Set{
		// A changes phase at step 3.
		reqs(4, []int{0}, []int{0}, []int{0}, []int{1, 2}, []int{1, 2}, []int{1, 2}),
		// B changes phase at step 2 and 4.
		reqs(4, []int{3}, []int{3}, []int{0, 1}, []int{0, 1}, []int{2}, []int{2}),
	}
	return mustMT(t, tasks, rows)
}

func randomMT(r *rand.Rand, maxM, maxL, maxN int) *model.MTSwitchInstance {
	m := 1 + r.Intn(maxM)
	n := 1 + r.Intn(maxN)
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(maxL)
		tasks[j] = model.Task{Name: string(rune('A' + j)), Local: l, V: model.Cost(1 + r.Intn(4))}
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rows[j][i] = s
		}
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		panic(err)
	}
	return ins
}

func TestSolveAlignedValidSchedule(t *testing.T) {
	ins := phased(t)
	sol, err := SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(sol.Schedule); err != nil {
		t.Fatalf("aligned schedule invalid: %v", err)
	}
	// All tasks hyperreconfigure together in aligned schedules.
	for i := 0; i < ins.Steps(); i++ {
		for j := 1; j < ins.NumTasks(); j++ {
			if sol.Schedule.Hyper[j][i] != sol.Schedule.Hyper[0][i] {
				t.Fatalf("aligned schedule diverges at step %d", i)
			}
		}
	}
}

func TestSolveExactBeatsOrMatchesAligned(t *testing.T) {
	ins := phased(t)
	al, err := SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Truncated {
		t.Fatal("exact solver truncated on a tiny instance")
	}
	if ex.Cost > al.Cost {
		t.Fatalf("exact %d worse than aligned %d", ex.Cost, al.Cost)
	}
	if err := ins.Validate(ex.Schedule); err != nil {
		t.Fatalf("exact schedule invalid: %v", err)
	}
}

func TestSolveExactMatchesBruteForceFixed(t *testing.T) {
	ins := phased(t)
	// (n-1)*m = 10 ≤ 22: brute force feasible.
	bf, err := BruteForce(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cost != bf.Cost {
		t.Fatalf("exact %d != brute force %d", ex.Cost, bf.Cost)
	}
}

func TestQuickSolveExactMatchesBruteForceParallel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 4, 5) // (n-1)*m ≤ 12
		bf, err1 := BruteForce(context.Background(), ins, parallel)
		ex, err2 := SolveExact(context.Background(), ins, parallel, solve.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return ex.Cost == bf.Cost && !ex.Stats.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveExactMatchesBruteForceSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 4, 5)
		bf, err1 := BruteForce(context.Background(), ins, sequential)
		ex, err2 := SolveExact(context.Background(), ins, sequential, solve.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return ex.Cost == bf.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedUploadModes(t *testing.T) {
	mixed := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 2, 4, 5)
		bf, err1 := BruteForce(context.Background(), ins, mixed)
		ex, err2 := SolveExact(context.Background(), ins, mixed, solve.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return ex.Cost == bf.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrderingInvariants(t *testing.T) {
	// LowerBound ≤ exact ≤ aligned ≤ disabled + initial hyper cost.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomMT(r, 3, 5, 6)
		ex, err1 := SolveExact(context.Background(), ins, parallel, solve.Options{})
		al, err2 := SolveAligned(context.Background(), ins, parallel)
		if err1 != nil || err2 != nil {
			return false
		}
		lb := LowerBound(ins, parallel)
		return lb <= ex.Cost && ex.Cost <= al.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBeatsAlignedOnMisalignedPhases(t *testing.T) {
	// The defining advantage of partially hyperreconfigurable machines:
	// misaligned phase changes force aligned schedules to either pay
	// extra hyperreconfigurations or hold oversized hypercontexts.
	ins := phased(t)
	al, err := SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cost >= al.Cost {
		t.Skipf("phased instance did not separate aligned (%d) from exact (%d)", al.Cost, ex.Cost)
	}
}

func TestSolveExactEmptyRequirements(t *testing.T) {
	// Steps with empty requirements still demand an initial
	// hyperreconfiguration but allow empty hypercontexts.
	tasks := []model.Task{{Name: "A", Local: 2, V: 1}}
	ins := mustMT(t, tasks, [][]bitset.Set{reqs(2, nil, nil)})
	sol, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: hyper 1 + reconf 0; step 1: keep + reconf 0.
	if sol.Cost != 1 {
		t.Fatalf("cost = %d, want 1", sol.Cost)
	}
}

func TestLowerBoundZeroSteps(t *testing.T) {
	if LowerBound(nil, parallel) != 0 {
		t.Fatal("nil instance lower bound should be 0")
	}
}

func TestBruteForceCap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ins := randomMT(r, 1, 2, 1)
	_ = ins
	big := func() *model.MTSwitchInstance {
		tasks := []model.Task{{Name: "A", Local: 1, V: 1}, {Name: "B", Local: 1, V: 1}}
		n := 13
		rows := make([][]bitset.Set, 2)
		for j := range rows {
			rows[j] = make([]bitset.Set, n)
			for i := range rows[j] {
				rows[j][i] = bitset.New(1)
			}
		}
		ins, err := model.NewMTSwitchInstance(tasks, rows)
		if err != nil {
			panic(err)
		}
		return ins
	}()
	if _, err := BruteForce(context.Background(), big, parallel); err == nil {
		t.Fatal("accepted oversized brute force")
	}
}

func TestSolveExactBeamStillValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ins := randomMT(r, 3, 6, 8)
	sol, err := SolveExact(context.Background(), ins, parallel, solve.Options{MaxStates: 2, MaxCandidates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Truncated {
		t.Fatal("beam run should report truncation")
	}
	if err := ins.Validate(sol.Schedule); err != nil {
		t.Fatalf("beam schedule invalid: %v", err)
	}
	ex, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost < ex.Cost {
		t.Fatalf("beam %d below exact optimum %d", sol.Cost, ex.Cost)
	}
}

func TestNilInstances(t *testing.T) {
	if _, err := SolveAligned(context.Background(), nil, parallel); err == nil {
		t.Fatal("SolveAligned accepted nil")
	}
	if _, err := SolveExact(context.Background(), nil, parallel, solve.Options{}); err == nil {
		t.Fatal("SolveExact accepted nil")
	}
	if _, err := BruteForce(context.Background(), nil, parallel); err == nil {
		t.Fatal("BruteForce accepted nil")
	}
}
