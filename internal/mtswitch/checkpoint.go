package mtswitch

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// Checkpoint serialization for the stepped engine (engine.go).
//
// A checkpoint captures everything a later process needs to continue
// the solve exactly where it stopped: the cost options, the
// search-relevant solver options, the full ORIGINAL instance, and the
// DP's axis state — step counter, current frontier and back-pointer
// generations — on the axis the DP actually runs on (the reduced axis
// when the pruned layer's preprocessing collapsed steps).
//
// Deliberately NOT serialized:
//
//   - Options.Workers: the packed engine is bit-identical across
//     worker counts, so the resuming process picks its own
//     parallelism and the schedule cannot change.
//   - The candidate catalog, warm-start incumbent, bound tables and
//     preprocessing outcome: all are deterministic functions of the
//     instance and options, recomputed on resume and cross-checked
//     against the serialized axis (a mismatch fails the resume).
//   - Per-step frontier frames: a resumed engine re-solves from its
//     restore point; amendments before it trigger a full rebuild.
//
// The decoder is hardened against malformed input — every read is
// bounds-checked, dimensions are capped and cross-validated — so
// arbitrary bytes produce an error, never a panic or a huge
// allocation.  It does not defend against semantically forged
// frontiers (a valid-shaped but wrong frontier yields a wrong
// schedule); checkpoints are trusted data, like a database file.

// checkpointMagic versions the format; bump on layout changes.
const checkpointMagic = "MTE1"

const (
	maxCPTasks   = 4096
	maxCPSteps   = 1 << 20
	maxCPLocal   = 1 << 20
	maxCPName    = 4096
	maxCPFrontEn = 1 << 28 // frontier states / generation entries
)

// Checkpoint serializes the engine's solve state after the step it is
// currently positioned on.  The engine is prepared first if it has
// never stepped (so a checkpoint can be taken before any Advance).
// Instances the packed DP does not apply to (zero steps, fully
// task-sequential cost) are not checkpointable.
func (en *Engine) Checkpoint(ctx context.Context) ([]byte, error) {
	if en.closed {
		return nil, fmt.Errorf("mtswitch: engine is closed")
	}
	if !en.canStep() {
		return nil, fmt.Errorf("mtswitch: instance is not steppable (zero steps or fully task-sequential cost)")
	}
	if err := en.ensurePrepared(ctx); err != nil {
		return nil, err
	}
	e := en.e
	var w cpWriter
	w.bytes([]byte(checkpointMagic))
	w.u8(uint8(en.opt.HyperUpload))
	w.u8(uint8(en.opt.ReconfUpload))
	w.i64(int64(en.o.MaxStates))
	w.i64(int64(en.o.MaxCandidates))
	w.i64(en.o.MaxFrontierBytes)
	w.bool(en.o.DisablePruning)

	// Original instance.
	w.u32(uint32(len(en.tasks)))
	for _, t := range en.tasks {
		w.u32(uint32(len(t.Name)))
		w.bytes([]byte(t.Name))
		w.u32(uint32(t.Local))
		w.i64(int64(t.V))
	}
	w.u32(uint32(en.pub))
	w.i64(int64(en.w))
	n := en.ins.Steps()
	w.u32(uint32(n))
	for j := range en.tasks {
		for i := 0; i < n; i++ {
			w.words(en.ins.Reqs[j][i].Words())
		}
	}

	// Axis state on the target (possibly reduced) axis.
	w.u32(uint32(en.target.Steps()))
	w.u32(uint32(e.lay.setWords))
	w.u32(uint32(e.lay.hyperWords))
	w.bool(en.emptied)
	w.u32(uint32(e.step))
	w.u32(uint32(e.count))
	for i := 0; i < e.count; i++ {
		w.i64(int64(e.costs[i]))
	}
	w.words(e.slab[:e.count*e.lay.setWords])
	for _, g := range e.gens {
		w.u32(uint32(len(g.prev)))
		for _, p := range g.prev {
			w.i64(int64(p))
		}
		w.words(g.hyper)
	}

	// Stats.
	s := e.stats
	for _, v := range []int64{
		s.StatesExpanded, s.DedupHits, s.PeakFrontier, s.ArenaReused,
		s.CandidatesPruned, s.StatesPruned, s.DominanceHits, s.BoundCutoffs,
		s.PreprocessReduction, s.BudgetDropped, s.Evaluations,
	} {
		w.i64(v)
	}
	w.bool(s.Truncated)
	w.bool(s.Degraded)
	return w.buf, nil
}

// checkpointState is the decoded form of a checkpoint.
type checkpointState struct {
	opt model.CostOptions
	o   solve.Options

	tasks []model.Task
	rows  [][]bitset.Set
	pub   int
	w     model.Cost

	axisSteps  int
	setWords   int
	hyperWords int
	emptied    bool
	step       int
	count      int
	costs      []model.Cost
	slab       []uint64
	gens       []generation

	stats solve.Stats
}

// decodeCheckpoint parses and structurally validates a checkpoint.
func decodeCheckpoint(data []byte) (*checkpointState, error) {
	r := &cpReader{b: data}
	magic := r.bytes(len(checkpointMagic))
	if r.err == nil && string(magic) != checkpointMagic {
		return nil, fmt.Errorf("mtswitch: not a checkpoint (bad magic)")
	}
	cp := &checkpointState{}
	cp.opt.HyperUpload = model.UploadMode(r.u8())
	cp.opt.ReconfUpload = model.UploadMode(r.u8())
	if r.err == nil && (cp.opt.HyperUpload > model.TaskSequential || cp.opt.ReconfUpload > model.TaskSequential) {
		return nil, fmt.Errorf("mtswitch: checkpoint has unknown upload mode")
	}
	cp.o.MaxStates = int(r.i64())
	cp.o.MaxCandidates = int(r.i64())
	cp.o.MaxFrontierBytes = r.i64()
	cp.o.DisablePruning = r.bool()
	if r.err == nil {
		if err := cp.o.Validate(); err != nil {
			return nil, fmt.Errorf("mtswitch: checkpoint options: %w", err)
		}
	}

	m := int(r.u32())
	if r.err == nil && (m < 1 || m > maxCPTasks) {
		return nil, fmt.Errorf("mtswitch: checkpoint task count %d outside [1,%d]", m, maxCPTasks)
	}
	if r.err != nil {
		return nil, r.err
	}
	cp.tasks = make([]model.Task, m)
	for j := range cp.tasks {
		nameLen := int(r.u32())
		if r.err == nil && nameLen > maxCPName {
			return nil, fmt.Errorf("mtswitch: checkpoint task name of %d bytes", nameLen)
		}
		if r.err != nil {
			return nil, r.err
		}
		name := r.bytes(nameLen)
		local := int(r.u32())
		if r.err == nil && local > maxCPLocal {
			return nil, fmt.Errorf("mtswitch: checkpoint task universe %d above %d", local, maxCPLocal)
		}
		v := model.Cost(r.i64())
		if r.err != nil {
			return nil, r.err
		}
		cp.tasks[j] = model.Task{Name: string(name), Local: local, V: v}
	}
	cp.pub = int(r.u32())
	cp.w = model.Cost(r.i64())
	n := int(r.u32())
	if r.err == nil && n > maxCPSteps {
		return nil, fmt.Errorf("mtswitch: checkpoint step count %d above %d", n, maxCPSteps)
	}
	if r.err != nil {
		return nil, r.err
	}
	cp.rows = make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		tw := bitset.WordsFor(cp.tasks[j].Local)
		row := make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			words := r.words(tw)
			if r.err != nil {
				return nil, r.err
			}
			if stray(words, cp.tasks[j].Local) {
				return nil, fmt.Errorf("mtswitch: checkpoint requirement bits beyond task %d's universe", j)
			}
			row[i] = bitset.FromWords(cp.tasks[j].Local, words)
		}
		cp.rows[j] = row
	}

	cp.axisSteps = int(r.u32())
	cp.setWords = int(r.u32())
	cp.hyperWords = int(r.u32())
	cp.emptied = r.bool()
	cp.step = int(r.u32())
	cp.count = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if cp.axisSteps < 1 || cp.axisSteps > maxCPSteps || cp.step < 0 || cp.step > cp.axisSteps {
		return nil, fmt.Errorf("mtswitch: checkpoint step %d outside axis of %d steps", cp.step, cp.axisSteps)
	}
	maxSetWords := 0
	for j := 0; j < m; j++ {
		maxSetWords += bitset.WordsFor(cp.tasks[j].Local)
	}
	if cp.setWords < 1 || cp.setWords > maxSetWords || cp.hyperWords != (m+63)/64 {
		return nil, fmt.Errorf("mtswitch: checkpoint layout %d/%d words inconsistent with %d tasks", cp.setWords, cp.hyperWords, m)
	}
	if cp.count < 1 || cp.count > maxCPFrontEn {
		return nil, fmt.Errorf("mtswitch: checkpoint frontier of %d states", cp.count)
	}
	cp.costs = make([]model.Cost, cp.count)
	for i := range cp.costs {
		cp.costs[i] = model.Cost(r.i64())
	}
	cp.slab = r.words(cp.count * cp.setWords)
	if r.err != nil {
		return nil, r.err
	}
	cp.gens = make([]generation, cp.step)
	prevKept := 1 // the root frontier has exactly one state
	for t := range cp.gens {
		kept := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if kept < 1 || kept > maxCPFrontEn {
			return nil, fmt.Errorf("mtswitch: checkpoint generation %d keeps %d states", t, kept)
		}
		prev := make([]int32, kept)
		for i := range prev {
			p := r.i64()
			if r.err != nil {
				return nil, r.err
			}
			if p < 0 || p >= int64(prevKept) {
				return nil, fmt.Errorf("mtswitch: checkpoint generation %d back-pointer %d outside previous frontier of %d", t, p, prevKept)
			}
			prev[i] = int32(p)
		}
		hyper := r.words(kept * cp.hyperWords)
		if r.err != nil {
			return nil, r.err
		}
		cp.gens[t] = generation{prev: prev, hyper: hyper}
		prevKept = kept
	}
	if cp.count != prevKept {
		return nil, fmt.Errorf("mtswitch: checkpoint frontier of %d states after a generation keeping %d", cp.count, prevKept)
	}

	for _, dst := range []*int64{
		&cp.stats.StatesExpanded, &cp.stats.DedupHits, &cp.stats.PeakFrontier,
		&cp.stats.ArenaReused, &cp.stats.CandidatesPruned, &cp.stats.StatesPruned,
		&cp.stats.DominanceHits, &cp.stats.BoundCutoffs, &cp.stats.PreprocessReduction,
		&cp.stats.BudgetDropped, &cp.stats.Evaluations,
	} {
		*dst = r.i64()
	}
	cp.stats.Truncated = r.bool()
	cp.stats.Degraded = r.bool()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("mtswitch: %d trailing bytes after checkpoint", len(r.b)-r.off)
	}
	return cp, nil
}

// stray reports whether any bit at or beyond the universe size is set
// in a packed vector (FromWords would panic on such input).
func stray(words []uint64, n int) bool {
	if n%64 == 0 {
		return false
	}
	return words[len(words)-1]&^(uint64(1)<<uint(n%64)-1) != 0
}

// ResumeEngine rebuilds an Engine from a checkpoint and positions it
// exactly where Checkpoint captured it.  Everything the checkpoint
// omits — preprocessing, warm start, candidate catalog — is recomputed
// deterministically from the serialized instance and options, and the
// recomputed step axis is cross-checked against the serialized one.
// workers picks the resuming process's parallelism (0 = GOMAXPROCS);
// the schedule is bit-identical for every choice.
func ResumeEngine(ctx context.Context, data []byte, workers int, incremental bool) (*Engine, error) {
	cp, err := decodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	o := cp.o
	o.Workers = workers
	reqs := make([][]bitset.Set, len(cp.rows))
	for j := range cp.rows {
		reqs[j] = cp.rows[j]
	}
	ins, err := model.NewMTSwitchInstance(cp.tasks, reqs)
	if err != nil {
		return nil, fmt.Errorf("mtswitch: checkpoint instance: %w", err)
	}
	ins.PublicGlobal = cp.pub
	ins.W = cp.w

	en := &Engine{
		opt: cp.opt, o: o, incremental: incremental,
		tasks: cp.tasks, rows: cp.rows, pub: cp.pub, w: cp.w, ins: ins,
	}
	if !en.canStep() {
		return nil, fmt.Errorf("mtswitch: checkpoint instance is not steppable")
	}
	if err := en.ensurePrepared(ctx); err != nil {
		return nil, err
	}
	if en.target.Steps() != cp.axisSteps {
		en.Close()
		return nil, fmt.Errorf("mtswitch: checkpoint axis of %d steps, recomputed preprocessing yields %d", cp.axisSteps, en.target.Steps())
	}
	e := en.e
	if e.lay.setWords != cp.setWords || e.lay.hyperWords != cp.hyperWords {
		en.Close()
		return nil, fmt.Errorf("mtswitch: checkpoint layout %d/%d words, recomputed layout %d/%d",
			cp.setWords, cp.hyperWords, e.lay.setWords, e.lay.hyperWords)
	}

	// Overwrite the freshly-initialized root with the captured state.
	e.step = cp.step
	e.count = cp.count
	e.slab = growWords(e.slab, cp.count*cp.setWords)
	copy(e.slab, cp.slab)
	if cap(e.costs) < cp.count {
		e.costs = make([]model.Cost, cp.count)
	}
	e.costs = e.costs[:cp.count]
	copy(e.costs, cp.costs)
	e.gens = append(e.gens[:0], cp.gens...)
	arena := e.stats.ArenaReused
	e.stats = cp.stats
	if arena > e.stats.ArenaReused {
		e.stats.ArenaReused = arena
	}
	en.emptied = cp.emptied

	// A resumed engine has frames only from its restore point onward.
	en.frames = en.frames[:0]
	en.frameBase = cp.step
	if en.keepFrames() {
		en.captureFrame()
	}
	en.lastResolveStart = cp.step
	en.baseExpanded = cp.stats.StatesExpanded
	return en, nil
}

// cpWriter appends little-endian fields to a growing buffer.
type cpWriter struct{ buf []byte }

func (w *cpWriter) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *cpWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *cpWriter) i64(v int64)    { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *cpWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }

func (w *cpWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *cpWriter) words(v []uint64) {
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, x)
	}
}

// cpReader consumes little-endian fields with sticky error handling;
// every read is bounds-checked so malformed input can never panic.
type cpReader struct {
	b   []byte
	off int
	err error
}

func (r *cpReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("mtswitch: truncated checkpoint at byte %d", r.off)
	}
}

func (r *cpReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *cpReader) bool() bool { return r.u8() != 0 }

func (r *cpReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *cpReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *cpReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

// words reads n uint64 words, verifying the remaining length BEFORE
// allocating so a forged count cannot trigger a huge allocation.
func (r *cpReader) words(n int) []uint64 {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > (len(r.b)-r.off)/8 {
		r.fail()
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return v
}
