// Package mtswitch solves the fully synchronized multi-task Switch
// problem (MT-Switch) of Lange & Middendorf: given m tasks, each with a
// length-n sequence of context requirements over its local switches,
// choose when each task performs a local (partial) hyperreconfiguration
// and which hypercontext it installs, minimizing the total
// (hyper)reconfiguration time
//
//	Σ_i ( combine_j I_{j,i}·v_j  +  combine_j |h_{j,i}| )
//
// where combine is max for task-parallel uploads and Σ for
// task-sequential ones.
//
// The paper's Theorem 1 states the task-parallel problem is solvable in
// polynomial time by dynamic programming but omits the algorithm.  This
// package reconstructs an exact solver:
//
//   - SolveExact: forward dynamic program whose states are the vectors
//     of per-task current hypercontexts, restricted (without loss of
//     optimality) to canonical candidates — unions of requirement runs
//     starting at the task's last hyperreconfiguration — with joint-key
//     deduplication and Pareto dominance pruning (state A dominates B
//     when every per-task hypercontext of A is a subset of B's and A is
//     no more expensive).  Exact for both upload modes; worst-case
//     exponential like the paper's own bound O(m n⁴ l^{2m}), fast in
//     practice because distinct interval unions per task are bounded by
//     the task's switch count.
//   - SolveAligned: O(n²) DP over schedules where all tasks
//     hyperreconfigure together — the natural generalization of the
//     single-task DP and an upper-bound baseline.
//   - BruteForce: exhaustive reference over all joint
//     hyperreconfiguration masks (tiny instances, used by tests).
//   - LowerBound: per-instance admissible bound.
//   - SolvePrivateGlobal: the private-global-resource extension — an
//     outer DP chooses global hyperreconfiguration windows (each paying
//     W and reassigning the private switches), the local solver prices
//     each window with the private requirements appended to the tasks'
//     local universes, and window feasibility requires the tasks'
//     private unions to be pairwise disjoint.
package mtswitch
