package mtswitch

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// refState is one node of the reference solver's frontier: each task's
// currently installed hypercontext as a heap-allocated []bitset.Set,
// the accumulated cost, and pointer back-links for reconstruction.
// This is the representation the packed engine exists to avoid.
type refState struct {
	sets  []bitset.Set
	cost  model.Cost
	prev  *refState
	hyper []bool
}

// key canonicalizes the joint hypercontext vector as a string.
func (s *refState) key() string {
	var b strings.Builder
	for _, set := range s.sets {
		b.WriteString(set.Key())
		b.WriteByte(0xff)
	}
	return b.String()
}

// compareRef orders frontier states by (cost, joint vector) — the same
// total order the packed engine sorts by, so both solvers truncate the
// same beam and pick the same optimum among equal-cost states.
func compareRef(a, b *refState) int {
	switch {
	case a.cost < b.cost:
		return -1
	case a.cost > b.cost:
		return 1
	}
	for j := range a.sets {
		if c := bitset.CompareWords(a.sets[j].Words(), b.sets[j].Words()); c != 0 {
			return c
		}
	}
	return 0
}

// SolveExactReference is the original map-and-pointer frontier DP, kept
// as the semantic baseline for the packed engine in SolveExact: the
// cross-engine agreement tests assert both return identical costs and
// schedules, and the recorded benchmarks measure the packed engine's
// speedup against it.
//
// It differs from the historical solver in exactly one way: the
// frontier is sorted by (cost, vector) instead of cost alone, and
// states are expanded in that order.  The historical sort left
// equal-cost states in Go's randomized map-iteration order, so
// beam-truncated runs were not reproducible; with the deterministic
// order, dedup's first-wins rule over insertion order coincides with
// the packed engine's (cost, source, branch) cheapest-wins rule, making
// the two engines agree state-for-state at every step for any worker
// count.
//
// See SolveExact for the correctness argument of the search space
// itself (canonical hypercontexts, interval-union candidates,
// cheapest-per-vector dedup).
func SolveExactReference(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		return SolveAligned(ctx, ins, opt)
	}

	maxStates := o.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	var stats solve.Stats

	// cand[j][i]: distinct values of U_j(i,e), e ≥ i, by growing horizon.
	cand := make([][][]bitset.Set, m)
	for j := 0; j < m; j++ {
		cand[j] = make([][]bitset.Set, n)
		for i := 0; i < n; i++ {
			acc := bitset.New(ins.Tasks[j].Local)
			var list []bitset.Set
			last := -1
			for e := i; e < n; e++ {
				acc.UnionWith(ins.Reqs[j][e])
				if c := acc.Count(); c != last {
					list = append(list, acc.Clone())
					last = c
				}
			}
			if o.MaxCandidates > 0 && len(list) > o.MaxCandidates {
				// Keep the shortest horizons plus the full-suffix union.
				stats.CandidatesPruned += int64(len(list) - o.MaxCandidates)
				trimmed := append([]bitset.Set(nil), list[:o.MaxCandidates-1]...)
				trimmed = append(trimmed, list[len(list)-1])
				list = trimmed
			}
			cand[j][i] = list
		}
	}

	root := &refState{sets: make([]bitset.Set, m), cost: ins.W}
	for j := 0; j < m; j++ {
		root.sets[j] = bitset.New(ins.Tasks[j].Local)
	}
	frontier := []*refState{root}
	truncated := false

	for i := 0; i < n; i++ {
		next := make(map[string]*refState, len(frontier)*4)
		cur := &refState{sets: make([]bitset.Set, m), hyper: make([]bool, m)}

		var expand func(st *refState, j int)
		expand = func(st *refState, j int) {
			if j == m {
				var hyperC model.Cost
				for t := 0; t < m; t++ {
					if cur.hyper[t] {
						hyperC = opt.HyperUpload.Combine(hyperC, ins.Tasks[t].V)
					}
				}
				var reconf model.Cost
				if opt.ReconfUpload == model.TaskParallel {
					reconf = model.Cost(ins.PublicGlobal)
				}
				for t := 0; t < m; t++ {
					reconf = opt.ReconfUpload.Combine(reconf, model.Cost(cur.sets[t].Count()))
				}
				if opt.ReconfUpload == model.TaskSequential {
					reconf += model.Cost(ins.PublicGlobal)
				}
				total := st.cost + hyperC + reconf
				k := cur.key()
				stats.StatesExpanded++
				if old, ok := next[k]; ok {
					stats.DedupHits++
					if total < old.cost {
						next[k] = &refState{
							sets:  append([]bitset.Set(nil), cur.sets...),
							cost:  total,
							prev:  st,
							hyper: append([]bool(nil), cur.hyper...),
						}
					}
				} else {
					next[k] = &refState{
						sets:  append([]bitset.Set(nil), cur.sets...),
						cost:  total,
						prev:  st,
						hyper: append([]bool(nil), cur.hyper...),
					}
				}
				return
			}
			keepOK := i > 0 && ins.Reqs[j][i].IsSubsetOf(st.sets[j])
			if keepOK {
				cur.sets[j] = st.sets[j]
				cur.hyper[j] = false
				expand(st, j+1)
			}
			for _, c := range cand[j][i] {
				// Installing a set identical to the kept one costs a
				// hyperreconfiguration for nothing.
				if keepOK && c.Equal(st.sets[j]) {
					continue
				}
				cur.sets[j] = c
				cur.hyper[j] = true
				expand(st, j+1)
			}
		}

		for _, st := range frontier {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
			expand(st, 0)
		}

		frontier = frontier[:0]
		for _, st := range next {
			frontier = append(frontier, st)
		}
		sort.Slice(frontier, func(a, b int) bool { return compareRef(frontier[a], frontier[b]) < 0 })
		if len(frontier) > maxStates {
			frontier = frontier[:maxStates]
			truncated = true
		}
		if int64(len(next)) > stats.PeakFrontier {
			stats.PeakFrontier = int64(len(next))
		}
		if len(frontier) == 0 {
			return nil, fmt.Errorf("mtswitch: state frontier emptied at step %d", i)
		}
	}

	best := frontier[0] // frontier is (cost, vector)-sorted

	// Reconstruct hyperreconfiguration masks, canonicalize, reprice.
	// Canonical repricing can only improve on the DP value (the DP may
	// hold over-long-horizon candidates for the final segments).
	mask := make([][]bool, m)
	for j := range mask {
		mask[j] = make([]bool, n)
	}
	for st, i := best, n-1; i >= 0; st, i = st.prev, i-1 {
		for j := 0; j < m; j++ {
			mask[j][i] = st.hyper[j]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost > best.cost {
		return nil, fmt.Errorf("mtswitch: canonical repricing %d above DP bound %d", cost, best.cost)
	}
	stats.Truncated = truncated || o.MaxCandidates > 0
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}
