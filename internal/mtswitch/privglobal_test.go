package mtswitch

import (
	"context"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// pgFixture: two tasks with one local switch each; 2 private global
// switches.  Task A needs private switch 0 in steps 0-1, task B needs
// private switch 0 in steps 2-3 — so a single window is infeasible
// (both unions would contain switch 0) and a global
// hyperreconfiguration must reassign ownership between steps 1 and 2.
func pgFixture(t *testing.T) *PrivateGlobalInstance {
	t.Helper()
	tasks := []model.Task{
		{Name: "A", Local: 1, V: 1},
		{Name: "B", Local: 1, V: 1},
	}
	rows := [][]bitset.Set{
		reqs(1, []int{0}, []int{0}, []int{0}, []int{0}),
		reqs(1, []int{0}, []int{0}, []int{0}, []int{0}),
	}
	base, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	priv := [][]bitset.Set{
		reqs(2, []int{0}, []int{0}, nil, nil),
		reqs(2, nil, nil, []int{0}, []int{0}),
	}
	ins, err := NewPrivateGlobalInstance(base, 2, priv, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNewPrivateGlobalInstanceValidation(t *testing.T) {
	base := pgFixture(t).Base
	if _, err := NewPrivateGlobalInstance(nil, 1, nil, 1); err == nil {
		t.Fatal("accepted nil base")
	}
	if _, err := NewPrivateGlobalInstance(base, -1, nil, 1); err == nil {
		t.Fatal("accepted negative G")
	}
	if _, err := NewPrivateGlobalInstance(base, 1, nil, 0); err == nil {
		t.Fatal("accepted W=0")
	}
	short := [][]bitset.Set{reqs(1, []int{0}), reqs(1, []int{0})}
	if _, err := NewPrivateGlobalInstance(base, 1, short, 1); err == nil {
		t.Fatal("accepted short private rows")
	}
}

func TestSolvePrivateGlobalSplitsOnConflict(t *testing.T) {
	ins := pgFixture(t)
	sol, err := SolvePrivateGlobal(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.GlobalStarts) < 2 {
		t.Fatalf("expected ≥2 global windows, got starts %v", sol.GlobalStarts)
	}
	if sol.GlobalStarts[0] != 0 {
		t.Fatalf("first window must start at 0, got %v", sol.GlobalStarts)
	}
	// The reassignment must happen exactly at the ownership flip (step 2)
	// for the minimal number of windows.
	found := false
	for _, s := range sol.GlobalStarts {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a global hyperreconfiguration at step 2, got %v", sol.GlobalStarts)
	}
	// Each window contributes W plus its local cost.
	if sol.Cost < ins.W*model.Cost(len(sol.GlobalStarts)) {
		t.Fatalf("cost %d below %d windows × W", sol.Cost, len(sol.GlobalStarts))
	}
}

func TestSolvePrivateGlobalInfeasible(t *testing.T) {
	// Both tasks demand the same private switch at the same step:
	// infeasible regardless of windowing.
	tasks := []model.Task{
		{Name: "A", Local: 1, V: 1},
		{Name: "B", Local: 1, V: 1},
	}
	rows := [][]bitset.Set{reqs(1, []int{0}), reqs(1, []int{0})}
	base, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	priv := [][]bitset.Set{reqs(1, []int{0}), reqs(1, []int{0})}
	ins, err := NewPrivateGlobalInstance(base, 1, priv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolvePrivateGlobal(context.Background(), ins, parallel, solve.Options{}); err == nil {
		t.Fatal("accepted instance with a per-step private conflict")
	}
}

func TestSolvePrivateGlobalNoPrivateDemand(t *testing.T) {
	// With all-empty private requirements the solution is one window
	// whose cost is W plus the plain local optimum.
	tasks := []model.Task{{Name: "A", Local: 2, V: 2}}
	rows := [][]bitset.Set{reqs(2, []int{0}, []int{1})}
	base, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	priv := [][]bitset.Set{reqs(3, nil, nil)}
	ins, err := NewPrivateGlobalInstance(base, 3, priv, 4)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolvePrivateGlobal(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.GlobalStarts) != 1 {
		t.Fatalf("expected one window, got %v", sol.GlobalStarts)
	}
	local, err := SolveExact(context.Background(), base, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Window tasks have v_j = Local + 0 = base Local size, which may
	// differ from the base's V; recompute expectation directly.
	if sol.Cost < ins.W {
		t.Fatalf("cost %d below W", sol.Cost)
	}
	_ = local
}

func TestSolvePrivateGlobalEmpty(t *testing.T) {
	ins := pgFixture(t)
	empty := &PrivateGlobalInstance{
		Base:     &model.MTSwitchInstance{Tasks: ins.Base.Tasks, Reqs: [][]bitset.Set{{}, {}}},
		G:        2,
		PrivReqs: [][]bitset.Set{{}, {}},
		W:        1,
	}
	sol, err := SolvePrivateGlobal(context.Background(), empty, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("empty cost = %d", sol.Cost)
	}
	if _, err := SolvePrivateGlobal(context.Background(), nil, parallel, solve.Options{}); err == nil {
		t.Fatal("accepted nil")
	}
}
