package mtswitch

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/solve"
)

// DefaultMaxStates keeps the solver exact on the small instances used
// for validation while bounding memory on adversarial inputs.
const DefaultMaxStates = 100000

// SolveExact solves the fully synchronized MT-Switch problem (the
// setting of the paper's Theorem 1, which states solvability by dynamic
// programming but omits the algorithm) by a forward DP over joint
// hypercontext states, executed by the packed frontier engine in
// packed.go.
//
// Correctness of the search space: some optimal schedule uses canonical
// hypercontexts — for fixed hyperreconfiguration steps, replacing each
// hypercontext by the union of its segment's requirements keeps the
// schedule feasible and never increases any |h_{j,i}|, hence never the
// cost (max and Σ are both monotone).  Every canonical hypercontext
// installed by task j at step i equals U_j(i,e) for some horizon e ≥ i,
// so install branches range over the distinct interval unions starting
// at i.  At each step a frontier state expands, per task, to {keep the
// current hypercontext (valid when the incoming requirement fits)} ∪
// {install a candidate}; joint successors are deduplicated by their
// hypercontext vector keeping the cheapest, which preserves optimality
// because the future cost of a state depends only on the vector.
//
// Like the paper's own bound O(m·n⁴·l^{2m}), the state space is
// exponential in the number of tasks; the paper itself fell back to a
// genetic algorithm for its m=4 experiment.  SolveExact is exact within
// Options.MaxStates and degrades to a beam search beyond it
// (Stats.Truncated reports which happened).  The context is checked
// once per frontier state, so cancellation lands within one state
// expansion.
//
// Options.Workers shards frontier expansion across that many workers
// (0 selects GOMAXPROCS); the result is identical for every worker
// count — see packed.go for the determinism argument — so Workers is
// purely a throughput knob.  SolveExactReference retains the original
// pointer-and-map implementation as the agreement/benchmark baseline.
//
// When both uploads are task-sequential the cost decomposes per task
// and the problem is solved exactly in O(m·n²) by independent
// single-task DPs; SolveExact takes that fast path automatically.
func SolveExact(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if ins.Steps() == 0 {
		return SolveAligned(ctx, ins, opt)
	}
	if opt.HyperUpload == model.TaskSequential && opt.ReconfUpload == model.TaskSequential {
		return solveSequentialDecomposed(ctx, ins, opt)
	}

	// The stepped engine (engine.go) runs the whole pipeline — pruned
	// layer setup, the packed DP stepped to the end, extraction and the
	// incumbent fallback.  A one-shot engine reuses the pooled packed
	// buffers and retains no per-step frames, so this path is
	// bit-identical to the former monolithic solver.
	eng, err := NewEngine(ctx, ins, opt, o, false)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.Solution(ctx)
}

// incumbentSolution prices the warm-start mask and returns it as the
// solution, used when a truncated pruned run ends worse than (or cut
// away) the incumbent.
func incumbentSolution(ins *model.MTSwitchInstance, opt model.CostOptions, mask [][]bool, stats solve.Stats) (*Solution, error) {
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// solveSequentialDecomposed handles the fully task-sequential cost,
// which separates across tasks:
//
//	Σ_i ( Σ_j I_{j,i} v_j + Σ_j |h_{j,i}| + |h^pub| )
//	  = Σ_j single-task-cost_j(W = v_j) + n·|h^pub| + W.
//
// Each per-task subproblem is the polynomial single-task Switch DP.
func solveSequentialDecomposed(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (*Solution, error) {
	m, n := ins.NumTasks(), ins.Steps()
	var stats solve.Stats
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		single, err := model.NewSwitchInstance(ins.Tasks[j].Local, ins.Tasks[j].V, ins.Reqs[j])
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		sol, err := phc.SolveSwitch(ctx, single)
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		stats.Add(sol.Stats)
		mask[j] = make([]bool, n)
		for _, s := range sol.Seg.Starts {
			mask[j][s] = true
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}
