package mtswitch

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/solve"
)

// DefaultMaxStates keeps the solver exact on the small instances used
// for validation while bounding memory on adversarial inputs.
const DefaultMaxStates = 100000

// SolveExact solves the fully synchronized MT-Switch problem (the
// setting of the paper's Theorem 1, which states solvability by dynamic
// programming but omits the algorithm) by a forward DP over joint
// hypercontext states, executed by the packed frontier engine in
// packed.go.
//
// Correctness of the search space: some optimal schedule uses canonical
// hypercontexts — for fixed hyperreconfiguration steps, replacing each
// hypercontext by the union of its segment's requirements keeps the
// schedule feasible and never increases any |h_{j,i}|, hence never the
// cost (max and Σ are both monotone).  Every canonical hypercontext
// installed by task j at step i equals U_j(i,e) for some horizon e ≥ i,
// so install branches range over the distinct interval unions starting
// at i.  At each step a frontier state expands, per task, to {keep the
// current hypercontext (valid when the incoming requirement fits)} ∪
// {install a candidate}; joint successors are deduplicated by their
// hypercontext vector keeping the cheapest, which preserves optimality
// because the future cost of a state depends only on the vector.
//
// Like the paper's own bound O(m·n⁴·l^{2m}), the state space is
// exponential in the number of tasks; the paper itself fell back to a
// genetic algorithm for its m=4 experiment.  SolveExact is exact within
// Options.MaxStates and degrades to a beam search beyond it
// (Stats.Truncated reports which happened).  The context is checked
// once per frontier state, so cancellation lands within one state
// expansion.
//
// Options.Workers shards frontier expansion across that many workers
// (0 selects GOMAXPROCS); the result is identical for every worker
// count — see packed.go for the determinism argument — so Workers is
// purely a throughput knob.  SolveExactReference retains the original
// pointer-and-map implementation as the agreement/benchmark baseline.
//
// When both uploads are task-sequential the cost decomposes per task
// and the problem is solved exactly in O(m·n²) by independent
// single-task DPs; SolveExact takes that fast path automatically.
func SolveExact(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if ins.Steps() == 0 {
		return SolveAligned(ctx, ins, opt)
	}
	if opt.HyperUpload == model.TaskSequential && opt.ReconfUpload == model.TaskSequential {
		return solveSequentialDecomposed(ctx, ins, opt)
	}

	// Pruned search layer (DESIGN.md §9): preprocess the instance,
	// compute a warm-start incumbent, and hand both to the engine so it
	// can cut dominated states and hopeless branches.  Pruning never
	// changes the cost of an untruncated run; Options.DisablePruning
	// restores the plain exhaustive expansion for baselining.
	var (
		px      *pruneContext
		red     *reduction
		incCost model.Cost
		incMask [][]bool
	)
	target := ins
	if !o.DisablePruning {
		red = preprocess(ins)
		px = &pruneContext{}
		if red != nil {
			target = red.ins
			px.mult = red.mult
			px.weights = red.weights
		}
		var err error
		incCost, incMask, err = warmStart(ctx, ins, opt)
		if err != nil {
			return nil, err
		}
		px.incumbent = incCost
	}

	eng := getEngine()
	defer putEngine(eng)
	mask, dpCost, stats, err := eng.solvePacked(ctx, target, opt, o, px)
	if red != nil {
		stats.PreprocessReduction = red.cells
	}
	if err == errFrontierEmptied {
		// A beam/candidate cap dropped every state at least as good as
		// the incumbent; the incumbent itself is the answer (an upper
		// bound, like any truncated result).
		stats.Truncated = true
		return incumbentSolution(ins, opt, incMask, stats)
	}
	if err != nil {
		return nil, err
	}
	if red != nil {
		mask = red.expandMask(mask)
	}

	// Canonicalize and reprice.  Canonical repricing can only improve on
	// the DP value (the DP may hold over-long-horizon candidates for the
	// final segments).
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost > dpCost {
		return nil, fmt.Errorf("mtswitch: canonical repricing %d above DP bound %d", cost, dpCost)
	}
	if px != nil && cost > incCost {
		// Only possible on a truncated run — an untruncated pruned DP
		// always retains a path at most as expensive as the incumbent.
		stats.Truncated = true
		return incumbentSolution(ins, opt, incMask, stats)
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// incumbentSolution prices the warm-start mask and returns it as the
// solution, used when a truncated pruned run ends worse than (or cut
// away) the incumbent.
func incumbentSolution(ins *model.MTSwitchInstance, opt model.CostOptions, mask [][]bool, stats solve.Stats) (*Solution, error) {
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// solveSequentialDecomposed handles the fully task-sequential cost,
// which separates across tasks:
//
//	Σ_i ( Σ_j I_{j,i} v_j + Σ_j |h_{j,i}| + |h^pub| )
//	  = Σ_j single-task-cost_j(W = v_j) + n·|h^pub| + W.
//
// Each per-task subproblem is the polynomial single-task Switch DP.
func solveSequentialDecomposed(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (*Solution, error) {
	m, n := ins.NumTasks(), ins.Steps()
	var stats solve.Stats
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		single, err := model.NewSwitchInstance(ins.Tasks[j].Local, ins.Tasks[j].V, ins.Reqs[j])
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		sol, err := phc.SolveSwitch(ctx, single)
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		stats.Add(sol.Stats)
		mask[j] = make([]bool, n)
		for _, s := range sol.Seg.Starts {
			mask[j][s] = true
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}
