package mtswitch

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/solve"
)

// DefaultMaxStates keeps the solver exact on the small instances used
// for validation while bounding memory on adversarial inputs.
const DefaultMaxStates = 100000

// state is one node of the frontier: each task's currently installed
// hypercontext, the accumulated cost, and back-pointers for schedule
// reconstruction.
type state struct {
	sets  []bitset.Set
	cost  model.Cost
	prev  *state
	hyper []bool // which tasks hyperreconfigured entering this step
}

// key canonicalizes the joint hypercontext vector.
func (s *state) key() string {
	var b strings.Builder
	for _, set := range s.sets {
		b.WriteString(set.Key())
		b.WriteByte(0xff)
	}
	return b.String()
}

// SolveExact solves the fully synchronized MT-Switch problem (the
// setting of the paper's Theorem 1, which states solvability by dynamic
// programming but omits the algorithm) by a forward DP over joint
// hypercontext states.
//
// Correctness of the search space: some optimal schedule uses canonical
// hypercontexts — for fixed hyperreconfiguration steps, replacing each
// hypercontext by the union of its segment's requirements keeps the
// schedule feasible and never increases any |h_{j,i}|, hence never the
// cost (max and Σ are both monotone).  Every canonical hypercontext
// installed by task j at step i equals U_j(i,e) for some horizon e ≥ i,
// so install branches range over the distinct interval unions starting
// at i.  At each step a frontier state expands, per task, to {keep the
// current hypercontext (valid when the incoming requirement fits)} ∪
// {install a candidate}; joint successors are deduplicated by their
// hypercontext vector keeping the cheapest, which preserves optimality
// because the future cost of a state depends only on the vector.
//
// Like the paper's own bound O(m·n⁴·l^{2m}), the state space is
// exponential in the number of tasks; the paper itself fell back to a
// genetic algorithm for its m=4 experiment.  SolveExact is exact within
// Options.MaxStates and degrades to a beam search beyond it
// (Stats.Truncated reports which happened).  The context is checked
// once per frontier state, so cancellation lands within one state
// expansion.
//
// When both uploads are task-sequential the cost decomposes per task
// and the problem is solved exactly in O(m·n²) by independent
// single-task DPs; SolveExact takes that fast path automatically.
func SolveExact(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		return SolveAligned(ctx, ins, opt)
	}
	if opt.HyperUpload == model.TaskSequential && opt.ReconfUpload == model.TaskSequential {
		return solveSequentialDecomposed(ctx, ins, opt)
	}

	maxStates := o.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	var stats solve.Stats

	// cand[j][i]: distinct values of U_j(i,e), e ≥ i, by growing horizon.
	cand := make([][][]bitset.Set, m)
	for j := 0; j < m; j++ {
		cand[j] = make([][]bitset.Set, n)
		for i := 0; i < n; i++ {
			acc := bitset.New(ins.Tasks[j].Local)
			var list []bitset.Set
			last := -1
			for e := i; e < n; e++ {
				acc.UnionWith(ins.Reqs[j][e])
				if c := acc.Count(); c != last {
					list = append(list, acc.Clone())
					last = c
				}
			}
			if o.MaxCandidates > 0 && len(list) > o.MaxCandidates {
				// Keep the shortest horizons plus the full-suffix union.
				stats.CandidatesPruned += int64(len(list) - o.MaxCandidates)
				trimmed := append([]bitset.Set(nil), list[:o.MaxCandidates-1]...)
				trimmed = append(trimmed, list[len(list)-1])
				list = trimmed
			}
			cand[j][i] = list
		}
	}

	root := &state{sets: make([]bitset.Set, m), cost: ins.W}
	for j := 0; j < m; j++ {
		root.sets[j] = bitset.New(ins.Tasks[j].Local)
	}
	frontier := []*state{root}
	truncated := false

	for i := 0; i < n; i++ {
		next := make(map[string]*state, len(frontier)*4)
		cur := &state{sets: make([]bitset.Set, m), hyper: make([]bool, m)}

		var expand func(st *state, j int)
		expand = func(st *state, j int) {
			if j == m {
				var hyperC model.Cost
				for t := 0; t < m; t++ {
					if cur.hyper[t] {
						hyperC = opt.HyperUpload.Combine(hyperC, ins.Tasks[t].V)
					}
				}
				var reconf model.Cost
				if opt.ReconfUpload == model.TaskParallel {
					reconf = model.Cost(ins.PublicGlobal)
				}
				for t := 0; t < m; t++ {
					reconf = opt.ReconfUpload.Combine(reconf, model.Cost(cur.sets[t].Count()))
				}
				if opt.ReconfUpload == model.TaskSequential {
					reconf += model.Cost(ins.PublicGlobal)
				}
				total := st.cost + hyperC + reconf
				k := cur.key()
				stats.StatesExpanded++
				if old, ok := next[k]; ok {
					stats.DedupHits++
					if total < old.cost {
						next[k] = &state{
							sets:  append([]bitset.Set(nil), cur.sets...),
							cost:  total,
							prev:  st,
							hyper: append([]bool(nil), cur.hyper...),
						}
					}
				} else {
					next[k] = &state{
						sets:  append([]bitset.Set(nil), cur.sets...),
						cost:  total,
						prev:  st,
						hyper: append([]bool(nil), cur.hyper...),
					}
				}
				return
			}
			keepOK := i > 0 && ins.Reqs[j][i].IsSubsetOf(st.sets[j])
			if keepOK {
				cur.sets[j] = st.sets[j]
				cur.hyper[j] = false
				expand(st, j+1)
			}
			for _, c := range cand[j][i] {
				// Installing a set identical to the kept one costs a
				// hyperreconfiguration for nothing.
				if keepOK && c.Equal(st.sets[j]) {
					continue
				}
				cur.sets[j] = c
				cur.hyper[j] = true
				expand(st, j+1)
			}
		}

		for _, st := range frontier {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
			expand(st, 0)
		}

		frontier = frontier[:0]
		for _, st := range next {
			frontier = append(frontier, st)
		}
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].cost < frontier[b].cost })
		if len(frontier) > maxStates {
			frontier = frontier[:maxStates]
			truncated = true
		}
		if len(frontier) == 0 {
			return nil, fmt.Errorf("mtswitch: state frontier emptied at step %d", i)
		}
	}

	best := frontier[0] // frontier is cost-sorted

	// Reconstruct hyperreconfiguration masks, canonicalize, reprice.
	// Canonical repricing can only improve on the DP value (the DP may
	// hold over-long-horizon candidates for the final segments).
	mask := make([][]bool, m)
	for j := range mask {
		mask[j] = make([]bool, n)
	}
	for st, i := best, n-1; i >= 0; st, i = st.prev, i-1 {
		for j := 0; j < m; j++ {
			mask[j][i] = st.hyper[j]
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost > best.cost {
		return nil, fmt.Errorf("mtswitch: canonical repricing %d above DP bound %d", cost, best.cost)
	}
	stats.Truncated = truncated || o.MaxCandidates > 0
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// solveSequentialDecomposed handles the fully task-sequential cost,
// which separates across tasks:
//
//	Σ_i ( Σ_j I_{j,i} v_j + Σ_j |h_{j,i}| + |h^pub| )
//	  = Σ_j single-task-cost_j(W = v_j) + n·|h^pub| + W.
//
// Each per-task subproblem is the polynomial single-task Switch DP.
func solveSequentialDecomposed(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (*Solution, error) {
	m, n := ins.NumTasks(), ins.Steps()
	var stats solve.Stats
	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		single, err := model.NewSwitchInstance(ins.Tasks[j].Local, ins.Tasks[j].V, ins.Reqs[j])
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		sol, err := phc.SolveSwitch(ctx, single)
		if err != nil {
			return nil, fmt.Errorf("mtswitch: task %q: %w", ins.Tasks[j].Name, err)
		}
		stats.Add(sol.Stats)
		mask[j] = make([]bool, n)
		for _, s := range sol.Seg.Starts {
			mask[j][s] = true
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}
