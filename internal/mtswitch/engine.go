package mtswitch

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// Engine is the stepped form of SolveExact: the same packed frontier
// DP, pruned layer and extraction pipeline, but driven one step at a
// time so the solve can be paused, checkpointed (checkpoint.go),
// extended with new demand rows and partially re-solved.  SolveExact
// is literally "new engine, run to the end, extract", so a one-shot
// Engine is bit-identical to the former monolithic solver.
//
// Two operating modes:
//
//   - One-shot (incremental=false): the internal packed engine comes
//     from the shared sync.Pool and no per-step frontier frames are
//     retained, so memory and allocation behavior match the old
//     SolveExact exactly.  Extend/Amend/Rewind are rejected.
//
//   - Incremental (incremental=true): the engine owns its buffers and,
//     while the pruned layer is off, retains a frame (frontier copy)
//     per completed step.  Extend appends demand rows and resumes from
//     the deepest frame that is still valid for the grown trace;
//     Amend replaces already-submitted rows and re-solves only the
//     suffix they invalidate.  Both are exact: the frontier entering
//     step t depends only on the requirements and install candidates
//     of steps < t, so comparing the rebuilt candidate catalog against
//     the old one per (task, step) identifies the first step whose DP
//     inputs changed, and everything before it is reusable verbatim.
//
// With pruning enabled the step axis itself is a preprocessing
// artifact (run-length compression) and the incumbent, bounds and
// dominance tables are trace-global, so Extend/Amend fall back to a
// full rebuild of the solve state — still correct, just without
// frontier reuse (LastResolveStart reports 0).  Sequential-decomposed
// and zero-step instances are not stepped at all; Solution delegates
// to the specialized solvers on the current trace.
//
// An Engine is not safe for concurrent use; callers serialize access
// (the service layer holds one mutex per session).
type Engine struct {
	opt model.CostOptions
	o   solve.Options

	incremental bool
	pooled      bool // internal engine borrowed from enginePool

	tasks []model.Task
	rows  [][]bitset.Set // task-major authoritative trace (owned clones when incremental)
	pub   int
	w     model.Cost
	ins   *model.MTSwitchInstance

	// Prepared solve state; zero until ensurePrepared.
	prepared bool
	red      *reduction
	px       *pruneContext
	incCost  model.Cost
	incMask  [][]bool
	target   *model.MTSwitchInstance
	e        *engine

	// frames[i] is a copy of the frontier entering step frameBase+i
	// (incremental mode, pruning off).  frameBase is nonzero only on
	// engines resumed from a checkpoint, which start with a single
	// frame at the restored step.
	frames    []frame
	frameBase int

	// emptied records that the pruned layer cut every successor
	// (errFrontierEmptied): the warm-start incumbent is the answer.
	emptied bool

	lastResolveStart int
	baseExpanded     int64

	sol    *Solution
	closed bool
}

// frame is one retained frontier: the packed state slab and costs
// entering a step.
type frame struct {
	count int
	slab  []uint64
	costs []model.Cost
}

// NewEngine builds a stepped engine over the instance.  With
// incremental=false the engine is a one-shot stand-in for SolveExact
// (Extend/Amend/Rewind are rejected); with incremental=true it clones
// the requirement rows so the trace can grow independently of the
// caller's instance, and retains per-step frontier frames for suffix
// re-solves while pruning is off.
func NewEngine(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options, incremental bool) (*Engine, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	en := &Engine{opt: opt, o: o, incremental: incremental, pub: ins.PublicGlobal, w: ins.W}
	if !incremental {
		en.tasks = ins.Tasks
		en.rows = ins.Reqs
		en.ins = ins
		return en, nil
	}
	en.tasks = append([]model.Task(nil), ins.Tasks...)
	en.rows = make([][]bitset.Set, len(ins.Reqs))
	for j, row := range ins.Reqs {
		cl := make([]bitset.Set, len(row))
		for i, r := range row {
			cl[i] = r.Clone()
		}
		en.rows[j] = cl
	}
	if err := en.rebuildInstance(); err != nil {
		return nil, err
	}
	return en, nil
}

// rebuildInstance revalidates the authoritative rows into a fresh
// instance with its own row headers, so later in-place growth of
// en.rows never changes an instance already handed to the DP.
func (en *Engine) rebuildInstance() error {
	reqs := make([][]bitset.Set, len(en.rows))
	for j := range en.rows {
		reqs[j] = en.rows[j]
	}
	ins, err := model.NewMTSwitchInstance(en.tasks, reqs)
	if err != nil {
		return err
	}
	ins.PublicGlobal = en.pub
	ins.W = en.w
	en.ins = ins
	return nil
}

// Steps reports the current trace length n.
func (en *Engine) Steps() int { return en.ins.Steps() }

// bothSeq reports the fully task-sequential cost, which decomposes per
// task and is never stepped.
func (en *Engine) bothSeq() bool {
	return en.opt.HyperUpload == model.TaskSequential && en.opt.ReconfUpload == model.TaskSequential
}

// canStep reports whether the packed DP (and hence stepping,
// checkpointing and frame reuse) applies to the current trace.
func (en *Engine) canStep() bool { return !en.bothSeq() && en.ins.Steps() > 0 }

// keepFrames reports whether per-step frontier frames are retained.
func (en *Engine) keepFrames() bool {
	return en.incremental && en.e != nil && !en.e.pruneOn
}

// ensurePrepared sets up the full solve pipeline for the current
// trace: the pruned layer (preprocessing, warm start), the internal
// packed engine, the candidate catalog and the root frontier.
func (en *Engine) ensurePrepared(ctx context.Context) error {
	if en.prepared {
		return nil
	}
	en.red, en.px, en.incCost, en.incMask = nil, nil, 0, nil
	target := en.ins
	if !en.o.DisablePruning {
		red := preprocess(en.ins)
		px := &pruneContext{}
		if red != nil {
			target = red.ins
			px.mult = red.mult
			px.weights = red.weights
		}
		incCost, incMask, err := warmStart(ctx, en.ins, en.opt)
		if err != nil {
			return err
		}
		px.incumbent = incCost
		en.red, en.px, en.incCost, en.incMask = red, px, incCost, incMask
		// The warm start is a valid full-schedule cost: seed the shared
		// portfolio board (no-op outside a race).
		solve.IncumbentFrom(ctx).Publish(incCost)
	}
	en.target = target
	if en.e == nil {
		if en.incremental {
			en.e = &engine{}
		} else {
			en.e = getEngine()
			en.pooled = true
		}
	} else {
		en.e.releasePool()
	}
	if err := en.e.beginSolve(ctx, target, en.opt, en.o, en.px); err != nil {
		en.e.releasePool()
		return err
	}
	en.frames = en.frames[:0]
	en.frameBase = 0
	en.emptied = false
	en.sol = nil
	en.lastResolveStart = 0
	en.baseExpanded = 0
	en.prepared = true
	if en.keepFrames() {
		en.captureFrame()
	}
	return nil
}

// captureFrame copies the current frontier as the frame entering step
// e.step.
func (en *Engine) captureFrame() {
	e := en.e
	sw := e.lay.setWords
	en.frames = append(en.frames, frame{
		count: e.count,
		slab:  append([]uint64(nil), e.slab[:e.count*sw]...),
		costs: append([]model.Cost(nil), e.costs[:e.count]...),
	})
}

// restoreFrame rewinds the internal engine to the frontier entering
// step b (which must have a retained frame).
func (en *Engine) restoreFrame(b int) {
	e := en.e
	f := en.frames[b-en.frameBase]
	sw := e.lay.setWords
	e.slab = growWords(e.slab, f.count*sw)
	copy(e.slab, f.slab)
	if cap(e.costs) < f.count {
		e.costs = make([]model.Cost, f.count)
	}
	e.costs = e.costs[:f.count]
	copy(e.costs, f.costs)
	e.count = f.count
	e.step = b
	e.gens = e.gens[:b]
	en.frames = en.frames[:b-en.frameBase+1]
	en.emptied = false
}

// reset discards all prepared solve state; the next Solution/Advance
// rebuilds it from the authoritative trace.
func (en *Engine) reset() {
	if en.e != nil {
		en.e.releasePool()
	}
	en.prepared = false
	en.frames = en.frames[:0]
	en.frameBase = 0
	en.emptied = false
	en.sol = nil
	en.lastResolveStart = 0
	en.baseExpanded = 0
	en.red, en.px, en.incMask, en.incCost = nil, nil, nil, 0
	en.target = nil
}

// Advance steps the DP forward by at most maxSteps steps (maxSteps <=
// 0 means run to completion) and reports whether the solve has reached
// the end of the current trace.  Instances the packed DP does not
// apply to (zero steps, fully task-sequential cost) are solved whole
// by Solution; Advance reports them done immediately.
func (en *Engine) Advance(ctx context.Context, maxSteps int) (bool, error) {
	if en.closed {
		return false, fmt.Errorf("mtswitch: engine is closed")
	}
	if err := solve.Checkpoint(ctx); err != nil {
		return false, err
	}
	if !en.canStep() {
		return true, nil
	}
	if err := en.ensurePrepared(ctx); err != nil {
		return false, err
	}
	if en.emptied {
		return true, nil
	}
	n := en.target.Steps()
	for i := 0; (maxSteps <= 0 || i < maxSteps) && en.e.step < n; i++ {
		if err := en.e.stepOnce(ctx); err != nil {
			if err == errFrontierEmptied {
				en.emptied = true
				return true, nil
			}
			return false, err
		}
		if en.keepFrames() {
			en.captureFrame()
		}
	}
	return en.e.step >= n || en.emptied, nil
}

// Solution runs the solve to completion (if it is not already there)
// and extracts the schedule, replicating SolveExact's pipeline: mask
// reconstruction, reduction expansion, canonicalization, repricing and
// the incumbent fallback.  The result is cached until the trace
// changes.
func (en *Engine) Solution(ctx context.Context) (*Solution, error) {
	if en.closed {
		return nil, fmt.Errorf("mtswitch: engine is closed")
	}
	if en.sol != nil {
		return en.sol, nil
	}
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if en.ins.Steps() == 0 {
		sol, err := SolveAligned(ctx, en.ins, en.opt)
		if err != nil {
			return nil, err
		}
		en.sol = sol
		return sol, nil
	}
	if en.bothSeq() {
		sol, err := solveSequentialDecomposed(ctx, en.ins, en.opt)
		if err != nil {
			return nil, err
		}
		en.sol = sol
		return sol, nil
	}
	if _, err := en.Advance(ctx, 0); err != nil {
		return nil, err
	}
	sol, err := en.extract()
	if err != nil {
		return nil, err
	}
	en.sol = sol
	return sol, nil
}

// extract converts the completed DP into a Solution, mirroring the
// tail of the former monolithic SolveExact byte for byte.
func (en *Engine) extract() (*Solution, error) {
	e := en.e
	if en.emptied {
		// A beam/candidate cap dropped every state at least as good as
		// the incumbent; the incumbent itself is the answer (an upper
		// bound, like any truncated result).
		stats := e.stats
		stats.StatesPruned = stats.DominanceHits + stats.BoundCutoffs
		if en.red != nil {
			stats.PreprocessReduction = en.red.cells
		}
		stats.Truncated = true
		return incumbentSolution(en.ins, en.opt, en.incMask, stats)
	}
	mask, dpCost := e.finishMask(en.o)
	stats := e.stats
	if en.red != nil {
		stats.PreprocessReduction = en.red.cells
		mask = en.red.expandMask(mask)
	}

	// Canonicalize and reprice.  Canonical repricing can only improve on
	// the DP value (the DP may hold over-long-horizon candidates for the
	// final segments).
	sched, err := en.ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := en.ins.Cost(sched, en.opt)
	if err != nil {
		return nil, err
	}
	if cost > dpCost {
		return nil, fmt.Errorf("mtswitch: canonical repricing %d above DP bound %d", cost, dpCost)
	}
	if en.px != nil && cost > en.incCost {
		// Only possible on a truncated run — an untruncated pruned DP
		// always retains a path at most as expensive as the incumbent.
		stats.Truncated = true
		return incumbentSolution(en.ins, en.opt, en.incMask, stats)
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// Stats returns the statistics the stepped DP has accumulated so far
// — partial until the solve completes.  Portfolio races use it to
// harvest the work a cancelled contender did before losing.
func (en *Engine) Stats() solve.Stats {
	if en.e == nil {
		return solve.Stats{}
	}
	s := en.e.stats
	s.StatesPruned = s.DominanceHits + s.BoundCutoffs
	if en.red != nil {
		s.PreprocessReduction = en.red.cells
	}
	return s
}

// validateRows checks a step-major batch of demand rows against the
// engine's task shapes.
func (en *Engine) validateRows(steps [][]bitset.Set) error {
	m := len(en.tasks)
	for i, row := range steps {
		if len(row) != m {
			return fmt.Errorf("mtswitch: step row %d has %d tasks, want %d", i, len(row), m)
		}
		for j, r := range row {
			if r.Universe() != en.tasks[j].Local {
				return fmt.Errorf("mtswitch: step row %d task %q requirement over universe %d, want %d",
					i, en.tasks[j].Name, r.Universe(), en.tasks[j].Local)
			}
		}
	}
	return nil
}

// Extend appends demand rows (step-major: steps[i][j] is task j's
// requirement at appended step i) to the trace and arranges for the
// solve to continue from the deepest reusable frontier.
func (en *Engine) Extend(ctx context.Context, steps [][]bitset.Set) error {
	if en.closed {
		return fmt.Errorf("mtswitch: engine is closed")
	}
	if !en.incremental {
		return fmt.Errorf("mtswitch: one-shot engine cannot be extended")
	}
	if err := solve.Checkpoint(ctx); err != nil {
		return err
	}
	if err := en.validateRows(steps); err != nil {
		return err
	}
	if len(steps) == 0 {
		return nil
	}
	oldN := en.ins.Steps()
	for i := range steps {
		for j := range en.rows {
			en.rows[j] = append(en.rows[j], steps[i][j].Clone())
		}
	}
	if err := en.rebuildInstance(); err != nil {
		return err
	}
	en.sol = nil
	return en.reconcile(ctx, oldN)
}

// Amend replaces the already-submitted rows at steps at..at+len-1
// (step-major, like Extend) and arranges for the suffix they
// invalidate to be re-solved.
func (en *Engine) Amend(ctx context.Context, at int, steps [][]bitset.Set) error {
	if en.closed {
		return fmt.Errorf("mtswitch: engine is closed")
	}
	if !en.incremental {
		return fmt.Errorf("mtswitch: one-shot engine cannot be amended")
	}
	if err := solve.Checkpoint(ctx); err != nil {
		return err
	}
	if err := en.validateRows(steps); err != nil {
		return err
	}
	if at < 0 || at+len(steps) > en.ins.Steps() {
		return fmt.Errorf("mtswitch: amend window [%d,%d) outside trace of %d steps", at, at+len(steps), en.ins.Steps())
	}
	if len(steps) == 0 {
		return nil
	}
	for i := range steps {
		for j := range en.rows {
			en.rows[j][at+i] = steps[i][j].Clone()
		}
	}
	if err := en.rebuildInstance(); err != nil {
		return err
	}
	en.sol = nil
	return en.reconcile(ctx, at)
}

// Rewind discards the solved suffix from the given step onward, so the
// next Advance/Solution re-runs it.  Steps not yet reached are a
// no-op; without retained frames (pruning on, or a checkpoint-resumed
// engine rewound past its restore point) the whole solve state is
// rebuilt instead.
func (en *Engine) Rewind(step int) error {
	if en.closed {
		return fmt.Errorf("mtswitch: engine is closed")
	}
	if !en.incremental {
		return fmt.Errorf("mtswitch: one-shot engine cannot be rewound")
	}
	if step < 0 || step > en.ins.Steps() {
		return fmt.Errorf("mtswitch: rewind to step %d outside trace of %d steps", step, en.ins.Steps())
	}
	en.sol = nil
	if !en.prepared {
		return nil
	}
	if !en.keepFrames() || step < en.frameBase {
		en.reset()
		return nil
	}
	if step >= en.e.step {
		return nil
	}
	en.restoreFrame(step)
	en.lastResolveStart = step
	en.baseExpanded = en.e.stats.StatesExpanded
	return nil
}

// reconcile brings a prepared solve in line with the mutated trace.
// changedFrom is the smallest step whose requirement row changed
// (Steps() before the append for Extend, the amend offset for Amend).
// While frames are retained (pruning off) the rebuilt candidate
// catalog is compared against the old one — candidates at early steps
// reach into the future through their horizon unions, so an appended
// row can invalidate steps long before changedFrom — and the solve
// resumes from the first step whose DP inputs differ.  Otherwise the
// prepared state is discarded wholesale.
func (en *Engine) reconcile(ctx context.Context, changedFrom int) error {
	if !en.prepared {
		return nil
	}
	if !en.keepFrames() {
		en.reset()
		return nil
	}
	e := en.e
	oldCands := e.cands
	e.ins = en.ins
	en.target = en.ins

	// Re-pack the requirement rows for the grown/amended trace.
	m, n := len(en.tasks), en.ins.Steps()
	e.reqs = e.reqs[:0]
	for j := 0; j < m; j++ {
		tw := e.lay.taskWords[j]
		flat := make([]uint64, n*tw)
		for i := 0; i < n; i++ {
			copy(flat[i*tw:(i+1)*tw], en.ins.Reqs[j][i].Words())
		}
		e.reqs = append(e.reqs, flat)
	}
	if err := e.buildCandidates(ctx, en.o); err != nil {
		en.reset()
		return err
	}

	// The frontier entering step t depends only on requirements and
	// candidates of steps < t, so the first (task, step) whose FINAL
	// candidate list changed (after the MaxCandidates and byte-budget
	// trims, which the fresh build reapplies deterministically) bounds
	// how deep the old run remains valid.
	b := changedFrom
scan:
	for t := 0; t < changedFrom; t++ {
		for j := 0; j < m; j++ {
			if !candsEqual(&oldCands[j][t], &e.cands[j][t]) {
				b = t
				break scan
			}
		}
	}

	if b < en.frameBase {
		// A checkpoint-resumed engine has no frames before its restore
		// point; rebuild from scratch.
		en.reset()
		return nil
	}
	if b < e.step {
		en.restoreFrame(b)
		en.lastResolveStart = b
	} else {
		// The solve never reached the first invalidated step; it simply
		// continues over the new inputs.
		en.lastResolveStart = e.step
	}
	en.emptied = false
	en.baseExpanded = e.stats.StatesExpanded
	return nil
}

// candsEqual compares two final candidate lists of one (task, step).
func candsEqual(a, b *packedCands) bool {
	if a.k != b.k || len(a.words) != len(b.words) {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	return true
}

// LastResolveStart reports the step index the most recent
// Extend/Amend/Rewind resumed solving from (0 after a full rebuild).
// The re-solved suffix of the current trace is Steps() −
// LastResolveStart.
func (en *Engine) LastResolveStart() int { return en.lastResolveStart }

// ResolveExpanded reports how many DP states the current resolve
// window has expanded — the incremental cost of the latest
// Extend/Amend, comparable against a from-scratch solve's
// Stats.StatesExpanded.
func (en *Engine) ResolveExpanded() int64 {
	if en.e == nil {
		return 0
	}
	return en.e.stats.StatesExpanded - en.baseExpanded
}

// SizeBytes estimates the engine's retained memory: the packed
// frontier, the back-pointer generations and the per-step frames.
// The service layer's session eviction budget is denominated in it.
func (en *Engine) SizeBytes() int64 {
	var total int64
	for j := range en.rows {
		if len(en.rows[j]) > 0 {
			total += int64(len(en.rows[j])) * int64(bitset.WordsFor(en.tasks[j].Local)*8+16)
		}
	}
	if en.e != nil {
		total += int64(cap(en.e.slab)+cap(en.e.tmpSlab))*8 + int64(cap(en.e.costs))*8
		for _, g := range en.e.gens {
			total += int64(len(g.prev))*4 + int64(len(g.hyper))*8
		}
	}
	for _, f := range en.frames {
		total += int64(cap(f.slab))*8 + int64(cap(f.costs))*8 + 16
	}
	return total
}

// Close releases the engine's worker pool and, for one-shot engines,
// returns the internal packed engine to the shared pool.  The Engine
// is unusable afterwards.
func (en *Engine) Close() {
	if en.closed {
		return
	}
	en.closed = true
	if en.e != nil {
		en.e.releasePool()
		if en.pooled {
			putEngine(en.e)
		}
		en.e = nil
	}
	en.frames = nil
	en.sol = nil
}
