package mtswitch

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Instance preprocessing for the pruned search layer (DESIGN.md §9.3).
// Two structure-exploiting reductions shrink the DP before it starts:
//
//   - Step run-length compression: consecutive steps whose requirements
//     are identical for EVERY task collapse into one step carrying a
//     multiplicity.  Some optimal schedule installs only at run starts
//     (an install strictly inside a run can always be moved onto an
//     adjacent install step or run boundary without increasing the
//     cost), so the DP over the collapsed steps — with per-step reconf
//     terms multiplied by the run length and hyper terms paid once —
//     has the same optimum.
//
//   - Duplicate-column grouping: two switches of one task that appear
//     in exactly the same set of steps are interchangeable; canonical
//     hypercontexts (unions of requirements) always contain either all
//     or none of such a group.  The group becomes one reduced column
//     whose weight (the member count) prices every popcount, and
//     switches appearing in no requirement are dropped entirely.
//
// Both reductions are exact for every upload-mode combination; the
// engine consumes them through pruneContext.mult and .weights.

// reduction is the outcome of preprocessing one instance.  A nil
// *reduction means the instance is structurally irreducible and the DP
// should run on the original form.
type reduction struct {
	// ins is the reduced instance the DP runs on.
	ins *model.MTSwitchInstance
	// weights[j][c] is how many original columns reduced column c of
	// task j stands for; a nil row means task j kept its original
	// universe (all weights 1).
	weights [][]model.Cost
	// mult[t] is how many original steps reduced step t stands for;
	// nil when no steps collapsed.
	mult []model.Cost
	// runStart[t] is the original index of reduced step t's first step.
	runStart []int
	// origSteps is the original step count n.
	origSteps int
	// cells is the number of requirement-matrix cells removed,
	// Σ_j (l_j·n − l'_j·n') — reported as Stats.PreprocessReduction.
	cells int64
}

// preprocess reduces an instance.  It returns nil when nothing can be
// collapsed (the caller then solves the original instance directly).
func preprocess(ins *model.MTSwitchInstance) *reduction {
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		return nil
	}

	// Step run-length compression: a new run starts wherever any task's
	// requirement differs from the previous step's.
	runStart := make([]int, 0, n)
	runStart = append(runStart, 0)
	for i := 1; i < n; i++ {
		for j := 0; j < m; j++ {
			if !ins.Reqs[j][i].Equal(ins.Reqs[j][i-1]) {
				runStart = append(runStart, i)
				break
			}
		}
	}
	nr := len(runStart)

	// Duplicate-column grouping per task, over the collapsed steps
	// (runs are requirement-constant, so the signature over run starts
	// is the signature over all steps).
	tasks := make([]model.Task, m)
	reqs := make([][]bitset.Set, m)
	weights := make([][]model.Cost, m)
	grouped := false
	var cells int64
	sigLen := (nr + 7) / 8
	for j := 0; j < m; j++ {
		l := ins.Tasks[j].Local
		groupOf := make([]int, l)
		index := make(map[string]int)
		var wts []model.Cost
		buf := make([]byte, sigLen)
		for b := 0; b < l; b++ {
			for i := range buf {
				buf[i] = 0
			}
			used := false
			for t := 0; t < nr; t++ {
				if ins.Reqs[j][runStart[t]].Contains(b) {
					buf[t/8] |= 1 << (t % 8)
					used = true
				}
			}
			if !used {
				groupOf[b] = -1
				continue
			}
			key := string(buf)
			g, ok := index[key]
			if !ok {
				g = len(wts)
				index[key] = g
				wts = append(wts, 0)
			}
			groupOf[b] = g
			wts[g]++
		}
		lr := len(wts)
		tasks[j] = model.Task{Name: ins.Tasks[j].Name, Local: lr, V: ins.Tasks[j].V}
		rr := make([]bitset.Set, nr)
		for t := 0; t < nr; t++ {
			s := bitset.New(lr)
			ins.Reqs[j][runStart[t]].ForEach(func(b int) {
				s.Add(groupOf[b])
			})
			rr[t] = s
		}
		reqs[j] = rr
		unweighted := lr == l
		if unweighted {
			for _, w := range wts {
				if w != 1 {
					unweighted = false
					break
				}
			}
		}
		if unweighted {
			weights[j] = nil
		} else {
			weights[j] = wts
			grouped = true
		}
		cells += int64(l)*int64(n) - int64(lr)*int64(nr)
	}

	if nr == n && !grouped {
		return nil
	}
	red, err := model.NewMTSwitchInstance(tasks, reqs)
	if err != nil {
		// Cannot happen for a valid input instance; fall back to the
		// original form rather than fail the solve.
		return nil
	}
	red.PublicGlobal = ins.PublicGlobal
	red.W = ins.W

	r := &reduction{ins: red, weights: weights, runStart: runStart, origSteps: n, cells: cells}
	if nr != n {
		r.mult = make([]model.Cost, nr)
		for t := 0; t < nr; t++ {
			end := n
			if t+1 < nr {
				end = runStart[t+1]
			}
			r.mult[t] = model.Cost(end - runStart[t])
		}
	}
	if !grouped {
		r.weights = nil
	}
	return r
}

// expandMask maps a hyperreconfiguration mask over the reduced steps
// back to the original step axis: an install at reduced step t lands on
// the first step of its run.
func (r *reduction) expandMask(mask [][]bool) [][]bool {
	out := make([][]bool, len(mask))
	for j, row := range mask {
		full := make([]bool, r.origSteps)
		for t, v := range row {
			if v {
				full[r.runStart[t]] = true
			}
		}
		out[j] = full
	}
	return out
}

// taskWeights returns the column weights of task j (nil = all ones).
func (r *reduction) taskWeights(j int) []model.Cost {
	if r == nil || r.weights == nil {
		return nil
	}
	return r.weights[j]
}

// CanonicalForm serializes the structural content of an instance in a
// form invariant under task renaming, task reordering, the placement of
// duplicate switch columns and the presence of never-required columns.
// Two instances with equal canonical forms (and equal cost options)
// have the same optimal cost, and any valid schedule of one maps to a
// valid, equal-cost schedule of the other by permuting task rows —
// which is how the hyperd result cache shares entries between
// structurally identical requests (see internal/service).
//
// The returned perm is the task permutation behind the form: perm[c]
// is the index in ins.Tasks of the task serialized at canonical
// position c (ties between identical tasks resolve by original index).
func CanonicalForm(ins *model.MTSwitchInstance) ([]byte, []int) {
	m, n := ins.NumTasks(), ins.Steps()
	blobs := make([][]byte, m)
	for j := 0; j < m; j++ {
		blobs[j] = taskFingerprint(ins, j)
	}
	perm := make([]int, m)
	for c := range perm {
		perm[c] = c
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return bytes.Compare(blobs[perm[a]], blobs[perm[b]]) < 0
	})
	var out bytes.Buffer
	fmt.Fprintf(&out, "mtcanon\x00%d\x00%d\x00%d\x00%d\x00", m, n, ins.PublicGlobal, ins.W)
	for _, j := range perm {
		out.Write(blobs[j])
	}
	return out.Bytes(), perm
}

// taskFingerprint serializes one task as its cost v_j plus the sorted
// multiset of (column signature, multiplicity) groups, where a column's
// signature is its membership pattern across all steps.  Column order,
// unused columns and the task name do not enter the fingerprint.
func taskFingerprint(ins *model.MTSwitchInstance, j int) []byte {
	n := ins.Steps()
	sigLen := (n + 7) / 8
	type group struct {
		sig    string
		weight int64
	}
	index := make(map[string]int)
	var groups []group
	buf := make([]byte, sigLen)
	for b := 0; b < ins.Tasks[j].Local; b++ {
		for i := range buf {
			buf[i] = 0
		}
		used := false
		for t := 0; t < n; t++ {
			if ins.Reqs[j][t].Contains(b) {
				buf[t/8] |= 1 << (t % 8)
				used = true
			}
		}
		if !used {
			continue
		}
		key := string(buf)
		if g, ok := index[key]; ok {
			groups[g].weight++
		} else {
			index[key] = len(groups)
			groups = append(groups, group{sig: key, weight: 1})
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].sig < groups[b].sig })
	var out bytes.Buffer
	fmt.Fprintf(&out, "task\x00%d\x00%d\x00%d\x00", ins.Tasks[j].V, len(groups), sigLen)
	for _, g := range groups {
		fmt.Fprintf(&out, "%d\x00", g.weight)
		out.WriteString(g.sig)
	}
	return out.Bytes()
}
