package mtswitch

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// Solution is a solved multi-task schedule with its cost under the cost
// options it was produced for.  Stats.Truncated reports that the
// producing solver had to limit its search (beam cap or candidate cap
// hit), so Cost is an upper bound rather than a proven optimum.
type Solution struct {
	Schedule *model.MTSchedule
	Cost     model.Cost
	Stats    solve.Stats
}

const infCost = model.Cost(math.MaxInt64 / 4)

// SolveAligned finds the optimal schedule among those where every task
// hyperreconfigures at the same steps (a "global partial
// hyperreconfiguration" pattern).  With aligned breakpoints the problem
// collapses to the single-task segmentation DP:
//
//	D[e] = min_s D[s] + hyper(s) + reconf(s,e)·(e-s)
//
// where hyper(s) combines all tasks' v_j under the hyper upload mode
// and reconf(s,e) combines the per-task canonical union sizes (plus the
// public-global term) under the reconf upload mode.  O(n²·m) time.
//
// Aligned schedules are a strict subset of all schedules, so the result
// is an upper bound for SolveExact; the gap between the two is exactly
// the benefit of partial hyperreconfiguration (the paper's multi-task
// contribution).
func SolveAligned(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		sched, err := ins.CanonicalSchedule(make([][]bool, m))
		if err != nil {
			return nil, err
		}
		return &Solution{Schedule: sched, Cost: ins.W}, nil
	}

	// Combined hyperreconfiguration cost when all m tasks participate.
	var allHyper model.Cost
	for _, t := range ins.Tasks {
		allHyper = opt.HyperUpload.Combine(allHyper, t.V)
	}

	d := make([]model.Cost, n+1)
	parent := make([]int, n+1)
	for e := 1; e <= n; e++ {
		d[e] = infCost
	}

	var stats solve.Stats
	unions := make([]bitset.Set, m)
	for e := 1; e <= n; e++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		stats.StatesExpanded += int64(e)
		for j := range unions {
			unions[j] = bitset.New(ins.Tasks[j].Local)
		}
		for s := e - 1; s >= 0; s-- {
			var reconf model.Cost
			if opt.ReconfUpload == model.TaskParallel {
				reconf = model.Cost(ins.PublicGlobal)
			}
			for j := 0; j < m; j++ {
				unions[j].UnionWith(ins.Reqs[j][s])
				reconf = opt.ReconfUpload.Combine(reconf, model.Cost(unions[j].Count()))
			}
			if opt.ReconfUpload == model.TaskSequential {
				reconf += model.Cost(ins.PublicGlobal)
			}
			c := d[s] + allHyper + reconf*model.Cost(e-s)
			if c < d[e] {
				d[e] = c
				parent[e] = s
			}
		}
	}

	var starts []int
	for e := n; e > 0; e = parent[e] {
		starts = append(starts, parent[e])
	}
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}

	mask := make([][]bool, m)
	for j := 0; j < m; j++ {
		mask[j] = make([]bool, n)
		for _, s := range starts {
			mask[j][s] = true
		}
	}
	sched, err := ins.CanonicalSchedule(mask)
	if err != nil {
		return nil, err
	}
	cost, err := ins.Cost(sched, opt)
	if err != nil {
		return nil, err
	}
	if cost != d[n]+ins.W {
		return nil, fmt.Errorf("mtswitch: aligned DP cost %d disagrees with model cost %d", d[n]+ins.W, cost)
	}
	return &Solution{Schedule: sched, Cost: cost, Stats: stats}, nil
}

// LowerBound is an admissible bound on any schedule's cost under the
// given options: every step must pay at least the combined sizes of the
// tasks' own requirements (a hypercontext can never be smaller than the
// requirement it satisfies) plus the public-global term, and the
// mandatory initial hyperreconfigurations of step 0 must be paid.
func LowerBound(ins *model.MTSwitchInstance, opt model.CostOptions) model.Cost {
	if ins == nil || ins.Steps() == 0 {
		return 0
	}
	m, n := ins.NumTasks(), ins.Steps()
	total := ins.W
	var initHyper model.Cost
	for j := 0; j < m; j++ {
		initHyper = opt.HyperUpload.Combine(initHyper, ins.Tasks[j].V)
	}
	total += initHyper
	for i := 0; i < n; i++ {
		var reconf model.Cost
		if opt.ReconfUpload == model.TaskParallel {
			reconf = model.Cost(ins.PublicGlobal)
		}
		for j := 0; j < m; j++ {
			reconf = opt.ReconfUpload.Combine(reconf, model.Cost(ins.Reqs[j][i].Count()))
		}
		if opt.ReconfUpload == model.TaskSequential {
			reconf += model.Cost(ins.PublicGlobal)
		}
		total += reconf
	}
	return total
}

// BruteForce exhausts every joint hyperreconfiguration mask (step 0
// forced) with canonical hypercontexts — the reference optimum for
// tests.  The search space (2^(n-1))^m is capped at ~4 million.
func BruteForce(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	m, n := ins.NumTasks(), ins.Steps()
	if n == 0 {
		return SolveAligned(ctx, ins, opt)
	}
	bits := (n - 1) * m
	if bits > 22 {
		return nil, fmt.Errorf("mtswitch: brute force needs (n-1)·m ≤ 22, got %d", bits)
	}
	best := infCost
	var bestMask [][]bool
	mask := make([][]bool, m)
	for j := range mask {
		mask[j] = make([]bool, n)
		mask[j][0] = true
	}
	var stats solve.Stats
	for code := 0; code < 1<<uint(bits); code++ {
		if code&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		stats.Evaluations++
		v := code
		for j := 0; j < m; j++ {
			for i := 1; i < n; i++ {
				mask[j][i] = v&1 == 1
				v >>= 1
			}
		}
		sched, err := ins.CanonicalSchedule(mask)
		if err != nil {
			return nil, err
		}
		c, err := ins.Cost(sched, opt)
		if err != nil {
			return nil, err
		}
		if c < best {
			best = c
			bestMask = make([][]bool, m)
			for j := range mask {
				bestMask[j] = append([]bool(nil), mask[j]...)
			}
		}
	}
	sched, err := ins.CanonicalSchedule(bestMask)
	if err != nil {
		return nil, err
	}
	return &Solution{Schedule: sched, Cost: best, Stats: stats}, nil
}
