package mtswitch

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// PrivateGlobalInstance extends a fully synchronized MT-Switch instance
// with private global resources: G switches shared between tasks.  A
// global hyperreconfiguration (cost W, barrier-synchronized, all local
// hypercontexts and contexts invalidated afterwards) assigns disjoint
// portions of the private switches to the tasks; between two global
// hyperreconfigurations each task may make its assigned private
// switches available through local hyperreconfigurations exactly like
// additional local switches (h^priv_j ⊆ h_j), and the reconfiguration
// cost of a task is |h^loc_j| + |h^priv_j|.
type PrivateGlobalInstance struct {
	// Base holds the tasks and their local requirement sequences.
	Base *model.MTSwitchInstance
	// G is the number of private global switches.
	G int
	// PrivReqs[j][i] is task j's private-global requirement at step i,
	// a subset of {0..G-1}.
	PrivReqs [][]bitset.Set
	// W is the cost of one global hyperreconfiguration.  The paper's
	// typical special case is W = |X^loc| + |X^priv|.
	W model.Cost
}

// NewPrivateGlobalInstance validates shapes and universes.
func NewPrivateGlobalInstance(base *model.MTSwitchInstance, g int, privReqs [][]bitset.Set, w model.Cost) (*PrivateGlobalInstance, error) {
	if base == nil {
		return nil, fmt.Errorf("mtswitch: nil base instance")
	}
	if g < 0 {
		return nil, fmt.Errorf("mtswitch: negative private switch count")
	}
	if w <= 0 {
		return nil, fmt.Errorf("mtswitch: global hyperreconfiguration cost must be positive")
	}
	m, n := base.NumTasks(), base.Steps()
	if len(privReqs) != m {
		return nil, fmt.Errorf("mtswitch: %d private requirement rows for %d tasks", len(privReqs), m)
	}
	for j := 0; j < m; j++ {
		if len(privReqs[j]) != n {
			return nil, fmt.Errorf("mtswitch: task %q has %d private steps, want %d", base.Tasks[j].Name, len(privReqs[j]), n)
		}
		for i, r := range privReqs[j] {
			if r.Universe() != g {
				return nil, fmt.Errorf("mtswitch: task %q private requirement %d over universe %d, want %d", base.Tasks[j].Name, i, r.Universe(), g)
			}
		}
	}
	return &PrivateGlobalInstance{Base: base, G: g, PrivReqs: privReqs, W: w}, nil
}

// PGSolution is a solved private-global schedule: the steps at which
// global hyperreconfigurations happen (always including 0), the
// per-window local solutions over the extended (local + private)
// universes, and the total cost.
type PGSolution struct {
	// GlobalStarts are the steps immediately preceded by a global
	// hyperreconfiguration.
	GlobalStarts []int
	// Windows[k] is the schedule of window k over extended universes
	// (task j's switches are its Local ones followed by its private
	// union for that window).
	Windows []*Solution
	Cost    model.Cost
	// Stats aggregates the window solves; Stats.Truncated mirrors
	// Solution.Stats.Truncated across all selected windows.
	Stats solve.Stats
}

// SolvePrivateGlobal chooses global hyperreconfiguration windows by an
// outer O(n²) DP and prices each window with the given local solver
// configuration.  Within a window [a,b) task j's private assignment is
// the union of its private requirements over the window (the smallest
// feasible assignment); the window is feasible only if those unions are
// pairwise disjoint — otherwise two tasks would own the same private
// switch simultaneously.  The window's scheduling problem is the plain
// fully synchronized MT-Switch problem with each task's universe
// extended by its private assignment, solved by SolveExact.
//
// If even single-step windows are infeasible at some step (two tasks
// demand the same private switch at the same time), no schedule exists
// and an error is returned.
func SolvePrivateGlobal(ctx context.Context, ins *PrivateGlobalInstance, opt model.CostOptions, o solve.Options) (*PGSolution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("mtswitch: nil instance")
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.Base.NumTasks(), ins.Base.Steps()
	if n == 0 {
		return &PGSolution{Cost: 0}, nil
	}

	// All O(n²) windows are independent, so the sweep fans out across
	// the shared solve.Pool: pool task w handles window rows a ≡ w (mod
	// workers); within a row, private unions extend incrementally as
	// the window end grows.  The outer sweep owns the parallelism, so
	// each inner SolveExact runs its packed frontier single-worker —
	// stacking both levels would oversubscribe the pool's cores.
	type windowResult struct {
		cost     model.Cost
		feasible bool
		sol      *Solution
	}
	window := make([][]windowResult, n+1) // window[a][b]
	pool := solve.NewPool(o.Workers)
	defer pool.Close()
	workers := pool.Workers()
	if workers > n {
		workers = n
	}
	innerOpts := o
	if workers > 1 {
		innerOpts.Workers = 1
	}
	var (
		errOnce  sync.Once
		sweepErr error
	)
	poolErr := pool.Do(workers, func(w int) {
		for a := w; a < n; a += workers {
			row := make([]windowResult, n+1)
			unions := make([]bitset.Set, m)
			for j := range unions {
				unions[j] = bitset.New(ins.G)
			}
			for b := a + 1; b <= n; b++ {
				// Extend private unions with step b-1 and check
				// pairwise disjointness of the assignments.
				for j := 0; j < m; j++ {
					unions[j].UnionWith(ins.PrivReqs[j][b-1])
				}
				feasible := true
				for j1 := 0; j1 < m && feasible; j1++ {
					for j2 := j1 + 1; j2 < m; j2++ {
						if !unions[j1].Intersect(unions[j2]).IsEmpty() {
							feasible = false
							break
						}
					}
				}
				if !feasible {
					continue
				}
				if err := solve.Checkpoint(ctx); err != nil {
					errOnce.Do(func() { sweepErr = err })
					return
				}
				sub, err := extendedWindowInstance(ins, a, b, unions)
				if err != nil {
					errOnce.Do(func() { sweepErr = err })
					return
				}
				sol, err := SolveExact(ctx, sub, opt, innerOpts)
				if err != nil {
					errOnce.Do(func() { sweepErr = err })
					return
				}
				row[b] = windowResult{cost: ins.W + sol.Cost, feasible: true, sol: sol}
			}
			window[a] = row
		}
	})
	if poolErr != nil {
		// A panic inside a window solve: the pool isolated it to this
		// sweep, surfaced as a typed *solve.PanicError.
		return nil, poolErr
	}
	if sweepErr != nil {
		return nil, sweepErr
	}

	// Outer DP over window boundaries.
	d := make([]model.Cost, n+1)
	parent := make([]int, n+1)
	for b := 1; b <= n; b++ {
		d[b] = infCost
		parent[b] = -1
		for a := 0; a < b; a++ {
			if !window[a][b].feasible || d[a] >= infCost {
				continue
			}
			if c := d[a] + window[a][b].cost; c < d[b] {
				d[b] = c
				parent[b] = a
			}
		}
	}
	if d[n] >= infCost {
		return nil, fmt.Errorf("mtswitch: no feasible global windowing (conflicting private requirements at some step)")
	}

	var starts []int
	for b := n; b > 0; b = parent[b] {
		starts = append(starts, parent[b])
	}
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}
	out := &PGSolution{GlobalStarts: starts, Cost: d[n]}
	for k, a := range starts {
		b := n
		if k+1 < len(starts) {
			b = starts[k+1]
		}
		out.Windows = append(out.Windows, window[a][b].sol)
		out.Stats.Add(window[a][b].sol.Stats)
	}
	return out, nil
}

// extendedWindowInstance builds the window's MT-Switch subproblem: task
// j's universe becomes Local + |assignment_j|, with private requirement
// bits remapped onto the extension.  The per-task local
// hyperreconfiguration cost follows the paper's typical special case
// v_j = |h_j| + |f_j^loc| = assignment size + local size.
func extendedWindowInstance(ins *PrivateGlobalInstance, a, b int, assign []bitset.Set) (*model.MTSwitchInstance, error) {
	m := ins.Base.NumTasks()
	tasks := make([]model.Task, m)
	reqRows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		members := assign[j].Members()
		remap := make(map[int]int, len(members))
		for idx, sw := range members {
			remap[sw] = ins.Base.Tasks[j].Local + idx
		}
		ext := ins.Base.Tasks[j].Local + len(members)
		tasks[j] = model.Task{
			Name:  ins.Base.Tasks[j].Name,
			Local: ext,
			V:     model.Cost(ins.Base.Tasks[j].Local + len(members)),
		}
		rows := make([]bitset.Set, 0, b-a)
		for i := a; i < b; i++ {
			s := bitset.New(ext)
			ins.Base.Reqs[j][i].ForEach(func(sw int) { s.Add(sw) })
			ins.PrivReqs[j][i].ForEach(func(sw int) { s.Add(remap[sw]) })
			rows = append(rows, s)
		}
		reqRows[j] = rows
	}
	return model.NewMTSwitchInstance(tasks, reqRows)
}
