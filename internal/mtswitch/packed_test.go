package mtswitch

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// agreementWorkers are the worker counts the parallel engine must be
// byte-identical across (the issue's Workers ∈ {1, 2, 8} matrix).
var agreementWorkers = []int{1, 2, 8}

// frontierOpts are the upload-mode combinations that exercise the
// frontier engine (fully task-sequential costs take the decomposed
// fast path instead and never reach it).
var frontierOpts = []model.CostOptions{
	{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel},
	{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskSequential},
	{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel},
}

func sameSchedule(t *testing.T, a, b *model.MTSchedule) bool {
	t.Helper()
	if len(a.Hyper) != len(b.Hyper) {
		return false
	}
	for j := range a.Hyper {
		for i := range a.Hyper[j] {
			if a.Hyper[j][i] != b.Hyper[j][i] {
				return false
			}
			if !a.Hctx[j][i].Equal(b.Hctx[j][i]) {
				return false
			}
		}
	}
	return true
}

// TestPackedMatchesReference drives the packed engine against the
// retained pointer-and-map reference implementation: identical cost and
// identical schedule for every worker count, on the fixed demonstration
// instance and a batch of random ones, both exact and beam-truncated.
func TestPackedMatchesReference(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	instances := []*model.MTSwitchInstance{phased(t)}
	for k := 0; k < 12; k++ {
		instances = append(instances, randomMT(r, 3, 5, 6))
	}
	// DisablePruning keeps the strict frontier-for-frontier comparison
	// with the reference meaningful (the pruned layer expands fewer
	// states by design; prune_test.go covers its agreement separately).
	budgets := []solve.Options{
		{DisablePruning: true},               // exact within DefaultMaxStates
		{DisablePruning: true, MaxStates: 3}, // aggressive beam truncation
		{DisablePruning: true, MaxStates: 50, MaxCandidates: 2},
	}
	for ii, ins := range instances {
		for _, opt := range frontierOpts {
			for _, base := range budgets {
				ref, err := SolveExactReference(ctx, ins, opt, base)
				if err != nil {
					t.Fatalf("instance %d: reference: %v", ii, err)
				}
				for _, workers := range agreementWorkers {
					o := base
					o.Workers = workers
					got, err := SolveExact(ctx, ins, opt, o)
					if err != nil {
						t.Fatalf("instance %d workers %d: packed: %v", ii, workers, err)
					}
					if got.Cost != ref.Cost {
						t.Fatalf("instance %d opt %+v budget %+v workers %d: packed cost %d, reference %d",
							ii, opt, base, workers, got.Cost, ref.Cost)
					}
					if !sameSchedule(t, got.Schedule, ref.Schedule) {
						t.Fatalf("instance %d opt %+v budget %+v workers %d: packed schedule differs from reference",
							ii, opt, base, workers)
					}
					if got.Stats.Truncated != ref.Stats.Truncated {
						t.Fatalf("instance %d workers %d: truncated %t vs reference %t",
							ii, workers, got.Stats.Truncated, ref.Stats.Truncated)
					}
					if got.Stats.StatesExpanded != ref.Stats.StatesExpanded {
						t.Fatalf("instance %d workers %d: expanded %d states, reference %d",
							ii, workers, got.Stats.StatesExpanded, ref.Stats.StatesExpanded)
					}
					if err := ins.Validate(got.Schedule); err != nil {
						t.Fatalf("instance %d workers %d: invalid schedule: %v", ii, workers, err)
					}
				}
			}
		}
	}
}

// TestPackedWorkerCountsAgree pins the determinism claim directly:
// every worker count yields the same schedule under heavy truncation,
// where any order-dependence in dedup or the beam cut would show.
func TestPackedWorkerCountsAgree(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(99))
	for k := 0; k < 8; k++ {
		ins := randomMT(r, 4, 6, 8)
		for _, opt := range frontierOpts {
			base, err := SolveExact(ctx, ins, opt, solve.Options{Workers: 1, MaxStates: 5, DisablePruning: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range agreementWorkers[1:] {
				got, err := SolveExact(ctx, ins, opt, solve.Options{Workers: workers, MaxStates: 5, DisablePruning: true})
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != base.Cost || !sameSchedule(t, got.Schedule, base.Schedule) {
					t.Fatalf("instance %d workers %d diverges from workers 1", k, workers)
				}
			}
		}
	}
}

// TestPackedZeroUniverseTask covers the degenerate stride: a task with
// no local switches contributes zero words to the packed vector.
func TestPackedZeroUniverseTask(t *testing.T) {
	tasks := []model.Task{
		{Name: "empty", Local: 0, V: 1},
		{Name: "real", Local: 3, V: 3},
	}
	rows := [][]bitset.Set{
		reqs(0, nil, nil, nil),
		reqs(3, []int{0}, []int{1}, []int{0, 2}),
	}
	ins := mustMT(t, tasks, rows)
	for _, workers := range agreementWorkers {
		got, err := SolveExact(context.Background(), ins, parallel, solve.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		ref, err := SolveExactReference(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != ref.Cost {
			t.Fatalf("workers %d: cost %d, reference %d", workers, got.Cost, ref.Cost)
		}
	}
}

// TestPackedStats checks the new counters are populated and consistent:
// expanded = unique + dedup hits summed over steps, and the peak
// frontier is at least the final frontier of some step.
func TestPackedStats(t *testing.T) {
	ins := phased(t)
	sol, err := SolveExact(context.Background(), ins, parallel, solve.Options{Workers: 2, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.StatesExpanded <= 0 {
		t.Fatalf("StatesExpanded = %d, want > 0", st.StatesExpanded)
	}
	if st.PeakFrontier <= 0 {
		t.Fatalf("PeakFrontier = %d, want > 0", st.PeakFrontier)
	}
	if st.DedupHits < 0 || st.DedupHits >= st.StatesExpanded {
		t.Fatalf("DedupHits = %d out of range [0, %d)", st.DedupHits, st.StatesExpanded)
	}
	ref, err := SolveExactReference(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.DedupHits != ref.Stats.DedupHits {
		t.Fatalf("DedupHits = %d, reference %d", st.DedupHits, ref.Stats.DedupHits)
	}
	if st.PeakFrontier != ref.Stats.PeakFrontier {
		t.Fatalf("PeakFrontier = %d, reference %d", st.PeakFrontier, ref.Stats.PeakFrontier)
	}
}

// TestStateTableCollision forces two distinct vectors onto one 64-bit
// hash and checks the table keeps them as separate entries via the
// full-vector compare, while true duplicates still merge cheapest-wins.
func TestStateTableCollision(t *testing.T) {
	lay := layout{m: 1, taskOff: []int{0}, taskWords: []int{1}, setWords: 1, hyperWords: 1}
	tbl := &stateTable{hashFn: func([]uint64) uint64 { return 0xdeadbeef }}
	tbl.configure(lay)

	a := []uint64{0b1010, 1} // set word + hyper word
	b := []uint64{0b0101, 1}
	if !tbl.insert(a, tbl.hashFn(a[:1]), 10, 0, 0) {
		t.Fatal("first vector not new")
	}
	if !tbl.insert(b, tbl.hashFn(b[:1]), 20, 0, 1) {
		t.Fatal("colliding distinct vector merged into the first entry")
	}
	if tbl.len() != 2 {
		t.Fatalf("table has %d entries, want 2", tbl.len())
	}

	// A true duplicate of a, cheaper: merges, updates cost and origin.
	a2 := []uint64{0b1010, 0}
	if tbl.insert(a2, tbl.hashFn(a2[:1]), 5, 1, 3) {
		t.Fatal("duplicate vector treated as new")
	}
	if tbl.len() != 2 {
		t.Fatalf("table has %d entries after dup, want 2", tbl.len())
	}
	if tbl.costs[0] != 5 || tbl.prevs[0] != 1 || tbl.seqs[0] != 3 {
		t.Fatalf("winner not recorded: cost=%d prev=%d seq=%d", tbl.costs[0], tbl.prevs[0], tbl.seqs[0])
	}
	if tbl.entry(0)[1] != 0 {
		t.Fatal("winner's hyper words not overwritten")
	}

	// An equally-cheap duplicate arriving from a later origin loses.
	if tbl.insert(a, tbl.hashFn(a[:1]), 5, 2, 0) {
		t.Fatal("duplicate vector treated as new")
	}
	if tbl.prevs[0] != 1 {
		t.Fatalf("tie broken toward later origin: prev=%d", tbl.prevs[0])
	}
}

// TestStateTableGrowKeepsEntries fills the table past its growth
// threshold under a constant hash — the worst case: one long probe
// chain that must survive the bucket rebuild.
func TestStateTableGrowKeepsEntries(t *testing.T) {
	lay := layout{m: 1, taskOff: []int{0}, taskWords: []int{2}, setWords: 2, hyperWords: 1}
	tbl := &stateTable{hashFn: func([]uint64) uint64 { return 7 }}
	tbl.configure(lay)
	const total = 200
	for i := 0; i < total; i++ {
		v := []uint64{uint64(i), uint64(i) << 32, 0}
		if !tbl.insert(v, tbl.hashFn(v[:2]), model.Cost(i), 0, int32(i)) {
			t.Fatalf("vector %d not new", i)
		}
	}
	if tbl.len() != total {
		t.Fatalf("table has %d entries, want %d", tbl.len(), total)
	}
	// Every vector must still be findable (insert reports a duplicate).
	for i := 0; i < total; i++ {
		v := []uint64{uint64(i), uint64(i) << 32, 0}
		if tbl.insert(v, tbl.hashFn(v[:2]), model.Cost(i), 0, int32(i)) {
			t.Fatalf("vector %d lost across growth", i)
		}
	}
}
