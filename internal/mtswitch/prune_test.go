package mtswitch

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
	"repro/internal/workload"
)

// withPG randomly decorates an instance with a public-global context
// size and a base cost, so the pruning bound's public-global terms are
// exercised alongside the zero-default path.
func withPG(r *rand.Rand, ins *model.MTSwitchInstance) *model.MTSwitchInstance {
	ins.PublicGlobal = r.Intn(3)
	ins.W = model.Cost(r.Intn(5))
	return ins
}

// TestPrunedMatchesReferenceCost is the exactness property test of the
// pruned layer: on unbudgeted runs the pruned engine's cost must equal
// SolveExactReference's optimum for every upload mode and worker count,
// and the returned schedule must be valid and priced at that cost.
func TestPrunedMatchesReferenceCost(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(41))
	instances := []*model.MTSwitchInstance{phased(t)}
	for k := 0; k < 16; k++ {
		instances = append(instances, withPG(r, randomMT(r, 3, 5, 7)))
	}
	for ii, ins := range instances {
		for _, opt := range frontierOpts {
			ref, err := SolveExactReference(ctx, ins, opt, solve.Options{})
			if err != nil {
				t.Fatalf("instance %d: reference: %v", ii, err)
			}
			for _, workers := range agreementWorkers {
				got, err := SolveExact(ctx, ins, opt, solve.Options{Workers: workers})
				if err != nil {
					t.Fatalf("instance %d workers %d: %v", ii, workers, err)
				}
				if got.Cost != ref.Cost {
					t.Fatalf("instance %d opt %+v workers %d: pruned cost %d, reference optimum %d",
						ii, opt, workers, got.Cost, ref.Cost)
				}
				if err := ins.Validate(got.Schedule); err != nil {
					t.Fatalf("instance %d workers %d: invalid schedule: %v", ii, workers, err)
				}
				st := got.Stats
				if st.StatesPruned != st.DominanceHits+st.BoundCutoffs {
					t.Fatalf("instance %d: StatesPruned %d != DominanceHits %d + BoundCutoffs %d",
						ii, st.StatesPruned, st.DominanceHits, st.BoundCutoffs)
				}
			}
		}
	}
}

// TestPrunedBudgetedDeterministic pins the determinism contract under
// pruning + beam truncation: every worker count returns bit-identical
// schedules, and the (possibly truncated) cost never beats the true
// optimum.
func TestPrunedBudgetedDeterministic(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(83))
	for k := 0; k < 8; k++ {
		ins := withPG(r, randomMT(r, 4, 6, 8))
		for _, opt := range frontierOpts {
			ref, err := SolveExactReference(ctx, ins, opt, solve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			base, err := SolveExact(ctx, ins, opt, solve.Options{Workers: 1, MaxStates: 4})
			if err != nil {
				t.Fatal(err)
			}
			if base.Cost < ref.Cost {
				t.Fatalf("instance %d: truncated pruned cost %d beats optimum %d", k, base.Cost, ref.Cost)
			}
			if err := ins.Validate(base.Schedule); err != nil {
				t.Fatalf("instance %d: invalid schedule: %v", k, err)
			}
			for _, workers := range agreementWorkers[1:] {
				got, err := SolveExact(ctx, ins, opt, solve.Options{Workers: workers, MaxStates: 4})
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != base.Cost || !sameSchedule(t, got.Schedule, base.Schedule) {
					t.Fatalf("instance %d workers %d diverges from workers 1 under pruned beam", k, workers)
				}
			}
		}
	}
}

// TestPrunedExpandsFewerStates is the headline perf property: on the
// structured phased instance the pruned engine must expand strictly
// fewer states than the exhaustive engine, and report the reduction in
// its counters.
func TestPrunedExpandsFewerStates(t *testing.T) {
	ctx := context.Background()
	ins := phased(t)
	plain, err := SolveExact(ctx, ins, parallel, solve.Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := SolveExact(ctx, ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Cost != plain.Cost {
		t.Fatalf("pruned cost %d != exhaustive cost %d", pruned.Cost, plain.Cost)
	}
	if pruned.Stats.StatesExpanded >= plain.Stats.StatesExpanded {
		t.Fatalf("pruned expanded %d states, exhaustive %d — no reduction",
			pruned.Stats.StatesExpanded, plain.Stats.StatesExpanded)
	}
	if pruned.Stats.StatesPruned == 0 {
		t.Fatal("StatesPruned = 0 on a structured instance")
	}
}

// TestStepDuplicatedRLEAgreement targets the run-length compression
// proof obligation directly: duplicating every step k times makes every
// instance maximally compressible, and the pruned (compressed) optimum
// must still equal the exhaustive optimum for every upload mode —
// including max-composed hyper uploads, where the exchange argument is
// subtlest.
func TestStepDuplicatedRLEAgreement(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(67))
	for k := 0; k < 12; k++ {
		base := randomMT(r, 3, 5, 4)
		dup := duplicateSteps(t, base, 2+r.Intn(2))
		withPG(r, dup)
		for _, opt := range frontierOpts {
			plain, err := SolveExact(ctx, dup, opt, solve.Options{DisablePruning: true})
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := SolveExact(ctx, dup, opt, solve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if pruned.Cost != plain.Cost {
				t.Fatalf("instance %d opt %+v: pruned cost %d != exhaustive %d on step-duplicated instance",
					k, opt, pruned.Cost, plain.Cost)
			}
			if pruned.Stats.PreprocessReduction <= 0 {
				t.Fatalf("instance %d: PreprocessReduction = %d on a fully duplicated instance",
					k, pruned.Stats.PreprocessReduction)
			}
			if err := dup.Validate(pruned.Schedule); err != nil {
				t.Fatalf("instance %d: invalid schedule: %v", k, err)
			}
		}
	}
}

// duplicateSteps repeats every step of ins `extra`+1 times.
func duplicateSteps(t *testing.T, ins *model.MTSwitchInstance, times int) *model.MTSwitchInstance {
	t.Helper()
	m, n := ins.NumTasks(), ins.Steps()
	rows := make([][]bitset.Set, m)
	for j := 0; j < m; j++ {
		rows[j] = make([]bitset.Set, 0, n*times)
		for i := 0; i < n; i++ {
			for k := 0; k < times; k++ {
				rows[j] = append(rows[j], ins.Reqs[j][i].Clone())
			}
		}
	}
	tasks := make([]model.Task, m)
	copy(tasks, ins.Tasks)
	return mustMT(t, tasks, rows)
}

// denseStress is the workload/budget pair behind EXPERIMENTS.md E17: a
// block-structured dense instance whose unpruned peak frontier (~3700
// packed states) breaches a 128 KiB arena budget (~2000 states), while
// the pruned frontier (<1000 states) fits with room to spare.
func denseStress(t *testing.T) *model.MTSwitchInstance {
	t.Helper()
	ins, err := workload.Dense(workload.Config{Tasks: 4, Steps: 48, Switches: 24, Density: 0.5, MeanPhase: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

const denseStressBudget = 128 << 10

// TestBudgetDroppedReported checks the new degradation counter: a run
// forced into a beam by MaxFrontierBytes must report how many states
// the budget discarded.
func TestBudgetDroppedReported(t *testing.T) {
	sol, err := SolveExact(context.Background(), denseStress(t), parallel,
		solve.Options{DisablePruning: true, MaxFrontierBytes: denseStressBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Degraded {
		t.Fatal("budget did not force degradation on the dense stress workload")
	}
	if sol.Stats.BudgetDropped <= 0 {
		t.Fatalf("Degraded run reports BudgetDropped = %d, want > 0", sol.Stats.BudgetDropped)
	}
}

// TestDenseBudgetNowExact pins the issue's acceptance scenario: a dense
// workload whose unpruned frontier breaches a byte budget (degrading to
// a beam) is solved exactly by the pruned engine inside the very same
// budget.
func TestDenseBudgetNowExact(t *testing.T) {
	ins := denseStress(t)
	const budget = denseStressBudget
	ctx := context.Background()
	plain, err := SolveExact(ctx, ins, parallel,
		solve.Options{DisablePruning: true, MaxFrontierBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Stats.Degraded {
		t.Fatalf("unpruned run not degraded under %d-byte budget; workload no longer stresses the budget", budget)
	}
	pruned, err := SolveExact(ctx, ins, parallel, solve.Options{MaxFrontierBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.Degraded || pruned.Stats.Truncated {
		t.Fatalf("pruned run still degraded (Degraded=%t Truncated=%t) under the same budget",
			pruned.Stats.Degraded, pruned.Stats.Truncated)
	}
	exact, err := SolveExact(ctx, ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Cost != exact.Cost {
		t.Fatalf("pruned budgeted cost %d != unbudgeted optimum %d", pruned.Cost, exact.Cost)
	}
	if plain.Cost < pruned.Cost {
		t.Fatalf("degraded beam cost %d beats pruned exact cost %d", plain.Cost, pruned.Cost)
	}
}

// FuzzPruningAgreement feeds arbitrary small instances through both
// engines and requires identical optimal costs — the soundness net for
// every interaction of preprocessing, dominance and bounds.
func FuzzPruningAgreement(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(4), uint8(0))
	f.Add(int64(7), uint8(3), uint8(4), uint8(5), uint8(1))
	f.Add(int64(99), uint8(1), uint8(2), uint8(6), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, maxM, maxL, maxN, mode uint8) {
		m := 1 + int(maxM)%3
		l := 1 + int(maxL)%5
		n := 1 + int(maxN)%6
		r := rand.New(rand.NewSource(seed))
		ins := withPG(r, randomMT(r, m, l, n))
		opt := frontierOpts[int(mode)%len(frontierOpts)]
		ctx := context.Background()
		plain, err := SolveExact(ctx, ins, opt, solve.Options{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := SolveExact(ctx, ins, opt, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Cost != plain.Cost {
			t.Fatalf("pruning changed the optimum: %d (pruned) vs %d (exhaustive), opt %+v",
				pruned.Cost, plain.Cost, opt)
		}
		if err := ins.Validate(pruned.Schedule); err != nil {
			t.Fatalf("invalid pruned schedule: %v", err)
		}
	})
}
