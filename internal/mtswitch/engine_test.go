package mtswitch

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// prefixMT clones the first n steps of ins into a standalone instance
// (same tasks, PublicGlobal and W), the from-scratch baseline for the
// incremental property tests.
func prefixMT(t *testing.T, ins *model.MTSwitchInstance, n int) *model.MTSwitchInstance {
	t.Helper()
	rows := make([][]bitset.Set, ins.NumTasks())
	for j := range rows {
		rows[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			rows[j][i] = ins.Reqs[j][i].Clone()
		}
	}
	out, err := model.NewMTSwitchInstance(ins.Tasks, rows)
	if err != nil {
		t.Fatal(err)
	}
	out.PublicGlobal = ins.PublicGlobal
	out.W = ins.W
	return out
}

// stepRows extracts steps [from,to) of ins in the step-major shape
// Extend/Amend take.
func stepRows(ins *model.MTSwitchInstance, from, to int) [][]bitset.Set {
	rows := make([][]bitset.Set, 0, to-from)
	for i := from; i < to; i++ {
		row := make([]bitset.Set, ins.NumTasks())
		for j := range row {
			row[j] = ins.Reqs[j][i].Clone()
		}
		rows = append(rows, row)
	}
	return rows
}

// engineConfigs enumerates the full property-test matrix of the issue:
// Workers {1,2,8} x pruning on and off.
func engineConfigs() []solve.Options {
	var out []solve.Options
	for _, disable := range []bool{false, true} {
		for _, workers := range agreementWorkers {
			out = append(out, solve.Options{Workers: workers, DisablePruning: disable})
		}
	}
	return out
}

// TestEngineExtendMatchesFromScratch is the issue's Extend property
// test: growing a trace batch by batch through Engine.Extend must give,
// after every batch, exactly the cost and schedule of a from-scratch
// solve of the grown prefix — across Workers {1,2,8}, pruning on and
// off, and every frontier upload mode.
func TestEngineExtendMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(61))
	instances := []*model.MTSwitchInstance{phased(t)}
	for k := 0; k < 8; k++ {
		instances = append(instances, withPG(r, randomMT(r, 3, 5, 8)))
	}
	for ii, full := range instances {
		n := full.Steps()
		if n < 2 {
			continue
		}
		// One batch plan per instance, shared by every configuration so
		// the comparisons line up.
		cuts := []int{1 + r.Intn(n-1)}
		for cuts[len(cuts)-1] < n {
			cuts = append(cuts, cuts[len(cuts)-1]+1+r.Intn(n-cuts[len(cuts)-1]))
		}
		for _, opt := range frontierOpts {
			for _, o := range engineConfigs() {
				eng, err := NewEngine(ctx, prefixMT(t, full, cuts[0]), opt, o, true)
				if err != nil {
					t.Fatal(err)
				}
				for c := 0; c < len(cuts); c++ {
					if c > 0 {
						if err := eng.Extend(ctx, stepRows(full, cuts[c-1], cuts[c])); err != nil {
							t.Fatalf("instance %d extend to %d: %v", ii, cuts[c], err)
						}
					}
					got, err := eng.Solution(ctx)
					if err != nil {
						t.Fatalf("instance %d o %+v len %d: %v", ii, o, cuts[c], err)
					}
					want, err := SolveExact(ctx, prefixMT(t, full, cuts[c]), opt, o)
					if err != nil {
						t.Fatal(err)
					}
					if got.Cost != want.Cost || !sameSchedule(t, got.Schedule, want.Schedule) {
						t.Fatalf("instance %d opt %+v o %+v: extended solve of %d steps cost %d, from-scratch %d (or schedules differ)",
							ii, opt, o, cuts[c], got.Cost, want.Cost)
					}
					if lrs := eng.LastResolveStart(); lrs < 0 || lrs > cuts[c] {
						t.Fatalf("instance %d: LastResolveStart %d outside [0,%d]", ii, lrs, cuts[c])
					}
				}
				eng.Close()
			}
		}
	}
}

// TestEngineAmendMatchesFromScratch: overwriting an interior window of
// an already-solved trace and re-solving must match a from-scratch
// solve of the amended trace, for every configuration.
func TestEngineAmendMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(67))
	for k := 0; k < 8; k++ {
		full := withPG(r, randomMT(r, 3, 5, 8))
		n := full.Steps()
		at := r.Intn(n)
		width := 1 + r.Intn(n-at)
		// Replacement rows, shared across configurations.
		repl := make([][]bitset.Set, width)
		for i := range repl {
			repl[i] = make([]bitset.Set, full.NumTasks())
			for j := range repl[i] {
				s := bitset.New(full.Tasks[j].Local)
				for b := 0; b < full.Tasks[j].Local; b++ {
					if r.Intn(3) == 0 {
						s.Add(b)
					}
				}
				repl[i][j] = s
			}
		}
		amended := prefixMT(t, full, n)
		for i := 0; i < width; i++ {
			for j := range amended.Reqs {
				amended.Reqs[j][at+i] = repl[i][j].Clone()
			}
		}
		for _, opt := range frontierOpts {
			for _, o := range engineConfigs() {
				eng, err := NewEngine(ctx, full, opt, o, true)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Solution(ctx); err != nil {
					t.Fatal(err)
				}
				if err := eng.Amend(ctx, at, repl); err != nil {
					t.Fatalf("amend [%d,%d): %v", at, at+width, err)
				}
				got, err := eng.Solution(ctx)
				if err != nil {
					t.Fatal(err)
				}
				want, err := SolveExact(ctx, amended, opt, o)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != want.Cost || !sameSchedule(t, got.Schedule, want.Schedule) {
					t.Fatalf("instance %d opt %+v o %+v amend [%d,%d): cost %d, from-scratch %d (or schedules differ)",
						k, opt, o, at, at+width, got.Cost, want.Cost)
				}
				eng.Close()
			}
		}
	}
}

// TestEngineRewindMatchesFromScratch: rewinding a completed solve to an
// arbitrary step and running it again must reproduce the original
// solution bit for bit (the issue's Rewind property test).
func TestEngineRewindMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(71))
	for k := 0; k < 6; k++ {
		full := withPG(r, randomMT(r, 3, 5, 8))
		step := r.Intn(full.Steps() + 1)
		for _, opt := range frontierOpts {
			for _, o := range engineConfigs() {
				eng, err := NewEngine(ctx, full, opt, o, true)
				if err != nil {
					t.Fatal(err)
				}
				first, err := eng.Solution(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.Rewind(step); err != nil {
					t.Fatal(err)
				}
				again, err := eng.Solution(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if first.Cost != again.Cost || !sameSchedule(t, first.Schedule, again.Schedule) {
					t.Fatalf("instance %d opt %+v o %+v rewind %d: cost %d then %d (or schedules differ)",
						k, opt, o, step, first.Cost, again.Cost)
				}
				eng.Close()
			}
		}
	}
}

// TestEngineSuffixReuse pins the point of the refactor: with pruning
// off, appending a short suffix to a long solved trace must resume from
// a late frontier (not step 0) and expand far fewer states than the
// from-scratch solve did.
func TestEngineSuffixReuse(t *testing.T) {
	ctx := context.Background()
	full := phased(t)
	n := full.Steps()
	o := solve.Options{Workers: 1, DisablePruning: true}
	eng, err := NewEngine(ctx, prefixMT(t, full, n-1), frontierOpts[0], o, true)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Solution(ctx); err != nil {
		t.Fatal(err)
	}
	fromScratch := eng.e.stats.StatesExpanded
	if err := eng.Extend(ctx, stepRows(full, n-1, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solution(ctx); err != nil {
		t.Fatal(err)
	}
	if eng.LastResolveStart() == 0 {
		t.Fatalf("appending one step re-solved from step 0; frontier reuse is broken")
	}
	if re := eng.ResolveExpanded(); re <= 0 || re >= fromScratch {
		t.Fatalf("suffix re-solve expanded %d states, prefix solve expanded %d", re, fromScratch)
	}
}

// TestEngineOneShotRejectsIncrementalOps: a one-shot engine (the
// SolveExact path) must refuse Extend/Amend/Rewind rather than corrupt
// pooled state.
func TestEngineOneShotRejectsIncrementalOps(t *testing.T) {
	ctx := context.Background()
	ins := phased(t)
	eng, err := NewEngine(ctx, ins, frontierOpts[0], solve.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Extend(ctx, stepRows(ins, 0, 1)); err == nil {
		t.Fatal("one-shot Extend succeeded")
	}
	if err := eng.Amend(ctx, 0, stepRows(ins, 0, 1)); err == nil {
		t.Fatal("one-shot Amend succeeded")
	}
	if err := eng.Rewind(0); err == nil {
		t.Fatal("one-shot Rewind succeeded")
	}
}

// TestEngineAdvancePartial: stepping in dribs and drabs must land on
// the same solution as running to completion in one call.
func TestEngineAdvancePartial(t *testing.T) {
	ctx := context.Background()
	full := phased(t)
	for _, o := range engineConfigs() {
		eng, err := NewEngine(ctx, full, frontierOpts[0], o, true)
		if err != nil {
			t.Fatal(err)
		}
		for {
			done, err := eng.Advance(ctx, 1)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		got, err := eng.Solution(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveExact(ctx, full, frontierOpts[0], o)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || !sameSchedule(t, got.Schedule, want.Schedule) {
			t.Fatalf("o %+v: stepped solve cost %d, one-shot %d (or schedules differ)", o, got.Cost, want.Cost)
		}
		eng.Close()
	}
}
