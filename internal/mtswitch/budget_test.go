package mtswitch

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/solve"
)

// TestMaxFrontierBytesDegradesToBeam pins the memory-budget contract:
// on an instance whose exact frontier would blow past a tiny
// MaxFrontierBytes, the solver must return a valid schedule instead of
// erroring or ballooning — flagged Degraded (hence Truncated), with a
// cost that is a true upper bound on the unbudgeted optimum.
func TestMaxFrontierBytesDegradesToBeam(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ins := randomMT(r, 3, 8, 10)
	for ins.NumTasks() < 2 || ins.Steps() < 6 {
		ins = randomMT(r, 3, 8, 10)
	}

	exact, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.Degraded {
		t.Fatal("unbudgeted solve reported Degraded")
	}

	for _, workers := range []int{1, 4} {
		o := solve.Options{Workers: workers, MaxFrontierBytes: 256}
		sol, err := SolveExact(context.Background(), ins, parallel, o)
		if err != nil {
			t.Fatalf("workers=%d: budgeted solve failed: %v", workers, err)
		}
		if !sol.Stats.Degraded {
			t.Fatalf("workers=%d: 256-byte budget did not degrade the solve", workers)
		}
		if !sol.Stats.Truncated {
			t.Fatalf("workers=%d: Degraded without Truncated", workers)
		}
		if err := ins.Validate(sol.Schedule); err != nil {
			t.Fatalf("workers=%d: degraded schedule invalid: %v", workers, err)
		}
		if sol.Cost < exact.Cost {
			t.Fatalf("workers=%d: degraded cost %d beats exact %d", workers, sol.Cost, exact.Cost)
		}
	}
}

// TestMaxFrontierBytesGenerousBudgetStaysExact pins that a budget big
// enough for the whole frontier changes nothing: same cost as the
// unbudgeted run and no degradation flag.
func TestMaxFrontierBytesGenerousBudgetStaysExact(t *testing.T) {
	ins := phased(t)
	exact, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveExact(context.Background(), ins, parallel, solve.Options{MaxFrontierBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Degraded || sol.Stats.Truncated {
		t.Fatalf("generous budget degraded the solve: %+v", sol.Stats)
	}
	if sol.Cost != exact.Cost {
		t.Fatalf("generous budget changed cost: %d vs %d", sol.Cost, exact.Cost)
	}
}

// TestMaxFrontierBytesRandomizedUpperBound sweeps random instances:
// whatever the budget forces, the result must stay a feasible schedule
// whose cost never undercuts the true optimum.
func TestMaxFrontierBytesRandomizedUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ins := randomMT(r, 3, 6, 8)
		exact, err := SolveExact(context.Background(), ins, parallel, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{128, 1024, 16384} {
			sol, err := SolveExact(context.Background(), ins, parallel, solve.Options{MaxFrontierBytes: budget})
			if err != nil {
				t.Fatalf("trial %d budget %d: %v", trial, budget, err)
			}
			if err := ins.Validate(sol.Schedule); err != nil {
				t.Fatalf("trial %d budget %d: invalid schedule: %v", trial, budget, err)
			}
			if sol.Cost < exact.Cost {
				t.Fatalf("trial %d budget %d: cost %d beats exact %d", trial, budget, sol.Cost, exact.Cost)
			}
			if sol.Stats.Degraded && !sol.Stats.Truncated {
				t.Fatalf("trial %d budget %d: Degraded without Truncated", trial, budget)
			}
		}
	}
}
