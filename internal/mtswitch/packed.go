package mtswitch

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// This file is the packed-state frontier engine behind SolveExact: the
// joint-hypercontext DP of the paper's Theorem 1 with the per-state
// allocations of the original implementation (a []bitset.Set per state,
// a string map key per successor, a *state chain per schedule) replaced
// by flat word slabs, 64-bit hash dedup and int32 back-pointers, and
// with frontier expansion sharded across a solve.Pool.
//
// Layout.  A frontier state is one joint hypercontext vector: task j's
// current hypercontext occupies taskWords[j] consecutive uint64 words
// at taskOff[j] of a setWords-word vector.  A whole generation lives in
// one contiguous slab (state s = slab[s*setWords:(s+1)*setWords]), so
// building a successor is a handful of word copies into a scratch
// vector and promoting it into the frontier is one copy into the slab —
// no per-state heap objects.  Because schedule reconstruction only
// needs each state's hyperreconfiguration bits and its predecessor
// index, past generations retain just hyperWords words and an int32 per
// state; their set slabs are recycled.
//
// Dedup.  Successors are deduplicated by a 64-bit hash of the packed
// vector (bitset.HashWords) probed through an open-addressed table with
// a full-vector compare on hash equality, so two distinct vectors that
// collide in 64 bits still occupy distinct entries.  The cheapest state
// per vector wins; on cost ties the successor generated first in the
// sequential expansion order wins (ordered by (prev, seq), the source
// index and the branch index within the source).  That rule makes the
// surviving entry independent of both insertion order and shard count.
//
// Parallelism.  Each step's expansion fans the frontier out across the
// pool: worker w expands a contiguous chunk of source states into a
// worker-local table (no locks), recording each new entry's destination
// shard hash%nshards.  A second pass merges, per destination shard in
// parallel, the worker-local entries whose hash the shard owns,
// applying the same cheapest-wins rule.  The merged winners are sorted
// by (cost, vector) — a total order with no ties — so the next
// generation's frontier, the beam truncation beyond Options.MaxStates
// and the final best state are all byte-identical for every worker
// count, including the sequential Workers=1 path.

// layout fixes the word geometry of packed states for one instance.
type layout struct {
	m          int
	taskOff    []int
	taskWords  []int
	setWords   int
	hyperWords int
}

func newLayout(ins *model.MTSwitchInstance) layout {
	m := ins.NumTasks()
	lay := layout{m: m, taskOff: make([]int, m), taskWords: make([]int, m), hyperWords: (m + 63) / 64}
	for j := 0; j < m; j++ {
		lay.taskOff[j] = lay.setWords
		lay.taskWords[j] = bitset.WordsFor(ins.Tasks[j].Local)
		lay.setWords += lay.taskWords[j]
	}
	return lay
}

// stride is the words one table entry occupies: the set vector followed
// by the hyperreconfiguration bits.
func (l layout) stride() int { return l.setWords + l.hyperWords }

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wordsSubset reports a ⊆ b.
func wordsSubset(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func popcountWords(a []uint64) int {
	c := 0
	for _, w := range a {
		c += bits.OnesCount64(w)
	}
	return c
}

// stateTable is an open-addressed hash table over packed states.  Keys
// are the setWords-long vectors at the head of each stride-long entry;
// the hash is recomputed never — it travels with the entry.  hashFn is
// a field so tests can force collisions and exercise the full-vector
// probe path.
type stateTable struct {
	setWords int
	stride   int
	hashFn   func([]uint64) uint64

	// limit, when positive, hard-caps the entry count: inserts of NEW
	// vectors beyond it are dropped (counted in dropped) while merges
	// into existing entries still apply.  This is the memory-budget
	// backstop for a single step's expansion — see the budget notes on
	// the engine.
	limit   int
	dropped int64

	buckets []int32 // entry index + 1; 0 = empty
	mask    uint64

	slab   []uint64
	hashes []uint64
	costs  []model.Cost
	prevs  []int32
	seqs   []int32
}

const initialBuckets = 64

// configure (re)shapes the table for a layout, keeping backing arrays.
func (t *stateTable) configure(lay layout) {
	t.setWords = lay.setWords
	t.stride = lay.stride()
	if t.hashFn == nil {
		t.hashFn = bitset.HashWords
	}
	t.reset()
}

// reset empties the table, retaining capacity.
func (t *stateTable) reset() {
	if len(t.buckets) == 0 {
		t.buckets = make([]int32, initialBuckets)
		t.mask = initialBuckets - 1
	} else {
		for i := range t.buckets {
			t.buckets[i] = 0
		}
	}
	t.slab = t.slab[:0]
	t.hashes = t.hashes[:0]
	t.costs = t.costs[:0]
	t.prevs = t.prevs[:0]
	t.seqs = t.seqs[:0]
	t.dropped = 0
}

func (t *stateTable) len() int { return len(t.hashes) }

// entry returns entry e's stride-long words (set vector + hyper bits).
func (t *stateTable) entry(e int32) []uint64 {
	return t.slab[int(e)*t.stride : (int(e)+1)*t.stride]
}

// grow doubles the bucket array and reseats every entry.
func (t *stateTable) grow() {
	nb := make([]int32, 2*len(t.buckets))
	mask := uint64(len(nb) - 1)
	for e := range t.hashes {
		i := t.hashes[e] & mask
		for nb[i] != 0 {
			i = (i + 1) & mask
		}
		nb[i] = int32(e) + 1
	}
	t.buckets = nb
	t.mask = mask
}

// wins reports whether (cost, prev, seq) beats entry e under the
// deterministic cheapest-wins rule.
func (t *stateTable) wins(e int32, cost model.Cost, prev, seq int32) bool {
	switch {
	case cost != t.costs[e]:
		return cost < t.costs[e]
	case prev != t.prevs[e]:
		return prev < t.prevs[e]
	default:
		return seq < t.seqs[e]
	}
}

// insert merges one packed state (stride-long: set vector then hyper
// bits) into the table.  It reports whether the vector was new; when an
// existing entry loses the cheapest-wins comparison its cost, origin
// and hyper bits are overwritten in place (the set vector is identical
// by definition).
func (t *stateTable) insert(state []uint64, h uint64, cost model.Cost, prev, seq int32) bool {
	i := h & t.mask
	for {
		b := t.buckets[i]
		if b == 0 {
			if t.limit > 0 && len(t.hashes) >= t.limit {
				t.dropped++
				return false
			}
			e := int32(len(t.hashes))
			t.buckets[i] = e + 1
			t.slab = append(t.slab, state...)
			t.hashes = append(t.hashes, h)
			t.costs = append(t.costs, cost)
			t.prevs = append(t.prevs, prev)
			t.seqs = append(t.seqs, seq)
			if uint64(4*len(t.hashes)) >= 3*(t.mask+1) {
				t.grow()
			}
			return true
		}
		e := b - 1
		if t.hashes[e] == h && wordsEqual(t.entry(e)[:t.setWords], state[:t.setWords]) {
			if t.wins(e, cost, prev, seq) {
				t.costs[e] = cost
				t.prevs[e] = prev
				t.seqs[e] = seq
				copy(t.entry(e)[t.setWords:], state[t.setWords:])
			}
			return false
		}
		i = (i + 1) & t.mask
	}
}

// packedCands are the canonical install candidates of one (task, step):
// k vectors of taskWords[j] words each, with their precomputed sizes.
type packedCands struct {
	words  []uint64
	counts []model.Cost
	k      int
}

// expandWorker is one expansion shard's private state.
type expandWorker struct {
	table  stateTable
	byDest [][]int32 // entries per destination shard (nshards > 1 only)

	cur     []uint64 // scratch successor: set words + hyper words
	keepOK  []bool
	keepCnt []model.Cost

	srcWords []uint64
	srcCost  model.Cost
	src      int32
	seq      int32

	statesExpanded int64
	boundCut       int64
}

// generation is what a finished step retains for reconstruction.
type generation struct {
	prev  []int32
	hyper []uint64
}

// engine runs the packed DP.  Engines are recycled through a sync.Pool
// (the private-global window DP prices O(n²) windows, each a full
// SolveExact) so the big slabs and tables survive across solves.
type engine struct {
	ins *model.MTSwitchInstance
	opt model.CostOptions
	lay layout

	pool    *solve.Pool
	workers []*expandWorker
	shards  []*stateTable
	nshards int

	cands [][]packedCands // [task][step]
	reqs  [][]uint64      // [task] flat n*taskWords[j] requirement words

	// Memory budget (Options.MaxFrontierBytes).  budgetStates is the
	// number of packed states the budget affords (0 = unbudgeted): it
	// caps the beam deterministically at the per-step truncation and
	// hard-caps each worker's successor table during expansion, and
	// budgetWords bounds the candidate catalog.  When any of the three
	// actually bites, the run records Stats.Degraded (and Truncated):
	// the result is a valid upper-bound schedule, but — uniquely among
	// the engine's paths — the worker-table cap may drop states in
	// insertion order, so a Degraded result is not guaranteed
	// bit-identical across worker counts.
	budgetStates int
	budgetWords  int64
	budgetCapped bool

	// Pruned search layer (prune.go); populated from the pruneContext
	// passed into beginSolve, inert when pruneOn is false.
	pruneOn    bool
	incumbent  model.Cost
	mult       []model.Cost   // per-step multiplicities (nil = all ones)
	weights    [][]model.Cost // per-task column weights (nil rows = 1s)
	stepMult   model.Cost     // multAt(step), cached per step
	sufUnion   [][]uint64     // [task] flat (n+1)*taskWords suffix unions
	tailReconf [][]model.Cost // [m+1][n] remaining-task reconf bounds
	sufLB      []model.Cost   // [n+1] remaining-steps cost bounds

	// Dominance scratch (dominanceFilter).
	domRes    []uint64
	domCnt    []model.Cost
	domResBuf []uint64
	domCntBuf []model.Cost
	domGroups map[uint64][]int32

	// Current frontier.
	slab  []uint64
	costs []model.Cost
	count int
	step  int

	// maxStates is the per-step beam cap resolved by beginSolve (the
	// Options.MaxStates default, possibly lowered by the byte budget).
	maxStates int

	gens []generation

	// Gather buffers (multi-shard merges flatten into these).
	tmpSlab  []uint64
	tmpCosts []model.Cost
	tmpPrevs []int32
	perm     []int32

	stats solve.Stats
}

var enginePool sync.Pool

func getEngine() *engine {
	if v := enginePool.Get(); v != nil {
		e := v.(*engine)
		e.stats = solve.Stats{ArenaReused: 1}
		return e
	}
	return &engine{}
}

func putEngine(e *engine) {
	e.ins = nil
	e.gens = nil // back-pointer chains go to the caller's Solution path
	e.cands = nil
	e.reqs = nil
	e.mult = nil    // owned by the caller's reduction
	e.weights = nil // owned by the caller's reduction
	enginePool.Put(e)
}

// prepare shapes the engine for one solve.
func (e *engine) prepare(ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options, px *pruneContext) {
	e.ins = ins
	e.opt = opt
	e.lay = newLayout(ins)
	m, n := ins.NumTasks(), ins.Steps()

	e.budgetStates = 0
	e.budgetWords = 0
	e.budgetCapped = false
	if o.MaxFrontierBytes > 0 {
		// One packed state costs its stride in words plus the table
		// bookkeeping (hash, cost, back-pointer, sequence).
		perState := int64(e.lay.stride()*8 + 24)
		bs := o.MaxFrontierBytes / perState
		if bs < 1 {
			bs = 1
		}
		if bs > math.MaxInt32 {
			bs = math.MaxInt32
		}
		e.budgetStates = int(bs)
		e.budgetWords = o.MaxFrontierBytes / 8
		if e.budgetWords < 1 {
			e.budgetWords = 1
		}
	}

	e.pool = solve.NewPool(o.Workers)
	workers := e.pool.Workers()
	e.nshards = workers
	for len(e.workers) < workers {
		e.workers = append(e.workers, &expandWorker{})
	}
	for len(e.shards) < workers {
		e.shards = append(e.shards, &stateTable{})
	}
	for _, w := range e.workers[:workers] {
		w.table.hashFn = nil // instance hash; tests inject theirs directly
		w.table.limit = e.budgetStates
		w.table.configure(e.lay)
		w.cur = growWords(w.cur, e.lay.stride())
		if cap(w.keepOK) < m {
			w.keepOK = make([]bool, m)
			w.keepCnt = make([]model.Cost, m)
		}
		w.keepOK = w.keepOK[:m]
		w.keepCnt = w.keepCnt[:m]
		for len(w.byDest) < workers {
			w.byDest = append(w.byDest, nil)
		}
	}
	for _, t := range e.shards[:workers] {
		t.hashFn = nil
		// Destination shards hold at most the sum of the (already
		// capped) worker tables, so they carry no limit of their own;
		// clear any limit left by a previous budgeted run of this
		// recycled engine.
		t.limit = 0
		t.configure(e.lay)
	}

	// Pack the per-task requirement rows for the word-level keep check.
	e.reqs = e.reqs[:0]
	for j := 0; j < m; j++ {
		tw := e.lay.taskWords[j]
		flat := make([]uint64, n*tw)
		for i := 0; i < n; i++ {
			copy(flat[i*tw:(i+1)*tw], ins.Reqs[j][i].Words())
		}
		e.reqs = append(e.reqs, flat)
	}

	e.pruneOn = px != nil
	e.incumbent = 0
	e.mult = nil
	e.weights = nil
	e.stepMult = 1
	if px != nil {
		e.incumbent = px.incumbent
		e.mult = px.mult
		e.weights = px.weights
		e.computeBounds()
	}

	e.gens = e.gens[:0]
	e.stats.StatesExpanded = 0
	e.stats.DedupHits = 0
	e.stats.PeakFrontier = 0
	e.stats.CandidatesPruned = 0
	e.stats.StatesPruned = 0
	e.stats.DominanceHits = 0
	e.stats.BoundCutoffs = 0
	e.stats.PreprocessReduction = 0
	e.stats.BudgetDropped = 0
	e.stats.Truncated = false
	e.stats.Degraded = false
}

func growWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// buildCandidates computes cand[j][i], the distinct values of U_j(i,e)
// for e ≥ i by growing horizon, directly in packed form, applying the
// MaxCandidates trim (shortest horizons plus the full-suffix union).
//
// The candidate catalog is the engine's other unbounded allocation
// (O(m·n·l) packed vectors worst case), so the frontier byte budget
// covers it too: once the catalog has consumed the budget, every
// further (task, step) keeps only its full-suffix union — the one
// candidate that is always feasible for any horizon — and the run is
// recorded as budget-degraded.  The trim is applied in the sequential
// build order, so candidate-budget degradation is deterministic.  The
// context is checked once per (task, step), bounding cancellation
// latency on catalogs whose construction alone is expensive.
func (e *engine) buildCandidates(ctx context.Context, o solve.Options) error {
	m, n := e.lay.m, e.ins.Steps()
	var candWords int64
	e.cands = make([][]packedCands, m)
	for j := 0; j < m; j++ {
		tw := e.lay.taskWords[j]
		e.cands[j] = make([]packedCands, n)
		acc := bitset.New(e.ins.Tasks[j].Local)
		for i := 0; i < n; i++ {
			if err := solve.Checkpoint(ctx); err != nil {
				return err
			}
			acc.Clear()
			c := packedCands{}
			overBudget := e.budgetWords > 0 && candWords >= e.budgetWords
			var pruned int64
			last := -1
			wj := e.taskWeightsOf(j)
			for end := i; end < n; end++ {
				acc.UnionWith(e.ins.Reqs[j][end])
				// Distinctness is detected on the raw popcount (unions
				// only grow, so raw counts strictly increase across
				// distinct candidates); the stored install price is the
				// weighted size.
				if cnt := acc.Count(); cnt != last {
					if overBudget && c.k == 1 {
						// Overwrite the single slot in place; the loop's
						// final value is the full-suffix union.
						copy(c.words, acc.Words())
						c.counts[0] = weightedCountWords(acc.Words(), wj)
						pruned++
					} else {
						c.words = append(c.words, acc.Words()...)
						c.counts = append(c.counts, weightedCountWords(acc.Words(), wj))
						c.k++
					}
					last = cnt
				}
			}
			if pruned > 0 {
				e.stats.CandidatesPruned += pruned
				e.stats.Truncated = true
				e.stats.Degraded = true
			}
			if o.MaxCandidates > 0 && c.k > o.MaxCandidates {
				e.stats.CandidatesPruned += int64(c.k - o.MaxCandidates)
				keep := o.MaxCandidates - 1
				copy(c.words[keep*tw:(keep+1)*tw], c.words[(c.k-1)*tw:c.k*tw])
				c.counts[keep] = c.counts[c.k-1]
				c.words = c.words[:(keep+1)*tw]
				c.counts = c.counts[:keep+1]
				c.k = keep + 1
			}
			candWords += int64(len(c.words))
			e.cands[j][i] = c
		}
	}
	return nil
}

// reqAt returns task j's packed requirement at step i.
func (e *engine) reqAt(j, i int) []uint64 {
	tw := e.lay.taskWords[j]
	return e.reqs[j][i*tw : (i+1)*tw]
}

func setHyperBit(words []uint64, j int)   { words[j/64] |= 1 << uint(j%64) }
func clearHyperBit(words []uint64, j int) { words[j/64] &^= 1 << uint(j%64) }
func hyperBit(words []uint64, j int) bool { return words[j/64]&(1<<uint(j%64)) != 0 }

// expandRange expands sources [lo, hi) of the current frontier into
// worker w's table.  The context is checked once per source state, like
// the original sequential loop.
func (e *engine) expandRange(ctx context.Context, w *expandWorker, lo, hi int) error {
	sw := e.lay.setWords
	for s := lo; s < hi; s++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return err
		}
		w.src = int32(s)
		w.srcCost = e.costs[s]
		w.srcWords = e.slab[s*sw : (s+1)*sw]
		for j := 0; j < e.lay.m; j++ {
			seg := w.srcWords[e.lay.taskOff[j] : e.lay.taskOff[j]+e.lay.taskWords[j]]
			if e.step > 0 && wordsSubset(e.reqAt(j, e.step), seg) {
				w.keepOK[j] = true
				w.keepCnt[j] = weightedCountWords(seg, e.taskWeightsOf(j))
			} else {
				w.keepOK[j] = false
			}
		}
		w.seq = 0
		var reconf model.Cost
		if e.opt.ReconfUpload == model.TaskParallel {
			reconf = model.Cost(e.ins.PublicGlobal)
		}
		e.expandTask(w, 0, 0, reconf)
	}
	return nil
}

// expandTask branches task j (keep current hypercontext if the incoming
// requirement fits, or install a candidate) and recurses; at j == m the
// assembled successor is hashed into the worker's table.  The hyper and
// reconf accumulators fold the per-task cost terms in task order,
// matching the upload modes' left-fold semantics exactly.
//
// With the pruned layer on, two admissible cutoffs bound the recursion
// against the incumbent: at interior nodes the not-yet-branched tasks
// contribute at least tailReconf[j] to this step's reconf term, and at
// j == m the remaining steps cost at least sufLB[step+1].  Both prune
// strictly-worse branches only (>, never ≥), so every state on an
// optimal path survives and an untruncated run stays exact.  The step
// reconf term is weighted by the run multiplicity from preprocessing;
// the hyper term is paid once per run (installs happen before the
// run's first step, the rest of the run keeps).
func (e *engine) expandTask(w *expandWorker, j int, hyper, reconf model.Cost) {
	if j == e.lay.m {
		stepReconf := reconf
		if e.opt.ReconfUpload == model.TaskSequential {
			stepReconf += model.Cost(e.ins.PublicGlobal)
		}
		total := w.srcCost + hyper + stepReconf*e.stepMult
		if e.pruneOn && total+e.sufLB[e.step+1] > e.incumbent {
			w.boundCut++
			return
		}
		w.statesExpanded++
		h := w.table.hashFn(w.cur[:e.lay.setWords])
		if w.table.insert(w.cur, h, total, w.src, w.seq) && e.nshards > 1 {
			d := int(h % uint64(e.nshards))
			w.byDest[d] = append(w.byDest[d], int32(w.table.len()-1))
		}
		w.seq++
		return
	}
	if e.pruneOn && j > 0 {
		rem := e.opt.ReconfUpload.Combine(reconf, e.tailReconf[j][e.step])
		if e.opt.ReconfUpload == model.TaskSequential {
			rem += model.Cost(e.ins.PublicGlobal)
		}
		if w.srcCost+hyper+rem*e.stepMult+e.sufLB[e.step+1] > e.incumbent {
			w.boundCut++
			return
		}
	}
	off, tw := e.lay.taskOff[j], e.lay.taskWords[j]
	dst := w.cur[off : off+tw]
	seg := w.srcWords[off : off+tw]
	hyperWords := w.cur[e.lay.setWords:]
	if w.keepOK[j] {
		copy(dst, seg)
		clearHyperBit(hyperWords, j)
		e.expandTask(w, j+1, hyper, e.opt.ReconfUpload.Combine(reconf, w.keepCnt[j]))
	}
	cnd := &e.cands[j][e.step]
	for k := 0; k < cnd.k; k++ {
		cw := cnd.words[k*tw : (k+1)*tw]
		// Installing a set identical to the kept one costs a
		// hyperreconfiguration for nothing.
		if w.keepOK[j] && wordsEqual(cw, seg) {
			continue
		}
		copy(dst, cw)
		setHyperBit(hyperWords, j)
		e.expandTask(w, j+1,
			e.opt.HyperUpload.Combine(hyper, e.ins.Tasks[j].V),
			e.opt.ReconfUpload.Combine(reconf, cnd.counts[k]))
	}
}

// mergeShard folds every worker's entries owned by destination shard d
// into e.shards[d].  The cheapest-wins rule is order-independent, so
// concurrent shards need no coordination and the outcome matches the
// sequential insertion order exactly.
func (e *engine) mergeShard(d, activeWorkers int) {
	t := e.shards[d]
	t.reset()
	for _, w := range e.workers[:activeWorkers] {
		wt := &w.table
		for _, idx := range w.byDest[d] {
			t.insert(wt.entry(idx), wt.hashes[idx], wt.costs[idx], wt.prevs[idx], wt.seqs[idx])
		}
	}
}

// flat is a view of one step's deduplicated successors used by the sort
// + truncate stage.
type flat struct {
	slab   []uint64
	costs  []model.Cost
	prevs  []int32
	stride int
	sw     int
}

func (f flat) state(i int32) []uint64 { return f.slab[int(i)*f.stride : (int(i)+1)*f.stride] }

// initRoot installs the root frontier (every task holds the empty
// hypercontext) and rewinds the step counter.
func (e *engine) initRoot() {
	sw := e.lay.setWords
	e.slab = growWords(e.slab, sw)
	for i := range e.slab {
		e.slab[i] = 0
	}
	if cap(e.costs) < 1 {
		e.costs = make([]model.Cost, 1, 64)
	}
	e.costs = e.costs[:1]
	e.costs[0] = e.ins.W
	e.count = 1
	e.step = 0
}

// stepOnce advances the DP by one step: it expands the frontier
// entering step e.step into the frontier entering step e.step+1 and
// increments the step counter.  Callers drive it from e.step == 0
// (after initRoot) to e.step == Steps().
func (e *engine) stepOnce(ctx context.Context) error {
	n := e.ins.Steps()
	sw, stride := e.lay.setWords, e.lay.stride()
	// Chaos-harness site: injects slowness, errors or panics into
	// the DP's step loop (one atomic load when disarmed).
	if err := faultinject.Fire("mtswitch.step"); err != nil {
		return err
	}
	// Incumbent exchange: adopt an externally published bound (a
	// portfolio contender's best-known full-schedule cost) when it is
	// tighter than our own.  External bounds are valid upper bounds on
	// the optimum, and the cutoffs below are strict (`>`), so adoption
	// never cuts an optimal path — it only changes which cost-optimal
	// schedule survives, never the cost.
	if e.pruneOn {
		if ext, ok := solve.IncumbentFrom(ctx).Best(); ok && ext < e.incumbent {
			e.incumbent = ext
			e.stats.IncumbentTightenings++
		}
	}
	e.stepMult = e.multAt(e.step)
	// Phase 1 — sharded expansion over contiguous source chunks.
	active := e.nshards
	if active > e.count {
		active = e.count
	}
	chunk := (e.count + active - 1) / active
	var mu sync.Mutex
	var expandErr error
	if err := e.pool.Do(active, func(wk int) {
		w := e.workers[wk]
		w.table.reset()
		for d := range w.byDest[:e.nshards] {
			w.byDest[d] = w.byDest[d][:0]
		}
		lo := wk * chunk
		hi := lo + chunk
		if hi > e.count {
			hi = e.count
		}
		if err := e.expandRange(ctx, w, lo, hi); err != nil {
			mu.Lock()
			if expandErr == nil {
				expandErr = err
			}
			mu.Unlock()
		}
	}); err != nil {
		return err
	}
	if expandErr != nil {
		return expandErr
	}
	var produced, dropped int64
	for _, w := range e.workers[:active] {
		produced += w.statesExpanded
		w.statesExpanded = 0
		e.stats.BoundCutoffs += w.boundCut
		w.boundCut = 0
		dropped += w.table.dropped
	}
	e.stats.StatesExpanded += produced
	if dropped > 0 {
		// The worker-table budget cap bit: states were dropped
		// before dedup, so the step is a (budget-forced) beam.
		e.stats.BudgetDropped += dropped
		e.stats.Truncated = true
		e.stats.Degraded = true
	}

	// Phase 2 — merge by hash ownership, then flatten.
	var fl flat
	if active == 1 {
		t := &e.workers[0].table
		fl = flat{slab: t.slab, costs: t.costs, prevs: t.prevs, stride: stride, sw: sw}
	} else {
		if err := e.pool.Do(e.nshards, func(d int) { e.mergeShard(d, active) }); err != nil {
			return err
		}
		e.tmpSlab = e.tmpSlab[:0]
		e.tmpCosts = e.tmpCosts[:0]
		e.tmpPrevs = e.tmpPrevs[:0]
		for _, t := range e.shards[:e.nshards] {
			e.tmpSlab = append(e.tmpSlab, t.slab...)
			e.tmpCosts = append(e.tmpCosts, t.costs...)
			e.tmpPrevs = append(e.tmpPrevs, t.prevs...)
		}
		fl = flat{slab: e.tmpSlab, costs: e.tmpCosts, prevs: e.tmpPrevs, stride: stride, sw: sw}
	}
	unique := len(fl.costs)
	if unique == 0 {
		if e.pruneOn {
			return errFrontierEmptied
		}
		return fmt.Errorf("mtswitch: state frontier emptied at step %d", e.step)
	}
	e.stats.DedupHits += produced - dropped - int64(unique)
	if int64(unique) > e.stats.PeakFrontier {
		e.stats.PeakFrontier = int64(unique)
	}

	// Phase 3 — deterministic order: (cost, vector) is a total
	// order over distinct vectors, so sorting needs no stability
	// and every worker count yields the same frontier.
	e.perm = e.perm[:0]
	for i := 0; i < unique; i++ {
		e.perm = append(e.perm, int32(i))
	}
	sort.Slice(e.perm, func(a, b int) bool {
		pa, pb := e.perm[a], e.perm[b]
		if fl.costs[pa] != fl.costs[pb] {
			return fl.costs[pa] < fl.costs[pb]
		}
		return bitset.CompareWords(fl.state(pa)[:sw], fl.state(pb)[:sw]) < 0
	})
	// Dominance filtering runs on the sorted frontier (so the
	// dominator is always the earlier, no-costlier state) and
	// before any beam truncation, keeping the beam's slots for
	// states that are not redundant.  The last step's frontier is
	// never filtered: with no requirements left, only index 0 (the
	// optimum) matters.
	if e.pruneOn && e.step < n-1 && unique > 1 {
		before := len(e.perm)
		e.dominanceFilter(fl)
		e.stats.DominanceHits += int64(before - len(e.perm))
	}
	survivors := len(e.perm)
	kept := survivors
	if kept > e.maxStates {
		kept = e.maxStates
		e.stats.Truncated = true
		if e.budgetCapped {
			e.stats.Degraded = true
			e.stats.BudgetDropped += int64(survivors - kept)
		}
	}

	// Phase 4 — promote the winners into the next frontier and
	// retain this generation's reconstruction data.
	e.slab = growWords(e.slab, kept*sw)
	if cap(e.costs) < kept {
		e.costs = make([]model.Cost, kept)
	}
	e.costs = e.costs[:kept]
	gen := generation{prev: make([]int32, kept), hyper: make([]uint64, kept*e.lay.hyperWords)}
	hw := e.lay.hyperWords
	for r := 0; r < kept; r++ {
		p := e.perm[r]
		st := fl.state(p)
		copy(e.slab[r*sw:(r+1)*sw], st[:sw])
		copy(gen.hyper[r*hw:(r+1)*hw], st[sw:])
		e.costs[r] = fl.costs[p]
		gen.prev[r] = fl.prevs[p]
	}
	e.count = kept
	e.gens = append(e.gens, gen)
	e.step++
	return nil
}

// beginSolve shapes the engine for a solve and leaves it positioned on
// the root frontier: option resolution, buffer preparation, the
// candidate catalog and the root state.  After a nil return the caller
// owns e.pool (prepare always creates it, even when buildCandidates
// later fails) and drives stepOnce until e.step reaches Steps().
func (e *engine) beginSolve(ctx context.Context, ins *model.MTSwitchInstance, opt model.CostOptions, o solve.Options, px *pruneContext) error {
	maxStates := o.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	if maxStates > math.MaxInt32 {
		maxStates = math.MaxInt32
	}
	e.prepare(ins, opt, o, px)
	if e.budgetStates > 0 && e.budgetStates < maxStates {
		// The byte budget affords a smaller beam than the state cap:
		// the budget-derived cap becomes the binding one, and any
		// truncation it causes is a budget degradation.
		maxStates = e.budgetStates
		e.budgetCapped = true
	}
	e.maxStates = maxStates
	if err := e.buildCandidates(ctx, o); err != nil {
		e.stats.StatesPruned = e.stats.DominanceHits + e.stats.BoundCutoffs
		return err
	}
	e.initRoot()
	return nil
}

// releasePool closes and drops the engine's worker pool, if any.
func (e *engine) releasePool() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// finishMask reconstructs the optimal schedule's hyperreconfiguration
// mask from the back-pointer chains of a completed run and finalizes
// the derived stats flags.
func (e *engine) finishMask(o solve.Options) (mask [][]bool, dpCost model.Cost) {
	m, n := e.ins.NumTasks(), e.ins.Steps()
	mask = make([][]bool, m)
	for j := range mask {
		mask[j] = make([]bool, n)
	}
	hw := e.lay.hyperWords
	at := int32(0) // frontier is (cost, vector)-sorted; 0 is the optimum
	dpCost = e.costs[0]
	for i := n - 1; i >= 0; i-- {
		gen := e.gens[i]
		hyper := gen.hyper[int(at)*hw : (int(at)+1)*hw]
		for j := 0; j < m; j++ {
			mask[j][i] = hyperBit(hyper, j)
		}
		at = gen.prev[at]
	}
	e.stats.Truncated = e.stats.Truncated || o.MaxCandidates > 0
	e.stats.StatesPruned = e.stats.DominanceHits + e.stats.BoundCutoffs
	return mask, dpCost
}
