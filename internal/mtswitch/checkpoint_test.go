package mtswitch

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/solve"
)

// TestCheckpointRoundTripBitIdentical is the issue's serialization
// property test: snapshot -> encode -> decode -> resume must produce a
// schedule bit-identical to the uninterrupted solve, with the resuming
// process free to pick any of Workers {1,2,8}, pruning on and off.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(79))
	instances := []*model.MTSwitchInstance{phased(t)}
	for k := 0; k < 6; k++ {
		instances = append(instances, withPG(r, randomMT(r, 3, 5, 8)))
	}
	for ii, ins := range instances {
		stop := r.Intn(ins.Steps() + 1) // checkpoint after this many steps (0 = before any)
		for _, opt := range frontierOpts {
			for _, disable := range []bool{false, true} {
				o := solve.Options{Workers: 1, DisablePruning: disable}
				want, err := SolveExact(ctx, ins, opt, o)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewEngine(ctx, ins, opt, o, true)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Advance(ctx, stop); err != nil {
					t.Fatal(err)
				}
				data, err := eng.Checkpoint(ctx)
				if err != nil {
					t.Fatalf("instance %d stop %d: checkpoint: %v", ii, stop, err)
				}
				eng.Close()
				for _, workers := range agreementWorkers {
					res, err := ResumeEngine(ctx, data, workers, true)
					if err != nil {
						t.Fatalf("instance %d stop %d workers %d: resume: %v", ii, stop, workers, err)
					}
					got, err := res.Solution(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if got.Cost != want.Cost || !sameSchedule(t, got.Schedule, want.Schedule) {
						t.Fatalf("instance %d opt %+v disable %v stop %d workers %d: resumed cost %d, uninterrupted %d (or schedules differ)",
							ii, opt, disable, stop, workers, got.Cost, want.Cost)
					}
					res.Close()
				}
			}
		}
	}
}

// TestCheckpointResumeThenExtend: a resumed engine stays a full
// incremental engine — extending it must still match a from-scratch
// solve of the grown trace.
func TestCheckpointResumeThenExtend(t *testing.T) {
	ctx := context.Background()
	full := phased(t)
	n := full.Steps()
	opt := frontierOpts[0]
	o := solve.Options{Workers: 2, DisablePruning: true}
	eng, err := NewEngine(ctx, prefixMT(t, full, n-2), opt, o, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advance(ctx, 0); err != nil {
		t.Fatal(err)
	}
	data, err := eng.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	res, err := ResumeEngine(ctx, data, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Extend(ctx, stepRows(full, n-2, n)); err != nil {
		t.Fatal(err)
	}
	got, err := res.Solution(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveExact(ctx, full, opt, o)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || !sameSchedule(t, got.Schedule, want.Schedule) {
		t.Fatalf("resumed+extended cost %d, from-scratch %d (or schedules differ)", got.Cost, want.Cost)
	}
}

// TestCheckpointRejectsNonSteppable: zero-step and fully
// task-sequential instances have nothing to checkpoint.
func TestCheckpointRejectsNonSteppable(t *testing.T) {
	ctx := context.Background()
	ins := phased(t)
	seq := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	eng, err := NewEngine(ctx, ins, seq, solve.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Checkpoint(ctx); err == nil {
		t.Fatal("checkpointed a task-sequential instance")
	}
}

// TestCheckpointDecodeRejectsCorrupt walks every truncation length and
// a sweep of single-byte corruptions of a valid checkpoint: decoding
// must either fail cleanly or (for corruptions that keep the structure
// valid) succeed — it must never panic.
func TestCheckpointDecodeRejectsCorrupt(t *testing.T) {
	ctx := context.Background()
	ins := phased(t)
	eng, err := NewEngine(ctx, ins, frontierOpts[0], solve.Options{Workers: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advance(ctx, 3); err != nil {
		t.Fatal(err)
	}
	data, err := eng.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	if _, err := decodeCheckpoint(nil); err == nil {
		t.Fatal("decoded nil")
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := decodeCheckpoint(data[:cut]); err == nil {
			t.Fatalf("decoded a checkpoint truncated to %d of %d bytes", cut, len(data))
		}
	}
	for pos := 0; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xff
		cp, err := decodeCheckpoint(corrupt) // must not panic; error is fine
		_ = cp
		_ = err
	}
	if _, err := decodeCheckpoint(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("decoded a checkpoint with trailing bytes")
	}
}

// FuzzCheckpointDecode is the issue's fuzz target: arbitrary bytes fed
// to the decoder must produce an error, never a panic.  Structurally
// valid decodes of small instances are additionally pushed through
// ResumeEngine, which must also never panic.
func FuzzCheckpointDecode(f *testing.F) {
	ctx := context.Background()
	ins := phased(f)
	for _, disable := range []bool{false, true} {
		eng, err := NewEngine(ctx, ins, frontierOpts[0], solve.Options{Workers: 1, DisablePruning: disable}, true)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := eng.Advance(ctx, 2); err != nil {
			f.Fatal(err)
		}
		data, err := eng.Checkpoint(ctx)
		if err != nil {
			f.Fatal(err)
		}
		eng.Close()
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(checkpointMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		// Keep the resume path bounded: the decoder's dimension caps
		// still admit instances too large to prepare per fuzz exec
		// (warm start alone is quadratic in the trace length).
		n := len(cp.rows[0])
		cells := 0
		for _, task := range cp.tasks {
			cells += task.Local * n
		}
		if n > 32 || cells > 1<<10 || cp.count > 1<<8 {
			return
		}
		res, err := ResumeEngine(ctx, data, 1, true)
		if err != nil {
			return
		}
		res.Close()
	})
}
