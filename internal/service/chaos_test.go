package service

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// bigWire builds a pseudorandom 3-task instance whose exact frontier
// comfortably exceeds a few hundred bytes, so tiny MaxFrontierBytes
// budgets reliably degrade it.
func bigWire() *WireInstance {
	r := rand.New(rand.NewSource(99))
	const tasks, local, steps = 3, 8, 12
	wi := &WireInstance{}
	for j := 0; j < tasks; j++ {
		wi.Tasks = append(wi.Tasks, WireTask{Name: string(rune('A' + j)), Local: local, V: 4})
	}
	for i := 0; i < steps; i++ {
		row := make([]string, tasks)
		for j := 0; j < tasks; j++ {
			var b strings.Builder
			for k := 0; k < local; k++ {
				if r.Intn(3) == 0 {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			row[j] = b.String()
		}
		wi.Reqs = append(wi.Reqs, row)
	}
	return wi
}

func TestWorkerPanicRetriedTransparently(t *testing.T) {
	var calls atomic.Int64
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		if calls.Add(1) == 1 {
			panic("first run dies")
		}
		return &solve.Solution{Cost: 5}, nil
	})
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	sol, err := job.Solution()
	if err != nil {
		t.Fatalf("retried job failed: %v", err)
	}
	if sol.Cost != 5 {
		t.Fatalf("cost = %d, want 5", sol.Cost)
	}
	st := job.Snapshot()
	if st.State != string(JobDone) || !st.Retried {
		t.Fatalf("state=%s retried=%t, want done/true", st.State, st.Retried)
	}
	if got := s.metrics.retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	s.metrics.mu.Lock()
	panics := s.metrics.panics["svc-test"]
	s.metrics.mu.Unlock()
	if panics != 1 {
		t.Fatalf("panics = %d, want 1", panics)
	}
}

func TestWorkerPanicTwiceFailsWithTypedError(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		panic("always dies")
	})
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	_, err = job.Solution()
	var pe *solve.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("failed job error = %v (%T), want *solve.PanicError", err, err)
	}
	if pe.Value != "always dies" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if got := s.metrics.retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1 (one-shot)", got)
	}
	s.metrics.mu.Lock()
	panics := s.metrics.panics["svc-test"]
	s.metrics.mu.Unlock()
	if panics != 2 {
		t.Fatalf("panics = %d, want 2", panics)
	}

	// The worker survived both panics: the server still serves.
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 9}, nil
	})
	req := tinyRequest("svc-test")
	req.Options.Seed = 77
	next, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, next)
	if sol, err := next.Solution(); err != nil || sol.Cost != 9 {
		t.Fatalf("post-panic solve: %v / %+v", err, sol)
	}
}

func TestBreakerTripsFailsFastAndRecovers(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		panic("unhealthy")
	})
	var clkMu sync.Mutex
	now := time.Unix(5000, 0)
	cfg := Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Minute}
	cfg.breakerNow = func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return now
	}
	s := New(cfg)
	defer shutdown(t, s)

	// One job = two panics (the run and its one-shot retry), which
	// meets the threshold and opens the breaker.
	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := s.gauges().breakerStates["svc-test"]; st != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}

	// Open breaker: fail fast with a typed, Retry-After-carrying error.
	req := tinyRequest("svc-test")
	req.Options.Seed = 2
	_, _, err = s.Submit(req)
	var unavailable *SolverUnavailableError
	if !errors.As(err, &unavailable) {
		t.Fatalf("submit under open breaker = %v, want *SolverUnavailableError", err)
	}
	if unavailable.Solver != "svc-test" || unavailable.RetryAfter <= 0 {
		t.Fatalf("unexpected unavailable error: %+v", unavailable)
	}
	if s.metrics.breakerRejected.Load() == 0 {
		t.Fatal("breakerRejected not counted")
	}

	// Cooldown elapses and the solver heals: the next submit is the
	// half-open probe, its success closes the breaker.
	clkMu.Lock()
	now = now.Add(2 * time.Minute)
	clkMu.Unlock()
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 3}, nil
	})
	req = tinyRequest("svc-test")
	req.Options.Seed = 3
	probe, _, err := s.Submit(req)
	if err != nil {
		t.Fatalf("probe submit refused: %v", err)
	}
	waitDone(t, probe)
	if sol, err := probe.Solution(); err != nil || sol.Cost != 3 {
		t.Fatalf("probe: %v / %+v", err, sol)
	}
	if st := s.gauges().breakerStates["svc-test"]; st != resilience.BreakerClosed {
		t.Fatalf("breaker state after probe = %v, want closed", st)
	}
	req = tinyRequest("svc-test")
	req.Options.Seed = 4
	after, _, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit after recovery refused: %v", err)
	}
	waitDone(t, after)
}

// TestQueuedCancelFreesSlot is the regression test for queue-slot
// leakage: cancelling a job that is still queued (not running) must
// finish it canceled immediately and free its slot for new submits,
// reflected in the queue-depth gauge.
func TestQueuedCancelFreesSlot(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return &solve.Solution{Cost: 1}, nil
	})
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)
	defer close(gate)

	submit := func(seed int64) (*Job, error) {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		job, _, err := s.Submit(req)
		return job, err
	}
	running, err := submit(1)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now busy

	queued, err := submit(2)
	if err != nil {
		t.Fatal(err)
	}
	if g := s.gauges(); g.queueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", g.queueDepth)
	}
	if _, err := submit(3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// Cancel of a queued job is synchronous: terminal on return, with
	// the slot already free — no worker involvement (the worker is
	// still parked on the gate).
	select {
	case <-queued.Done():
	default:
		t.Fatal("canceled queued job not terminal on Cancel return")
	}
	if st := queued.Snapshot(); st.State != string(JobCanceled) {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if g := s.gauges(); g.queueDepth != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", g.queueDepth)
	}
	refill, err := submit(4)
	if err != nil {
		t.Fatalf("freed slot refused a submit: %v", err)
	}
	_ = running
	_ = refill
}

func TestFaultInjectionWorkerSite(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Set("service.worker", faultinject.Action{Panic: true, Times: 1})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 7}, nil
	})
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if sol, err := job.Solution(); err != nil || sol.Cost != 7 {
		t.Fatalf("injected worker panic not retried away: %v / %+v", err, sol)
	}
	if got := faultinject.Fired("service.worker"); got != 1 {
		t.Fatalf("site fired %d times, want 1", got)
	}
	if !job.Snapshot().Retried {
		t.Fatal("job not marked retried")
	}
}

func TestInjectedBudgetDegradesAndSkipsCache(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Set("solve.options", faultinject.Action{MaxFrontierBytes: 256})
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	req := &SolveRequest{Solver: "exact", Instance: bigWire()}
	job, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	sol, err := job.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Degraded || !sol.Stats.Truncated {
		t.Fatalf("injected 256-byte budget did not degrade: %+v", sol.Stats)
	}
	if sol.Exact {
		t.Fatal("degraded result claims exactness")
	}
	if s.metrics.degraded.Load() != 1 {
		t.Fatal("degraded jobs not counted")
	}

	// The degradation came from below the hash layer: the result must
	// not be cached under the unbudgeted key.  With the fault cleared,
	// the same request solves fresh and exactly.
	faultinject.Reset()
	again, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("injected-budget degraded result was cached as the unbudgeted answer")
	}
	waitDone(t, again)
	fresh, err := again.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.Degraded {
		t.Fatal("fresh run still degraded after fault cleared")
	}
	if fresh.Cost > sol.Cost {
		t.Fatalf("exact cost %d worse than degraded %d", fresh.Cost, sol.Cost)
	}
}

func TestClientBudgetDegradedResultCached(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	req := &SolveRequest{Solver: "exact", Instance: bigWire()}
	req.Options.MaxFrontierBytes = 256
	job, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	sol, err := job.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Degraded || sol.Exact {
		t.Fatalf("client 256-byte budget: degraded=%t exact=%t, want true/false", sol.Stats.Degraded, sol.Exact)
	}
	// The budget is part of the content address, so the degraded result
	// is safely cacheable under its own key — and stays flagged.
	hit, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("budgeted resubmit missed the cache")
	}
	cached, err := hit.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Stats.Degraded || cached.Exact {
		t.Fatal("cache returned a degraded result without its degraded flag")
	}
}

func TestServerBudgetClampDegrades(t *testing.T) {
	s := New(Config{Workers: 1, MaxFrontierBytes: 256})
	defer shutdown(t, s)

	job, _, err := s.Submit(&SolveRequest{Solver: "exact", Instance: bigWire()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	sol, err := job.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Degraded {
		t.Fatalf("server-side budget clamp not applied: %+v", sol.Stats)
	}
}

func TestShutdownDrainsUnderInjectedSlowness(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Set("solve.run", faultinject.Action{Delay: 30 * time.Millisecond})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 1}, nil
	})
	s := New(Config{Workers: 2, QueueDepth: 16})

	var jobs []*Job
	for seed := int64(1); seed <= 6; seed++ {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		job, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	shutdown(t, s)
	for _, j := range jobs {
		st := j.Snapshot()
		if !JobState(st.State).Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", j.ID, st.State)
		}
	}
}
