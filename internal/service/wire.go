package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/shyra"
	"repro/internal/solve"
	"repro/internal/traceio"
)

// SolveRequest is the JSON body of POST /v1/jobs and POST /v1/solve.
// The instance comes either from a bundled application (App, resolved
// through the core app registry and traced on the fly) or inline
// (Instance, in the traceio requirement conventions); exactly one of
// the two must be set.
type SolveRequest struct {
	// Solver is the registry name to run (e.g. "aligned", "ga",
	// "exact").
	Solver string `json:"solver"`

	// App names a bundled application ("counter", "toggle", ...).
	App string `json:"app,omitempty"`
	// Gran is the requirement-extraction granularity for App: "bit"
	// (default), "unit" or "delta".
	Gran string `json:"gran,omitempty"`

	// Instance carries the requirement sequences inline.
	Instance *WireInstance `json:"instance,omitempty"`

	// Kind selects the problem view: "mtswitch" (default, the m-task
	// fully synchronized Switch model) or "switch" (the flattened m=1
	// single-task view).
	Kind string `json:"kind,omitempty"`
	// Upload is the upload mode for mtswitch: "parallel" (default) or
	// "sequential".
	Upload string `json:"upload,omitempty"`
	// W overrides the single-task hyperreconfiguration cost for
	// kind "switch" (default |X|, the paper's typical special case).
	W int64 `json:"w,omitempty"`

	// Options tune the solver; zero values select per-solver defaults.
	Options WireOptions `json:"options"`
	// TimeoutMS bounds the solve wall time; the server may clamp it to
	// its configured maximum.  0 means the server maximum (or no
	// deadline if the server has none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WireInstance is the inline multi-task instance: the same data the
// traceio CSV requirement format carries, as JSON.  Reqs is step-major
// like the CSV rows: Reqs[i][j] is task j's requirement at step i, an
// LSB-first bit string over the task's local universe.
type WireInstance struct {
	Tasks []WireTask `json:"tasks"`
	Reqs  [][]string `json:"reqs"`
}

// Inline-instance dimension bounds.  A request inside the body-size
// limit can still describe a combinatorially huge problem (the
// candidate catalog alone is O(m·n·l) packed vectors), so the service
// refuses oversized dimensions up front with a typed 413 instead of
// admitting a job that exhausts the solver.
const (
	maxWireTasks = 64
	maxWireSteps = 1 << 16
	maxWireLocal = 1 << 14
)

// TooLargeError rejects an inline instance whose declared dimensions
// exceed the service bounds; the HTTP layer maps it to 413.
type TooLargeError struct {
	What       string
	Got, Limit int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("instance too large: %s %d exceeds limit %d", e.What, e.Got, e.Limit)
}

// WireTask mirrors model.Task (the traceio CSV header cell
// "name:local:v").
type WireTask struct {
	Name  string `json:"name"`
	Local int    `json:"local"`
	V     int64  `json:"v"`
}

// WireOptions is the JSON view of solve.Options (minus Timeout, which
// travels as SolveRequest.TimeoutMS).
type WireOptions struct {
	MaxStates     int     `json:"max_states,omitempty"`
	MaxCandidates int     `json:"max_candidates,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Pop           int     `json:"pop,omitempty"`
	Generations   int     `json:"generations,omitempty"`
	MutRate       float64 `json:"mut_rate,omitempty"`
	CrossRate     float64 `json:"cross_rate,omitempty"`
	TournamentK   int     `json:"tournament_k,omitempty"`
	Elites        int     `json:"elites,omitempty"`
	NoSeeds       bool    `json:"no_heuristic_seeds,omitempty"`
	Crossover     string  `json:"crossover,omitempty"`
	Iterations    int     `json:"iterations,omitempty"`
	InitialTemp   float64 `json:"initial_temp,omitempty"`
	Cooling       float64 `json:"cooling,omitempty"`
	IntervalK     int     `json:"interval_k,omitempty"`
	// MaxFrontierBytes budgets the solver's frontier memory; exceeding
	// it degrades the exact solver to a beam search (flagged in the
	// result stats) instead of exhausting server memory.
	MaxFrontierBytes int64 `json:"max_frontier_bytes,omitempty"`
	// DisablePruning turns off the exact solver's pruned-search layer
	// (baselining knob; never changes an untruncated cost).
	DisablePruning bool `json:"disable_pruning,omitempty"`
	// Partitions is the exact-partitioned solver's window count
	// (0 = automatic, 1 = monolithic).
	Partitions int `json:"partitions,omitempty"`
	// MaxCutColumns caps the weighted column cut the partition planner
	// may accept (0 = uncapped).
	MaxCutColumns int `json:"max_cut_columns,omitempty"`
}

// toSolve maps the wire options onto solve.Options.
func (o WireOptions) toSolve() (solve.Options, error) {
	out := solve.Options{
		MaxStates:        o.MaxStates,
		MaxCandidates:    o.MaxCandidates,
		MaxFrontierBytes: o.MaxFrontierBytes,
		DisablePruning:   o.DisablePruning,
		Workers:          o.Workers,
		Seed:             o.Seed,
		Pop:              o.Pop,
		Generations:      o.Generations,
		MutRate:          o.MutRate,
		CrossRate:        o.CrossRate,
		TournamentK:      o.TournamentK,
		Elites:           o.Elites,
		NoHeuristicSeeds: o.NoSeeds,
		Iterations:       o.Iterations,
		InitialTemp:      o.InitialTemp,
		Cooling:          o.Cooling,
		IntervalK:        o.IntervalK,
		Partitions:       o.Partitions,
		MaxCutColumns:    o.MaxCutColumns,
	}
	switch o.Crossover {
	case "", "uniform":
		out.Crossover = solve.CrossUniform
	case "two-point":
		out.Crossover = solve.CrossTwoPoint
	case "task-row":
		out.Crossover = solve.CrossTaskRow
	default:
		return out, fmt.Errorf("unknown crossover %q (want uniform, two-point or task-row)", o.Crossover)
	}
	return out, nil
}

// WireInstanceFrom converts a model instance to the wire form (the
// inverse of the inline-instance resolution; used by the bench load
// generator and by clients shipping generated workloads).
func WireInstanceFrom(mt *model.MTSwitchInstance) *WireInstance {
	out := &WireInstance{Tasks: make([]WireTask, mt.NumTasks())}
	for j, t := range mt.Tasks {
		out.Tasks[j] = WireTask{Name: t.Name, Local: t.Local, V: int64(t.V)}
	}
	out.Reqs = make([][]string, mt.Steps())
	for i := 0; i < mt.Steps(); i++ {
		row := make([]string, mt.NumTasks())
		for j := 0; j < mt.NumTasks(); j++ {
			row[j] = mt.Reqs[j][i].String()
		}
		out.Reqs[i] = row
	}
	return out
}

// toModel builds the model instance from the wire form.
func (wi *WireInstance) toModel() (*model.MTSwitchInstance, error) {
	if len(wi.Tasks) == 0 {
		return nil, fmt.Errorf("instance has no tasks")
	}
	if len(wi.Tasks) > maxWireTasks {
		return nil, &TooLargeError{What: "task count", Got: len(wi.Tasks), Limit: maxWireTasks}
	}
	if len(wi.Reqs) > maxWireSteps {
		return nil, &TooLargeError{What: "step count", Got: len(wi.Reqs), Limit: maxWireSteps}
	}
	tasks := make([]model.Task, len(wi.Tasks))
	for j, t := range wi.Tasks {
		if t.Local > maxWireLocal {
			return nil, &TooLargeError{What: fmt.Sprintf("task %q local universe", t.Name), Got: t.Local, Limit: maxWireLocal}
		}
		tasks[j] = model.Task{Name: t.Name, Local: t.Local, V: model.Cost(t.V)}
	}
	reqs := make([][]bitset.Set, len(tasks))
	for j := range reqs {
		reqs[j] = make([]bitset.Set, 0, len(wi.Reqs))
	}
	for i, row := range wi.Reqs {
		if len(row) != len(tasks) {
			return nil, fmt.Errorf("reqs row %d has %d cells, want %d", i, len(row), len(tasks))
		}
		for j, cell := range row {
			s, err := bitset.Parse(cell)
			if err != nil {
				return nil, fmt.Errorf("reqs row %d task %q: %w", i, tasks[j].Name, err)
			}
			if s.Universe() != tasks[j].Local {
				return nil, fmt.Errorf("reqs row %d task %q bit string length %d, want %d",
					i, tasks[j].Name, s.Universe(), tasks[j].Local)
			}
			reqs[j] = append(reqs[j], s)
		}
	}
	return model.NewMTSwitchInstance(tasks, reqs)
}

// resolved is a fully validated request, ready to hash and run.
type resolved struct {
	inst   *solve.Instance
	mt     *model.MTSwitchInstance // retained for schedule serialization
	solver string
	opts   solve.Options
}

// resolve validates the request and builds the normalized solve
// instance.  All errors are client errors (bad request).
func (r *SolveRequest) resolve() (*resolved, error) {
	if r.Solver == "" {
		return nil, fmt.Errorf("missing solver (registered: %v)", solve.Names())
	}
	if _, err := solve.Get(r.Solver); err != nil {
		return nil, err
	}
	if (r.App == "") == (r.Instance == nil) {
		return nil, fmt.Errorf("exactly one of app and instance must be set")
	}

	var mt *model.MTSwitchInstance
	var err error
	if r.App != "" {
		gran := r.Gran
		if gran == "" {
			gran = "bit"
		}
		g, err := shyra.ParseGranularity(gran)
		if err != nil {
			return nil, err
		}
		tr, err := core.AppTrace(r.App)
		if err != nil {
			return nil, err
		}
		mt, err = tr.MTInstance(g)
		if err != nil {
			return nil, err
		}
	} else {
		if r.Gran != "" {
			return nil, fmt.Errorf("gran only applies to app requests")
		}
		mt, err = r.Instance.toModel()
		if err != nil {
			return nil, err
		}
	}

	opts, err := r.Options.toSolve()
	if err != nil {
		return nil, err
	}
	if r.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", r.TimeoutMS)
	}
	opts.Timeout = time.Duration(r.TimeoutMS) * time.Millisecond
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	out := &resolved{solver: r.Solver, opts: opts}
	switch r.Kind {
	case "", "mtswitch":
		if r.W != 0 {
			return nil, fmt.Errorf("w only applies to kind switch")
		}
		var cost model.CostOptions
		switch r.Upload {
		case "", "parallel":
			cost = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
		case "sequential":
			cost = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
		default:
			return nil, fmt.Errorf("unknown upload mode %q (want parallel or sequential)", r.Upload)
		}
		out.mt = mt
		out.inst = solve.NewMT(mt, cost)
	case "switch":
		if r.Upload != "" {
			return nil, fmt.Errorf("upload only applies to kind mtswitch")
		}
		single, err := mt.SingleTaskView()
		if err != nil {
			return nil, err
		}
		if r.W < 0 {
			return nil, fmt.Errorf("negative w %d", r.W)
		}
		if r.W > 0 {
			single.W = model.Cost(r.W)
		}
		out.inst = solve.NewSwitch(single)
	default:
		return nil, fmt.Errorf("unknown kind %q (want mtswitch or switch)", r.Kind)
	}
	return out, nil
}

// WireStats is the JSON view of solve.Stats.
type WireStats struct {
	StatesExpanded   int64 `json:"states_expanded"`
	DedupHits        int64 `json:"dedup_hits"`
	CandidatesPruned int64 `json:"candidates_pruned"`
	// StatesPruned is the pruned search layer's total eliminations
	// (dominance hits plus bound cutoffs).
	StatesPruned  int64 `json:"states_pruned,omitempty"`
	DominanceHits int64 `json:"dominance_hits,omitempty"`
	BoundCutoffs  int64 `json:"bound_cutoffs,omitempty"`
	// IncumbentTightenings counts mid-flight adoptions of an externally
	// published incumbent bound (portfolio races only).
	IncumbentTightenings int64 `json:"incumbent_tightenings,omitempty"`
	// PreprocessReduction counts requirement-matrix cells removed by
	// instance preprocessing before the DP ran.
	PreprocessReduction int64 `json:"preprocess_reduction,omitempty"`
	// BudgetDropped counts states the memory budget discarded on a
	// degraded run — how lossy the degradation was.
	BudgetDropped int64 `json:"budget_dropped,omitempty"`
	Evaluations   int64 `json:"evaluations"`
	// Partitions, CutColumns and StitchBound describe a partitioned
	// solve: window count, weighted column cut, and the certified
	// additive slack (the optimum lies in [cost − stitch_bound, cost]).
	Partitions  int64   `json:"partitions,omitempty"`
	CutColumns  int64   `json:"cut_columns,omitempty"`
	StitchBound int64   `json:"stitch_bound,omitempty"`
	StitchMS    float64 `json:"stitch_ms,omitempty"`
	Truncated   bool    `json:"truncated,omitempty"`
	// Degraded reports the solver gave up exactness to stay inside its
	// memory budget; such results are never exact.
	Degraded bool    `json:"degraded,omitempty"`
	WallMS   float64 `json:"wall_ms"`
}

// WireSolution is the JSON view of a solve.Solution.  Switch schedules
// carry segment starts and hypercontext bit strings; mtswitch schedules
// carry the traceio schedule JSON document verbatim.
type WireSolution struct {
	Kind       string    `json:"kind"`
	Cost       int64     `json:"cost"`
	Exact      bool      `json:"exact"`
	HyperSteps int       `json:"hyper_steps"`
	Stats      WireStats `json:"stats"`

	SegStarts     []int           `json:"seg_starts,omitempty"`
	Hypercontexts []string        `json:"hypercontexts,omitempty"`
	Schedule      json.RawMessage `json:"schedule,omitempty"`
}

// wireMemo renders a solution's wire form exactly once and shares it
// across every job, poll and cache hit serving that solution.
type wireMemo struct {
	once sync.Once
	ws   *WireSolution
	err  error
}

func (m *wireMemo) get(sol *solve.Solution, mt *model.MTSwitchInstance) (*WireSolution, error) {
	m.once.Do(func() { m.ws, m.err = wireSolution(sol, mt) })
	return m.ws, m.err
}

// wireStats maps run statistics onto their wire view.
func wireStats(st solve.Stats) WireStats {
	return WireStats{
		StatesExpanded:       st.StatesExpanded,
		DedupHits:            st.DedupHits,
		CandidatesPruned:     st.CandidatesPruned,
		StatesPruned:         st.StatesPruned,
		DominanceHits:        st.DominanceHits,
		BoundCutoffs:         st.BoundCutoffs,
		IncumbentTightenings: st.IncumbentTightenings,
		PreprocessReduction:  st.PreprocessReduction,
		BudgetDropped:        st.BudgetDropped,
		Evaluations:          st.Evaluations,
		Partitions:           st.Partitions,
		CutColumns:           st.CutColumns,
		StitchBound:          st.StitchBound,
		StitchMS:             float64(st.StitchTime) / float64(time.Millisecond),
		Truncated:            st.Truncated,
		Degraded:             st.Degraded,
		WallMS:               float64(st.WallTime) / float64(time.Millisecond),
	}
}

// statsFromWire inverts wireStats (used by the peer-fill decoder, so a
// peer-served result reports the original solve's work).
func statsFromWire(ws WireStats) solve.Stats {
	return solve.Stats{
		StatesExpanded:       ws.StatesExpanded,
		DedupHits:            ws.DedupHits,
		CandidatesPruned:     ws.CandidatesPruned,
		StatesPruned:         ws.StatesPruned,
		DominanceHits:        ws.DominanceHits,
		BoundCutoffs:         ws.BoundCutoffs,
		IncumbentTightenings: ws.IncumbentTightenings,
		PreprocessReduction:  ws.PreprocessReduction,
		BudgetDropped:        ws.BudgetDropped,
		Evaluations:          ws.Evaluations,
		Partitions:           ws.Partitions,
		CutColumns:           ws.CutColumns,
		StitchBound:          ws.StitchBound,
		StitchTime:           time.Duration(ws.StitchMS * float64(time.Millisecond)),
		Truncated:            ws.Truncated,
		Degraded:             ws.Degraded,
		WallTime:             time.Duration(ws.WallMS * float64(time.Millisecond)),
	}
}

// wireSolution renders a solution; mt is the instance the schedule was
// solved for (nil for single-task kinds).
func wireSolution(sol *solve.Solution, mt *model.MTSwitchInstance) (*WireSolution, error) {
	out := &WireSolution{
		Kind:  sol.Kind.String(),
		Cost:  int64(sol.Cost),
		Exact: sol.Exact,
		Stats: wireStats(sol.Stats),
	}
	switch sol.Kind {
	case solve.KindSwitch:
		out.HyperSteps = len(sol.Seg.Starts)
		out.SegStarts = sol.Seg.Starts
		for _, h := range sol.Hypercontexts {
			out.Hypercontexts = append(out.Hypercontexts, h.String())
		}
	case solve.KindMTSwitch:
		out.HyperSteps = core.HyperCount(sol.MTSched)
		if mt != nil && sol.MTSched != nil {
			var buf bytes.Buffer
			if err := traceio.WriteScheduleJSON(&buf, mt, sol.MTSched); err != nil {
				return nil, err
			}
			out.Schedule = json.RawMessage(buf.Bytes())
		}
	}
	return out, nil
}

// JobStatus is the JSON view of a job, returned by every job endpoint.
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Solver string `json:"solver"`
	// Hash is the content-address of the request (instance, solver,
	// options): identical requests report identical hashes.
	Hash string `json:"hash"`
	// CacheHit reports the job was answered from the result cache
	// without running a solver.
	CacheHit bool `json:"cache_hit"`
	// Deduped reports this submit attached to an identical in-flight
	// job instead of enqueueing a new one.
	Deduped bool `json:"deduped,omitempty"`
	// Retried reports the job's worker panicked once and the job was
	// transparently requeued.
	Retried bool `json:"retried,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Result *WireSolution `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}
