package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/solve"
)

// The svc-test solver delegates to a swappable function so each test
// controls blocking and counting.  Tests that set it must not run in
// parallel.
var testSolveFn atomic.Value // of func(ctx, inst, opts) (*solve.Solution, error)

func init() {
	solve.Register(solve.NewSolver("svc-test",
		solve.Capabilities{Kinds: []solve.Kind{solve.KindSwitch, solve.KindMTSwitch}},
		func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
			fn := testSolveFn.Load().(func(context.Context, *solve.Instance, solve.Options) (*solve.Solution, error))
			return fn(ctx, inst, opts)
		}))
}

func setTestSolver(fn func(context.Context, *solve.Instance, solve.Options) (*solve.Solution, error)) {
	testSolveFn.Store(fn)
}

// tinyRequest is a minimal inline two-task instance.
func tinyRequest(solver string) *SolveRequest {
	return &SolveRequest{
		Solver: solver,
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "A", Local: 2, V: 2}, {Name: "B", Local: 1, V: 1}},
			Reqs:  [][]string{{"10", "1"}, {"01", "0"}, {"11", "1"}},
		},
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestEndToEndMatchesDirectRun(t *testing.T) {
	// The served result must be byte-for-byte the direct solve.Run
	// outcome: same cost, same exactness.
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	req := &SolveRequest{Solver: "aligned", App: "counter"}
	job, deduped, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || job.CacheHit {
		t.Fatal("first submit should be a fresh job")
	}
	waitDone(t, job)
	sol, err := job.Solution()
	if err != nil {
		t.Fatal(err)
	}

	res := mustResolve(t, req)
	direct, err := solve.Run(context.Background(), "aligned", res.inst, res.opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != direct.Cost || sol.Exact != direct.Exact {
		t.Fatalf("served cost=%d exact=%t, direct cost=%d exact=%t",
			sol.Cost, sol.Exact, direct.Cost, direct.Exact)
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	req := &SolveRequest{Solver: "aligned", App: "counter"}
	first, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)

	second, deduped, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("resubmit after completion should hit the cache, not dedup")
	}
	if !second.CacheHit {
		t.Fatal("resubmit was not a cache hit")
	}
	waitDone(t, second) // already closed
	a, _ := first.Solution()
	b, _ := second.Solution()
	if a != b {
		t.Fatal("cache hit did not return the cached solution")
	}
	if got := s.metrics.cacheHits.Load(); got != 1 {
		t.Fatalf("cacheHits = %d, want 1", got)
	}
	// An equivalent inline phrasing of the same instance also hits.
	third, _, err := s.Submit(&SolveRequest{Solver: "aligned", Instance: counterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatal("inline phrasing missed the cache")
	}
}

func TestSingleflightDedup(t *testing.T) {
	// N concurrent submissions of one instance must run the solver
	// exactly once; every submitter shares the one job.
	const n = 32
	var invocations atomic.Int64
	gate := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		invocations.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &solve.Solution{Cost: 42}, nil
	})

	s := New(Config{Workers: 4})
	defer shutdown(t, s)

	var wg sync.WaitGroup
	jobs := make([]*Job, n)
	dedups := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, deduped, err := s.Submit(tinyRequest("svc-test"))
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i] = job
			dedups[i] = deduped
		}(i)
	}
	wg.Wait()
	close(gate) // all submits issued before any solve may finish

	fresh := 0
	for i := 0; i < n; i++ {
		if jobs[i] == nil {
			t.Fatal("missing job")
		}
		if jobs[i] != jobs[0] {
			t.Fatalf("submit %d got a different job (%s vs %s)", i, jobs[i].ID, jobs[0].ID)
		}
		if !dedups[i] {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d fresh submissions, want exactly 1", fresh)
	}
	waitDone(t, jobs[0])
	if got := invocations.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want exactly 1", got)
	}
	if got := s.metrics.dedupHits.Load(); got != n-1 {
		t.Fatalf("dedupHits = %d, want %d", got, n-1)
	}
	if got := s.metrics.cacheHits.Load(); got != 0 {
		t.Fatalf("cacheHits = %d, want 0 (job never finished before the last submit)", got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		close(started)
		<-ctx.Done() // a solver hot loop parked on its checkpoint
		return nil, ctx.Err()
	})
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if _, err := job.Solution(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job error = %v, want context.Canceled", err)
	}
	if st := job.Snapshot(); st.State != string(JobCanceled) {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := s.Cancel("job-does-not-exist"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("cancel of unknown job = %v, want ErrNoSuchJob", err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)
	defer close(gate)

	// Distinct instances so dedup does not absorb them: vary the seed
	// option (part of the content address).
	submit := func(seed int64) (*Job, error) {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		job, _, err := s.Submit(req)
		return job, err
	}
	if _, err := submit(1); err != nil { // taken by the worker
		t.Fatal(err)
	}
	// Queue capacity 1: one more fits (timing-tolerant: the worker may
	// or may not have dequeued the first yet, so accept a reject on the
	// second and require it by the third).
	full := false
	for seed := int64(2); seed <= 3; seed++ {
		if _, err := submit(seed); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			full = true
		}
	}
	if !full {
		t.Fatal("queue never reported full")
	}
	if s.metrics.rejected.Load() == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

func TestGracefulShutdownDrainsAndCancels(t *testing.T) {
	running := make(chan struct{}, 1)
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		running <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := New(Config{Workers: 1, QueueDepth: 8})

	var jobs []*Job
	for seed := int64(1); seed <= 3; seed++ {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		job, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	<-running // one in flight, two queued

	shutdown(t, s)
	for _, j := range jobs {
		waitDone(t, j)
		if st := j.Snapshot(); st.State != string(JobCanceled) {
			t.Fatalf("job %s state = %s after shutdown, want canceled", j.ID, st.State)
		}
	}
	if _, _, err := s.Submit(tinyRequest("svc-test")); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown = %v, want ErrShuttingDown", err)
	}
	// Shutdown is idempotent.
	shutdown(t, s)
}

func TestJobRetentionEvictsOldest(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 1}, nil
	})
	s := New(Config{Workers: 1, JobRetention: 2, CacheEntries: -1})
	defer shutdown(t, s)

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		job, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		ids = append(ids, job.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest finished job should have been forgotten")
	}
	if _, ok := s.Job(ids[2]); !ok {
		t.Fatal("newest job should still be pollable")
	}
}

func TestSolveTimeoutFails(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := New(Config{Workers: 1, MaxSolveTimeout: 20 * time.Millisecond})
	defer shutdown(t, s)

	job, _, err := s.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Snapshot(); st.State != string(JobFailed) {
		t.Fatalf("timed-out job state = %s, want failed", st.State)
	}
	if _, err := job.Solution(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job error = %v, want deadline exceeded", err)
	}
}
