package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSolveRequest drives the /v1/solve JSON decode-and-resolve path
// with arbitrary bytes: whatever arrives, the server must answer with
// a value or an error — never a panic, and never an instance that
// slips past the dimension bounds.
func FuzzSolveRequest(f *testing.F) {
	// Seeds from the service test fixtures: the canonical request
	// shapes plus near-miss corruptions of each.
	seed := func(v any) {
		data, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(&SolveRequest{Solver: "aligned", App: "counter"})
	seed(&SolveRequest{Solver: "exact", App: "toggle", Gran: "unit", TimeoutMS: 50})
	seed(&SolveRequest{
		Solver: "aligned",
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "A", Local: 2, V: 2}, {Name: "B", Local: 1, V: 1}},
			Reqs:  [][]string{{"10", "1"}, {"01", "0"}, {"11", "1"}},
		},
	})
	seed(&SolveRequest{Solver: "ga", App: "counter", Options: WireOptions{Pop: 10, Generations: 5, Seed: 1}})
	seed(&SolveRequest{Solver: "exact", App: "counter", Kind: "switch", W: 3})
	seed(&SolveRequest{Solver: "exact", App: "counter", Options: WireOptions{MaxFrontierBytes: 256}})
	f.Add([]byte(`{"solver":"exact","instance":{"tasks":[{"name":"A","local":-1}],"reqs":[["1"]]}}`))
	f.Add([]byte(`{"solver":"exact","instance":{"tasks":[],"reqs":[[]]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeSolveRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		res, err := req.resolve()
		if err != nil {
			return
		}
		// Anything that resolves must be hashable (the submit path
		// depends on it) and inside the dimension bounds.
		if _, err := requestKey(res.inst, res.solver, res.opts); err != nil {
			t.Fatalf("resolved request not hashable: %v", err)
		}
		if res.mt != nil {
			if res.mt.NumTasks() > maxWireTasks || res.mt.Steps() > maxWireSteps {
				t.Fatalf("resolved instance exceeds dimension bounds: m=%d n=%d",
					res.mt.NumTasks(), res.mt.Steps())
			}
		}
	})
}

// FuzzPeerFill drives the peer-fill wire decoder (the body of a
// GET /v1/cache/{key} hit) with arbitrary bytes: a value or an error,
// never a panic — and every accepted entry must stay inside the
// service dimension bounds and survive a re-encode round trip.
func FuzzPeerFill(f *testing.F) {
	seed := func(v any) {
		data, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	key := "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	seed(&PeerEntry{Key: key, Cost: 12, Exact: true, Mask: []string{"0101", "1100"}})
	seed(&PeerEntry{Key: key, Cost: 0, Mask: []string{"1"}})
	seed(&PeerEntry{Key: key, Cost: 3, Mask: []string{"000", "111", "010"},
		Stats: WireStats{StatesExpanded: 4, DedupHits: 9, WallMS: 2}})
	f.Add([]byte(`{"key":"` + key + `","cost":-5,"mask":["1"]}`))
	f.Add([]byte(`{"key":"UPPER","cost":1,"mask":["1"]}`))
	f.Add([]byte(`{"key":"` + key + `","cost":1,"mask":["10","1"]}`))
	f.Add([]byte(`{"key":"` + key + `","cost":1,"mask":["1x"]}`))
	f.Add([]byte(`{"key":"` + key + `","cost":1,"mask":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		pe, err := DecodePeerEntry(data)
		if err != nil {
			return
		}
		if len(pe.Mask) == 0 || len(pe.Mask) > maxWireTasks {
			t.Fatalf("accepted mask with %d rows", len(pe.Mask))
		}
		width := len(pe.Mask[0])
		if width > maxWireSteps {
			t.Fatalf("accepted mask with %d steps", width)
		}
		for _, row := range pe.Mask {
			if len(row) != width {
				t.Fatalf("accepted ragged mask: %v", pe.Mask)
			}
		}
		// The accepted entry converts to a store entry and re-encodes to
		// an equivalent wire form without panicking.
		entry := pe.entry()
		again := peerEntryOf(pe.Key, entry)
		if again.Cost != pe.Cost || again.Exact != pe.Exact || len(again.Mask) != len(pe.Mask) {
			t.Fatalf("round trip drifted: %+v vs %+v", again, pe)
		}
		for i := range pe.Mask {
			if again.Mask[i] != pe.Mask[i] {
				t.Fatalf("mask row %d drifted: %q vs %q", i, again.Mask[i], pe.Mask[i])
			}
		}
	})
}
