package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// Config tunes a Server.  The zero value selects sensible defaults.
type Config struct {
	// Workers is the solve pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; submits beyond it are rejected
	// with ErrQueueFull (default 256).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 1024; negative
	// disables caching).
	CacheEntries int
	// JobRetention bounds how many finished jobs stay pollable; the
	// oldest finished jobs are forgotten beyond it (default 4096).
	JobRetention int
	// MaxSolveTimeout clamps every job's solve deadline; jobs that
	// request no timeout get exactly this one.  0 means no server-side
	// deadline.
	MaxSolveTimeout time.Duration
	// MaxFrontierBytes clamps every job's solve memory budget
	// (Options.MaxFrontierBytes); jobs that request no budget, or a
	// larger one, get exactly this one.  Budget exhaustion degrades the
	// exact solver to a beam search instead of exhausting server
	// memory.  0 means no server-side budget.
	MaxFrontierBytes int64
	// BreakerThreshold is how many consecutive panics or timeouts of
	// one solver trip its circuit breaker (default 5; negative disables
	// the breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fails fast before
	// admitting a half-open probe (default 10s).
	BreakerCooldown time.Duration
	// MaxSessions bounds the concurrent streaming sessions; creates
	// beyond it are rejected with ErrSessionLimit (default 64).
	MaxSessions int
	// SessionBytes budgets the total frontier memory of live session
	// engines; beyond it the least recently used engines are
	// checkpointed out and closed (default 64 MiB; negative disables
	// eviction).
	SessionBytes int64

	// PartitionSteps, when positive, auto-dispatches "exact" mtswitch
	// submissions at or above this step count to the exact-partitioned
	// solver (the monolithic DP's frontier is the scaling wall; the
	// partitioned solver trades a certified stitch bound for it).  The
	// rewrite happens before hashing, so dispatched and directly
	// requested partitioned solves share cache lines.  0 disables.
	PartitionSteps int

	// DataDir, when set, enables durable state: job submissions,
	// completions and session step batches journal to a write-ahead log
	// under it, the canonical store and evicted engine checkpoints spill
	// to disk beside it, and Open replays everything on the next boot
	// (see durable.go).  Empty runs fully in-memory.
	DataDir string
	// Fsync is the WAL flush policy (FsyncAlways by default; see
	// durable.ParseFsyncPolicy for the flag form).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the background flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// WALSegmentBytes is the journal segment rotation size (default
	// 8 MiB).
	WALSegmentBytes int64

	// NodeID names this node in /v1/healthz and cluster membership
	// (default "hyperd").
	NodeID string
	// PeerFill, when set, is consulted on a canonical-cache miss before
	// a solve is enqueued: a hit replays a sibling node's canonical
	// entry instead of solving (see internal/cluster).
	PeerFill PeerFiller
	// ClusterStatus, when set, supplies the ring membership view
	// surfaced in /v1/healthz.
	ClusterStatus func() *RingStatus

	// breakerNow injects the breaker clock (tests only).
	breakerNow func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 4096
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionBytes == 0 {
		c.SessionBytes = 64 << 20
	}
	if c.NodeID == "" {
		c.NodeID = "hyperd"
	}
	return c
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one submitted solve.  Identical in-flight submissions share
// one Job (singleflight), so a cancel from any submitter cancels it
// for all of them.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string
	// Hash is the request's content address.
	Hash string
	// Solver is the registry name the job runs.
	Solver string
	// CacheHit reports the job was born terminal from the result
	// cache.
	CacheHit bool

	inst *solve.Instance
	mt   *model.MTSwitchInstance
	opts solve.Options

	// canonKey/canonPerm address the canonical result store for
	// mtswitch jobs (empty/nil for other kinds): the structural hash of
	// the instance and the task permutation mapping canonical positions
	// back to this request's task order.
	canonKey  string
	canonPerm []int

	// reqJSON retains the original request of a journaled job so WAL
	// compaction can rewrite it into the snapshot (nil without a data
	// dir; doubles as the "this job is journaled" marker).
	reqJSON []byte

	// batchBucket is the portfolio dispatch feature bucket of an
	// mtswitch portfolio job (empty otherwise) — the grouping key of
	// the service batch mode.
	batchBucket string

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	canceled  bool // cancel requested (may still be queued)
	retried   bool // the one-shot panic retry has been spent
	sol       *solve.Solution
	memo      *wireMemo // shared wire rendering of sol
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current wire status.  Result
// serialization failures surface in the Error field.
func (j *Job) Snapshot() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:          j.ID,
		State:       string(j.state),
		Solver:      j.Solver,
		Hash:        j.Hash,
		CacheHit:    j.CacheHit,
		Retried:     j.retried,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.sol != nil {
		ws, err := j.memo.get(j.sol, j.mt)
		if err != nil {
			st.Error = err.Error()
		} else {
			st.Result = ws
		}
	}
	return st
}

// Solution returns the solved result once the job is done.
func (j *Job) Solution() (*solve.Solution, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, fmt.Errorf("service: job %s still %s", j.ID, j.state)
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.sol, nil
}

var (
	// ErrQueueFull rejects a submit when the bounded queue is at
	// capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown rejects submits during graceful shutdown.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrNoSuchJob reports an unknown (or already forgotten) job id.
	ErrNoSuchJob = errors.New("service: no such job")
)

// SolverUnavailableError rejects a submit whose solver's circuit
// breaker is open: recent runs panicked or timed out consecutively, so
// the server fails fast instead of queueing more work for it.
type SolverUnavailableError struct {
	Solver string
	// RetryAfter is how long until the breaker next admits a probe.
	RetryAfter time.Duration
}

func (e *SolverUnavailableError) Error() string {
	return fmt.Sprintf("service: solver %q unavailable (circuit open, retry in %s)", e.Solver, e.RetryAfter)
}

// Server is the embeddable solve service: a bounded job queue, a
// worker pool, the content-addressed result cache, per-solver circuit
// breakers and the metrics registry.  Create with New, serve with
// Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	metrics  *metrics
	cache    *resultCache
	canon    *canonicalCache
	sessions *sessionStore
	dur      *durableState // nil without Config.DataDir

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu            sync.Mutex
	cond          *sync.Cond // signals queue pushes and shutdown
	closed        bool
	state         string // lifecycle: recovering | ready | draining
	seq           int64
	jobs          map[string]*Job
	inflight      map[string]*Job // hash → queued/running job
	canonInflight map[string]*Job // canonical key → queued/running job (peer singleflight joins wait on it)
	finishedOrder []string        // finished job ids, oldest first
	breakers      map[string]*resilience.Breaker

	// queue is an explicit slice (not a channel) so Cancel can remove a
	// queued job and free its slot immediately instead of letting a
	// worker drain the tombstone later.
	queue []*Job
	wg    sync.WaitGroup

	// batchHints is the portfolio batch mode's state: feature bucket →
	// the winner of the most recent race of that family.  Canonically
	// similar requests queued in one burst form a group — the first to
	// race is the leader, and followers popped within the hint TTL
	// dispatch straight to the leader's winner instead of re-racing.
	batchHints map[string]batchHint
}

// batchHint is one bucket's remembered race outcome.
type batchHint struct {
	winner string
	at     time.Time
}

// batchHintTTL bounds how long a leader's outcome speaks for its
// family; beyond it followers race for themselves again (and refresh
// the learned-dispatch table while they are at it).
const batchHintTTL = 10 * time.Second

// New starts a server and its worker pool.  With Config.DataDir set,
// use Open instead — New panics if the data directory cannot be
// opened.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("service.New: %v", err))
	}
	return s
}

// Open starts a server and its worker pool; with Config.DataDir set it
// also opens the durable layer and recovers journaled state — see
// durable.go for the recovery sequence.  The only error source is the
// data directory (New without one cannot fail).
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		metrics:       newMetrics(),
		cache:         newResultCache(cfg.CacheEntries),
		canon:         newCanonicalCache(cfg.CacheEntries),
		sessions:      newSessionStore(cfg.MaxSessions, cfg.SessionBytes),
		baseCtx:       ctx,
		baseCancel:    cancel,
		state:         "ready",
		jobs:          map[string]*Job{},
		inflight:      map[string]*Job{},
		canonInflight: map[string]*Job{},
		breakers:      map[string]*resilience.Breaker{},
		batchHints:    map[string]batchHint{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			cancel()
			return nil, err
		}
		s.state = "recovering"
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if s.dur != nil {
		s.recoverDurable()
	}
	return s, nil
}

// Submit resolves, deduplicates and enqueues a request.  The returned
// job may already be terminal (cache hit) or shared with earlier
// identical submissions (deduped=true).  Resolution failures are
// client errors; ErrQueueFull, ErrShuttingDown and
// *SolverUnavailableError are server-state errors.
func (s *Server) Submit(req *SolveRequest) (job *Job, deduped bool, err error) {
	res, err := req.resolve()
	if err != nil {
		return nil, false, err
	}
	if s.cfg.PartitionSteps > 0 && res.solver == "exact" &&
		res.inst.Kind() == solve.KindMTSwitch && res.inst.MT.Steps() >= s.cfg.PartitionSteps {
		res.solver = "exact-partitioned"
	}
	opts := s.limits().clamp(res.opts)
	key, err := requestKey(res.inst, res.solver, opts)
	if err != nil {
		return nil, false, err
	}

	// The original request body, retained for journaling (enqueued jobs
	// only; prepared outside the lock).
	var reqJSON []byte
	if s.dur != nil {
		reqJSON, _ = json.Marshal(req)
	}

	// Canonical store lookup (mtswitch only), prepared outside the lock:
	// the structural hash and — on a hit — the stored mask replayed onto
	// this request's own instance.  Served only when the exact cache
	// misses below.
	var (
		canonKey  string
		canonPerm []int
		canonSol  *solve.Solution
	)
	if res.inst.Kind() == solve.KindMTSwitch && res.mt != nil {
		canonKey, canonPerm = canonicalMTKey(res.mt, res.inst.Cost, res.solver, opts)
		if entry, ok := s.canon.Get(canonKey); ok {
			if sol, ok := entry.reconstruct(res.mt, res.inst.Cost, canonPerm); ok {
				canonSol = sol
			}
		}
		// Peer cache fill: before solving a canonical miss, ask the
		// ring-adjacent sibling nodes (cluster mode only).  The sibling
		// either holds the entry, is solving it right now (the fill waits
		// on that in-flight solve — cross-node singleflight), or misses.
		// Replayed entries are cost-checked against this instance, so a
		// bad peer answer degrades to a miss.
		if canonSol == nil && s.cfg.PeerFill != nil {
			if pe, ok := s.cfg.PeerFill.Fill(canonKey); ok {
				entry := pe.entry()
				if sol, ok := entry.reconstruct(res.mt, res.inst.Cost, canonPerm); ok {
					canonSol = sol
					s.canon.Put(canonKey, entry)
					s.metrics.peerFillHits.Add(1)
					// A sibling's race outcome rides the entry: adopt it
					// into the local win table so this family dispatches
					// directly here too.
					if pe.Hint != nil {
						portfolio.DefaultTable.Record(pe.Hint.Bucket, pe.Hint.Winner)
					}
				} else {
					s.metrics.peerFillBad.Add(1)
				}
			} else {
				s.metrics.peerFillMisses.Add(1)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrShuttingDown
	}

	// Cache hits and dedup joins are served even when the solver's
	// breaker is open: they cost no solver run.
	if hit, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		job := s.newJobLocked(key, res, opts)
		now := time.Now()
		job.CacheHit = true
		job.state = JobDone
		job.sol = hit.sol
		job.memo = hit.wire
		job.started, job.finished = now, now
		close(job.done)
		job.cancel() // never runs; release the context immediately
		s.rememberFinishedLocked(job)
		return job, false, nil
	}
	s.metrics.cacheMisses.Add(1)

	if canonSol != nil {
		// A structurally identical request was solved before: the job is
		// born terminal from the canonical store, and the replayed result
		// seeds the exact cache so the next literal repeat hits level 1.
		s.metrics.canonicalHits.Add(1)
		job := s.newJobLocked(key, res, opts)
		now := time.Now()
		job.CacheHit = true
		job.state = JobDone
		job.sol = canonSol
		job.memo = &wireMemo{}
		job.started, job.finished = now, now
		s.cache.Put(key, &cachedResult{sol: canonSol, wire: job.memo})
		close(job.done)
		job.cancel()
		s.rememberFinishedLocked(job)
		return job, false, nil
	}

	if cur, ok := s.inflight[key]; ok {
		s.metrics.dedupHits.Add(1)
		return cur, true, nil
	}

	if br := s.breakerLocked(res.solver); br != nil {
		if ok, retryAfter := br.Allow(); !ok {
			s.metrics.breakerRejected.Add(1)
			return nil, false, &SolverUnavailableError{Solver: res.solver, RetryAfter: retryAfter}
		}
	}

	if len(s.queue) >= s.cfg.QueueDepth {
		s.metrics.rejected.Add(1)
		// The admitted request never ran; release a half-open probe slot
		// so the breaker does not wait on a job that was never queued.
		if br := s.breakerLocked(res.solver); br != nil {
			br.Abandon()
		}
		return nil, false, ErrQueueFull
	}

	job = s.newJobLocked(key, res, opts)
	job.canonKey, job.canonPerm = canonKey, canonPerm
	job.reqJSON = reqJSON
	s.queue = append(s.queue, job)
	s.inflight[key] = job
	// First job per canonical key wins the slot; peer-fill waits from
	// sibling nodes block on it until the entry publishes.
	if canonKey != "" {
		if _, ok := s.canonInflight[canonKey]; !ok {
			s.canonInflight[canonKey] = job
		}
	}
	s.metrics.submitted.Add(1)
	// Journal the enqueue while still holding s.mu: no worker can
	// finalize the job (finalize needs s.mu), so the WAL sees the job
	// record strictly before its jobdone.
	if reqJSON != nil {
		s.journal(walRecord{T: "job", Hash: key, Req: reqJSON})
	}
	s.cond.Signal()
	return job, false, nil
}

// newJobLocked allocates and registers a queued job (caller holds
// s.mu).
func (s *Server) newJobLocked(key string, res *resolved, opts solve.Options) *Job {
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.seq),
		Hash:      key,
		Solver:    res.solver,
		inst:      res.inst,
		mt:        res.mt,
		opts:      opts,
		ctx:       ctx,
		cancel:    cancel,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[job.ID] = job
	return job
}

// breakerLocked returns the solver's circuit breaker, creating it on
// first use (caller holds s.mu; nil when breakers are disabled).
func (s *Server) breakerLocked(solver string) *resilience.Breaker {
	if s.cfg.BreakerThreshold < 0 {
		return nil
	}
	br, ok := s.breakers[solver]
	if !ok {
		br = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: s.cfg.BreakerThreshold,
			Cooldown:  s.cfg.BreakerCooldown,
			Now:       s.cfg.breakerNow,
		})
		s.breakers[solver] = br
	}
	return br
}

// noteBreaker feeds one job outcome into its solver's breaker: success
// closes, panics and timeouts count as failures, cancels release any
// probe slot without a health signal.
func (s *Server) noteBreaker(solver string, err error) {
	s.mu.Lock()
	br := s.breakerLocked(solver)
	s.mu.Unlock()
	if br == nil {
		return
	}
	var pe *solve.PanicError
	switch {
	case err == nil:
		br.Success()
	case errors.As(err, &pe), errors.Is(err, context.DeadlineExceeded):
		br.Failure()
	default:
		// Cancellation and client errors say nothing about solver
		// health.
		br.Abandon()
	}
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: queued jobs are removed from
// the queue and finish canceled immediately (freeing their queue slot),
// running jobs are cancelled through their context at the solver's next
// checkpoint.  Terminal jobs are left untouched.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNoSuchJob
	}
	dequeued := false
	for i, q := range s.queue {
		if q == job {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			dequeued = true
			break
		}
	}
	s.mu.Unlock()

	job.mu.Lock()
	if !job.state.Terminal() {
		job.canceled = true
	}
	job.mu.Unlock()
	job.cancel()
	if dequeued {
		// No worker will ever pop this job; it finishes canceled here
		// and its queue slot is already free.
		s.finalize(job, nil, context.Canceled)
	}
	return job, nil
}

// worker pops jobs until shutdown drains the queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			// Closed and drained.
			s.mu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runJob(job)
	}
}

// runJob executes one dequeued job.  A panicking solver fails only
// this job (surfaced as a typed *solve.PanicError) and is retried once
// transparently — a second panic fails the job for good.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.canceled || job.ctx.Err() != nil {
		job.mu.Unlock()
		s.finalize(job, nil, context.Canceled)
		return
	}
	job.state = JobRunning
	job.started = time.Now()
	job.mu.Unlock()

	s.metrics.workersBusy.Add(1)
	sol, err := s.executeJob(job)
	s.metrics.workersBusy.Add(-1)

	var pe *solve.PanicError
	if errors.As(err, &pe) {
		s.metrics.recordPanic(job.Solver)
		s.noteBreaker(job.Solver, err)
		if s.requeueAfterPanic(job) {
			return
		}
		s.finalizeNoted(job, nil, err)
		return
	}
	s.finalize(job, sol, err)
}

// executeJob runs the solver under recover: a panic escaping anywhere
// below — the registry's own isolation should have caught it first —
// must not kill the worker goroutine.  The "service.worker" site lets
// the chaos harness fail or stall the worker path itself.
func (s *Server) executeJob(job *Job) (sol *solve.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = nil
			err = &solve.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if faultinject.Enabled() {
		if err := faultinject.Fire("service.worker"); err != nil {
			return nil, err
		}
	}
	ctx := job.ctx
	// Batch mode: a portfolio job whose family raced moments ago (the
	// group leader) rides the leader's outcome instead of re-racing.
	if job.Solver == "portfolio" && job.mt != nil {
		job.batchBucket = portfolio.Extract(job.mt).Bucket()
		if winner, ok := s.batchHintFor(job.batchBucket); ok {
			ctx = portfolio.WithDirect(ctx, winner)
			s.metrics.batchJobs.Add(1)
		}
	}
	return solve.Run(ctx, job.Solver, job.inst, job.opts)
}

// batchHintFor returns the fresh batch-mode winner for a bucket.
func (s *Server) batchHintFor(bucket string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.batchHints[bucket]
	if !ok || time.Since(h.at) > batchHintTTL {
		return "", false
	}
	return h.winner, true
}

// requeueAfterPanic gives a panicked job its one transparent retry.
// It reports false when the retry budget is spent, the job was
// canceled meanwhile, or the server is no longer accepting work.
func (s *Server) requeueAfterPanic(job *Job) bool {
	job.mu.Lock()
	if job.retried || job.canceled || job.ctx.Err() != nil {
		job.mu.Unlock()
		return false
	}
	job.retried = true
	job.mu.Unlock()

	s.mu.Lock()
	if s.closed || len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return false
	}
	job.mu.Lock()
	job.state = JobQueued
	job.mu.Unlock()
	s.queue = append(s.queue, job)
	s.metrics.retries.Add(1)
	s.cond.Signal()
	s.mu.Unlock()
	return true
}

// finalize moves a job to its terminal state, publishes the result to
// the cache, feeds the solver's breaker, releases the singleflight
// slot and wakes waiters.
func (s *Server) finalize(job *Job, sol *solve.Solution, err error) {
	s.noteBreaker(job.Solver, err)
	s.finalizeNoted(job, sol, err)
}

// finalizeNoted is finalize for callers that already fed the breaker.
func (s *Server) finalizeNoted(job *Job, sol *solve.Solution, err error) {
	now := time.Now()
	s.mu.Lock()
	job.mu.Lock()
	job.finished = now
	if job.started.IsZero() {
		job.started = now
	}
	var canonEntry *canonicalEntry
	switch {
	case err == nil:
		job.state = JobDone
		job.sol = sol
		job.memo = &wireMemo{}
		// A run degraded without a client- or server-requested budget
		// (the chaos harness injects budgets below the hash layer) must
		// not poison the cache line that means "unbudgeted".
		if !sol.Stats.Degraded || job.opts.MaxFrontierBytes > 0 {
			s.cache.Put(job.Hash, &cachedResult{sol: sol, wire: job.memo})
			if job.canonKey != "" {
				canonEntry = entryFromSolution(sol, job.canonPerm)
				s.canon.Put(job.canonKey, canonEntry)
			}
		}
		if sol.Stats.Degraded {
			s.metrics.degraded.Add(1)
		}
		if len(sol.Contenders) > 0 {
			s.metrics.recordPortfolio(sol)
			if winner := raceWinner(sol); winner != "" && job.batchBucket != "" {
				// A genuine race opens (or refreshes) this family's batch
				// group; later canonically-similar jobs follow its winner.
				s.batchHints[job.batchBucket] = batchHint{winner: winner, at: now}
				s.metrics.batchGroups.Add(1)
				s.metrics.batchJobs.Add(1)
				if canonEntry != nil {
					// The win rides the canonical entry onto the cluster
					// wire, teaching peer nodes this family's winner.
					canonEntry.hintBucket, canonEntry.hintWinner = job.batchBucket, winner
				}
			}
		}
		if sol.Stats.Partitions > 0 {
			s.metrics.partitionParts.Add(sol.Stats.Partitions)
			s.metrics.partitionCut.Add(sol.Stats.CutColumns)
			s.metrics.partitionStitchNs.Add(int64(sol.Stats.StitchTime))
		}
		s.metrics.completed.Add(1)
		s.metrics.observe(job.Solver, now.Sub(job.started))
		s.metrics.observeStats(job.Solver, sol.Stats)
	case errors.Is(err, context.Canceled):
		job.state = JobCanceled
		job.err = err
		s.metrics.canceled.Add(1)
	default:
		job.state = JobFailed
		job.err = err
		s.metrics.failed.Add(1)
	}
	if s.inflight[job.Hash] == job {
		delete(s.inflight, job.Hash)
	}
	if job.canonKey != "" && s.canonInflight[job.canonKey] == job {
		delete(s.canonInflight, job.canonKey)
	}
	// Journal the terminal outcome — with the canonical entry riding
	// inside a successful jobdone, so completion and result are one
	// atomic append and a journaled completion never re-solves after a
	// crash.  Drain cancels are NOT journaled: a job cancelled only by
	// shutdown must re-enqueue on the next boot.
	if job.reqJSON != nil && !s.closed {
		rec := walRecord{T: "jobdone", Hash: job.Hash}
		if canonEntry != nil {
			rec.Entry = peerEntryOf(job.canonKey, canonEntry)
		}
		s.journal(rec)
		s.spillCanon(job.canonKey, canonEntry)
	}
	close(job.done)
	job.mu.Unlock()
	s.rememberFinishedLocked(job)
	s.mu.Unlock()
	job.cancel() // release the context's resources
}

// raceWinner returns the solver that won a genuine portfolio race (""
// for direct dispatches and non-portfolio solves — neither should
// reinforce hints or the win table).
func raceWinner(sol *solve.Solution) string {
	for _, c := range sol.Contenders {
		if c.Won && !c.Direct {
			return c.Solver
		}
	}
	return ""
}

// rememberFinishedLocked enforces the finished-job retention bound
// (caller holds s.mu).
func (s *Server) rememberFinishedLocked(job *Job) {
	s.finishedOrder = append(s.finishedOrder, job.ID)
	for len(s.finishedOrder) > s.cfg.JobRetention {
		delete(s.jobs, s.finishedOrder[0])
		s.finishedOrder = s.finishedOrder[1:]
	}
}

// gauges snapshots the point-in-time metrics.
func (s *Server) gauges() gauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := gauges{
		queueDepth:    len(s.queue),
		queueCapacity: s.cfg.QueueDepth,
		workers:       s.cfg.Workers,
		cacheEntries:  s.cache.Len(),
		jobsByState:   map[JobState]int{},
		breakerStates: map[string]resilience.BreakerState{},
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		g.jobsByState[j.state]++
		j.mu.Unlock()
	}
	for name, br := range s.breakers {
		g.breakerStates[name] = br.State()
	}
	g.sessionsActive, g.sessionBytes = s.sessions.gauges()
	if s.dur != nil {
		st := s.dur.wal.Stats()
		g.wal = &st
	}
	return g
}

// Shutdown gracefully stops the server: new submits are rejected with
// ErrShuttingDown, every queued or running job is cancelled through
// its context (solvers stop at their next cancellation checkpoint),
// the queue drains, and the workers exit.  It returns ctx's error if
// the drain does not finish in time.
//
// With a data dir, shutdown first compacts the journal into a snapshot
// of live state — in-flight jobs as fresh submissions (they re-enqueue
// on the next boot) and live sessions with their full traces — then
// checkpoints every live engine to disk for fast revival, and finally
// flushes and closes the WAL.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.state = "draining"
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.canceled = true
		}
		j.mu.Unlock()
	}
	s.cond.Broadcast()
	// Snapshot while the canceled-but-unfinalized jobs are still
	// non-terminal: they compact as live submissions.  A busy session
	// aborts the compaction (the un-compacted journal is a correct
	// superset).
	if s.dur != nil {
		s.compactWALLocked()
	}
	s.mu.Unlock()
	s.checkpointSessions()
	// Everything after this is teardown: no more journaling (drain
	// cancels must re-enqueue on the next boot), no checkpoint deletes.
	if s.dur != nil {
		s.dur.disabled.Store(true)
	}
	s.closeSessions()
	s.baseCancel() // cancels every job context, queued and running

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeDurable() // drain spills, final WAL fsync + close
	return err
}
