package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/solve"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		shutdown(t, s)
		ts.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestHTTPSolveCounterEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := &SolveRequest{Solver: "aligned", App: "counter"}

	resp, raw := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != string(JobDone) || st.Result == nil {
		t.Fatalf("unexpected status: %s", raw)
	}

	// Acceptance: the served cost is identical to the direct solve.Run
	// path.
	res := mustResolve(t, req)
	direct, err := solve.Run(context.Background(), "aligned", res.inst, res.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Cost != int64(direct.Cost) {
		t.Fatalf("served cost %d != direct cost %d", st.Result.Cost, direct.Cost)
	}
	if st.Result.Schedule == nil {
		t.Fatal("mtswitch result is missing its schedule document")
	}

	// Re-submission is a cache hit, observable in the body and in
	// /metrics.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d", resp2.StatusCode)
	}
	var st2 JobStatus
	if err := json.Unmarshal(raw2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatalf("resubmit was not a cache hit: %s", raw2)
	}
	if st2.Hash != st.Hash {
		t.Fatal("identical requests got different content hashes")
	}
	if st2.Result.Cost != st.Result.Cost {
		t.Fatal("cache served a different cost")
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"hyperd_cache_hits_total 1",
		"hyperd_jobs_submitted_total 1",
		"hyperd_jobs_completed_total 1",
		`hyperd_solve_seconds_count{solver="aligned"} 1`,
		`hyperd_solver_states_expanded_total{solver="aligned"}`,
		`hyperd_solver_dedup_hits_total{solver="aligned"}`,
		`hyperd_solver_peak_frontier{solver="aligned"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestHTTPAsyncLifecycle(t *testing.T) {
	gate := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-gate:
			return &solve.Solution{Cost: 7}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, raw := postJSON(t, ts.URL+"/v1/jobs", tinyRequest("svc-test"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	// Poll: still queued or running.
	resp, raw = getBody(t, ts.URL+"/v1/jobs/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d", resp.StatusCode)
	}
	var polled JobStatus
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	if JobState(polled.State).Terminal() {
		t.Fatalf("job terminal before the gate opened: %s", raw)
	}

	// A bounded wait returns the still-running status.
	_, raw = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/wait?timeout_ms=50")
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	if JobState(polled.State).Terminal() {
		t.Fatal("bounded wait should have timed out with the job live")
	}

	close(gate)
	_, raw = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/wait?timeout_ms=10000")
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	if polled.State != string(JobDone) || polled.Result == nil || polled.Result.Cost != 7 {
		t.Fatalf("wait did not deliver the result: %s", raw)
	}
}

func TestHTTPCancel(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Config{Workers: 1})

	_, raw := postJSON(t, ts.URL+"/v1/jobs", tinyRequest("svc-test"))
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	_, raw = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/wait?timeout_ms=10000")
	var final JobStatus
	if err := json.Unmarshal(raw, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != string(JobCanceled) {
		t.Fatalf("state after cancel = %s, want canceled", final.State)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Unknown solver: 400, and the typed registry error lists what
	// would have worked.
	resp, raw := postJSON(t, ts.URL+"/v1/solve", &SolveRequest{Solver: "nope", App: "counter"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown solver status %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "registered:") || !strings.Contains(string(raw), "aligned") {
		t.Fatalf("unknown-solver error does not list registered solvers: %s", raw)
	}

	cases := []*SolveRequest{
		{App: "counter"},                                                           // missing solver
		{Solver: "aligned"},                                                        // no instance source
		{Solver: "aligned", App: "nope"},                                           // unknown app
		{Solver: "aligned", App: "counter", Gran: "nope"},                          // bad granularity
		{Solver: "aligned", App: "counter", Kind: "nope"},                          // bad kind
		{Solver: "aligned", App: "counter", Upload: "nope"},                        // bad upload
		{Solver: "aligned", App: "counter", TimeoutMS: -1},                         // bad timeout
		{Solver: "aligned", App: "counter", Options: WireOptions{Pop: -1}},         // invalid options
		{Solver: "aligned", App: "counter", Options: WireOptions{Crossover: "xx"}}, // bad crossover
		{Solver: "aligned", App: "counter", Kind: "switch", Upload: "sequential"},  // upload on switch
		{Solver: "aligned", App: "counter", W: 5},                                  // w on mtswitch
		{Solver: "aligned", Instance: &WireInstance{}},                             // empty instance
		{Solver: "aligned", Instance: counterWire(t), Gran: "bit"},                 // gran on inline
	}
	for i, req := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	// Malformed JSON.
	resp2, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", resp2.StatusCode)
	}

	// Unknown job id.
	resp3, _ := getBody(t, ts.URL+"/v1/jobs/job-999999")
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp3.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, raw := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}
}

func TestHTTPShutdownRejectsSubmits(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	shutdown(t, s)

	resp, raw := postJSON(t, ts.URL+"/v1/solve", &SolveRequest{Solver: "aligned", App: "counter"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: status %d body %s", resp.StatusCode, raw)
	}
}

func TestHTTPSwitchKind(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := &SolveRequest{Solver: "exact", App: "counter", Kind: "switch"}
	resp, raw := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.Kind != "switch" || len(st.Result.SegStarts) == 0 {
		t.Fatalf("switch solve missing segmentation: %s", raw)
	}
	res := mustResolve(t, req)
	direct, err := solve.Run(context.Background(), "exact", res.inst, res.opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Cost != int64(direct.Cost) {
		t.Fatalf("served switch cost %d != direct %d", st.Result.Cost, direct.Cost)
	}
	if fmt.Sprint(st.Result.SegStarts) != fmt.Sprint(direct.Seg.Starts) {
		t.Fatalf("served segmentation %v != direct %v", st.Result.SegStarts, direct.Seg.Starts)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A body one byte over the 16 MiB limit: 413 with a descriptive
	// error, not a hung or crashed server.
	body := append([]byte(`{"solver":"aligned","app":"`), bytes.Repeat([]byte("x"), maxBodyBytes)...)
	body = append(body, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	assertErrorBody(t, raw, false)
}

// assertErrorBody pins the unified error shape every non-2xx response
// carries: an "error" string, plus retry_after_ms >= 1 exactly when a
// Retry-After header class (429/503) produced the response.
func assertErrorBody(t *testing.T, raw []byte, wantRetry bool) {
	t.Helper()
	var eb struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("error body is not JSON: %v: %s", err, raw)
	}
	if eb.Error == "" {
		t.Fatalf("error body has no error field: %s", raw)
	}
	if wantRetry && eb.RetryAfterMS < 1 {
		t.Fatalf("retryable error body without retry_after_ms: %s", raw)
	}
	if !wantRetry && eb.RetryAfterMS != 0 {
		t.Fatalf("non-retryable error body carries retry_after_ms: %s", raw)
	}
}

func TestHTTPInstanceDimensionsTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []*WireInstance{
		func() *WireInstance { // too many tasks
			wi := &WireInstance{}
			for j := 0; j <= maxWireTasks; j++ {
				wi.Tasks = append(wi.Tasks, WireTask{Name: fmt.Sprintf("t%d", j), Local: 1, V: 1})
			}
			return wi
		}(),
		{ // oversized local universe
			Tasks: []WireTask{{Name: "A", Local: maxWireLocal + 1, V: 1}},
		},
	}
	for i, wi := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", &SolveRequest{Solver: "aligned", Instance: wi})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("case %d: status = %d, want 413 (%s)", i, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "exceeds limit") {
			t.Fatalf("case %d: undescriptive 413 body: %s", i, raw)
		}
	}
	// Step count overflows too; synthesize cheaply with empty rows that
	// fail the cap before row-shape validation.
	steps := make([][]string, maxWireSteps+1)
	for i := range steps {
		steps[i] = []string{"1"}
	}
	wi := &WireInstance{Tasks: []WireTask{{Name: "A", Local: 1, V: 1}}, Reqs: steps}
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", &SolveRequest{Solver: "aligned", Instance: wi})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("step overflow: status = %d, want 413 (%.120s)", resp.StatusCode, raw)
	}
}

func TestHTTPQueueFullRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	defer close(gate)

	got429 := false
	for seed := int64(1); seed <= 4 && !got429; seed++ {
		req := tinyRequest("svc-test")
		req.Options.Seed = seed
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			assertErrorBody(t, raw, true)
		}
	}
	if !got429 {
		t.Fatal("queue never rejected with 429")
	}
}

func TestHTTPBreakerOpen503AndHealthzLive(t *testing.T) {
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		panic("wired to explode")
	})
	s, ts := newTestServer(t, Config{Workers: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour})

	// First job fails (panic + retried panic) and trips the breaker.
	req := tinyRequest("svc-test")
	resp, raw := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked solve status = %d (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "panicked") {
		t.Fatalf("failure body does not carry the typed panic error: %s", raw)
	}

	req = tinyRequest("svc-test")
	req.Options.Seed = 2
	resp, raw = postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker submit status = %d (%s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	assertErrorBody(t, raw, true)

	// The server keeps serving under solver faults: liveness and
	// metrics stay up, and the panic counter is exported.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d under faults", resp.StatusCode)
	}
	_, metricsRaw := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`hyperd_solver_panics_total{solver="svc-test"} 2`,
		`hyperd_breaker_state{solver="svc-test"} 2`,
		"hyperd_retries_total 1",
		"hyperd_breaker_rejected_total 1",
	} {
		if !strings.Contains(string(metricsRaw), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsRaw)
		}
	}
	_ = s
}
