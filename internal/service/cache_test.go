package service

import (
	"testing"

	"repro/internal/solve"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	a := &cachedResult{sol: &solve.Solution{Cost: 1}}
	b := &cachedResult{sol: &solve.Solution{Cost: 2}}
	d := &cachedResult{sol: &solve.Solution{Cost: 3}}
	c.Put("a", a)
	c.Put("b", b)
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("a not cached")
	}
	// a was just used, so inserting d must evict b.
	c.Put("d", d)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("d"); !ok {
		t.Fatal("d should be cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheRefresh(t *testing.T) {
	c := newResultCache(4)
	a := &cachedResult{sol: &solve.Solution{Cost: 1}}
	a2 := &cachedResult{sol: &solve.Solution{Cost: 9}}
	c.Put("a", a)
	c.Put("a", a2)
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache: Len = %d", c.Len())
	}
	if got, _ := c.Get("a"); got != a2 {
		t.Fatal("Put did not refresh the entry")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", &cachedResult{sol: &solve.Solution{}})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache has nonzero length")
	}
}
