package service

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// Crash/recovery tests for the durable layer.  They crash servers with
// the in-process Abandon hook (no drain, no compaction, WAL
// abandoned mid-stream — the kill -9 shape); the out-of-process harness
// in internal/resilience/faultinject/crashharness sends real SIGKILLs.

// durableConfig is the base config of every durable test server.
func durableConfig(dir string) Config {
	return Config{Workers: 2, DataDir: dir}
}

func openDurable(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// waitReady polls the health document until recovery finishes.
func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Health().State == "ready" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server stuck in state %q", s.Health().State)
}

// durableOriginal / durableTwin are a structural-twin pair (tasks
// swapped and renamed, columns relabeled): the twin exercises the
// canonical replay path, which renders a schedule deterministically
// from the stored canonical form — the byte-identity oracle below
// leans on that.
func durableOriginal() *SolveRequest {
	return &SolveRequest{
		Solver: "exact",
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "alpha", Local: 3, V: 2}, {Name: "beta", Local: 2, V: 1}},
			Reqs: [][]string{
				{"100", "10"},
				{"010", "11"},
				{"011", "01"},
				{"001", "00"},
			},
		},
	}
}

func durableTwin() *SolveRequest {
	return &SolveRequest{
		Solver: "exact",
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "south", Local: 2, V: 1}, {Name: "north", Local: 3, V: 2}},
			Reqs: [][]string{
				{"01", "001"},
				{"11", "010"},
				{"10", "110"},
				{"00", "100"},
			},
		},
	}
}

// submitWait submits and waits out one request, returning its job.
func submitWait(t *testing.T, s *Server, req *SolveRequest) *Job {
	t.Helper()
	job, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	return job
}

// TestDurableWarmCacheByteIdentical crashes a node after a completed
// solve and checks the restarted node (a) answers the structural twin
// from the warm canonical store without running a solver and (b) emits
// a schedule byte-identical to an uninterrupted oracle node's.
func TestDurableWarmCacheByteIdentical(t *testing.T) {
	// Oracle: no data dir, no crash — the reference behaviour.
	oracle := New(Config{Workers: 2})
	defer shutdown(t, oracle)
	submitWait(t, oracle, durableOriginal())
	oracleTwin := submitWait(t, oracle, durableTwin())
	oracleStatus := oracleTwin.Snapshot()
	if oracleStatus.Result == nil || len(oracleStatus.Result.Schedule) == 0 {
		t.Fatal("oracle twin has no schedule")
	}

	dir := t.TempDir()
	a := openDurable(t, dir)
	submitWait(t, a, durableOriginal())
	a.Abandon()

	b := openDurable(t, dir)
	defer shutdown(t, b)
	waitReady(t, b)

	twin, _, err := b.Submit(durableTwin())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, twin)
	if !twin.CacheHit {
		t.Fatal("twin on the recovered node was not served from the warm canonical store")
	}
	if got := b.metrics.submitted.Load(); got != 0 {
		t.Fatalf("recovered node ran %d solves, want 0 (journaled completion must not re-solve)", got)
	}
	st := twin.Snapshot()
	if st.Result == nil {
		t.Fatal("recovered twin has no result")
	}
	if !bytes.Equal(st.Result.Schedule, oracleStatus.Result.Schedule) {
		t.Fatalf("recovered schedule differs from oracle:\n%s\nvs\n%s",
			st.Result.Schedule, oracleStatus.Result.Schedule)
	}
	if st.Result.Cost != oracleStatus.Result.Cost || st.Result.Exact != oracleStatus.Result.Exact {
		t.Fatalf("recovered cost=%d exact=%t, oracle cost=%d exact=%t",
			st.Result.Cost, st.Result.Exact, oracleStatus.Result.Cost, oracleStatus.Result.Exact)
	}
}

// TestDurableIncompleteJobRequeued crashes a node mid-solve and checks
// the restart re-enqueues the journaled-but-incomplete job and finishes
// it.
func TestDurableIncompleteJobRequeued(t *testing.T) {
	release := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &solve.Solution{Cost: 7}, nil
		}
	})
	dir := t.TempDir()
	a := openDurable(t, dir)
	job, _, err := a.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker pick it up so the crash lands mid-solve.
	deadline := time.Now().Add(5 * time.Second)
	for job.Snapshot().State != string(JobRunning) {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	a.Abandon()

	// After the restart the solver answers immediately, exactly once.
	var calls atomic.Int64
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		calls.Add(1)
		return &solve.Solution{Cost: 7}, nil
	})
	b := openDurable(t, dir)
	defer shutdown(t, b)
	waitReady(t, b)
	if got := b.metrics.recoveryJobsRequeued.Load(); got != 1 {
		t.Fatalf("recoveryJobsRequeued = %d, want 1", got)
	}
	// The same request now resolves against the re-enqueued job (dedup)
	// or its finished result (cache) — never a second solver run.
	redo := submitWait(t, b, tinyRequest("svc-test"))
	sol, err := redo.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 7 {
		t.Fatalf("recovered cost = %d, want 7", sol.Cost)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times after restart, want 1", got)
	}
}

// TestDurableSessionRevival crashes a node holding a live streaming
// session and checks the restart rebuilds the session from its
// journaled step batches: same id, same trace length, same cost as the
// uninterrupted solve — and the session keeps accepting batches.
func TestDurableSessionRevival(t *testing.T) {
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	dir := t.TempDir()
	a := openDurable(t, dir)
	sess, err := a.CreateSession(ctx, sessionRequest(mt, "exact", 4))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[4:7]})
	if err != nil {
		t.Fatal(err)
	}
	wantCost := st.Result.Cost
	a.Abandon()

	b := openDurable(t, dir)
	defer shutdown(t, b)
	waitReady(t, b)
	if got := b.metrics.recoverySessionsRevived.Load(); got != 1 {
		t.Fatalf("recoverySessionsRevived = %d, want 1", got)
	}
	revived, ok := b.Session(sess.ID)
	if !ok {
		t.Fatalf("session %s did not survive the crash", sess.ID)
	}
	got := revived.Status()
	if got.Steps != 7 {
		t.Fatalf("revived trace has %d steps, want 7", got.Steps)
	}
	if got.Result == nil || got.Result.Cost != wantCost {
		t.Fatalf("revived result %+v, want cost %d", got.Result, wantCost)
	}
	// The oracle for the continued session: a from-scratch solve of the
	// extended prefix.
	st2, err := revived.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[7:8]})
	if err != nil {
		t.Fatalf("revived session rejected a batch: %v", err)
	}
	direct := runExact(t, prefixInstance(t, mt, 8))
	if st2.Result.Cost != int64(direct.Cost) {
		t.Fatalf("continued cost %d, from-scratch %d", st2.Result.Cost, direct.Cost)
	}
}

// TestDurableSessionDeleteSurvives checks an explicitly deleted session
// stays deleted across a crash (the sessdel record wins over the
// opener).
func TestDurableSessionDeleteSurvives(t *testing.T) {
	ctx := context.Background()
	mt := sessionInstance(t)
	dir := t.TempDir()

	a := openDurable(t, dir)
	sess, err := a.CreateSession(ctx, sessionRequest(mt, "exact", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteSession(sess.ID); err != nil {
		t.Fatal(err)
	}
	a.Abandon()

	b := openDurable(t, dir)
	defer shutdown(t, b)
	waitReady(t, b)
	if _, ok := b.Session(sess.ID); ok {
		t.Fatalf("deleted session %s came back from the dead", sess.ID)
	}
}

// TestDurableRecoveringHealthState stalls session revival through the
// service.recover fault site and checks /v1/healthz reports
// "recovering" until replay finishes, then "ready".
func TestDurableRecoveringHealthState(t *testing.T) {
	ctx := context.Background()
	mt := sessionInstance(t)
	dir := t.TempDir()

	a := openDurable(t, dir)
	if _, err := a.CreateSession(ctx, sessionRequest(mt, "exact", 3)); err != nil {
		t.Fatal(err)
	}
	a.Abandon()

	faultinject.Set("service.recover", faultinject.Action{Delay: 500 * time.Millisecond})
	defer faultinject.Reset()
	b := openDurable(t, dir)
	defer shutdown(t, b)
	if got := b.Health().State; got != "recovering" {
		t.Fatalf("state right after Open = %q, want recovering", got)
	}
	waitReady(t, b)
	if got := b.Health().State; got != "ready" {
		t.Fatalf("state after recovery = %q, want ready", got)
	}
}

// TestDurableGracefulShutdownSnapshot drains a node with live state and
// checks the next boot recovers it from the compacted snapshot: the
// completed solve answers warm from the spilled canonical store and the
// session revives from its shutdown checkpoint.
func TestDurableGracefulShutdownSnapshot(t *testing.T) {
	ctx := context.Background()
	mt := sessionInstance(t)
	dir := t.TempDir()

	a := openDurable(t, dir)
	submitWait(t, a, durableOriginal())
	sess, err := a.CreateSession(ctx, sessionRequest(mt, "exact", 4))
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, a)

	b := openDurable(t, dir)
	defer shutdown(t, b)
	waitReady(t, b)
	if got := b.metrics.recoveryCacheWarmloaded.Load(); got < 1 {
		t.Fatalf("recoveryCacheWarmloaded = %d, want >= 1", got)
	}
	twin, _, err := b.Submit(durableTwin())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, twin)
	if !twin.CacheHit {
		t.Fatal("twin after graceful restart missed the warm canonical store")
	}
	if got := b.metrics.submitted.Load(); got != 0 {
		t.Fatalf("graceful restart re-ran %d solves, want 0", got)
	}
	revived, ok := b.Session(sess.ID)
	if !ok {
		t.Fatalf("session %s lost across graceful restart", sess.ID)
	}
	if got := revived.Status(); got.Steps != 4 {
		t.Fatalf("revived trace has %d steps, want 4", got.Steps)
	}
}

// TestDurableDoubleRestart replays the same journal twice (crash, boot,
// crash again untouched, boot again) and checks replay is idempotent:
// the second recovery sees the same world and still refuses to
// re-solve journaled completions.
func TestDurableDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	a := openDurable(t, dir)
	submitWait(t, a, durableOriginal())
	a.Abandon()

	b := openDurable(t, dir)
	waitReady(t, b)
	b.Abandon()

	c := openDurable(t, dir)
	defer shutdown(t, c)
	waitReady(t, c)
	twin := submitWait(t, c, durableTwin())
	if !twin.CacheHit {
		t.Fatal("second recovery lost the journaled completion")
	}
	if got := c.metrics.submitted.Load(); got != 0 {
		t.Fatalf("second recovery ran %d solves, want 0", got)
	}
}

// TestDurableJournalFaultDegradesGracefully injects journal-append
// failures and checks the service itself is unaffected: solves still
// complete, sessions still step — durability is lost, not liveness.
func TestDurableJournalFaultDegradesGracefully(t *testing.T) {
	faultinject.Set("service.journal", faultinject.Action{Err: faultinject.ErrInjected})
	defer faultinject.Reset()

	dir := t.TempDir()
	a := openDurable(t, dir)
	defer shutdown(t, a)
	job := submitWait(t, a, durableOriginal())
	if _, err := job.Solution(); err != nil {
		t.Fatalf("solve under journal faults failed: %v", err)
	}
	ctx := context.Background()
	mt := sessionInstance(t)
	sess, err := a.CreateSession(ctx, sessionRequest(mt, "exact", 3))
	if err != nil {
		t.Fatal(err)
	}
	wi := WireInstanceFrom(mt)
	if _, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[3:4]}); err != nil {
		t.Fatalf("session step under journal faults failed: %v", err)
	}
}

// fillerFunc adapts a func to the PeerFiller interface.
type fillerFunc func(string) (*PeerEntry, bool)

func (f fillerFunc) Fill(key string) (*PeerEntry, bool) { return f(key) }

// TestDurableRecoveryPeerGapFill crashes a node with a journaled but
// unsolved submission whose answer a cluster sibling already holds, and
// checks the restarted node fills the gap from the peer during replay
// instead of re-solving.
func TestDurableRecoveryPeerGapFill(t *testing.T) {
	// The sibling solved the instance while this node was down.
	peer := New(Config{Workers: 1})
	defer shutdown(t, peer)
	peerJob := submitWait(t, peer, durableOriginal())
	peerSol, err := peerJob.Solution()
	if err != nil {
		t.Fatal(err)
	}

	// This node journals the same submission queued behind a stuck job,
	// then dies.
	stall := make(chan struct{})
	defer close(stall)
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stall:
			return &solve.Solution{Cost: 3}, nil
		}
	})
	dir := t.TempDir()
	a, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	blocker, _, err := a.Submit(tinyRequest("svc-test"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blocker.Snapshot().State != string(JobRunning) {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := a.Submit(durableOriginal()); err != nil {
		t.Fatal(err)
	}
	a.Abandon()

	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		return &solve.Solution{Cost: 3}, nil
	})
	b, err := Open(Config{Workers: 1, DataDir: dir, PeerFill: fillerFunc(func(key string) (*PeerEntry, bool) {
		return peer.PeerLookup(key, 0, nil)
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	waitReady(t, b)
	if got := b.metrics.recoveryJobsRequeued.Load(); got != 2 {
		t.Fatalf("recoveryJobsRequeued = %d, want 2", got)
	}
	if got := b.metrics.peerFillHits.Load(); got != 1 {
		t.Fatalf("peerFillHits = %d, want 1 (the exact job must fill from the peer)", got)
	}
	redo := submitWait(t, b, durableOriginal())
	sol, err := redo.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != peerSol.Cost {
		t.Fatalf("gap-filled cost %d, peer solved %d", sol.Cost, peerSol.Cost)
	}
	// Only the stuck svc-test job actually solved here; the exact job
	// rode the peer's entry.
	if got := b.metrics.submitted.Load(); got != 1 {
		t.Fatalf("recovered node enqueued %d solves, want 1", got)
	}
}

// TestDurableMetricsRendered checks the WAL and recovery series appear
// on /metrics for a durable node.
func TestDurableMetricsRendered(t *testing.T) {
	dir := t.TempDir()
	a := openDurable(t, dir)
	defer shutdown(t, a)
	submitWait(t, a, durableOriginal())

	var buf bytes.Buffer
	a.metrics.render(&buf, a.gauges())
	out := buf.String()
	for _, name := range []string{
		"hyperd_wal_appends_total",
		"hyperd_wal_fsyncs_total",
		"hyperd_wal_replayed_records_total",
		"hyperd_wal_flush_seconds_sum",
		"hyperd_recovery_jobs_requeued",
		"hyperd_recovery_sessions_revived",
		"hyperd_recovery_cache_warmloaded",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("metrics output missing %s:\n%s", name, out)
		}
	}
}
