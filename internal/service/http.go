package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/solve"
)

// maxBodyBytes bounds request bodies (a 4-task, 10k-step instance is
// well under 2 MiB).
const maxBodyBytes = 16 << 20

// Handler returns the HTTP API:
//
//	POST   /v1/jobs           submit; 202 queued, 200 if answered from cache
//	GET    /v1/jobs/{id}      poll status (result inline once done)
//	GET    /v1/jobs/{id}/wait long-poll until terminal or ?timeout_ms elapses
//	DELETE /v1/jobs/{id}      cancel (queued or running)
//	POST   /v1/solve          submit and wait for the terminal state
//	GET    /v1/solvers        registered solver names, kinds and option ranges
//	GET    /healthz           liveness
//	GET    /metrics           Prometheus text format
//
// plus the streaming-session API:
//
//	POST   /v1/sessions                open a session (solves the initial trace)
//	GET    /v1/sessions/{id}           session status with the current schedule
//	POST   /v1/sessions/{id}/steps     append (or amend) a batch of demand rows
//	GET    /v1/sessions/{id}/schedule  long-poll past ?generation=N for a newer schedule
//	DELETE /v1/sessions/{id}           close the session
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/sessions/{id}/steps", s.handleSessionSteps)
	mux.HandleFunc("GET /v1/sessions/{id}/schedule", s.handleSessionSchedule)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthzV1)
	mux.HandleFunc("GET /v1/cache/{key}", s.handlePeerCache)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is the one JSON error shape every non-2xx response
// carries: the message, plus the retry hint in milliseconds whenever a
// Retry-After header accompanies it (429 queue-full, 503 open breaker).
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeRetryError is writeError plus the retry hint, rendered both as
// the Retry-After header (whole seconds, rounded up) and as
// retry_after_ms in the body.
func writeRetryError(w http.ResponseWriter, code int, err error, d time.Duration) {
	retryAfterHeader(w, d)
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	writeJSON(w, code, errorBody{Error: err.Error(), RetryAfterMS: ms})
}

// decodeSolveRequest parses one request body.  It is the exact decode
// path the fuzzer drives: any input must come back as a value or an
// error, never a panic.
func decodeSolveRequest(body io.Reader) (*SolveRequest, error) {
	var req SolveRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// retryAfterHeader renders a Retry-After duration in whole seconds,
// rounded up so the client never retries early (and never gets 0).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// submit parses the body and submits, mapping the error classes to
// status codes: resolution failures 400, oversized bodies or instance
// dimensions 413, full queue 429 (with Retry-After), open circuit
// breaker or shutdown 503.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) (*Job, bool, bool) {
	req, err := decodeSolveRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil, false, false
	}
	job, deduped, err := s.Submit(req)
	var (
		tooLarge    *TooLargeError
		unavailable *SolverUnavailableError
	)
	switch {
	case err == nil:
		return job, deduped, true
	case errors.As(err, &tooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, ErrQueueFull):
		writeRetryError(w, http.StatusTooManyRequests, err, time.Second)
	case errors.As(err, &unavailable):
		writeRetryError(w, http.StatusServiceUnavailable, err, unavailable.RetryAfter)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
	return nil, false, false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job, deduped, ok := s.submit(w, r)
	if !ok {
		return
	}
	st := job.Snapshot()
	st.Deduped = deduped
	code := http.StatusAccepted
	if JobState(st.State).Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSuchJob)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSuchJob)
		return
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("invalid timeout_ms"))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-job.Done():
	case <-t.C:
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// handleSolve is the synchronous convenience endpoint: submit, wait
// for the terminal state, answer 200 done / 409 canceled / 500 failed.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	job, deduped, ok := s.submit(w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running for other
		// (deduplicated or polling) consumers.
		return
	}
	st := job.Snapshot()
	st.Deduped = deduped
	code := http.StatusOK
	switch JobState(st.State) {
	case JobFailed:
		code = http.StatusInternalServerError
	case JobCanceled:
		code = http.StatusConflict
	}
	writeJSON(w, code, st)
}

// sessionError maps session-layer errors onto status codes, mirroring
// submit's mapping for the shared error classes.
func sessionError(w http.ResponseWriter, err error) {
	var (
		tooLarge    *TooLargeError
		unavailable *SolverUnavailableError
	)
	switch {
	case errors.As(err, &tooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, ErrSessionLimit):
		writeRetryError(w, http.StatusTooManyRequests, err, time.Second)
	case errors.As(err, &unavailable):
		writeRetryError(w, http.StatusServiceUnavailable, err, unavailable.RetryAfter)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNoSuchSession):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, errSolveFailed):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// errSolveFailed wraps solve-time (as opposed to request-validation)
// session errors so sessionError can answer 500 instead of 400.
var errSolveFailed = errors.New("solve failed")

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	sess, err := s.CreateSession(r.Context(), &req)
	if err != nil {
		// A solve crash on the opening trace is a server-side failure,
		// not a bad request (the session is discarded either way).
		if isSolveFailure(err) {
			sessionError(w, fmt.Errorf("%w: %v", errSolveFailed, err))
		} else {
			sessionError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, sess.Status())
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSuchSession)
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

func (s *Server) handleSessionSteps(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSuchSession)
		return
	}
	var batch SessionSteps
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&batch); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	st, err := sess.Steps(r.Context(), &batch)
	if err != nil {
		if isSolveFailure(err) {
			sessionError(w, fmt.Errorf("%w: %v", errSolveFailed, err))
			return
		}
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// isSolveFailure separates engine/solve failures (500) from request
// validation failures (400): a panic, deadline or cancellation happens
// after the batch was accepted into the trace, so it is a server-side
// failure rather than a bad request.
func isSolveFailure(err error) bool {
	var pe *solve.PanicError
	return errors.As(err, &pe) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func (s *Server) handleSessionSchedule(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNoSuchSession)
		return
	}
	var gen int64 = -1
	if v := r.URL.Query().Get("generation"); v != "" {
		g, err := strconv.ParseInt(v, 10, 64)
		if err != nil || g < 0 {
			writeError(w, http.StatusBadRequest, errors.New("invalid generation"))
			return
		}
		gen = g
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("invalid timeout_ms"))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	writeJSON(w, http.StatusOK, sess.Wait(r.Context(), gen, timeout))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.metrics.render(&buf, s.gauges())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(buf.Bytes())
}
