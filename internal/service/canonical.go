package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
)

// Canonical result sharing (the second cache level).  The exact cache
// keys on the literal instance, so two structurally identical requests
// — same problem up to task order, task names, switch-column labels
// and never-required columns — occupy separate lines.
// mtswitch.CanonicalForm erases exactly those differences, and any
// schedule of one instance maps to an equal-cost schedule of the other
// by permuting task rows; the canonical store exploits that by caching
// the hyperreconfiguration mask in canonical task order and replaying
// it onto each requester's own instance.

// canonicalEntry is one stored result: the mask rows in canonical task
// order plus the completed solve's cost, exactness and statistics.
// Portfolio-raced entries also carry the race outcome (feature bucket
// and winning solver) so the win-table hint can ride the entry onto
// the cluster wire.
type canonicalEntry struct {
	mask  [][]bool
	cost  model.Cost
	exact bool
	stats solve.Stats

	hintBucket string
	hintWinner string
}

// canonicalMTKey addresses the canonical store: solver + options +
// upload modes + the instance's canonical form.  The returned perm is
// CanonicalForm's task permutation (perm[c] = requester's task index at
// canonical position c), needed to translate masks in and out.
func canonicalMTKey(mt *model.MTSwitchInstance, cost model.CostOptions, solver string, opts solve.Options) (string, []int) {
	form, perm := mtswitch.CanonicalForm(mt)
	h := sha256.New()
	fmt.Fprintf(h, "canon\x00%s\x00%d\x00%d\x00", solver, cost.HyperUpload, cost.ReconfUpload)
	writeOptions(h, opts)
	h.Write(form)
	return hex.EncodeToString(h.Sum(nil)), perm
}

// entryFromSolution maps a completed solution's mask into canonical
// task order (nil when the solution carries no schedule).
func entryFromSolution(sol *solve.Solution, perm []int) *canonicalEntry {
	if sol.MTSched == nil || len(perm) != len(sol.MTSched.Hyper) {
		return nil
	}
	mask := make([][]bool, len(perm))
	for c, j := range perm {
		row := make([]bool, len(sol.MTSched.Hyper[j]))
		copy(row, sol.MTSched.Hyper[j])
		mask[c] = row
	}
	return &canonicalEntry{mask: mask, cost: sol.Cost, exact: sol.Exact, stats: sol.Stats}
}

// reconstruct replays the stored canonical mask onto the requester's
// instance: permute the rows back, canonicalize the hypercontexts and
// reprice.  The repriced cost must equal the stored cost — canonical
// forms agree, so any discrepancy means the entry does not actually fit
// this instance and the lookup is treated as a miss.
func (e *canonicalEntry) reconstruct(mt *model.MTSwitchInstance, cost model.CostOptions, perm []int) (*solve.Solution, bool) {
	if len(perm) != len(e.mask) || mt.NumTasks() != len(perm) {
		return nil, false
	}
	mask := make([][]bool, len(perm))
	for c, j := range perm {
		if len(e.mask[c]) != mt.Steps() {
			return nil, false
		}
		mask[j] = e.mask[c]
	}
	sched, err := mt.CanonicalSchedule(mask)
	if err != nil {
		return nil, false
	}
	got, err := mt.Cost(sched, cost)
	if err != nil || got != e.cost {
		return nil, false
	}
	return &solve.Solution{
		Kind:    solve.KindMTSwitch,
		Cost:    e.cost,
		Exact:   e.exact,
		Stats:   e.stats,
		MTSched: sched,
	}, true
}

// canonicalCache is the typed view of the LRU from canonical key to
// entry, structured like resultCache (non-positive capacity disables
// it).
type canonicalCache struct {
	lru *lruCache
}

func newCanonicalCache(capacity int) *canonicalCache {
	return &canonicalCache{lru: newLRUCache(capacity)}
}

func (c *canonicalCache) Get(key string) (*canonicalEntry, bool) {
	v, ok := c.lru.Get(key)
	if !ok {
		return nil, false
	}
	return v.(*canonicalEntry), true
}

func (c *canonicalCache) Put(key string, res *canonicalEntry) {
	if res == nil {
		return
	}
	c.lru.Put(key, res)
}
