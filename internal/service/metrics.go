package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/resilience"
	"repro/internal/solve"
)

// latencyBounds are the histogram bucket upper bounds in seconds
// (log-spaced from 100µs to ~100s, plus +Inf implicitly).
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// latencyHist is one solver's latency histogram (guarded by
// metrics.mu).
type latencyHist struct {
	buckets []int64 // buckets[i] counts observations ≤ latencyBounds[i]
	count   int64
	sum     float64 // seconds
}

func (h *latencyHist) observe(seconds float64) {
	for i, ub := range latencyBounds {
		if seconds <= ub {
			h.buckets[i]++
		}
	}
	h.count++
	h.sum += seconds
}

// metrics aggregates the service counters exported on /metrics.
type metrics struct {
	submitted atomic.Int64 // jobs enqueued (not cache hits, not dedups)
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64 // submits bounced on a full queue

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	dedupHits   atomic.Int64
	// canonicalHits counts exact-cache misses answered from the
	// canonical store (a structurally identical request, solved before
	// under a different literal encoding).
	canonicalHits atomic.Int64

	retries         atomic.Int64 // panicked jobs requeued for their one retry
	breakerRejected atomic.Int64 // submits refused by an open circuit breaker
	degraded        atomic.Int64 // completed jobs that gave up exactness for the memory budget

	// Cluster peer-fill counters.  The fill side is this node asking
	// siblings on a canonical miss; the serve side is this node
	// answering GET /v1/cache/{key} for siblings.
	peerFillHits    atomic.Int64 // canonical misses answered by a sibling's entry
	peerFillMisses  atomic.Int64 // canonical misses no sibling could answer
	peerFillBad     atomic.Int64 // sibling entries rejected by the replay cost-check
	peerServeHits   atomic.Int64 // peer lookups served from the local canonical store
	peerServeWaits  atomic.Int64 // peer lookups that joined an in-flight solve (cross-node singleflight)
	peerServeMisses atomic.Int64

	// Partitioned-solve counters: windows solved, weighted cut columns
	// accepted, and nanoseconds spent stitching (exact-partitioned runs
	// only, whether auto-dispatched or requested).
	partitionParts    atomic.Int64
	partitionCut      atomic.Int64
	partitionStitchNs atomic.Int64

	// Streaming-session counters.
	sessionSteps    atomic.Int64 // demand rows accepted across all sessions
	sessionsEvicted atomic.Int64 // engines checkpointed out under memory pressure
	sessionsRevived atomic.Int64 // engines restored from an evicted checkpoint
	// Suffix lengths of session re-solves (sum + count → mean): how much
	// of the trace each batch actually re-solved.
	suffixSum   atomic.Int64
	suffixCount atomic.Int64

	// Portfolio meta-solver counters: full races run, learned-dispatch
	// confidence shortcuts taken instead of racing, exact-DP incumbent
	// adoptions across all races, and the batch-mode grouping summary
	// (groups opened / jobs that rode a group, leaders included).
	portfolioRaces       atomic.Int64
	portfolioDirect      atomic.Int64
	portfolioTightenings atomic.Int64
	batchGroups          atomic.Int64
	batchJobs            atomic.Int64

	workersBusy atomic.Int64

	// Crash-recovery counters, bumped once per restart by recoverDurable.
	recoveryJobsRequeued    atomic.Int64 // journaled-but-incomplete jobs re-enqueued on boot
	recoverySessionsRevived atomic.Int64 // sessions rebuilt from journaled step batches
	recoveryCacheWarmloaded atomic.Int64 // canonical entries warm-loaded from the disk store

	mu            sync.Mutex
	perSolver     map[string]*latencyHist
	solverStats   map[string]*solverStats
	panics        map[string]int64 // per-solver panic counts
	portfolioWins map[string]int64 // per-contender portfolio race wins
}

// solverStats accumulates the solve.Stats counters of completed jobs
// per solver (guarded by metrics.mu).  peakFrontier is a high-water
// mark, not a sum: it reports the largest DP frontier any job of that
// solver ever held, the quantity that bounds the engine's memory.
type solverStats struct {
	statesExpanded      int64
	dedupHits           int64
	peakFrontier        int64
	statesPruned        int64
	dominanceHits       int64
	boundCutoffs        int64
	preprocessReduction int64
	budgetDropped       int64
}

func newMetrics() *metrics {
	return &metrics{
		perSolver:     map[string]*latencyHist{},
		solverStats:   map[string]*solverStats{},
		panics:        map[string]int64{},
		portfolioWins: map[string]int64{},
	}
}

// recordPortfolio folds one completed portfolio solve into the race
// counters: race-vs-direct, the winner tally, and the incumbent
// exchanges its exact lane adopted.
func (m *metrics) recordPortfolio(sol *solve.Solution) {
	if len(sol.Contenders) == 0 {
		return
	}
	m.portfolioTightenings.Add(sol.Stats.IncumbentTightenings)
	var winner string
	direct := false
	for _, c := range sol.Contenders {
		if c.Won {
			winner, direct = c.Solver, c.Direct
		}
	}
	if direct {
		m.portfolioDirect.Add(1)
	} else {
		m.portfolioRaces.Add(1)
	}
	if winner != "" {
		m.mu.Lock()
		m.portfolioWins[winner]++
		m.mu.Unlock()
	}
}

// recordPanic counts one solver panic (isolated, never fatal to the
// server) under its solver label.
func (m *metrics) recordPanic(solver string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics[solver]++
}

// observeSuffix records how many trailing trace steps one session batch
// re-solved.
func (m *metrics) observeSuffix(n int64) {
	m.suffixSum.Add(n)
	m.suffixCount.Add(1)
}

// observe records one completed solve's wall time under its solver.
func (m *metrics) observe(solver string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.perSolver[solver]
	if !ok {
		h = &latencyHist{buckets: make([]int64, len(latencyBounds))}
		m.perSolver[solver] = h
	}
	h.observe(d.Seconds())
}

// observeStats folds one completed solve's run statistics into the
// per-solver aggregates.
func (m *metrics) observeStats(solver string, st solve.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.solverStats[solver]
	if !ok {
		agg = &solverStats{}
		m.solverStats[solver] = agg
	}
	agg.statesExpanded += st.StatesExpanded
	agg.dedupHits += st.DedupHits
	if st.PeakFrontier > agg.peakFrontier {
		agg.peakFrontier = st.PeakFrontier
	}
	agg.statesPruned += st.StatesPruned
	agg.dominanceHits += st.DominanceHits
	agg.boundCutoffs += st.BoundCutoffs
	agg.preprocessReduction += st.PreprocessReduction
	agg.budgetDropped += st.BudgetDropped
}

// gauges are point-in-time values the server snapshots at render time.
type gauges struct {
	queueDepth    int
	queueCapacity int
	workers       int
	cacheEntries  int
	jobsByState   map[JobState]int
	breakerStates map[string]resilience.BreakerState

	sessionsActive int
	sessionBytes   int64

	// wal is the durable journal's counters; nil when the server runs
	// without a data dir.
	wal *durable.WALStats
}

// render writes the Prometheus text exposition format.
func (m *metrics) render(w io.Writer, g gauges) {
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	counter("hyperd_jobs_submitted_total", m.submitted.Load())
	counter("hyperd_jobs_completed_total", m.completed.Load())
	counter("hyperd_jobs_failed_total", m.failed.Load())
	counter("hyperd_jobs_canceled_total", m.canceled.Load())
	counter("hyperd_jobs_rejected_total", m.rejected.Load())
	counter("hyperd_cache_hits_total", m.cacheHits.Load())
	counter("hyperd_cache_misses_total", m.cacheMisses.Load())
	counter("hyperd_dedup_hits_total", m.dedupHits.Load())
	counter("hyperd_cache_canonical_hits_total", m.canonicalHits.Load())
	counter("hyperd_retries_total", m.retries.Load())
	counter("hyperd_breaker_rejected_total", m.breakerRejected.Load())
	counter("hyperd_jobs_degraded_total", m.degraded.Load())
	counter("hyperd_cluster_peer_fill_hits_total", m.peerFillHits.Load())
	counter("hyperd_cluster_peer_fill_misses_total", m.peerFillMisses.Load())
	counter("hyperd_cluster_peer_fill_rejected_total", m.peerFillBad.Load())
	counter("hyperd_cluster_peer_serve_hits_total", m.peerServeHits.Load())
	counter("hyperd_cluster_peer_serve_waits_total", m.peerServeWaits.Load())
	counter("hyperd_cluster_peer_serve_misses_total", m.peerServeMisses.Load())
	gauge("hyperd_queue_depth", int64(g.queueDepth))
	gauge("hyperd_queue_capacity", int64(g.queueCapacity))
	gauge("hyperd_workers", int64(g.workers))
	gauge("hyperd_workers_busy", m.workersBusy.Load())
	gauge("hyperd_cache_entries", int64(g.cacheEntries))
	gauge("hyperd_sessions_active", int64(g.sessionsActive))
	gauge("hyperd_session_engine_bytes", g.sessionBytes)
	counter("hyperd_partition_parts_total", m.partitionParts.Load())
	counter("hyperd_partition_cut_columns_total", m.partitionCut.Load())
	counter("hyperd_partition_stitch_ns_total", m.partitionStitchNs.Load())
	counter("hyperd_session_steps_total", m.sessionSteps.Load())
	counter("hyperd_sessions_evicted_total", m.sessionsEvicted.Load())
	counter("hyperd_sessions_revived_total", m.sessionsRevived.Load())
	fmt.Fprintf(w, "# TYPE hyperd_session_resolve_suffix_len summary\n")
	fmt.Fprintf(w, "hyperd_session_resolve_suffix_len_sum %d\n", m.suffixSum.Load())
	fmt.Fprintf(w, "hyperd_session_resolve_suffix_len_count %d\n", m.suffixCount.Load())
	counter("hyperd_portfolio_races_total", m.portfolioRaces.Load())
	counter("hyperd_portfolio_dispatch_direct_total", m.portfolioDirect.Load())
	counter("hyperd_portfolio_incumbent_tightenings_total", m.portfolioTightenings.Load())
	fmt.Fprintf(w, "# TYPE hyperd_portfolio_batch_group_size summary\n")
	fmt.Fprintf(w, "hyperd_portfolio_batch_group_size_sum %d\n", m.batchJobs.Load())
	fmt.Fprintf(w, "hyperd_portfolio_batch_group_size_count %d\n", m.batchGroups.Load())

	if g.wal != nil {
		counter("hyperd_wal_appends_total", g.wal.Appends)
		counter("hyperd_wal_fsyncs_total", g.wal.Fsyncs)
		counter("hyperd_wal_replayed_records_total", g.wal.Replayed)
		counter("hyperd_wal_dropped_tail_records_total", g.wal.DroppedTail)
		gauge("hyperd_wal_segments", int64(g.wal.Segments))
		gauge("hyperd_wal_bytes", g.wal.Bytes)
		fmt.Fprintf(w, "# TYPE hyperd_wal_flush_seconds summary\n")
		fmt.Fprintf(w, "hyperd_wal_flush_seconds_sum %g\n", g.wal.FlushSeconds)
		fmt.Fprintf(w, "hyperd_wal_flush_seconds_count %d\n", g.wal.FlushCount)
		counter("hyperd_recovery_jobs_requeued", m.recoveryJobsRequeued.Load())
		counter("hyperd_recovery_sessions_revived", m.recoverySessionsRevived.Load())
		counter("hyperd_recovery_cache_warmloaded", m.recoveryCacheWarmloaded.Load())
	}

	fmt.Fprintf(w, "# TYPE hyperd_jobs gauge\n")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "hyperd_jobs{state=%q} %d\n", st, g.jobsByState[st])
	}

	if len(g.breakerStates) > 0 {
		names := make([]string, 0, len(g.breakerStates))
		for name := range g.breakerStates {
			names = append(names, name)
		}
		sort.Strings(names)
		// 0 closed, 1 half-open, 2 open — the resilience.BreakerState
		// enumeration order.
		fmt.Fprintf(w, "# TYPE hyperd_breaker_state gauge\n")
		for _, name := range names {
			fmt.Fprintf(w, "hyperd_breaker_state{solver=%q} %d\n", name, g.breakerStates[name])
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	solvers := make([]string, 0, len(m.perSolver))
	for name := range m.perSolver {
		solvers = append(solvers, name)
	}
	sort.Strings(solvers)
	if len(solvers) > 0 {
		fmt.Fprintf(w, "# TYPE hyperd_solve_seconds histogram\n")
	}
	for _, name := range solvers {
		h := m.perSolver[name]
		for i, ub := range latencyBounds {
			fmt.Fprintf(w, "hyperd_solve_seconds_bucket{solver=%q,le=%q} %d\n", name, trimFloat(ub), h.buckets[i])
		}
		fmt.Fprintf(w, "hyperd_solve_seconds_bucket{solver=%q,le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(w, "hyperd_solve_seconds_sum{solver=%q} %g\n", name, h.sum)
		fmt.Fprintf(w, "hyperd_solve_seconds_count{solver=%q} %d\n", name, h.count)
	}

	if len(m.portfolioWins) > 0 {
		names := make([]string, 0, len(m.portfolioWins))
		for name := range m.portfolioWins {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# TYPE hyperd_portfolio_wins_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "hyperd_portfolio_wins_total{solver=%q} %d\n", name, m.portfolioWins[name])
		}
	}

	if len(m.panics) > 0 {
		names := make([]string, 0, len(m.panics))
		for name := range m.panics {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# TYPE hyperd_solver_panics_total counter\n")
		for _, name := range names {
			fmt.Fprintf(w, "hyperd_solver_panics_total{solver=%q} %d\n", name, m.panics[name])
		}
	}

	statNames := make([]string, 0, len(m.solverStats))
	for name := range m.solverStats {
		statNames = append(statNames, name)
	}
	sort.Strings(statNames)
	if len(statNames) > 0 {
		fmt.Fprintf(w, "# TYPE hyperd_solver_states_expanded_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_states_expanded_total{solver=%q} %d\n", name, m.solverStats[name].statesExpanded)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_dedup_hits_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_dedup_hits_total{solver=%q} %d\n", name, m.solverStats[name].dedupHits)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_peak_frontier gauge\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_peak_frontier{solver=%q} %d\n", name, m.solverStats[name].peakFrontier)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_states_pruned_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_states_pruned_total{solver=%q} %d\n", name, m.solverStats[name].statesPruned)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_dominance_hits_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_dominance_hits_total{solver=%q} %d\n", name, m.solverStats[name].dominanceHits)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_bound_cutoffs_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_bound_cutoffs_total{solver=%q} %d\n", name, m.solverStats[name].boundCutoffs)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_preprocess_reduction_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_preprocess_reduction_total{solver=%q} %d\n", name, m.solverStats[name].preprocessReduction)
		}
		fmt.Fprintf(w, "# TYPE hyperd_solver_budget_dropped_total counter\n")
		for _, name := range statNames {
			fmt.Fprintf(w, "hyperd_solver_budget_dropped_total{solver=%q} %d\n", name, m.solverStats[name].budgetDropped)
		}
	}
}

// trimFloat renders a bucket bound the way Prometheus clients do
// (shortest representation, no trailing zeros).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
