package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// Streaming solve sessions.
//
// A session is a long-lived incremental solve: the client opens it
// with an initial demand trace, appends (or amends) batches of demand
// rows over time, and reads back the re-optimized schedule after each
// batch.  Under the hood each session drives a solve.StepEngine, so a
// batch re-solves only the suffix it invalidates instead of the whole
// trace.
//
// Reliability model: the session's step-major demand trace is the
// authoritative state; the engine is a disposable accelerator.
//
//   - A panicking engine fails only the request that drove it; the
//     engine is dropped and the next batch rebuilds it from the trace
//     (one full re-solve, then incremental again).
//   - When live engines exceed the Config.SessionBytes budget, the
//     least recently used session's engine is serialized through the
//     engine checkpoint format into an LRU beside the result cache and
//     closed; the next batch on that session resumes from the
//     checkpoint (cheap) or, if the checkpoint was itself evicted,
//     rebuilds from the trace (correct).
//
// Session solves run synchronously on the calling goroutine (the whole
// point is the suffix re-solve being cheap), admitted through the same
// per-solver circuit breaker as the job queue.
var (
	// ErrNoSuchSession reports an unknown (or deleted) session id.
	ErrNoSuchSession = errors.New("service: no such session")
	// ErrSessionLimit rejects session creation beyond
	// Config.MaxSessions.
	ErrSessionLimit = errors.New("service: session limit reached")
)

// session is one streaming solve.  mu serializes all engine access and
// trace mutation; the store's lock is only ever taken for accounting
// and LRU bookkeeping (lock order: session.mu → store.mu, and evict
// crosses sessions only via TryLock).
type session struct {
	ID     string
	Solver string

	srv *Server

	mu    sync.Mutex
	opt   model.CostOptions
	opts  solve.Options
	tasks []model.Task
	trace [][]bitset.Set // step-major authoritative demand rows
	eng   solve.StepEngine

	// Schedule generation: bumped after every successful re-solve;
	// genCh closes on each bump (long-poll wakeup) and is replaced.
	gen   int64
	genCh chan struct{}

	sol              *solve.Solution
	memo             *wireMemo
	mt               *model.MTSwitchInstance // trace snapshot sol was solved for
	lastResolveStart int
	resolveExpanded  int64
	lastErr          string

	created time.Time
	closed  bool
}

// sessionStore tracks the live sessions, their LRU order and the
// engine byte budget.
type sessionStore struct {
	mu       sync.Mutex
	capacity int
	budget   int64
	seq      int64
	sessions map[string]*session
	ll       *list.List               // sessions with live engines, front = most recent
	els      map[string]*list.Element // session id -> ll element
	sizes    map[string]int64         // session id -> last engine SizeBytes
	total    int64                    // sum of sizes
	ckpts    *lruCache                // evicted engine checkpoints by session id
}

func newSessionStore(capacity int, budget int64) *sessionStore {
	return &sessionStore{
		capacity: capacity,
		budget:   budget,
		sessions: map[string]*session{},
		ll:       list.New(),
		els:      map[string]*list.Element{},
		sizes:    map[string]int64{},
		ckpts:    newLRUCache(capacity),
	}
}

// SessionRequest is the JSON body of POST /v1/sessions: a solver, an
// initial inline trace and options — like SolveRequest minus the
// app/kind indirection (sessions are always inline mtswitch, the only
// steppable kind).
type SessionRequest struct {
	Solver   string        `json:"solver"`
	Instance *WireInstance `json:"instance"`
	// Upload is "parallel" (default) or "sequential".
	Upload  string      `json:"upload,omitempty"`
	Options WireOptions `json:"options"`
}

// SessionSteps is the JSON body of POST /v1/sessions/{id}/steps: a
// batch of step-major demand rows in the WireInstance.Reqs cell format
// (row i, task j).  With At set the batch overwrites existing trace
// rows starting there (an amendment) instead of appending.
type SessionSteps struct {
	Reqs [][]string `json:"reqs"`
	At   *int       `json:"at,omitempty"`
}

// SessionStatus is the JSON view of a session, returned by every
// session endpoint.
type SessionStatus struct {
	ID     string `json:"id"`
	Solver string `json:"solver"`
	// Steps is the current trace length.
	Steps int `json:"steps"`
	// Generation counts successful re-solves; long-polling
	// GET /v1/sessions/{id}/schedule?generation=N returns once it
	// exceeds N.
	Generation int64 `json:"generation"`
	// ResolvedFrom is the trace step the last batch resumed solving
	// from (0 = full re-solve); the re-solved suffix is
	// Steps - ResolvedFrom.
	ResolvedFrom int `json:"resolved_from"`
	// ResolveExpanded is how many DP states the last batch's re-solve
	// expanded — the incremental cost, directly comparable to a
	// from-scratch solve's states_expanded.
	ResolveExpanded int64 `json:"resolve_expanded"`
	// Evicted reports the session's engine is currently checkpointed
	// out under memory pressure (the next batch revives it).
	Evicted bool `json:"evicted,omitempty"`

	CreatedAt time.Time `json:"created_at"`

	Result *WireSolution `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// resolveSession validates the session opener and builds the model
// instance, cost options and clamped solve options (the shared
// resolution behind CreateSession and the cluster routing key).
// Session solves run synchronously, so only the memory budget is
// clamped — there is no per-job deadline to cap.
func (r *SessionRequest) resolveSession(lim RouteLimits) (*model.MTSwitchInstance, model.CostOptions, solve.Options, error) {
	var cost model.CostOptions
	if r.Solver == "" {
		return nil, cost, solve.Options{}, fmt.Errorf("missing solver (registered: %v)", solve.Names())
	}
	if r.Instance == nil {
		return nil, cost, solve.Options{}, fmt.Errorf("sessions require an inline instance")
	}
	mt, err := r.Instance.toModel()
	if err != nil {
		return nil, cost, solve.Options{}, err
	}
	if mt.Steps() == 0 {
		return nil, cost, solve.Options{}, fmt.Errorf("sessions require at least one initial step")
	}
	switch r.Upload {
	case "", "parallel":
		cost = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	case "sequential":
		cost = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	default:
		return nil, cost, solve.Options{}, fmt.Errorf("unknown upload mode %q (want parallel or sequential)", r.Upload)
	}
	opts, err := r.Options.toSolve()
	if err != nil {
		return nil, cost, solve.Options{}, err
	}
	if lim.MaxFrontierBytes > 0 && (opts.MaxFrontierBytes == 0 || opts.MaxFrontierBytes > lim.MaxFrontierBytes) {
		opts.MaxFrontierBytes = lim.MaxFrontierBytes
	}
	if err := opts.Validate(); err != nil {
		return nil, cost, solve.Options{}, err
	}
	return mt, cost, opts, nil
}

// CreateSession validates the request, admits it against the solver's
// circuit breaker and the session cap, and solves the initial trace
// synchronously.  A failed initial solve tears the session back down —
// the client holds no id yet, so nothing may linger.
func (s *Server) CreateSession(ctx context.Context, req *SessionRequest) (*session, error) {
	mt, cost, opts, err := req.resolveSession(s.limits())
	if err != nil {
		return nil, err
	}

	// Feature-detect before admitting: a solver without the Stepper
	// capability is a client error, not a breaker event.
	eng, err := solve.NewStepEngine(ctx, req.Solver, solve.NewMT(mt, cost), opts)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		eng.Close()
		return nil, ErrShuttingDown
	}
	if br := s.breakerLocked(req.Solver); br != nil {
		if ok, retryAfter := br.Allow(); !ok {
			s.mu.Unlock()
			eng.Close()
			s.metrics.breakerRejected.Add(1)
			return nil, &SolverUnavailableError{Solver: req.Solver, RetryAfter: retryAfter}
		}
	}
	s.mu.Unlock()

	st := s.sessions
	st.mu.Lock()
	if len(st.sessions) >= st.capacity {
		st.mu.Unlock()
		eng.Close()
		s.noteBreaker(req.Solver, context.Canceled) // admitted but never ran
		return nil, ErrSessionLimit
	}
	st.seq++
	sess := &session{
		ID:      fmt.Sprintf("sess-%d", st.seq),
		Solver:  req.Solver,
		srv:     s,
		opt:     cost,
		opts:    opts,
		tasks:   append([]model.Task(nil), mt.Tasks...),
		eng:     eng,
		genCh:   make(chan struct{}),
		created: time.Now(),
	}
	sess.trace = make([][]bitset.Set, mt.Steps())
	for i := range sess.trace {
		row := make([]bitset.Set, mt.NumTasks())
		for j := range row {
			row[j] = mt.Reqs[j][i].Clone()
		}
		sess.trace[i] = row
	}
	st.sessions[sess.ID] = sess
	st.mu.Unlock()

	sess.mu.Lock()
	err = sess.solveLocked(ctx)
	sess.mu.Unlock()
	s.noteBreaker(req.Solver, err)
	if err != nil {
		s.DeleteSession(sess.ID)
		return nil, err
	}
	// Journal the opener before the client learns the id: every batch
	// it sends afterwards lands on a session the journal knows.
	if s.dur != nil {
		if data, err := json.Marshal(req); err == nil {
			s.journal(walRecord{T: "sess", ID: sess.ID, Req: data})
		}
	}
	return sess, nil
}

// Session looks a session up by id.
func (s *Server) Session(id string) (*session, bool) {
	st := s.sessions
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.sessions[id]
	return sess, ok
}

// DeleteSession closes and forgets a session.
func (s *Server) DeleteSession(id string) error {
	st := s.sessions
	st.mu.Lock()
	sess, ok := st.sessions[id]
	if !ok {
		st.mu.Unlock()
		return ErrNoSuchSession
	}
	delete(st.sessions, id)
	st.dropAccountingLocked(id)
	st.ckpts.Delete(id)
	st.mu.Unlock()
	// Journal the deletion and drop the spilled checkpoint (no-op at
	// shutdown: draining keeps sessions for the next boot).
	s.dropDurableSession(id)

	sess.mu.Lock()
	sess.closed = true
	if sess.eng != nil {
		closeEngine(sess.eng)
		sess.eng = nil
	}
	close(sess.genCh) // wake long-pollers; closed sessions never re-arm
	sess.mu.Unlock()
	return nil
}

// closeSessions tears down every session at shutdown.
func (s *Server) closeSessions() {
	st := s.sessions
	st.mu.Lock()
	ids := make([]string, 0, len(st.sessions))
	for id := range st.sessions {
		ids = append(ids, id)
	}
	st.mu.Unlock()
	for _, id := range ids {
		s.DeleteSession(id)
	}
}

// Steps applies one batch (append, or amendment when batch.At is set)
// and re-solves synchronously.  The batch is admitted against the
// solver's circuit breaker, and its outcome feeds the breaker like a
// job run does.
func (sess *session) Steps(ctx context.Context, batch *SessionSteps) (*SessionStatus, error) {
	rows, err := sess.parseBatch(batch)
	if err != nil {
		return nil, err
	}
	s := sess.srv
	s.mu.Lock()
	if br := s.breakerLocked(sess.Solver); br != nil {
		if ok, retryAfter := br.Allow(); !ok {
			s.mu.Unlock()
			s.metrics.breakerRejected.Add(1)
			return nil, &SolverUnavailableError{Solver: sess.Solver, RetryAfter: retryAfter}
		}
	}
	s.mu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		s.noteBreaker(sess.Solver, context.Canceled)
		return nil, ErrNoSuchSession
	}

	// Mutate the authoritative trace first: whatever happens to the
	// engine afterwards, a rebuild sees the batch.
	at := batch.At
	if at != nil {
		if *at < 0 || *at+len(rows) > len(sess.trace) {
			s.noteBreaker(sess.Solver, context.Canceled)
			return nil, fmt.Errorf("amend window [%d,%d) outside trace of %d steps", *at, *at+len(rows), len(sess.trace))
		}
		copy(sess.trace[*at:], rows)
	} else {
		sess.trace = append(sess.trace, rows...)
	}
	// Journal the batch the moment the trace accepts it: the trace is
	// the authoritative state, so the journal must carry it whether or
	// not the solve below succeeds (a failed solve leaves the engine to
	// rebuild from this same trace).
	s.journal(walRecord{T: "steps", ID: sess.ID, At: batch.At, Rows: batch.Reqs})

	err = sess.applyLocked(ctx, rows, at)
	s.noteBreaker(sess.Solver, err)
	if err != nil {
		return nil, err
	}
	s.metrics.sessionSteps.Add(int64(len(rows)))
	s.metrics.observeSuffix(int64(len(sess.trace) - sess.lastResolveStart))
	return sess.statusLocked(), nil
}

// parseBatch validates and decodes a step batch against the session's
// task shapes (pure; runs outside the session lock).
func (sess *session) parseBatch(batch *SessionSteps) ([][]bitset.Set, error) {
	if batch == nil || len(batch.Reqs) == 0 {
		return nil, fmt.Errorf("empty step batch")
	}
	if len(batch.Reqs) > maxWireSteps {
		return nil, &TooLargeError{What: "step count", Got: len(batch.Reqs), Limit: maxWireSteps}
	}
	rows := make([][]bitset.Set, len(batch.Reqs))
	for i, cells := range batch.Reqs {
		if len(cells) != len(sess.tasks) {
			return nil, fmt.Errorf("step row %d has %d cells, want %d", i, len(cells), len(sess.tasks))
		}
		row := make([]bitset.Set, len(cells))
		for j, cell := range cells {
			set, err := bitset.Parse(cell)
			if err != nil {
				return nil, fmt.Errorf("step row %d task %q: %w", i, sess.tasks[j].Name, err)
			}
			if set.Universe() != sess.tasks[j].Local {
				return nil, fmt.Errorf("step row %d task %q bit string length %d, want %d",
					i, sess.tasks[j].Name, set.Universe(), sess.tasks[j].Local)
			}
			row[j] = set
		}
		rows[i] = row
	}
	return rows, nil
}

// applyLocked feeds one decoded batch into the engine (reviving or
// rebuilding it first if needed) and re-solves.  Caller holds sess.mu
// and has already updated sess.trace.
func (sess *session) applyLocked(ctx context.Context, rows [][]bitset.Set, at *int) error {
	// An engine out of step with the trace (a previous batch reached the
	// engine but its solve failed mid-way, or vice versa) is dropped: the
	// trace is the truth.
	if sess.eng != nil {
		want := len(sess.trace)
		if at == nil {
			want -= len(rows)
		}
		if sess.eng.Steps() != want {
			sess.dropEngineLocked()
		}
	}
	if sess.eng == nil {
		// Engine evicted or lost: revive from checkpoint or rebuild from
		// the (already updated) trace; either path ends at len(trace)
		// steps.  An appended batch is covered by the restore itself; an
		// amendment must still be replayed, because a revived checkpoint
		// carries the pre-amendment rows (a fresh rebuild carries the
		// amended ones, and replaying identical rows is a no-op).
		if err := sess.restoreEngineLocked(ctx); err != nil {
			return err
		}
		if at == nil {
			return sess.solveLocked(ctx)
		}
	}
	var err error
	if at != nil {
		err = sess.protect(func() error { return sess.eng.Amend(ctx, *at, rows) })
	} else {
		err = sess.protect(func() error { return sess.eng.Extend(ctx, rows) })
	}
	if err != nil {
		return err
	}
	return sess.solveLocked(ctx)
}

// restoreEngineLocked brings back a missing engine at exactly
// len(trace) steps: from the checkpointed frontier when one is cached,
// extended to the current trace if it stopped short, from scratch
// otherwise.
func (sess *session) restoreEngineLocked(ctx context.Context) error {
	st := sess.srv.sessions
	var ckpt []byte
	if data, ok := st.ckpts.Get(sess.ID); ok {
		st.ckpts.Delete(sess.ID)
		ckpt = data.([]byte)
	} else {
		// The in-memory LRU misses after a restart; the spilled copy on
		// disk may still hold this session's frontier.
		ckpt = sess.srv.diskCkpt(sess.ID)
	}
	if ckpt != nil {
		eng, err := solve.ResumeStepEngine(ctx, sess.Solver, ckpt, sess.opts)
		if err == nil {
			if eng.Steps() == len(sess.trace) {
				sess.eng = eng
				sess.srv.metrics.sessionsRevived.Add(1)
				return nil
			}
			if eng.Steps() < len(sess.trace) {
				sess.eng = eng // protect() drops it again on panic
				if perr := sess.protect(func() error {
					return eng.Extend(ctx, cloneRows(sess.trace[eng.Steps():]))
				}); perr == nil {
					sess.srv.metrics.sessionsRevived.Add(1)
					return nil
				}
				// protect dropped sess.eng; fall through to rebuild.
			} else {
				closeEngine(eng) // checkpoint outran the trace: distrust it
			}
		}
		// Any revival failure falls back to a full rebuild.
	}
	mt, err := sess.instanceLocked()
	if err != nil {
		return err
	}
	eng, err := solve.NewStepEngine(ctx, sess.Solver, solve.NewMT(mt, sess.opt), sess.opts)
	if err != nil {
		return err
	}
	sess.eng = eng
	return nil
}

// instanceLocked materializes the authoritative trace as a model
// instance (task-major).
func (sess *session) instanceLocked() (*model.MTSwitchInstance, error) {
	reqs := make([][]bitset.Set, len(sess.tasks))
	for j := range reqs {
		reqs[j] = make([]bitset.Set, len(sess.trace))
		for i := range sess.trace {
			reqs[j][i] = sess.trace[i][j]
		}
	}
	return model.NewMTSwitchInstance(sess.tasks, reqs)
}

// cloneRows deep-copies step-major rows (engines take ownership of
// what they are handed).
func cloneRows(rows [][]bitset.Set) [][]bitset.Set {
	out := make([][]bitset.Set, len(rows))
	for i, row := range rows {
		out[i] = make([]bitset.Set, len(row))
		for j, s := range row {
			out[i][j] = s.Clone()
		}
	}
	return out
}

// solveLocked runs the engine to completion, publishes the new
// schedule generation and re-balances the engine byte budget.
func (sess *session) solveLocked(ctx context.Context) error {
	var sol *solve.Solution
	err := sess.protect(func() error {
		// The "service.session" site lets the chaos harness fail, stall
		// or panic the session solve path itself; a panic lands in
		// protect's recover like a real engine panic would.
		if faultinject.Enabled() {
			if err := faultinject.Fire("service.session"); err != nil {
				return err
			}
		}
		var err error
		sol, err = sess.eng.Solution(ctx)
		return err
	})
	if err != nil {
		sess.lastErr = err.Error()
		return err
	}
	mt, err := sess.instanceLocked()
	if err != nil {
		sess.lastErr = err.Error()
		return err
	}
	sess.sol = sol
	sess.memo = &wireMemo{}
	sess.mt = mt
	sess.lastResolveStart = sess.eng.LastResolveStart()
	sess.resolveExpanded = sess.eng.ResolveExpanded()
	sess.lastErr = ""
	sess.gen++
	close(sess.genCh)
	sess.genCh = make(chan struct{})
	sess.srv.sessions.rebalance(sess, sess.eng.SizeBytes())
	return nil
}

// protect runs one engine operation with panic isolation: a panic
// anywhere in the engine fails only this request (as a typed
// *solve.PanicError) and drops the engine — its state is suspect — so
// the next batch rebuilds from the authoritative trace.
func (sess *session) protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &solve.PanicError{Value: r, Stack: debug.Stack()}
			sess.lastErr = err.Error()
			sess.srv.metrics.recordPanic(sess.Solver)
			sess.dropEngineLocked()
		}
	}()
	return fn()
}

// dropEngineLocked discards the engine and its byte accounting (caller
// holds sess.mu).
func (sess *session) dropEngineLocked() {
	if sess.eng != nil {
		closeEngine(sess.eng)
		sess.eng = nil
	}
	sess.srv.sessions.dropAccounting(sess.ID)
}

// closeEngine closes an engine whose state may already be corrupted; a
// panicking Close must not take the caller down.
func closeEngine(eng solve.StepEngine) {
	defer func() { recover() }()
	eng.Close()
}

// Wait blocks until the schedule generation exceeds gen, the timeout
// elapses or ctx is done, and returns the then-current status.
func (sess *session) Wait(ctx context.Context, gen int64, timeout time.Duration) *SessionStatus {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	sess.mu.Lock()
	for sess.gen <= gen && !sess.closed {
		ch := sess.genCh
		sess.mu.Unlock()
		select {
		case <-ch:
			sess.mu.Lock()
			continue
		case <-deadline.C:
		case <-ctx.Done():
		}
		sess.mu.Lock()
		break
	}
	defer sess.mu.Unlock()
	return sess.statusLocked()
}

// Status snapshots the session.
func (sess *session) Status() *SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.statusLocked()
}

func (sess *session) statusLocked() *SessionStatus {
	st := &SessionStatus{
		ID:              sess.ID,
		Solver:          sess.Solver,
		Steps:           len(sess.trace),
		Generation:      sess.gen,
		ResolvedFrom:    sess.lastResolveStart,
		ResolveExpanded: sess.resolveExpanded,
		Evicted:         sess.eng == nil && !sess.closed,
		CreatedAt:       sess.created,
		Error:           sess.lastErr,
	}
	if sess.sol != nil {
		ws, err := sess.memo.get(sess.sol, sess.mt)
		if err != nil {
			st.Error = err.Error()
		} else {
			st.Result = ws
		}
	}
	return st
}

// rebalance updates one session's engine size and evicts
// least-recently-used engines until the total fits the byte budget.
// The caller holds its own session's mu (and no other); evictions only
// touch sessions that are NOT mid-request, guarded by TryLock.
func (st *sessionStore) rebalance(sess *session, size int64) {
	st.mu.Lock()
	if el, ok := st.els[sess.ID]; ok {
		st.ll.MoveToFront(el)
	} else {
		st.els[sess.ID] = st.ll.PushFront(sess)
	}
	st.total += size - st.sizes[sess.ID]
	st.sizes[sess.ID] = size

	var victims []*session
	if st.budget > 0 {
		for st.total > st.budget && st.ll.Len() > 1 {
			back := st.ll.Back()
			v := back.Value.(*session)
			if v == sess {
				break
			}
			st.ll.Remove(back)
			delete(st.els, v.ID)
			st.total -= st.sizes[v.ID]
			delete(st.sizes, v.ID)
			victims = append(victims, v)
		}
	}
	st.mu.Unlock()

	for _, v := range victims {
		v.evict()
	}
}

// dropAccounting removes a session from the LRU and byte accounting.
func (st *sessionStore) dropAccounting(id string) {
	st.mu.Lock()
	st.dropAccountingLocked(id)
	st.mu.Unlock()
}

func (st *sessionStore) dropAccountingLocked(id string) {
	if el, ok := st.els[id]; ok {
		st.ll.Remove(el)
		delete(st.els, id)
	}
	st.total -= st.sizes[id]
	delete(st.sizes, id)
}

// evict checkpoints a session's engine into the checkpoint LRU and
// closes it.  A session busy with a request is skipped (it just moved
// to the LRU front anyway); a checkpoint failure falls back to plain
// dropping — the trace rebuilds the engine.
func (sess *session) evict() {
	if !sess.mu.TryLock() {
		return
	}
	defer sess.mu.Unlock()
	if sess.eng == nil || sess.closed {
		return
	}
	st := sess.srv.sessions
	if data, err := sess.eng.Checkpoint(context.Background()); err == nil {
		st.ckpts.Put(sess.ID, data)
		// Spill the checkpoint too: a crash between eviction and the
		// next batch revives from disk instead of re-solving the trace.
		sess.srv.spillCkpt(sess.ID, data)
	}
	closeEngine(sess.eng)
	sess.eng = nil
	sess.srv.metrics.sessionsEvicted.Add(1)
}

// gauges snapshots the point-in-time session metrics.
func (st *sessionStore) gauges() (active int, engineBytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions), st.total
}
