package service

import (
	"net/http"
	"runtime/debug"
	"sync"
)

// Cluster-aware health reporting.  GET /healthz stays the one-word
// liveness probe; GET /v1/healthz carries what a router's health
// checker (internal/cluster) needs to admit or evict this node: its
// identity, build, drain state, ring view and live-session load.

// HealthStatus is the JSON body of GET /v1/healthz.
type HealthStatus struct {
	// Status is "ok" while the node accepts work, "draining" once
	// shutdown has begun (submits are already rejected).
	Status string `json:"status"`
	// State is the durable-recovery lifecycle: "recovering" while the
	// node replays its journal (routers must not admit it yet), "ready"
	// once replay finished, "draining" during graceful shutdown.  Nodes
	// without a data dir boot straight to "ready".
	State string `json:"state"`
	// NodeID is the node's cluster identity (Config.NodeID; the serve
	// address when unset).
	NodeID string `json:"node_id"`
	// Version is the build's module version (or "devel" when built
	// without version stamping).
	Version string `json:"version"`
	// SessionsActive is the number of live streaming sessions pinned to
	// this node — a router must keep their sticky assignments here.
	SessionsActive int `json:"sessions_active"`
	// Ring is this node's view of the cluster membership; omitted when
	// the node runs standalone.
	Ring *RingStatus `json:"ring,omitempty"`
}

// RingStatus describes one node's (or the router's) membership view.
type RingStatus struct {
	// Self is the member id this node occupies on the ring ("" for a
	// router, which owns no ring positions).
	Self string `json:"self,omitempty"`
	// VNodes is the virtual-node count per member.
	VNodes  int            `json:"vnodes,omitempty"`
	Members []MemberHealth `json:"members,omitempty"`
}

// MemberHealth is one ring member as last observed by the health
// checker.
type MemberHealth struct {
	ID      string `json:"id"`
	URL     string `json:"url,omitempty"`
	Healthy bool   `json:"healthy"`
}

// BuildVersion reports the module's build version, shared with the
// cluster router's own health document.
func BuildVersion() string { return buildVersion() }

// buildVersion resolves the module's build version once.
var buildVersion = sync.OnceValue(func() string {
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" {
		return info.Main.Version
	}
	return "devel"
})

// Health snapshots the node's health document (the /v1/healthz body).
func (s *Server) Health() *HealthStatus {
	st := &HealthStatus{
		Status:  "ok",
		NodeID:  s.cfg.NodeID,
		Version: buildVersion(),
	}
	s.mu.Lock()
	st.State = s.state
	if s.closed {
		st.Status = "draining"
		st.State = "draining"
	}
	s.mu.Unlock()
	st.SessionsActive, _ = s.sessions.gauges()
	if s.cfg.ClusterStatus != nil {
		st.Ring = s.cfg.ClusterStatus()
	}
	return st
}

func (s *Server) handleHealthzV1(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}
