package service

import (
	"testing"

	"repro/internal/core"
	"repro/internal/shyra"
	"repro/internal/solve"
)

// counterWire resolves the counter app and re-serializes it as an
// inline wire instance.
func counterWire(t *testing.T) *WireInstance {
	t.Helper()
	tr, err := core.AppTrace("counter")
	if err != nil {
		t.Fatal(err)
	}
	mt, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	return WireInstanceFrom(mt)
}

func mustResolve(t *testing.T, req *SolveRequest) *resolved {
	t.Helper()
	res, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func key(t *testing.T, res *resolved) string {
	t.Helper()
	k, err := requestKey(res.inst, res.solver, res.opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRequestKeyContentAddressed(t *testing.T) {
	// The same problem phrased as a bundled app and as its inline
	// requirement matrix must share one cache line.
	byApp := mustResolve(t, &SolveRequest{Solver: "aligned", App: "counter"})
	byInline := mustResolve(t, &SolveRequest{Solver: "aligned", Instance: counterWire(t)})
	if key(t, byApp) != key(t, byInline) {
		t.Fatal("app and equivalent inline instance hash differently")
	}

	// Stability across calls.
	if key(t, byApp) != key(t, mustResolve(t, &SolveRequest{Solver: "aligned", App: "counter"})) {
		t.Fatal("hash is not stable")
	}
}

func TestRequestKeyDiscriminates(t *testing.T) {
	base := &SolveRequest{Solver: "aligned", App: "counter"}
	baseKey := key(t, mustResolve(t, base))
	variants := []*SolveRequest{
		{Solver: "ga", App: "counter"},
		{Solver: "aligned", App: "counter", Upload: "sequential"},
		{Solver: "aligned", App: "counter", Gran: "unit"},
		{Solver: "aligned", App: "counter", Kind: "switch"},
		{Solver: "aligned", App: "counter", Options: WireOptions{Seed: 7}},
		{Solver: "aligned", App: "counter", TimeoutMS: 5000},
		{Solver: "aligned", App: "toggle"},
	}
	for i, v := range variants {
		if key(t, mustResolve(t, v)) == baseKey {
			t.Fatalf("variant %d collides with the base request", i)
		}
	}
}

func TestRequestKeyUnsupportedKind(t *testing.T) {
	if _, err := requestKey(solve.NewDAG(nil), "exact", solve.Options{}); err == nil {
		t.Fatal("hashed an unsupported instance kind")
	}
}
