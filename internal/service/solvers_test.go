package service

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestSolverOptionRanges pins optionRanges against the wire surface:
// every documented option must be a real WireOptions field (or the
// request-level timeout_ms), and every WireOptions field must be
// documented — so the endpoint and the wire schema cannot drift apart
// silently.
func TestSolverOptionRanges(t *testing.T) {
	wire := map[string]bool{"timeout_ms": true} // lives on SolveRequest
	rt := reflect.TypeOf(WireOptions{})
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			wire[name] = true
		}
	}

	documented := map[string]bool{}
	for _, o := range optionRanges() {
		if documented[o.Name] {
			t.Fatalf("option %q documented twice", o.Name)
		}
		documented[o.Name] = true
		if !wire[o.Name] {
			t.Errorf("option %q documented but not on the wire", o.Name)
		}
		if o.Type == "" || o.Range == "" || o.Doc == "" {
			t.Errorf("option %q has empty fields: %+v", o.Name, o)
		}
	}
	for name := range wire {
		if !documented[name] {
			t.Errorf("wire option %q missing from optionRanges", name)
		}
	}
}

// TestSolversEndpoint checks GET /v1/solvers lists the full registry —
// including the portfolio meta-solver — with capabilities attached.
func TestSolversEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body SolversResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	byName := map[string]SolverInfo{}
	for _, s := range body.Solvers {
		byName[s.Name] = s
	}
	for _, want := range []string{"exact", "exact-partitioned", "beam", "ga", "portfolio"} {
		info, ok := byName[want]
		if !ok {
			t.Fatalf("solver %q missing from /v1/solvers (got %v)", want, body.Solvers)
		}
		if len(info.Kinds) == 0 {
			t.Fatalf("solver %q lists no kinds", want)
		}
	}
	if !byName["exact"].Exact {
		t.Fatal("exact solver not flagged exact")
	}
	if byName["ga"].Exact {
		t.Fatal("ga flagged exact")
	}
	if len(body.Options) == 0 {
		t.Fatal("no option ranges returned")
	}
}
