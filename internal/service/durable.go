package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
)

// Durable state & crash recovery.
//
// With Config.DataDir set, the server journals every state mutation
// that matters after a crash into a write-ahead log and spills the
// canonical result store and evicted session checkpoints to disk:
//
//   - "job" records journal each actually-enqueued submission (cache
//     hits and dedup joins cost nothing to lose); "jobdone" records
//     journal terminal outcomes and carry the canonical entry of a
//     completed mtswitch solve, so completion and result persist in one
//     ordered, CRC-framed append.
//   - "sess" records journal session openers, "steps" records each
//     accepted batch (the trace-as-truth model makes the trace the only
//     session state that matters), "sessdel" explicit deletions.
//   - The canonical store spills to a content-addressed disk store in
//     the background and warm-loads on boot, so structural twins
//     survive restarts and a crashed cluster node rejoins warm.  The
//     exact (literal) result cache is not spilled separately: a
//     restarted node reconstructs literal repeats through the canonical
//     layer, which re-seeds the exact cache on first hit.
//
// Recovery at Open: warm-load the canonical store, replay the journal,
// re-register journaled sessions (traces rebuilt from their records),
// re-enqueue incomplete jobs (completed twins are born terminal off the
// warm canonical store — no duplicate solve for a journaled
// completion), then revive session engines in the background while
// /v1/healthz reports "recovering".  Once ready, the journal is
// compacted to a snapshot of live state.
//
// Replay is idempotent by construction: records are folded into
// per-hash and per-id maps, so duplicates (a retried compaction, a
// replayed restart) cannot double-apply.

// walRecord is the JSON payload of one journal record.
type walRecord struct {
	// T is the record type: job, jobdone, sess, steps, sessdel.
	T string `json:"t"`
	// Hash addresses job records (the request content address).
	Hash string `json:"h,omitempty"`
	// ID addresses session records.
	ID string `json:"id,omitempty"`
	// Req is the original SolveRequest (job) or SessionRequest (sess).
	Req json.RawMessage `json:"req,omitempty"`
	// At and Rows carry one session step batch (steps records).
	At   *int       `json:"at,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
	// Entry carries a completed solve's canonical store line inside its
	// jobdone record, making completion and result one atomic append.
	Entry *PeerEntry `json:"entry,omitempty"`
}

// durableState bundles the WAL, the on-disk stores and the background
// spill worker.
type durableState struct {
	wal        *durable.WAL
	canonStore *durable.Store // canonical entries, PeerEntry JSON by canonical key
	ckptStore  *durable.Store // session engine checkpoints, raw MTE1 blobs by session id

	// disabled gates every durable side effect; set at the end of
	// shutdown (and by the crash simulation hook) so teardown does not
	// journal over its own final snapshot.
	disabled atomic.Bool

	spill      chan func()
	spillWG    sync.WaitGroup
	spillDrops atomic.Int64
}

// openDurable opens the data directory's WAL and stores and starts the
// spill worker.
func (s *Server) openDurable() error {
	dir := s.cfg.DataDir
	wal, err := durable.OpenWAL(filepath.Join(dir, "wal"), durable.WALOptions{
		SegmentBytes:     s.cfg.WALSegmentBytes,
		Fsync:            s.cfg.Fsync,
		FsyncIntervalDur: s.cfg.FsyncInterval,
	})
	if err != nil {
		return err
	}
	canonStore, err := durable.OpenStore(filepath.Join(dir, "canon"))
	if err != nil {
		wal.Close()
		return err
	}
	ckptStore, err := durable.OpenStore(filepath.Join(dir, "ckpt"))
	if err != nil {
		wal.Close()
		return err
	}
	d := &durableState{
		wal:        wal,
		canonStore: canonStore,
		ckptStore:  ckptStore,
		spill:      make(chan func(), 1024),
	}
	d.spillWG.Add(1)
	go func() {
		defer d.spillWG.Done()
		for fn := range d.spill {
			fn()
		}
	}()
	s.dur = d
	return nil
}

// journal appends one record to the WAL (no-op without a data dir).
// The "service.journal" site lets the chaos harness crash, stall or
// drop the append itself.
func (s *Server) journal(rec walRecord) {
	d := s.dur
	if d == nil || d.disabled.Load() {
		return
	}
	if faultinject.Enabled() {
		if err := faultinject.Fire("service.journal"); err != nil {
			return // injected journal loss
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	d.wal.Append(data)
}

// spillAsync hands one disk write to the background worker; a full (or
// already-closed) queue drops the spill — losing a spill only loses
// cache warmth, never correctness.
func (d *durableState) spillAsync(fn func()) {
	defer func() {
		if recover() != nil {
			d.spillDrops.Add(1) // raced shutdown's channel close
		}
	}()
	select {
	case d.spill <- fn:
	default:
		d.spillDrops.Add(1)
	}
}

// spillCanon spills one canonical entry to the disk store.
func (s *Server) spillCanon(key string, e *canonicalEntry) {
	d := s.dur
	if d == nil || d.disabled.Load() || e == nil || key == "" {
		return
	}
	d.spillAsync(func() {
		if data, err := json.Marshal(peerEntryOf(key, e)); err == nil {
			d.canonStore.Put(key, data)
		}
	})
}

// spillCkpt spills one evicted engine checkpoint to the disk store.
func (s *Server) spillCkpt(id string, data []byte) {
	d := s.dur
	if d == nil || d.disabled.Load() {
		return
	}
	d.spillAsync(func() { d.ckptStore.Put(id, data) })
}

// diskCkpt returns a session's spilled engine checkpoint, if any.
func (s *Server) diskCkpt(id string) []byte {
	d := s.dur
	if d == nil {
		return nil
	}
	data, ok := d.ckptStore.Get(id)
	if !ok {
		return nil
	}
	return data
}

// dropDurableSession journals an explicit session deletion and removes
// its spilled checkpoint (skipped during shutdown, so draining does not
// delete sessions the snapshot is keeping).
func (s *Server) dropDurableSession(id string) {
	d := s.dur
	if d == nil || d.disabled.Load() {
		return
	}
	s.journal(walRecord{T: "sessdel", ID: id})
	d.spillAsync(func() { d.ckptStore.Delete(id) })
}

// setState publishes the node's lifecycle state (recovering → ready;
// draining is derived from closed).
func (s *Server) setState(state string) {
	s.mu.Lock()
	if !s.closed {
		s.state = state
	}
	s.mu.Unlock()
}

// recSession accumulates one journaled session during replay.
type recSession struct {
	req     json.RawMessage
	batches []walRecord
}

// recPlan is the folded journal: what must be re-registered and re-run.
type recPlan struct {
	jobs      map[string]json.RawMessage
	done      map[string]bool
	order     []string
	sess      map[string]*recSession
	sessOrder []string
}

// recoverDurable rebuilds state from the data directory.  Called from
// Open after the worker pool is live; the caller has set state
// "recovering".
func (s *Server) recoverDurable() {
	d := s.dur

	// 1. Warm-load the canonical store: every spilled entry goes back
	// into the in-memory LRU, so completed work answers as cache hits.
	warm := 0
	d.canonStore.Walk(func(key string, data []byte) error {
		pe, err := DecodePeerEntry(data)
		if err != nil || pe.Key != key {
			return nil // skip unreadable entries; never fail recovery
		}
		s.canon.Put(key, pe.entry())
		warm++
		return nil
	})
	s.metrics.recoveryCacheWarmloaded.Add(int64(warm))

	// 2. Fold the journal.  Map semantics make the fold idempotent and
	// order-tolerant: duplicates overwrite, a done mark wins regardless
	// of position.
	plan := &recPlan{
		jobs: map[string]json.RawMessage{},
		done: map[string]bool{},
		sess: map[string]*recSession{},
	}
	d.wal.Replay(func(data []byte) error {
		var rec walRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil // tolerate an unreadable record, keep the rest
		}
		switch rec.T {
		case "job":
			if rec.Hash == "" || len(rec.Req) == 0 {
				return nil
			}
			if _, seen := plan.jobs[rec.Hash]; !seen {
				plan.order = append(plan.order, rec.Hash)
			}
			plan.jobs[rec.Hash] = rec.Req
		case "jobdone":
			if rec.Hash == "" {
				return nil
			}
			plan.done[rec.Hash] = true
			if rec.Entry != nil && rec.Entry.Key != "" {
				// The completed result rode inside the record: warm it, and
				// write it through to the disk store synchronously — the
				// compaction at the end of recovery drops this record, so
				// the store must already hold the entry by then (an async
				// spill could lose it to an immediate second crash).
				s.canon.Put(rec.Entry.Key, rec.Entry.entry())
				if data, err := json.Marshal(rec.Entry); err == nil {
					d.canonStore.Put(rec.Entry.Key, data)
				}
			}
		case "sess":
			if rec.ID == "" || len(rec.Req) == 0 {
				return nil
			}
			if _, seen := plan.sess[rec.ID]; !seen {
				plan.sessOrder = append(plan.sessOrder, rec.ID)
			}
			plan.sess[rec.ID] = &recSession{req: rec.Req}
		case "steps":
			if rs := plan.sess[rec.ID]; rs != nil {
				rs.batches = append(rs.batches, rec)
			}
		case "sessdel":
			delete(plan.sess, rec.ID)
		}
		return nil
	})

	// 3. Re-register journaled sessions with their traces rebuilt; the
	// engines revive in the background below.
	var revive []*session
	for _, id := range plan.sessOrder {
		rec, ok := plan.sess[id]
		if !ok {
			continue // deleted later in the journal
		}
		if sess := s.restoreSession(id, rec); sess != nil {
			revive = append(revive, sess)
		}
	}

	// 4. Re-enqueue incomplete jobs.  A journaled completion's twin is
	// born terminal off the warm canonical store inside Submit, so
	// nothing solved before the crash solves again.
	requeued := 0
	for _, hash := range plan.order {
		if plan.done[hash] {
			continue
		}
		var req SolveRequest
		if err := json.Unmarshal(plan.jobs[hash], &req); err != nil {
			continue
		}
		if _, _, err := s.Submit(&req); err == nil {
			requeued++
		}
	}
	s.metrics.recoveryJobsRequeued.Add(int64(requeued))

	// 5. Revive session engines in the background; the node reports
	// "recovering" until the last session solves again, then compacts
	// the journal into a snapshot of live state.  The "service.recover"
	// site lets tests stall here and observe the recovering state.
	if len(revive) == 0 {
		s.setState("ready")
		s.compactWAL()
		return
	}
	go func() {
		for _, sess := range revive {
			if faultinject.Enabled() {
				faultinject.Fire("service.recover")
			}
			sess.mu.Lock()
			if !sess.closed && sess.eng == nil {
				if err := sess.restoreEngineLocked(s.baseCtx); err == nil {
					if err := sess.solveLocked(s.baseCtx); err == nil {
						s.metrics.recoverySessionsRevived.Add(1)
					}
				}
			}
			sess.mu.Unlock()
		}
		s.setState("ready")
		s.compactWAL()
	}()
}

// restoreSession re-registers one journaled session: the opener
// resolves exactly like CreateSession, the trace replays its journaled
// batches, the engine stays nil until revival (or the next batch)
// restores it.
func (s *Server) restoreSession(id string, rec *recSession) *session {
	var req SessionRequest
	if err := json.Unmarshal(rec.req, &req); err != nil {
		return nil
	}
	mt, cost, opts, err := req.resolveSession(s.limits())
	if err != nil {
		return nil
	}
	var n int64
	if _, err := fmt.Sscanf(id, "sess-%d", &n); err != nil || n <= 0 {
		return nil
	}
	sess := &session{
		ID:      id,
		Solver:  req.Solver,
		srv:     s,
		opt:     cost,
		opts:    opts,
		tasks:   append([]model.Task(nil), mt.Tasks...),
		genCh:   make(chan struct{}),
		created: time.Now(),
	}
	sess.trace = traceFromInstance(mt)
	for _, b := range rec.batches {
		rows, err := sess.parseBatch(&SessionSteps{Reqs: b.Rows, At: b.At})
		if err != nil {
			continue // a malformed journaled batch cannot corrupt the trace
		}
		if b.At != nil {
			if *b.At < 0 || *b.At+len(rows) > len(sess.trace) {
				continue
			}
			copy(sess.trace[*b.At:], rows)
		} else {
			sess.trace = append(sess.trace, rows...)
		}
	}
	st := s.sessions
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.sessions) >= st.capacity {
		return nil
	}
	if n > st.seq {
		st.seq = n
	}
	st.sessions[id] = sess
	return sess
}

// compactWAL rewrites the journal as a snapshot of live state:
// incomplete jobs and live sessions (their full current traces, so
// step-batch history collapses).  Holding s.mu for the duration keeps
// job journaling quiescent; sessions are snapshotted under TryLock and
// any busy session aborts the compaction — the un-compacted journal
// stays a correct superset, and the next quiet moment retries.
func (s *Server) compactWAL() error {
	d := s.dur
	if d == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactWALLocked()
}

func (s *Server) compactWALLocked() error {
	d := s.dur
	if d == nil {
		return nil
	}
	type jobSnap struct {
		hash string
		req  json.RawMessage
	}
	var liveJobs []jobSnap
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.Terminal() && j.reqJSON != nil {
			liveJobs = append(liveJobs, jobSnap{j.Hash, j.reqJSON})
		}
		j.mu.Unlock()
	}
	st := s.sessions
	st.mu.Lock()
	liveSessions := make([]*session, 0, len(st.sessions))
	for _, sess := range st.sessions {
		liveSessions = append(liveSessions, sess)
	}
	st.mu.Unlock()

	return d.wal.Compact(func(app func([]byte) error) error {
		for _, js := range liveJobs {
			data, err := json.Marshal(walRecord{T: "job", Hash: js.hash, Req: js.req})
			if err != nil {
				continue
			}
			if err := app(data); err != nil {
				return err
			}
		}
		for _, sess := range liveSessions {
			if !sess.mu.TryLock() {
				return fmt.Errorf("service: session %s busy, compaction deferred", sess.ID)
			}
			rec, err := sess.snapshotRecordLocked()
			sess.mu.Unlock()
			if err != nil {
				continue // closed mid-snapshot: not live state anymore
			}
			data, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			if err := app(data); err != nil {
				return err
			}
		}
		return nil
	})
}

// snapshotRecordLocked renders the session as a fresh opener carrying
// its full current trace (caller holds sess.mu).
func (sess *session) snapshotRecordLocked() (*walRecord, error) {
	if sess.closed {
		return nil, ErrNoSuchSession
	}
	upload := "parallel"
	if sess.opt.HyperUpload == model.TaskSequential {
		upload = "sequential"
	}
	wire := &WireInstance{Tasks: make([]WireTask, len(sess.tasks))}
	for j, t := range sess.tasks {
		wire.Tasks[j] = WireTask{Name: t.Name, Local: t.Local, V: int64(t.V)}
	}
	wire.Reqs = make([][]string, len(sess.trace))
	for i, row := range sess.trace {
		cells := make([]string, len(row))
		for j, set := range row {
			cells[j] = set.String()
		}
		wire.Reqs[i] = cells
	}
	req := SessionRequest{
		Solver:   sess.Solver,
		Instance: wire,
		Upload:   upload,
		Options:  wireOptionsFrom(sess.opts),
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return &walRecord{T: "sess", ID: sess.ID, Req: data}, nil
}

// traceFromInstance builds the step-major authoritative trace from a
// task-major model instance (the CreateSession conversion, shared with
// recovery).
func traceFromInstance(mt *model.MTSwitchInstance) [][]bitset.Set {
	trace := make([][]bitset.Set, mt.Steps())
	for i := range trace {
		row := make([]bitset.Set, mt.NumTasks())
		for j := range row {
			row[j] = mt.Reqs[j][i].Clone()
		}
		trace[i] = row
	}
	return trace
}

// wireOptionsFrom inverts WireOptions.toSolve (Timeout excluded — it
// travels outside WireOptions and sessions carry none).
func wireOptionsFrom(o solve.Options) WireOptions {
	wo := WireOptions{
		MaxStates:        o.MaxStates,
		MaxCandidates:    o.MaxCandidates,
		MaxFrontierBytes: o.MaxFrontierBytes,
		DisablePruning:   o.DisablePruning,
		Workers:          o.Workers,
		Seed:             o.Seed,
		Pop:              o.Pop,
		Generations:      o.Generations,
		MutRate:          o.MutRate,
		CrossRate:        o.CrossRate,
		TournamentK:      o.TournamentK,
		Elites:           o.Elites,
		NoSeeds:          o.NoHeuristicSeeds,
		Iterations:       o.Iterations,
		InitialTemp:      o.InitialTemp,
		Cooling:          o.Cooling,
		IntervalK:        o.IntervalK,
		Partitions:       o.Partitions,
		MaxCutColumns:    o.MaxCutColumns,
	}
	switch o.Crossover {
	case solve.CrossTwoPoint:
		wo.Crossover = "two-point"
	case solve.CrossTaskRow:
		wo.Crossover = "task-row"
	}
	return wo
}

// checkpointSessions spills every live engine to the disk checkpoint
// store (the graceful-shutdown path: the next boot revives from the
// checkpoint instead of re-solving the whole trace).  Busy sessions
// are skipped — their traces rebuild them.
func (s *Server) checkpointSessions() {
	d := s.dur
	if d == nil || d.disabled.Load() {
		return
	}
	st := s.sessions
	st.mu.Lock()
	live := make([]*session, 0, len(st.sessions))
	for _, sess := range st.sessions {
		live = append(live, sess)
	}
	st.mu.Unlock()
	for _, sess := range live {
		if !sess.mu.TryLock() {
			continue
		}
		if sess.eng != nil && !sess.closed {
			if data, err := sess.eng.Checkpoint(context.Background()); err == nil {
				d.ckptStore.Put(sess.ID, data)
			}
		}
		sess.mu.Unlock()
	}
}

// closeDurable drains the spill worker and closes the WAL (the final
// fsync of a graceful drain).
func (s *Server) closeDurable() {
	d := s.dur
	if d == nil {
		return
	}
	d.disabled.Store(true)
	close(d.spill)
	d.spillWG.Wait()
	d.wal.Sync()
	d.wal.Close()
}

// Abandon stops the server the way kill -9 would: no drain, no final
// snapshot, no WAL compaction — just stop touching the data directory
// so a successor can open it.  It exists for in-process crash/recovery
// tests and the restart-midway bench; the out-of-process harness in
// internal/resilience/faultinject/crashharness sends real SIGKILLs.
func (s *Server) Abandon() {
	if d := s.dur; d != nil {
		d.disabled.Store(true)
		d.wal.Close() // release the file; appends were already on disk
	}
	s.mu.Lock()
	s.closed = true
	s.state = "draining"
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel()
}
