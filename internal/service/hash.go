package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/solve"
)

// requestKey canonically serializes (instance, solver, options) and
// returns the SHA-256 hex digest.  The serialization goes through the
// resolved model instance, not the request body, so every phrasing of
// the same problem — a bundled app name, its exported CSV, the inline
// JSON matrix — addresses the same cache line.  Only the kinds the
// service serves (switch, mtswitch) are hashable.
func requestKey(inst *solve.Instance, solver string, opts solve.Options) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "solver\x00%s\x00", solver)
	writeOptions(h, opts)
	switch inst.Kind() {
	case solve.KindSwitch:
		s := inst.Switch
		fmt.Fprintf(h, "switch\x00%d\x00%d\x00%d\x00", s.Universe, s.W, len(s.Reqs))
		for _, r := range s.Reqs {
			io.WriteString(h, r.String())
			h.Write([]byte{0})
		}
	case solve.KindMTSwitch:
		mt := inst.MT
		fmt.Fprintf(h, "mtswitch\x00%d\x00%d\x00%d\x00%d\x00",
			inst.Cost.HyperUpload, inst.Cost.ReconfUpload, mt.NumTasks(), mt.Steps())
		for j, t := range mt.Tasks {
			fmt.Fprintf(h, "task\x00%s\x00%d\x00%d\x00", t.Name, t.Local, t.V)
			for _, r := range mt.Reqs[j] {
				io.WriteString(h, r.String())
				h.Write([]byte{0})
			}
		}
	default:
		return "", fmt.Errorf("service: unhashable instance kind %v", inst.Kind())
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeOptions serializes every solve.Options field in declaration
// order.  New fields must be appended here; the format is not
// persisted anywhere, so changing it only empties the in-memory cache.
func writeOptions(w io.Writer, o solve.Options) {
	fmt.Fprintf(w, "opts\x00%d\x00%d\x00%d\x00%d\x00%d\x00%d\x00%d\x00%g\x00%g\x00%d\x00%d\x00%t\x00%d\x00%d\x00%g\x00%g\x00%d\x00%d\x00%t\x00%d\x00%d\x00",
		o.Timeout, o.MaxStates, o.MaxCandidates, o.Workers, o.Seed,
		o.Pop, o.Generations, o.MutRate, o.CrossRate, o.TournamentK,
		o.Elites, o.NoHeuristicSeeds, o.Crossover,
		o.Iterations, o.InitialTemp, o.Cooling, o.IntervalK,
		o.MaxFrontierBytes, o.DisablePruning,
		o.Partitions, o.MaxCutColumns)
}
