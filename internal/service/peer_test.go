package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/solve"
)

// TestPeerEntryRoundTrip pins the peer-fill wire format: a canonical
// store entry survives render → JSON → decode → entry unchanged.
func TestPeerEntryRoundTrip(t *testing.T) {
	key := strings.Repeat("ab", 32)
	in := &canonicalEntry{
		mask:  [][]bool{{true, false, true}, {false, false, true}},
		cost:  model.Cost(17),
		exact: true,
		stats: solve.Stats{StatesExpanded: 5, DedupHits: 9},
	}
	data, err := json.Marshal(peerEntryOf(key, in))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := DecodePeerEntry(data)
	if err != nil {
		t.Fatalf("decode: %v (%s)", err, data)
	}
	if pe.Key != key || pe.Cost != 17 || !pe.Exact {
		t.Fatalf("decoded header mismatch: %+v", pe)
	}
	out := pe.entry()
	if out.cost != in.cost || out.exact != in.exact {
		t.Fatalf("entry mismatch: %+v vs %+v", out, in)
	}
	if len(out.mask) != len(in.mask) {
		t.Fatalf("mask rows %d != %d", len(out.mask), len(in.mask))
	}
	for c := range in.mask {
		for i := range in.mask[c] {
			if out.mask[c][i] != in.mask[c][i] {
				t.Fatalf("mask[%d][%d] differs", c, i)
			}
		}
	}
	if out.stats.StatesExpanded != 5 || out.stats.DedupHits != 9 {
		t.Fatalf("stats lost in transit: %+v", out.stats)
	}
}

// TestDecodePeerEntryRejects enumerates the malformed bodies the
// decoder must refuse.
func TestDecodePeerEntryRejects(t *testing.T) {
	key := strings.Repeat("ab", 32)
	cases := []string{
		`{`,
		`null`,
		`{"key":"","cost":1,"mask":["1"]}`,
		`{"key":"XYZ","cost":1,"mask":["1"]}`,
		`{"key":"` + key + `","cost":-1,"mask":["1"]}`,
		`{"key":"` + key + `","cost":1,"mask":[]}`,
		`{"key":"` + key + `","cost":1,"mask":["10","1"]}`,
		`{"key":"` + key + `","cost":1,"mask":["1x"]}`,
		`{"key":"` + strings.Repeat("a", 200) + `","cost":1,"mask":["1"]}`,
	}
	for i, c := range cases {
		if pe, err := DecodePeerEntry([]byte(c)); err == nil {
			t.Fatalf("case %d accepted: %+v", i, pe)
		}
	}
}

// TestPeerLookupJoinsInflightSolve is the node-side half of cross-node
// singleflight: a PeerLookup with a wait budget, issued while the key's
// solve is still running, parks on that job and answers the published
// entry instead of a miss.
func TestPeerLookupJoinsInflightSolve(t *testing.T) {
	gate := make(chan struct{})
	setTestSolver(func(ctx context.Context, inst *solve.Instance, opts solve.Options) (*solve.Solution, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return solve.Run(ctx, "exact", inst, opts)
	})
	s, ts := newTestServer(t, Config{Workers: 1})

	req := tinyRequest("svc-test")
	key, err := req.RoutingKey(s.limits())
	if err != nil {
		t.Fatal(err)
	}

	// Miss without a wait budget: the key is unknown and nothing blocks.
	if _, ok := s.PeerLookup(key, 0, nil); ok {
		t.Fatal("lookup hit before anything was solved")
	}

	job, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		pe *PeerEntry
		ok bool
	}
	ch := make(chan answer, 1)
	go func() {
		pe, ok := s.PeerLookup(key, 5*time.Second, nil)
		ch <- answer{pe, ok}
	}()
	time.Sleep(50 * time.Millisecond)
	close(gate)
	waitDone(t, job)

	got := <-ch
	if !got.ok {
		t.Fatal("waiting lookup missed the published entry")
	}
	if got.pe.Key != key {
		t.Fatalf("entry key %q, want %q", got.pe.Key, key)
	}
	if w := s.metrics.peerServeWaits.Load(); w != 1 {
		t.Fatalf("peerServeWaits = %d, want 1", w)
	}

	// The HTTP surface serves the same entry.
	resp, raw := getBody(t, ts.URL+"/v1/cache/"+key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache endpoint: status %d: %s", resp.StatusCode, raw)
	}
	pe, err := DecodePeerEntry(raw)
	if err != nil {
		t.Fatalf("cache endpoint body does not decode: %v: %s", err, raw)
	}
	if pe.Key != key {
		t.Fatalf("cache endpoint answered key %q, want %q", pe.Key, key)
	}

	// Bad and unknown keys answer 400 and 404 with the unified shape.
	if resp, raw := getBody(t, ts.URL+"/v1/cache/NOT-HEX"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid key: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = getBody(t, ts.URL+"/v1/cache/"+strings.Repeat("cd", 32))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d: %s", resp.StatusCode, raw)
	}
	assertErrorBody(t, raw, false)
}

// TestHealthzV1Fields pins the cluster health document: node id, build
// version, live-session count and the injected ring view.
func TestHealthzV1Fields(t *testing.T) {
	ring := &RingStatus{
		Self:    "node-1",
		VNodes:  16,
		Members: []MemberHealth{{ID: "node-1", Healthy: true}, {ID: "node-2", Healthy: false}},
	}
	s, ts := newTestServer(t, Config{Workers: 1, NodeID: "node-1", ClusterStatus: func() *RingStatus { return ring }})

	sess, err := s.CreateSession(context.Background(), &SessionRequest{
		Solver:   "exact",
		Instance: tinyRequest("exact").Instance,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.DeleteSession(sess.ID)

	resp, raw := getBody(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var hs HealthStatus
	if err := json.Unmarshal(raw, &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "ok" || hs.NodeID != "node-1" || hs.Version == "" {
		t.Fatalf("unexpected health header: %s", raw)
	}
	if hs.SessionsActive != 1 {
		t.Fatalf("sessions_active = %d, want 1: %s", hs.SessionsActive, raw)
	}
	if hs.Ring == nil || hs.Ring.Self != "node-1" || len(hs.Ring.Members) != 2 {
		t.Fatalf("ring view missing: %s", raw)
	}

	// Draining state flips once shutdown begins.
	shutdown(t, s)
	resp, raw = getBody(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "draining" {
		t.Fatalf("post-shutdown status %q, want draining: %s", hs.Status, raw)
	}
}
