package service

import (
	"net/http"

	"repro/internal/solve"
)

// GET /v1/solvers — the registry introspection endpoint.  Clients (and
// the hyperd bench preflight) use it to stop guessing which solver
// names a node accepts and which option values its Validate will
// reject: the response lists every registered solver with its
// capabilities plus the validated range of each wire option.

// SolverInfo describes one registered solver.
type SolverInfo struct {
	// Name is the registry key, the value of WireOptions.Solver.
	Name string `json:"name"`
	// Kinds lists the instance kinds the solver accepts.
	Kinds []string `json:"kinds"`
	// Exact reports whether the solver proves optimality when its caps
	// are not exceeded.
	Exact bool `json:"exact"`
}

// OptionRange documents the validated range of one solve option as
// Options.Validate enforces it.
type OptionRange struct {
	// Name is the WireOptions JSON field name.
	Name string `json:"name"`
	// Type is the JSON type clients send ("int", "float", "bool",
	// "string").
	Type string `json:"type"`
	// Range states the accepted values in interval notation; zero
	// values always select per-solver defaults.
	Range string `json:"range"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// SolversResponse is the GET /v1/solvers body.
type SolversResponse struct {
	Solvers []SolverInfo  `json:"solvers"`
	Options []OptionRange `json:"options"`
}

// optionRanges mirrors solve.Options.Validate: every rule there has a
// line here (TestSolverOptionRanges pins the field set against
// WireOptions so the two cannot drift silently).
func optionRanges() []OptionRange {
	return []OptionRange{
		{Name: "timeout_ms", Type: "int", Range: "[0,∞)", Doc: "wall-time bound in milliseconds; 0 = none (server clamp may apply)"},
		{Name: "max_states", Type: "int", Range: "[0,∞)", Doc: "exact-DP frontier beam cap; 0 = solver default"},
		{Name: "max_candidates", Type: "int", Range: "[0,∞)", Doc: "per-task install candidate cap; 0 = unlimited (required for exactness)"},
		{Name: "max_frontier_bytes", Type: "int", Range: "[0,∞)", Doc: "frontier arena memory budget; 0 = unbudgeted"},
		{Name: "disable_pruning", Type: "bool", Range: "{false,true}", Doc: "turn off dominance/bound pruning (baselining only)"},
		{Name: "workers", Type: "int", Range: "[0,∞)", Doc: "parallel stage goroutine bound; 0 = GOMAXPROCS"},
		{Name: "seed", Type: "int", Range: "(-∞,∞)", Doc: "deterministic random seed; 0 = 1"},
		{Name: "pop", Type: "int", Range: "[0,∞)", Doc: "GA population size; 0 = 80"},
		{Name: "generations", Type: "int", Range: "[0,∞)", Doc: "GA generations; 0 = 300"},
		{Name: "mut_rate", Type: "float", Range: "[0,1]", Doc: "GA per-bit mutation probability; 0 = adaptive"},
		{Name: "cross_rate", Type: "float", Range: "[0,1]", Doc: "GA crossover probability; 0 = 0.9"},
		{Name: "tournament_k", Type: "int", Range: "[0,∞)", Doc: "GA tournament size; 0 = 3"},
		{Name: "elites", Type: "int", Range: "[0,∞)", Doc: "GA elites per generation; 0 = 2"},
		{Name: "no_heuristic_seeds", Type: "bool", Range: "{false,true}", Doc: "disable heuristic seeding of the GA population"},
		{Name: "crossover", Type: "string", Range: "{uniform,two-point,task-row}", Doc: "GA recombination operator"},
		{Name: "iterations", Type: "int", Range: "[0,∞)", Doc: "annealing iterations; 0 = 20000"},
		{Name: "initial_temp", Type: "float", Range: "[0,∞)", Doc: "annealing start temperature; 0 = adaptive"},
		{Name: "cooling", Type: "float", Range: "(0,1) or 0", Doc: "annealing geometric cooling factor; 0 = adaptive decay"},
		{Name: "interval_k", Type: "int", Range: "[0,∞)", Doc: "fixed-interval baseline period; 0 = solver default"},
		{Name: "partitions", Type: "int", Range: "[0,∞)", Doc: "exact-partitioned window count; 0 = auto, 1 = monolithic"},
		{Name: "max_cut_columns", Type: "int", Range: "[0,∞)", Doc: "partition planner weighted column-cut cap; 0 = uncapped"},
	}
}

// solversResponse builds the full body from the live registry.
func solversResponse() SolversResponse {
	names := solve.Names()
	infos := make([]SolverInfo, 0, len(names))
	for _, name := range names {
		s, err := solve.Get(name)
		if err != nil {
			continue // raced deregistration cannot happen, but stay safe
		}
		caps := s.Capabilities()
		kinds := make([]string, len(caps.Kinds))
		for i, k := range caps.Kinds {
			kinds[i] = k.String()
		}
		infos = append(infos, SolverInfo{Name: name, Kinds: kinds, Exact: caps.Exact})
	}
	return SolversResponse{Solvers: infos, Options: optionRanges()}
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, solversResponse())
}
