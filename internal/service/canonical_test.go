package service

import (
	"strings"
	"testing"
)

// TestCanonicalCacheSharesStructuralTwins submits one instance, then a
// structural twin — tasks reordered and renamed, switch columns
// relabeled — and expects the twin to be answered from the canonical
// store without a solver run, with the schedule rendered in the twin's
// own task labels.
func TestCanonicalCacheSharesStructuralTwins(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	original := &SolveRequest{
		Solver: "exact",
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "alpha", Local: 3, V: 2}, {Name: "beta", Local: 2, V: 1}},
			Reqs: [][]string{
				{"100", "10"},
				{"010", "11"},
				{"011", "01"},
				{"001", "00"},
			},
		},
	}
	// Same structure: task order swapped, tasks renamed, alpha's columns
	// reversed (0↔2) and beta's columns swapped.
	twin := &SolveRequest{
		Solver: "exact",
		Instance: &WireInstance{
			Tasks: []WireTask{{Name: "south", Local: 2, V: 1}, {Name: "north", Local: 3, V: 2}},
			Reqs: [][]string{
				{"01", "001"},
				{"11", "010"},
				{"10", "110"},
				{"00", "100"},
			},
		},
	}

	first, _, err := s.Submit(original)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	firstSol, err := first.Solution()
	if err != nil {
		t.Fatal(err)
	}

	second, deduped, err := s.Submit(twin)
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("structural twin joined the in-flight job instead of hitting the canonical store")
	}
	if !second.CacheHit {
		t.Fatal("structural twin was not served from the canonical store")
	}
	waitDone(t, second)
	secondSol, err := second.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if secondSol.Cost != firstSol.Cost {
		t.Fatalf("twin cost %d, original %d", secondSol.Cost, firstSol.Cost)
	}
	if secondSol.Exact != firstSol.Exact {
		t.Fatalf("twin exact=%t, original exact=%t", secondSol.Exact, firstSol.Exact)
	}
	if got := s.metrics.canonicalHits.Load(); got != 1 {
		t.Fatalf("canonicalHits = %d, want 1", got)
	}
	if got := s.metrics.cacheHits.Load(); got != 0 {
		t.Fatalf("cacheHits = %d, want 0 (the twin is not a literal repeat)", got)
	}

	// The replayed schedule must be valid for the twin's own instance and
	// carry the twin's task labels, not the original's.
	st := second.Snapshot()
	if st.Result == nil || st.Result.Schedule == nil {
		t.Fatalf("twin snapshot has no schedule: %+v", st)
	}
	doc := string(st.Result.Schedule)
	for _, name := range []string{"south", "north"} {
		if !strings.Contains(doc, name) {
			t.Fatalf("twin schedule document missing task %q:\n%s", name, doc)
		}
	}
	if strings.Contains(doc, "alpha") || strings.Contains(doc, "beta") {
		t.Fatalf("twin schedule document leaks the original's task names:\n%s", doc)
	}

	// A literal repeat of the twin now hits the exact cache (level 1),
	// seeded by the canonical replay.
	third, _, err := s.Submit(twin)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatal("literal repeat of the twin missed the exact cache")
	}
	if got := s.metrics.cacheHits.Load(); got != 1 {
		t.Fatalf("cacheHits = %d, want 1 after the literal repeat", got)
	}
	if got := s.metrics.canonicalHits.Load(); got != 1 {
		t.Fatalf("canonicalHits = %d, want still 1", got)
	}
}

// TestCanonicalCacheDistinguishesDifferentProblems makes sure the
// canonical key still separates genuinely different instances: changing
// one requirement bit must miss the canonical store.
func TestCanonicalCacheDistinguishesDifferentProblems(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	base := tinyRequest("exact")
	first, _, err := s.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)

	changed := tinyRequest("exact")
	changed.Instance.Reqs[1][0] = "11" // was "01"
	second, _, err := s.Submit(changed)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("different problem served from a cache")
	}
	waitDone(t, second)
	if got := s.metrics.canonicalHits.Load(); got != 0 {
		t.Fatalf("canonicalHits = %d, want 0", got)
	}
}
