package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/resilience/faultinject"
	"repro/internal/solve"
	"repro/internal/workload"
)

// sessionInstance is a phased workload small enough for the exact
// solver to chew through repeatedly.
func sessionInstance(t *testing.T) *model.MTSwitchInstance {
	t.Helper()
	mt, err := workload.Phased(workload.Config{Tasks: 3, Steps: 10, Switches: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

// wirePrefix slices the first n step rows of a wire instance.
func wirePrefix(wi *WireInstance, n int) *WireInstance {
	return &WireInstance{Tasks: wi.Tasks, Reqs: wi.Reqs[:n]}
}

// sessionRequest opens a session over the first n steps of mt.
func sessionRequest(mt *model.MTSwitchInstance, solver string, n int) *SessionRequest {
	return &SessionRequest{
		Solver:   solver,
		Instance: wirePrefix(WireInstanceFrom(mt), n),
	}
}

// runExact is the from-scratch baseline for a trace prefix.
func runExact(t *testing.T, mt *model.MTSwitchInstance) *solve.Solution {
	t.Helper()
	sol, err := solve.Run(context.Background(), "exact",
		solve.NewMT(mt, model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}),
		solve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// prefixInstance clones the first n steps of mt.
func prefixInstance(t *testing.T, mt *model.MTSwitchInstance, n int) *model.MTSwitchInstance {
	t.Helper()
	wi := wirePrefix(WireInstanceFrom(mt), n)
	out, err := wi.toModel()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSessionGrowsAndMatchesFromScratch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)
	n := mt.Steps()

	sess, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 2))
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.Status(); st.Steps != 2 || st.Generation != 1 || st.Result == nil {
		t.Fatalf("fresh session status off: %+v", st)
	}

	// Grow in batches of 2 and check every intermediate schedule against
	// the from-scratch solve of the same prefix.
	for length := 2; length < n; {
		batch := 2
		if length+batch > n {
			batch = n - length
		}
		st, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[length : length+batch]})
		if err != nil {
			t.Fatal(err)
		}
		length += batch
		if st.Steps != length {
			t.Fatalf("session at %d steps, want %d", st.Steps, length)
		}
		want := runExact(t, prefixInstance(t, mt, length))
		if st.Result == nil || st.Result.Cost != int64(want.Cost) {
			t.Fatalf("after %d steps: session cost %v, from-scratch %d", length, st.Result, want.Cost)
		}
		if st.ResolvedFrom < 0 || st.ResolvedFrom >= length {
			t.Fatalf("resolved_from %d outside [0,%d)", st.ResolvedFrom, length)
		}
	}
	if got := s.metrics.sessionSteps.Load(); got != int64(n-2) {
		t.Fatalf("session steps metric %d, want %d", got, n-2)
	}
}

func TestSessionAmendMatchesFromScratch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)
	n := mt.Steps()

	// Open over the full trace, then overwrite two middle rows with the
	// rows from two other steps.
	sess, err := s.CreateSession(ctx, sessionRequest(mt, "exact", n))
	if err != nil {
		t.Fatal(err)
	}
	at := 4
	repl := [][]string{wi.Reqs[0], wi.Reqs[1]}
	st, err := sess.Steps(ctx, &SessionSteps{At: &at, Reqs: repl})
	if err != nil {
		t.Fatal(err)
	}
	amended := &WireInstance{Tasks: wi.Tasks, Reqs: append([][]string{}, wi.Reqs...)}
	amended.Reqs[4], amended.Reqs[5] = repl[0], repl[1]
	mtAmended, err := amended.toModel()
	if err != nil {
		t.Fatal(err)
	}
	want := runExact(t, mtAmended)
	if st.Result == nil || st.Result.Cost != int64(want.Cost) {
		t.Fatalf("amended session cost %v, from-scratch %d", st.Result, want.Cost)
	}

	// Out-of-range amendments are rejected before touching anything.
	bad := n
	if _, err := sess.Steps(ctx, &SessionSteps{At: &bad, Reqs: repl}); err == nil {
		t.Fatal("amend window past the trace end accepted")
	}
}

func TestSessionHTTPLifecycleMatchesSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)
	n := mt.Steps()

	resp, raw := postJSON(t, ts.URL+"/v1/sessions", sessionRequest(mt, "exact", 2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	var st SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Steps != 2 || st.Result == nil {
		t.Fatalf("create status off: %s", raw)
	}

	// Stream the rest of the trace through the steps endpoint.
	resp, raw = postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/steps", &SessionSteps{Reqs: wi.Reqs[2:n]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steps: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Steps != n || st.Result == nil {
		t.Fatalf("steps status off: %s", raw)
	}

	// The streamed schedule must equal the one-shot /v1/solve of the
	// full trace: same cost, same exactness, same schedule document.
	resp, raw = postJSON(t, ts.URL+"/v1/solve", &SolveRequest{Solver: "exact", Instance: wi})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var job JobStatus
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if job.Result == nil || job.Result.Cost != st.Result.Cost || job.Result.Exact != st.Result.Exact {
		t.Fatalf("session result %+v, one-shot %+v", st.Result, job.Result)
	}
	if string(st.Result.Schedule) != string(job.Result.Schedule) {
		t.Fatalf("session schedule differs from one-shot:\n%s\nvs\n%s", st.Result.Schedule, job.Result.Schedule)
	}

	// Status endpoint agrees; delete tears it down; a second delete 404s.
	resp, _ = getBody(t, ts.URL+"/v1/sessions/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp2.StatusCode)
	}
	resp2, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp2.StatusCode)
	}
}

func TestSessionSchedulleLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	_, raw := postJSON(t, ts.URL+"/v1/sessions", sessionRequest(mt, "exact", 2))
	var st SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	// Polling at the current generation parks until the step below
	// bumps it.
	done := make(chan SessionStatus, 1)
	go func() {
		_, raw := getBody(t, fmt.Sprintf("%s/v1/sessions/%s/schedule?generation=%d&timeout_ms=5000", ts.URL, st.ID, st.Generation))
		var got SessionStatus
		json.Unmarshal(raw, &got)
		done <- got
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case got := <-done:
		t.Fatalf("long-poll returned before any step: %+v", got)
	default:
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/steps", &SessionSteps{Reqs: wi.Reqs[2:3]}); resp.StatusCode != http.StatusOK {
		t.Fatalf("steps: %d %s", resp.StatusCode, raw)
	}
	select {
	case got := <-done:
		if got.Generation != st.Generation+1 || got.Steps != 3 {
			t.Fatalf("long-poll woke with %+v, want generation %d at 3 steps", got, st.Generation+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on the new schedule")
	}

	// A poll behind the current generation returns immediately.
	_, raw = getBody(t, fmt.Sprintf("%s/v1/sessions/%s/schedule?generation=0&timeout_ms=10", ts.URL, st.ID))
	var got SessionStatus
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Generation < 2 {
		t.Fatalf("stale poll got generation %d", got.Generation)
	}

	// A poll at the head generation times out and reports the unchanged
	// schedule rather than hanging.
	start := time.Now()
	_, raw = getBody(t, fmt.Sprintf("%s/v1/sessions/%s/schedule?generation=%d&timeout_ms=100", ts.URL, st.ID, got.Generation))
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("head poll neither timed out nor returned promptly: %s", elapsed)
	}
}

func TestSessionEvictionAndRevival(t *testing.T) {
	// A 1-byte engine budget forces every session but the most recent
	// out to a checkpoint; touching an evicted session revives it with
	// the schedule intact.
	s := New(Config{Workers: 1, SessionBytes: 1})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	a, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 4))
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Status(); !st.Evicted {
		t.Fatalf("session A not evicted under a 1-byte budget: %+v", st)
	}
	if st := b.Status(); st.Evicted {
		t.Fatalf("most recent session B evicted: %+v", st)
	}
	if got := s.metrics.sessionsEvicted.Load(); got == 0 {
		t.Fatal("eviction not counted")
	}

	// The evicted session still answers with its last schedule, and a
	// new batch revives the engine and matches the from-scratch solve.
	if st := a.Status(); st.Result == nil {
		t.Fatal("evicted session lost its schedule")
	}
	st, err := a.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[4:6]})
	if err != nil {
		t.Fatal(err)
	}
	want := runExact(t, prefixInstance(t, mt, 6))
	if st.Result == nil || st.Result.Cost != int64(want.Cost) {
		t.Fatalf("revived session cost %v, from-scratch %d", st.Result, want.Cost)
	}
	if got := s.metrics.sessionsRevived.Load(); got == 0 {
		t.Fatal("revival not counted")
	}
}

func TestSessionLimitRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxSessions: 1})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)

	if _, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 2)); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("got %v, want ErrSessionLimit", err)
	}
}

func TestSessionRejectsNonSteppableSolver(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	mt := sessionInstance(t)
	if _, err := s.CreateSession(context.Background(), sessionRequest(mt, "ga", 2)); !errors.Is(err, solve.ErrNotSteppable) {
		t.Fatalf("got %v, want ErrNotSteppable", err)
	}
}

func TestSessionPanicIsolationAndRebuild(t *testing.T) {
	// An injected panic in the session solve path fails only that batch;
	// the trace keeps the rows, and the next batch rebuilds the engine
	// and produces the correct schedule for the full trace.
	faultinject.Reset()
	defer faultinject.Reset()
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	sess, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 3))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("service.session", faultinject.Action{Panic: true, Times: 1})
	_, err = sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[3:5]})
	var pe *solve.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v, want *solve.PanicError", err)
	}
	if st := sess.Status(); !st.Evicted || st.Steps != 5 || st.Error == "" {
		t.Fatalf("post-panic status off: %+v", st)
	}

	// Next batch: engine rebuilds from the authoritative trace, which
	// already contains the panicked batch's rows.
	st, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[5:6]})
	if err != nil {
		t.Fatal(err)
	}
	want := runExact(t, prefixInstance(t, mt, 6))
	if st.Result == nil || st.Result.Cost != int64(want.Cost) {
		t.Fatalf("rebuilt session cost %v, from-scratch %d", st.Result, want.Cost)
	}
	if st.Error != "" {
		t.Fatalf("recovered session still reports error %q", st.Error)
	}
}

func TestSessionBreakerAdmission(t *testing.T) {
	// Consecutive session solve failures trip the same per-solver
	// breaker the job queue uses; further batches fail fast with 503
	// semantics until the cooldown.
	faultinject.Reset()
	defer faultinject.Reset()
	s := New(Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	defer shutdown(t, s)
	ctx := context.Background()
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	sess, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 2))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("service.session", faultinject.Action{Panic: true})
	for i := 0; i < 2; i++ {
		var pe *solve.PanicError
		if _, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[2+i : 3+i]}); !errors.As(err, &pe) {
			t.Fatalf("batch %d: got %v, want panic error", i, err)
		}
	}
	var unavailable *SolverUnavailableError
	if _, err := sess.Steps(ctx, &SessionSteps{Reqs: wi.Reqs[4:5]}); !errors.As(err, &unavailable) {
		t.Fatalf("got %v, want SolverUnavailableError after breaker tripped", err)
	}
	// Creating a new session for the same solver is rejected too.
	if _, err := s.CreateSession(ctx, sessionRequest(mt, "exact", 2)); !errors.As(err, &unavailable) {
		t.Fatalf("create after trip: got %v, want SolverUnavailableError", err)
	}
}

func TestSessionBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	for name, body := range map[string]any{
		"missing solver":   &SessionRequest{Instance: wirePrefix(wi, 2)},
		"missing instance": &SessionRequest{Solver: "exact"},
		"empty trace":      &SessionRequest{Solver: "exact", Instance: &WireInstance{Tasks: wi.Tasks}},
		"bad upload":       &SessionRequest{Solver: "exact", Instance: wirePrefix(wi, 2), Upload: "bogus"},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/sessions", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, raw)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", strings.Repeat("x", 64)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: %d, want 400", resp.StatusCode)
	}

	_, raw := postJSON(t, ts.URL+"/v1/sessions", sessionRequest(mt, "exact", 2))
	var st SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	for name, batch := range map[string]*SessionSteps{
		"empty batch":     {},
		"ragged row":      {Reqs: [][]string{{"10"}}},
		"wrong universe":  {Reqs: [][]string{make([]string, len(wi.Tasks))}},
		"unparsable cell": {Reqs: [][]string{func() []string { r := append([]string{}, wi.Reqs[0]...); r[0] = "2z"; return r }()}},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/steps", batch)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, raw)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/nope/steps", &SessionSteps{Reqs: wi.Reqs[:1]}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", resp.StatusCode)
	}
}

func TestSessionMetricsRendered(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	mt := sessionInstance(t)
	wi := WireInstanceFrom(mt)

	sess, err := s.CreateSession(context.Background(), sessionRequest(mt, "exact", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Steps(context.Background(), &SessionSteps{Reqs: wi.Reqs[2:4]}); err != nil {
		t.Fatal(err)
	}
	_, raw := getBody(t, ts.URL+"/metrics")
	text := string(raw)
	for _, want := range []string{
		"hyperd_sessions_active 1",
		"hyperd_session_steps_total 2",
		"hyperd_session_resolve_suffix_len_sum",
		"hyperd_session_resolve_suffix_len_count 1",
		"hyperd_sessions_evicted_total",
		"hyperd_sessions_revived_total",
		"hyperd_session_engine_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSessionShutdownCloses(t *testing.T) {
	s := New(Config{Workers: 1})
	mt := sessionInstance(t)
	sess, err := s.CreateSession(context.Background(), sessionRequest(mt, "exact", 2))
	if err != nil {
		t.Fatal(err)
	}
	// A long-poll parked on the session must wake when shutdown closes
	// it rather than sleeping out its timeout.
	done := make(chan *SessionStatus, 1)
	go func() {
		done <- sess.Wait(context.Background(), sess.Status().Generation, time.Hour)
	}()
	time.Sleep(20 * time.Millisecond)
	shutdown(t, s)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll survived shutdown")
	}
	if _, ok := s.Session(sess.ID); ok {
		t.Fatal("session survived shutdown")
	}
	if _, err := sess.Steps(context.Background(), &SessionSteps{Reqs: WireInstanceFrom(mt).Reqs[2:3]}); !errors.Is(err, ErrNoSuchSession) {
		t.Fatalf("steps on closed session: %v, want ErrNoSuchSession", err)
	}
}
