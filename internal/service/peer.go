package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/model"
	"repro/internal/solve"
)

// Peer cache fill — the cluster protocol under GET /v1/cache/{key}.
//
// A cluster node that misses its canonical store asks its ring-adjacent
// siblings for the entry before solving.  The unit of transfer is one
// canonical store line: the hyperreconfiguration mask in canonical task
// order plus cost/exactness/stats, keyed by the canonical form hash.
// The receiving node replays the mask onto the requester's own instance
// through the same reconstruct path a local canonical hit uses — the
// replay cost-checks the entry against the instance, so a corrupt or
// mismatched peer answer degrades to a miss, never a wrong result.
//
// Cross-node singleflight rides on the same endpoint: when the serving
// node has no entry yet but an in-flight solve for the key, a request
// with ?wait_ms=N blocks until that solve publishes (or the wait
// expires).  Twin requests landing on two nodes therefore collapse to
// one solve: the second node waits on the first node's job instead of
// expanding the same frontier again.

// PeerFiller is the cluster hook consulted on a canonical-cache miss
// before a solve is enqueued (installed via Config.PeerFill; see
// internal/cluster for the HTTP implementation).  Fill returns the
// entry and true when any sibling held (or finished solving) the key.
type PeerFiller interface {
	Fill(key string) (*PeerEntry, bool)
}

// PeerEntry is the wire form of one canonical store entry, the body of
// a GET /v1/cache/{key} hit.
type PeerEntry struct {
	// Key echoes the canonical store key the entry answers.
	Key string `json:"key"`
	// Cost and Exact mirror the stored solution.
	Cost  int64 `json:"cost"`
	Exact bool  `json:"exact"`
	// Mask is the hyperreconfiguration mask in canonical task order:
	// one row per canonical task, '0'/'1' per step.
	Mask []string `json:"mask"`
	// Stats carries the original solve's statistics so a peer-filled
	// answer reports the true work, not zeros.
	Stats WireStats `json:"stats"`
	// Hint, when set, is the portfolio race outcome that produced the
	// entry: the receiving node records it into its own learned-dispatch
	// win table, so a family raced anywhere in the cluster dispatches
	// directly everywhere.
	Hint *DispatchHint `json:"dispatch_hint,omitempty"`
}

// DispatchHint is the win-table hint riding a PeerEntry.
type DispatchHint struct {
	// Bucket is the portfolio feature bucket the win was recorded
	// under.
	Bucket string `json:"bucket"`
	// Winner is the contender that won the race.
	Winner string `json:"winner"`
}

// maxHintLen bounds the hint strings (buckets are ~12 chars, solver
// names ~20; anything longer is garbage).
const maxHintLen = 64

// maxPeerKeyLen bounds the key path segment (canonical keys are 64 hex
// chars; leave headroom for future key schemes).
const maxPeerKeyLen = 128

// maxPeerWait caps the server-side in-flight wait a peer may request.
const maxPeerWait = 10 * time.Second

// validPeerKey reports whether key looks like a canonical store key:
// non-empty lowercase hex, bounded length.
func validPeerKey(key string) bool {
	if len(key) == 0 || len(key) > maxPeerKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DecodePeerEntry parses and validates one peer-fill body.  It is the
// exact decode path FuzzPeerFill drives: any input must come back as a
// value or an error, never a panic, and every accepted entry is inside
// the service dimension bounds.
func DecodePeerEntry(data []byte) (*PeerEntry, error) {
	var pe PeerEntry
	if err := json.Unmarshal(data, &pe); err != nil {
		return nil, err
	}
	if !validPeerKey(pe.Key) {
		return nil, fmt.Errorf("peer entry: invalid key %q", pe.Key)
	}
	if pe.Cost < 0 {
		return nil, fmt.Errorf("peer entry: negative cost %d", pe.Cost)
	}
	if len(pe.Mask) == 0 {
		return nil, errors.New("peer entry: empty mask")
	}
	if len(pe.Mask) > maxWireTasks {
		return nil, &TooLargeError{What: "peer mask task count", Got: len(pe.Mask), Limit: maxWireTasks}
	}
	steps := len(pe.Mask[0])
	if steps > maxWireSteps {
		return nil, &TooLargeError{What: "peer mask step count", Got: steps, Limit: maxWireSteps}
	}
	for c, row := range pe.Mask {
		if len(row) != steps {
			return nil, fmt.Errorf("peer entry: mask row %d has %d steps, want %d", c, len(row), steps)
		}
		for i := 0; i < len(row); i++ {
			if row[i] != '0' && row[i] != '1' {
				return nil, fmt.Errorf("peer entry: mask row %d has non-binary cell %q", c, row[i])
			}
		}
	}
	if h := pe.Hint; h != nil {
		if h.Bucket == "" || h.Winner == "" || len(h.Bucket) > maxHintLen || len(h.Winner) > maxHintLen {
			return nil, fmt.Errorf("peer entry: malformed dispatch hint %q→%q", h.Bucket, h.Winner)
		}
	}
	return &pe, nil
}

// entry converts the wire form into a canonical store entry.
func (pe *PeerEntry) entry() *canonicalEntry {
	mask := make([][]bool, len(pe.Mask))
	for c, row := range pe.Mask {
		bits := make([]bool, len(row))
		for i := 0; i < len(row); i++ {
			bits[i] = row[i] == '1'
		}
		mask[c] = bits
	}
	e := &canonicalEntry{
		mask:  mask,
		cost:  model.Cost(pe.Cost),
		exact: pe.Exact,
		stats: statsFromWire(pe.Stats),
	}
	if pe.Hint != nil {
		e.hintBucket, e.hintWinner = pe.Hint.Bucket, pe.Hint.Winner
	}
	return e
}

// peerEntryOf renders a canonical store entry for the wire.
func peerEntryOf(key string, e *canonicalEntry) *PeerEntry {
	mask := make([]string, len(e.mask))
	for c, bits := range e.mask {
		row := make([]byte, len(bits))
		for i, b := range bits {
			if b {
				row[i] = '1'
			} else {
				row[i] = '0'
			}
		}
		mask[c] = string(row)
	}
	pe := &PeerEntry{
		Key:   key,
		Cost:  int64(e.cost),
		Exact: e.exact,
		Mask:  mask,
		Stats: wireStats(e.stats),
	}
	if e.hintBucket != "" && e.hintWinner != "" {
		pe.Hint = &DispatchHint{Bucket: e.hintBucket, Winner: e.hintWinner}
	}
	return pe
}

// errNoPeerEntry is the 404 body of a peer-fill miss.
var errNoPeerEntry = errors.New("service: no canonical entry for key")

// PeerLookup serves one peer-fill request against the local canonical
// store.  With wait > 0 and an in-flight solve registered for the key,
// the lookup blocks until that solve publishes its entry, the wait
// expires, or done closes — the cross-node singleflight join.
func (s *Server) PeerLookup(key string, wait time.Duration, done <-chan struct{}) (*PeerEntry, bool) {
	if e, ok := s.canon.Get(key); ok {
		s.metrics.peerServeHits.Add(1)
		return peerEntryOf(key, e), true
	}
	if wait <= 0 {
		s.metrics.peerServeMisses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	job := s.canonInflight[key]
	s.mu.Unlock()
	if job == nil {
		s.metrics.peerServeMisses.Add(1)
		return nil, false
	}
	s.metrics.peerServeWaits.Add(1)
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-job.Done():
	case <-t.C:
	case <-done:
	}
	if e, ok := s.canon.Get(key); ok {
		s.metrics.peerServeHits.Add(1)
		return peerEntryOf(key, e), true
	}
	s.metrics.peerServeMisses.Add(1)
	return nil, false
}

func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validPeerKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid cache key %q", key))
		return
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, errors.New("invalid wait_ms"))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxPeerWait {
			wait = maxPeerWait
		}
	}
	pe, ok := s.PeerLookup(key, wait, r.Context().Done())
	if !ok {
		writeError(w, http.StatusNotFound, errNoPeerEntry)
		return
	}
	writeJSON(w, http.StatusOK, pe)
}

// RouteLimits are the server-side clamps that enter the cache and
// routing keys.  A router hashing requests onto nodes must apply the
// same limits the nodes serve with, or its shard keys drift from the
// nodes' canonical store keys (routing stays consistent either way —
// only peer-fill owner alignment degrades).
type RouteLimits struct {
	MaxSolveTimeout  time.Duration
	MaxFrontierBytes int64
}

// clamp applies the limits to one request's options, exactly as the
// submit path does.
func (l RouteLimits) clamp(opts solve.Options) solve.Options {
	if l.MaxSolveTimeout > 0 && (opts.Timeout == 0 || opts.Timeout > l.MaxSolveTimeout) {
		opts.Timeout = l.MaxSolveTimeout
	}
	if l.MaxFrontierBytes > 0 && (opts.MaxFrontierBytes == 0 || opts.MaxFrontierBytes > l.MaxFrontierBytes) {
		opts.MaxFrontierBytes = l.MaxFrontierBytes
	}
	return opts
}

// limits returns the server's own clamps.
func (s *Server) limits() RouteLimits {
	return RouteLimits{
		MaxSolveTimeout:  s.cfg.MaxSolveTimeout,
		MaxFrontierBytes: s.cfg.MaxFrontierBytes,
	}
}

// RoutingKey returns the cluster shard key of a solve request: the
// canonical store key for mtswitch instances (so structural twins from
// any client hash to the same node) and the exact request key
// otherwise.  Resolution failures are client errors.
func (r *SolveRequest) RoutingKey(lim RouteLimits) (string, error) {
	res, err := r.resolve()
	if err != nil {
		return "", err
	}
	opts := lim.clamp(res.opts)
	if res.inst.Kind() == solve.KindMTSwitch && res.mt != nil {
		key, _ := canonicalMTKey(res.mt, res.inst.Cost, res.solver, opts)
		return key, nil
	}
	return requestKey(res.inst, res.solver, opts)
}

// RoutingKey returns the shard key a session opener hashes to; the
// session then sticks to that node for its whole life (sessions hold
// node-local engine state).
func (r *SessionRequest) RoutingKey(lim RouteLimits) (string, error) {
	mt, cost, opts, err := r.resolveSession(lim)
	if err != nil {
		return "", err
	}
	key, _ := canonicalMTKey(mt, cost, r.Solver, opts)
	return key, nil
}
