package service

import (
	"container/list"
	"sync"

	"repro/internal/solve"
)

// lruCache is the one fixed-capacity LRU underneath every service-side
// store: the exact result cache, the canonical result store and the
// evicted session checkpoints.  Keys are strings, values are opaque; a
// non-positive capacity disables the cache (every Get misses).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value and refreshes its recency.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// one beyond capacity.
func (c *lruCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Delete removes an entry if present.
func (c *lruCache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cachedResult is what the result cache stores: the solution plus its
// lazily-rendered, shared wire form, so serving a hot entry never
// re-serializes the schedule document.
type cachedResult struct {
	sol  *solve.Solution
	wire *wireMemo
}

// resultCache is the typed view of the LRU from content hash to
// completed solution.  Cached solutions are shared by reference and
// treated as immutable by everyone downstream (handlers only serialize
// them).
type resultCache struct {
	lru *lruCache
}

// newResultCache builds a cache holding up to capacity entries; a
// non-positive capacity disables caching (every Get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{lru: newLRUCache(capacity)}
}

func (c *resultCache) Get(key string) (*cachedResult, bool) {
	v, ok := c.lru.Get(key)
	if !ok {
		return nil, false
	}
	return v.(*cachedResult), true
}

func (c *resultCache) Put(key string, res *cachedResult) { c.lru.Put(key, res) }

func (c *resultCache) Len() int { return c.lru.Len() }
