package service

import (
	"container/list"
	"sync"

	"repro/internal/solve"
)

// cachedResult is what the cache stores: the solution plus its
// lazily-rendered, shared wire form, so serving a hot entry never
// re-serializes the schedule document.
type cachedResult struct {
	sol  *solve.Solution
	wire *wireMemo
}

// resultCache is a fixed-capacity LRU from content hash to completed
// solution.  Cached solutions are shared by reference and treated as
// immutable by everyone downstream (handlers only serialize them).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *cachedResult
}

// newResultCache builds a cache holding up to capacity entries; a
// non-positive capacity disables caching (every Get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached result and refreshes its recency.
func (c *resultCache) Get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// one beyond capacity.
func (c *resultCache) Put(key string, res *cachedResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
