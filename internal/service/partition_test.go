package service

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/solve"
	"repro/internal/workload"
)

// blockedRequest builds an inline blocked-workload request of the
// given step count.
func blockedRequest(t *testing.T, solver string, steps int) *SolveRequest {
	t.Helper()
	mt, err := workload.Blocked(workload.Config{Tasks: 2, Steps: steps, Switches: 8, MeanPhase: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return &SolveRequest{Solver: solver, Instance: WireInstanceFrom(mt)}
}

// TestPartitionAutoDispatch pins the dispatch rewrite: exact mtswitch
// submissions at or above Config.PartitionSteps run as
// exact-partitioned (sharing cache lines with directly requested
// partitioned solves), smaller ones and other solvers are untouched,
// and the partition metric families appear after a partitioned solve.
func TestPartitionAutoDispatch(t *testing.T) {
	s := New(Config{Workers: 2, PartitionSteps: 16})
	defer shutdown(t, s)

	big, _, err := s.Submit(blockedRequest(t, "exact", 16))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, big)
	if big.Solver != "exact-partitioned" {
		t.Fatalf("16-step exact job ran as %q, want exact-partitioned", big.Solver)
	}
	sol, err := big.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Partitions < 1 {
		t.Fatalf("Stats.Partitions = %d, want ≥ 1", sol.Stats.Partitions)
	}

	// A direct exact-partitioned submit of the same instance must hit
	// the cache line the dispatched job filled.
	direct, _, err := s.Submit(blockedRequest(t, "exact-partitioned", 16))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, direct)
	if !direct.CacheHit {
		t.Fatal("direct exact-partitioned submit missed the dispatched job's cache line")
	}

	small, _, err := s.Submit(blockedRequest(t, "exact", 12))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, small)
	if small.Solver != "exact" {
		t.Fatalf("12-step exact job ran as %q, want exact", small.Solver)
	}

	var buf bytes.Buffer
	s.metrics.render(&buf, s.gauges())
	for _, name := range []string{
		"hyperd_partition_parts_total",
		"hyperd_partition_cut_columns_total",
		"hyperd_partition_stitch_ns_total",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("metrics missing %s:\n%s", name, buf.String())
		}
	}
}

// TestPartitionDispatchDisabled pins the default: with PartitionSteps
// zero, huge exact submissions stay monolithic.
func TestPartitionDispatchDisabled(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	job, _, err := s.Submit(blockedRequest(t, "exact", 16))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Solver != "exact" {
		t.Fatalf("job ran as %q, want exact (dispatch disabled)", job.Solver)
	}
}

// TestPartitionStatsWireRoundTrip pins the wire inverse pair for the
// new stats fields — the cluster peer fill depends on it.
func TestPartitionStatsWireRoundTrip(t *testing.T) {
	in := solve.Stats{
		StatesExpanded: 7,
		Partitions:     3,
		CutColumns:     5,
		StitchBound:    11,
		StitchTime:     2 * time.Millisecond,
	}
	out := statsFromWire(wireStats(in))
	if out.Partitions != in.Partitions || out.CutColumns != in.CutColumns ||
		out.StitchBound != in.StitchBound || out.StitchTime != in.StitchTime {
		t.Fatalf("round trip lost partition stats: %+v -> %+v", in, out)
	}
}
