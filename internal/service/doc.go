// Package service is the concurrent solve service behind cmd/hyperd:
// an embeddable server that accepts solve requests (an instance in the
// traceio wire conventions plus a registry solver name and options),
// runs them on a bounded worker pool fed by a bounded job queue, and
// exposes an asynchronous job lifecycle — submit, poll or wait, fetch
// the result, cancel — over HTTP/JSON.
//
// In front of the pool sits a content-addressed result cache: every
// request is canonically serialized and hashed, so identical instances
// resolve to identical keys no matter how they were phrased (a bundled
// app name and its inline requirement matrix hash the same).  Completed
// solutions are served from an LRU keyed by (instance hash, solver,
// options); identical in-flight requests are deduplicated
// singleflight-style onto one job.
//
// Per-job context deadlines thread into the PR-1 cancellation
// checkpoints of every solver hot loop, so cancels and timeouts take
// effect mid-solve.  Graceful shutdown drains the queue (queued jobs
// finish as canceled) and cancels in-flight solves via their contexts.
package service
